"""Fault-subsystem smoke benchmark: the fault-free tax, timed and gated.

A standalone script (like ``bench_dynamic.py``) that measures what the
fault-injection subsystem costs a run that injects nothing, and writes
``BENCH_faults.json`` with:

* the wall-clock overhead of the always-on hardening bookkeeping
  (watchdog scan + staleness tracking at every boundary) on a fault-free
  run — gated at **< 2%** against the same run with ``hardening=False``;
* three bit-identity gates: fault-free vs. disabled ``FaultPlan()``,
  fault-free vs. ``plan.scaled(0.0)``, and hardening-on vs. hardening-off
  (none of these may perturb the trajectory or the ``RunResult``);
* a short degradation curve at the reference operating point
  (signal loss 10%, PMC jitter 20%) asserting the faulted run stays
  strict-audit clean and actually injected something.

The CI ``faults-smoke`` job runs this at a small scale and fails on any
gate violation.

Usage::

    PYTHONPATH=src python benchmarks/bench_faults.py             # defaults
    PYTHONPATH=src python benchmarks/bench_faults.py --scale 0.1 --repeats 5
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time

OVERHEAD_LIMIT_PCT = 2.0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.1, help="application work scale")
    parser.add_argument("--seed", type=int, default=42, help="root random seed")
    parser.add_argument(
        "--repeats",
        type=int,
        default=7,
        help="interleaved sample pairs (the median pair ratio is gated)",
    )
    parser.add_argument(
        "--inner",
        type=int,
        default=20,
        help="simulations per timing sample (one run is too short to time)",
    )
    parser.add_argument("--out", type=str, default="BENCH_faults.json", help="report path")
    args = parser.parse_args(argv)

    from repro.config import ManagerConfig
    from repro.core.policies import QuantaWindowPolicy
    from repro.experiments.base import SimulationSpec, run_simulation
    from repro.experiments.faults import REFERENCE_PLAN
    from repro.faults import FaultPlan
    from repro.workloads.microbench import bbma_spec
    from repro.workloads.suites import PAPER_APPS

    app = PAPER_APPS["CG"].scaled(args.scale)

    def spec(hardening=True, faults=None):
        return SimulationSpec(
            targets=[app, app],
            background=[bbma_spec(), bbma_spec(), bbma_spec(), bbma_spec()],
            scheduler=QuantaWindowPolicy(),
            manager=ManagerConfig(hardening=hardening),
            seed=args.seed,
            faults=faults,
        )

    def sample(make_spec):
        # Policy instances are stateful (per-app estimators), so every
        # run gets a freshly built spec — reusing one would leak state
        # between runs and break the bit-identity gates.
        t0 = time.perf_counter()
        for _ in range(args.inner):
            result = run_simulation(make_spec())
        return time.perf_counter() - t0, result

    # Warm both code paths (imports, caches) before any timing, then
    # interleave the two legs in pairs: the per-pair ratio cancels slow
    # drift on a shared box, and the median of ratios kills outliers.
    run_simulation(spec(hardening=True))
    run_simulation(spec(hardening=False))
    hard_samples, bare_samples, ratios = [], [], []
    hardened = bare = None
    for _ in range(args.repeats):
        hard_dt, hardened = sample(lambda: spec(hardening=True))
        bare_dt, bare = sample(lambda: spec(hardening=False))
        hard_samples.append(hard_dt)
        bare_samples.append(bare_dt)
        ratios.append(hard_dt / bare_dt)
    hard_best = min(hard_samples)
    bare_best = min(bare_samples)
    ratios.sort()
    median_ratio = ratios[len(ratios) // 2]
    # Leg 3: a disabled plan must arm nothing (no timing leg needed —
    # identity is the gate; one run suffices).
    disabled = run_simulation(spec(faults=FaultPlan()))
    scaled_zero = run_simulation(spec(faults=REFERENCE_PLAN.scaled(0.0)))
    # Leg 4: the reference operating point injects and stays audit-clean.
    faulted = run_simulation(
        dataclasses.replace(spec(faults=REFERENCE_PLAN), audit=True)
    )

    overhead_pct = 100.0 * (median_ratio - 1.0)

    report = {
        "scale": args.scale,
        "seed": args.seed,
        "repeats": args.repeats,
        "inner": args.inner,
        "hardened_wall_s_best": round(hard_best, 4),
        "bare_wall_s_best": round(bare_best, 4),
        "pair_ratios": [round(r, 4) for r in ratios],
        "fault_free_overhead_pct": round(overhead_pct, 3),
        "overhead_limit_pct": OVERHEAD_LIMIT_PCT,
        "bit_identical_disabled_plan": hardened == disabled,
        "bit_identical_scaled_zero": hardened == scaled_zero,
        "bit_identical_hardening_flag": hardened == bare,
        "faulted_any_injected": faulted.faults.any_injected,
        "faulted_audit_ok": faulted.audit is not None and faulted.audit.ok,
        "faulted_stats": faulted.faults.to_dict(),
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)

    print(
        f"fault-free overhead: {overhead_pct:+.2f}% "
        f"(median of {args.repeats} paired ratios, {args.inner} runs per sample; "
        f"hardened best {hard_best:.3f}s, bare best {bare_best:.3f}s)"
    )
    print(f"wrote {args.out}", file=sys.stderr)

    ok = (
        overhead_pct < OVERHEAD_LIMIT_PCT
        and report["bit_identical_disabled_plan"]
        and report["bit_identical_scaled_zero"]
        and report["bit_identical_hardening_flag"]
        and report["faulted_any_injected"]
        and report["faulted_audit_ok"]
    )
    if not ok:
        print("GATE FAILURE: see report", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
