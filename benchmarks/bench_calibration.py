"""CAL-1: platform calibration (STREAM capacity, solo rates).

Paper references: 29.5 tx/µs sustained (STREAM), 1797 MB/s, BBMA 23.6
tx/µs, nBBMA 0.0037 tx/µs, solo application rates 0.48 … 23.31 tx/µs.
"""

from repro.experiments.calibration import format_calibration, run_calibration

from .conftest import BENCH_SCALE, BENCH_SEED


def test_cal1_platform_calibration(benchmark):
    result = benchmark.pedantic(
        run_calibration,
        kwargs={"work_scale": BENCH_SCALE, "seed": BENCH_SEED},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_calibration(result))
    # shape gates: the anchors every experiment relies on
    assert abs(result.stream_rate_txus - 29.5) / 29.5 < 0.03
    assert abs(result.bbma_rate_txus - 23.6) / 23.6 < 0.05
    rates = list(result.solo_rates_txus.values())
    assert rates == sorted(rates)
