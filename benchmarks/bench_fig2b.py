"""FIG-2B: 2 apps + 4 nBBMA — improvement over the Linux scheduler.

Paper reference (Figure 2B / Section 5): Latest Quantum up to 60 % but only
13 % on average, with three applications *slowing down* (Raytrace −19 %);
Quanta Window up to 64 %, 21 % average, Raytrace only −1 % — the stability
contrast between the two estimators.
"""

from ._fig2_common import average_improvement, run_set


def test_fig2b_low_bandwidth_partners(benchmark):
    rows = run_set(benchmark, "B")
    by_name = {r.name: r for r in rows}
    avg_latest = average_improvement(rows, "latest-quantum")
    avg_window = average_improvement(rows, "quanta-window")
    # shape gates: positive averages; the window estimator is the stabler
    # one on the bursty application (the paper's Raytrace contrast)
    assert 5.0 < avg_latest < 45.0
    assert 5.0 < avg_window < 45.0
    ray = by_name["Raytrace"]
    assert ray.improvement("quanta-window") >= ray.improvement("latest-quantum")
    # set B gains are smaller than set A gains for the demanding apps
    # (paper: avg 13/21% here vs 41/31% in set A)
