"""ABL-W/Q/F/A: ablations of the design choices DESIGN.md calls out.

* ABL-W — estimator (window length / EWMA) on the bursty applications.
* ABL-Q — CPU-manager quantum (paper: 100 ms thrashes against the kernel).
* ABL-F — fitness function alternatives vs Equation 1.
* ABL-A — bus arbitration model (shared-latency vs idealized max-min).
"""

from repro.experiments.ablations import (
    format_arbitration_ablation,
    format_fitness_ablation,
    format_quantum_ablation,
    format_saturation_ablation,
    format_window_ablation,
    run_arbitration_ablation,
    run_fitness_ablation,
    run_quantum_ablation,
    run_saturation_ablation,
    run_window_ablation,
)

from .conftest import BENCH_SCALE, BENCH_SEED


def test_ablw_window_length(benchmark):
    rows = benchmark.pedantic(
        run_window_ablation,
        kwargs={"work_scale": BENCH_SCALE, "seed": BENCH_SEED},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_window_ablation(rows))
    labels = [r.estimator for r in rows]
    assert labels[0] == "latest"
    assert "window-5" in labels  # the paper's choice is part of the sweep


def test_ablq_manager_quantum(benchmark):
    rows = benchmark.pedantic(
        run_quantum_ablation,
        kwargs={"work_scale": BENCH_SCALE, "seed": BENCH_SEED},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_quantum_ablation(rows))
    # the paper's observation: shorter manager quanta → more scheduling
    # churn against the kernel's own quanta
    by_q = {r.quantum_ms: r for r in rows}
    assert by_q[50.0].dispatches > by_q[200.0].dispatches
    assert by_q[100.0].dispatches > by_q[400.0].dispatches


def test_ablf_fitness_function(benchmark):
    results = benchmark.pedantic(
        run_fitness_ablation,
        kwargs={"work_scale": BENCH_SCALE, "seed": BENCH_SEED},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_fitness_ablation(results))
    assert set(results) == {"paper", "linear", "lowest-bw", "constant"}
    # Equation 1 is at least competitive with the degenerate rules on
    # average across the sampled applications
    def avg(name):
        return sum(results[name].values()) / len(results[name])

    assert avg("paper") >= avg("constant") - 5.0


def test_abls_saturation_aware_estimation(benchmark):
    # Run long enough for the naive estimator's limit cycle to lock in
    # (short runs mask it: early quanta run on empty estimates).
    results = benchmark.pedantic(
        run_saturation_ablation,
        kwargs={"work_scale": 0.6, "seed": BENCH_SEED},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_saturation_ablation(results))
    # the saturation-aware estimator dominates the naive one on a
    # saturated workload — the limit cycle costs tens of percent
    for app in results["saturation-aware"]:
        assert results["saturation-aware"][app] > results["naive"][app]


def test_abla_arbitration_model(benchmark):
    results = benchmark.pedantic(
        run_arbitration_ablation,
        kwargs={"work_scale": BENCH_SCALE, "seed": BENCH_SEED},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_arbitration_ablation(results))
    # the idealized fair bus hurts light applications less than the real
    # (unfair) arbitration next to streaming antagonists
    assert results["max-min"]["Barnes"] <= results["shared-latency"]["Barnes"] + 0.05
