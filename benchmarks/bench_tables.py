"""TAB-1: the Section 5 headline summary (max/avg improvement per set).

Paper reference: set A 68/41 % and 53/31 %; set B 60/13 % and 64/21 %;
set C 50/26 % and 47/25 %; overall average improvement 26 %.
"""

from repro.experiments.fig2 import run_fig2
from repro.experiments.tables import build_table1, format_table1, overall_average

from .conftest import BENCH_SCALE, BENCH_SEED


def _run_all_sets():
    return {
        s: run_fig2(s, work_scale=BENCH_SCALE, seed=BENCH_SEED) for s in ("A", "B", "C")
    }


def test_tab1_headline_summary(benchmark):
    results = benchmark.pedantic(_run_all_sets, rounds=1, iterations=1)
    rows = build_table1(results)
    print()
    print(format_table1(rows))
    # shape gates: the overall average lands near the paper's 26 %
    overall = overall_average(rows)
    assert 15.0 < overall < 45.0
    # every (set, policy) average is positive
    for row in rows:
        assert row.avg_percent > 0.0, (row.set_name, row.policy)
    # set A (saturated) beats set B (benign partners) on average — the
    # paper's ordering of where bandwidth-awareness matters most
    a_avg = sum(r.avg_percent for r in rows if r.set_name == "A") / 2
    b_avg = sum(r.avg_percent for r in rows if r.set_name == "B") / 2
    assert a_avg > b_avg
