"""PERF: solver/dispatch variants, wall clock, and cache effectiveness.

A standalone script (not a pytest-benchmark module) that times ``run_fig2``
four ways and writes ``BENCH_fig2.json``:

1. **serial / cache off** — the pre-optimization baseline
   (``solve_cache_size=0``);
2. **serial / cache on** — the PR 1 memo-cache solver (bisection);
3. **serial / newton + warm start** — ``solver_mode="newton"``: guarded
   Newton root finder seeded from the previous equilibrium;
4. **parallel / chunked** — the cached grid through ``run_many(jobs=N)``
   with chunked dispatch and a per-worker shared solve cache.

Alongside wall-clock it records solver-work counters summed over every
simulation in the grid: ``solve`` invocations, memo/shared cache hits,
warm starts, and root-finder throughput evaluations — the optimizations'
job is to make the last number drop. The script asserts the variants agree
on the figure's actual rows: chunked parallel must match serial *exactly*;
cache-off and newton must match the cached bisect run to solver tolerance
(the CI benchmark smoke job runs this script at ``--scale 0.1`` and fails
on any violation).

On boxes with fewer than two CPUs the parallel variant still runs (the
bit-identity gate is cheap and always worth keeping), but its speedup
fields are annotated as not meaningful rather than reporting a misleading
sub-1x "speedup" from oversubscribing a single core.

Usage::

    PYTHONPATH=src python benchmarks/bench_perf.py            # defaults
    PYTHONPATH=src python benchmarks/bench_perf.py --jobs 4 --scale 0.2
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.config import BusConfig, MachineConfig
from repro.parallel import fork_available, resolve_jobs


def _machine(cache: bool, solver: str = "bisect") -> MachineConfig:
    bus = BusConfig(
        solve_cache_size=BusConfig().solve_cache_size if cache else 0,
        solver_mode=solver,
    )
    return MachineConfig(bus=bus)


def _run(set_name: str, machine: MachineConfig, jobs: int, scale: float,
         apps: list[str], seed: int):
    from repro.experiments.fig2 import (
        _background, _fresh_policy, default_policies, replace_scheduler,
    )
    from repro.config import ManagerConfig, LinuxSchedConfig
    from repro.experiments.base import SimulationSpec
    from repro.parallel import run_many
    from repro.workloads.suites import PAPER_APPS

    manager = ManagerConfig()
    specs = []
    for name in apps:
        app_spec = PAPER_APPS[name].scaled(scale)
        base = SimulationSpec(
            targets=[app_spec, app_spec],
            background=_background(set_name),
            scheduler="linux",
            machine=machine,
            manager=manager,
            linux=LinuxSchedConfig(),
            seed=seed,
        )
        specs.append(base)
        for template in default_policies(manager):
            specs.append(replace_scheduler(base, _fresh_policy(template)))
    start = time.perf_counter()
    results = run_many(specs, jobs=jobs)
    elapsed = time.perf_counter() - start
    stats = {
        "wall_clock_s": round(elapsed, 4),
        "simulations": len(results),
        "solve_calls": sum(r.bus_solve_calls for r in results),
        "cache_hits": sum(r.bus_cache_hits for r in results),
        "shared_hits": sum(r.bus_shared_hits for r in results),
        "warm_starts": sum(r.bus_warm_starts for r in results),
        "solver_steps": sum(r.bus_bisection_steps for r in results),
    }
    # Back-compat alias: earlier reports called this "bisection_steps".
    stats["bisection_steps"] = stats["solver_steps"]
    stats["cache_hit_rate"] = (
        round((stats["cache_hits"] + stats["shared_hits"]) / stats["solve_calls"], 4)
        if stats["solve_calls"]
        else 0.0
    )
    return results, stats


def _assert_within_tolerance(reference, candidate, label: str) -> None:
    """Every finished turnaround must agree to solver tolerance."""
    for a, b in zip(reference, candidate):
        for ra, rb in zip(a.apps, b.apps):
            if ra.turnaround_us is not None:
                assert abs(ra.turnaround_us - rb.turnaround_us) <= max(
                    1e-6 * ra.turnaround_us, 1e-3
                ), f"{label} changed {ra.name} turnaround"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--set", dest="set_name", default="A", choices=["A", "B", "C"])
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--jobs", type=int, default=0, help="0 = all cores")
    parser.add_argument(
        "--apps", type=str, default="Barnes,SP,CG,Raytrace",
        help="comma-separated application subset",
    )
    parser.add_argument("--out", type=str, default="BENCH_fig2.json")
    args = parser.parse_args(argv)
    apps = [a.strip() for a in args.apps.split(",") if a.strip()]
    jobs = resolve_jobs(args.jobs)
    cpu_count = os.cpu_count() or 1
    # On a 1-core (or fork-less) box a timed parallel run only measures
    # oversubscription; still verify bit-identity with 2 workers, but
    # annotate the timing as meaningless.
    parallel_meaningful = cpu_count >= 2 and jobs > 1 and fork_available()
    parallel_jobs = jobs if parallel_meaningful else 2

    variants = {}
    base_results, variants["serial_cache_off"] = _run(
        args.set_name, _machine(cache=False), 1, args.scale, apps, args.seed
    )
    cached_results, variants["serial_cache_on"] = _run(
        args.set_name, _machine(cache=True), 1, args.scale, apps, args.seed
    )
    newton_results, variants["serial_newton_warm"] = _run(
        args.set_name, _machine(cache=True, solver="newton"), 1, args.scale,
        apps, args.seed,
    )
    parallel_results, variants["parallel_chunked"] = _run(
        args.set_name, _machine(cache=True), parallel_jobs, args.scale, apps,
        args.seed,
    )
    if not parallel_meaningful:
        variants["parallel_chunked"]["timing_meaningful"] = False
        variants["parallel_chunked"]["note"] = (
            f"cpu_count={cpu_count}, jobs={jobs}, fork={fork_available()}: "
            "ran with 2 workers for the bit-identity gate only; wall clock "
            "measures oversubscription, not speedup"
        )

    # Correctness gates: chunked parallel must be exactly serial; neither
    # the cache nor the newton solver may move any turnaround beyond
    # solver tolerance.
    assert parallel_results == cached_results, "parallel diverged from serial"
    _assert_within_tolerance(base_results, cached_results, "cache")
    _assert_within_tolerance(cached_results, newton_results, "newton solver")

    base = variants["serial_cache_off"]
    cached = variants["serial_cache_on"]
    newton = variants["serial_newton_warm"]
    par = variants["parallel_chunked"]
    report = {
        "experiment": f"fig2{args.set_name}",
        "apps": apps,
        "work_scale": args.scale,
        "seed": args.seed,
        "jobs": jobs,
        "cpu_count": cpu_count,
        "variants": variants,
        "bisection_reduction_pct": round(
            100.0 * (1.0 - cached["solver_steps"] / base["solver_steps"]), 1
        )
        if base["solver_steps"]
        else 0.0,
        "newton_step_reduction_pct": round(
            100.0 * (1.0 - newton["solver_steps"] / cached["solver_steps"]), 1
        )
        if cached["solver_steps"]
        else 0.0,
        "cache_speedup_serial": round(
            base["wall_clock_s"] / cached["wall_clock_s"], 2
        ),
        "newton_speedup_vs_cached_serial": round(
            cached["wall_clock_s"] / newton["wall_clock_s"], 2
        ),
        "parallel_speedup_vs_cached_serial": round(
            cached["wall_clock_s"] / par["wall_clock_s"], 2
        )
        if parallel_meaningful
        else None,
        "total_speedup_vs_baseline": round(
            base["wall_clock_s"] / par["wall_clock_s"], 2
        )
        if parallel_meaningful
        else None,
        "bit_identical_serial_parallel": True,
        "newton_within_tolerance": True,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")

    print(f"[bench] wrote {args.out}", file=sys.stderr)
    print(json.dumps(report, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
