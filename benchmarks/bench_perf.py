"""PERF: solver/dispatch variants, wall clock, and cache effectiveness.

A standalone script (not a pytest-benchmark module) that times ``run_fig2``
four ways, times the vectorized hot path on a scaled-up workload, and
writes ``BENCH_fig2.json``:

1. **serial / cache off** — the pre-optimization baseline
   (``solve_cache_size=0``);
2. **serial / cache on** — the PR 1 memo-cache solver (bisection);
3. **serial / newton + warm start** — ``solver_mode="newton"``: guarded
   Newton root finder seeded from the previous equilibrium;
4. **parallel / chunked** — the cached grid through ``run_many(jobs=N)``
   with chunked dispatch and a per-worker shared solve cache.

Alongside wall-clock it records solver-work counters summed over every
simulation in the grid: ``solve`` invocations, memo/shared cache hits,
warm starts, and root-finder throughput evaluations — the optimizations'
job is to make the last number drop. The script asserts the variants agree
on the figure's actual rows: chunked parallel must match serial *exactly*;
cache-off and newton must match the cached bisect run to solver tolerance
(the CI benchmark smoke job runs this script and fails on any violation).

The **vectorized** section scales the fig2 workload up to a large SMP
(default: 256 CPUs, 128 target app instances of Barnes/SP/CG/Raytrace
plus 128 microbenchmark background apps under the Quanta Window policy)
and times ``solver_mode="vector"`` + incremental selection against the
PR 5 state of the art, ``solver_mode="newton"`` + full re-rank selection.
The two runs must produce *bit-identical* ``RunResult``s — the speedup is
pure evaluation-order-preserving batching — and the report carries the
hot-path counters (``batched_lanes``, ``dirty_mask_hits``, the fraction
of per-job estimates actually re-scored) that prove where the time went.

The **entry_build** section micro-benchmarks the ``_ensure_solution``
entry build alone — every lane dirtied, solve memoized away — and
reports µs per 1k dirty lanes for the scalar loop vs the SoA array
pass, plus the ratio. The **vectorized** section additionally carries
the previously committed walls (``prior_walls``) and the cumulative
speedups against them, so the report shows both this run's ratio and
the across-PR trend.

Parallel timing is only reported as a speedup where it can be one: the
script records ``os.cpu_count()``, the scheduler affinity mask *and*
the cgroup CPU quota (containers often show many CPUs while throttled
to a fraction of one), and on boxes where fewer than two CPUs are
actually usable the ``run_many`` entries are annotated as skipped (with
the reason) rather than reporting a misleading sub-1x "speedup" from
oversubscribing a single core. The bit-identity gate still runs with 2
workers either way.

Usage::

    PYTHONPATH=src python benchmarks/bench_perf.py            # defaults
    PYTHONPATH=src python benchmarks/bench_perf.py --jobs 4 --scale 0.2
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.config import BusConfig, MachineConfig
from repro.parallel import cgroup_cpu_quota, fork_available, resolve_jobs, usable_cpus

#: Application subset for the scaled-up vectorized gate: two
#: bandwidth-hungry codes (SP, CG), one cache-friendly (Barnes) and one
#: mixed (Raytrace), mirroring the fig2 "set A vs set C" spread.
SCALED_APPS = ["Barnes", "SP", "CG", "Raytrace"]

#: Wall-clock seconds from the previously committed BENCH_fig2.json
#: (same box, same scaled workload: 256 CPUs, 32 instances, scale 0.05,
#: seed 42). Carried forward so each refresh also reports the cumulative
#: hot-path speedup across PRs, not just this run's newton-vs-vector
#: ratio. Update these when re-baselining on new hardware.
PRIOR_WALLS = {
    "serial_newton_warm_s": 1.8512,
    "vectorized_s": 0.4482,
}


def _machine(cache: bool, solver: str = "bisect") -> MachineConfig:
    bus = BusConfig(
        solve_cache_size=BusConfig().solve_cache_size if cache else 0,
        solver_mode=solver,
    )
    return MachineConfig(bus=bus)


def _run(set_name: str, machine: MachineConfig, jobs: int, scale: float,
         apps: list[str], seed: int):
    from repro.experiments.fig2 import (
        _background, _fresh_policy, default_policies, replace_scheduler,
    )
    from repro.config import ManagerConfig, LinuxSchedConfig
    from repro.experiments.base import SimulationSpec
    from repro.parallel import run_many
    from repro.workloads.suites import PAPER_APPS

    manager = ManagerConfig()
    specs = []
    for name in apps:
        app_spec = PAPER_APPS[name].scaled(scale)
        base = SimulationSpec(
            targets=[app_spec, app_spec],
            background=_background(set_name),
            scheduler="linux",
            machine=machine,
            manager=manager,
            linux=LinuxSchedConfig(),
            seed=seed,
        )
        specs.append(base)
        for template in default_policies(manager):
            specs.append(replace_scheduler(base, _fresh_policy(template)))
    start = time.perf_counter()
    results = run_many(specs, jobs=jobs)
    elapsed = time.perf_counter() - start
    stats = {
        "wall_clock_s": round(elapsed, 4),
        "simulations": len(results),
        "solve_calls": sum(r.bus_solve_calls for r in results),
        "cache_hits": sum(r.bus_cache_hits for r in results),
        "shared_hits": sum(r.bus_shared_hits for r in results),
        "warm_starts": sum(r.bus_warm_starts for r in results),
        "solver_steps": sum(r.bus_bisection_steps for r in results),
    }
    # Back-compat alias: earlier reports called this "bisection_steps".
    stats["bisection_steps"] = stats["solver_steps"]
    stats["cache_hit_rate"] = (
        round((stats["cache_hits"] + stats["shared_hits"]) / stats["solve_calls"], 4)
        if stats["solve_calls"]
        else 0.0
    )
    return results, stats


def _scaled_spec(mode: str, incremental: bool, n_cpus: int, inst: int,
                 scale: float, seed: int, profile: bool = False):
    """One scaled-up fig2 workload under Quanta Window.

    ``inst`` instances of each app in :data:`SCALED_APPS` (two threads
    each), ``3*inst`` BBMA + ``inst`` nBBMA background apps, on an
    ``n_cpus``-way machine whose bus capacity scales with the CPU count.
    Policies are cloned per call so estimator state never crosses runs.
    """
    from repro.config import LinuxSchedConfig, ManagerConfig
    from repro.experiments.base import SimulationSpec
    from repro.experiments.fig2 import _fresh_policy, default_policies
    from repro.workloads.microbench import bbma_spec, nbbma_spec
    from repro.workloads.suites import PAPER_APPS

    machine = MachineConfig(
        n_cpus=n_cpus,
        bus=BusConfig(
            solver_mode=mode,
            capacity_txus=BusConfig().capacity_txus * (n_cpus / 4.0),
        ),
    )
    manager = ManagerConfig()
    template = default_policies(manager)[1]  # Quanta Window
    template.incremental = incremental
    targets = []
    for name in SCALED_APPS:
        app = PAPER_APPS[name].scaled(scale)
        targets.extend([app] * inst)
    background = [bbma_spec() for _ in range(3 * inst)]
    background += [nbbma_spec() for _ in range(inst)]
    return SimulationSpec(
        targets=targets,
        background=background,
        scheduler=_fresh_policy(template),
        machine=machine,
        manager=manager,
        linux=LinuxSchedConfig(),
        seed=seed,
        profile=profile,
    )


def _best_of(reps: int, make_spec, run):
    """Best wall-clock over ``reps`` runs of freshly-built specs."""
    best = float("inf")
    result = None
    for _ in range(reps):
        spec = make_spec()
        start = time.perf_counter()
        result = run(spec)
        best = min(best, time.perf_counter() - start)
    return best, result


def _vector_benchmark(n_cpus: int, inst: int, scale: float, seed: int,
                      reps: int) -> dict:
    """Time vector+incremental against newton+full-rerank, bit-for-bit."""
    from repro.experiments.base import run_simulation

    def newton_spec():
        return _scaled_spec("newton", False, n_cpus, inst, scale, seed)

    def vector_spec():
        return _scaled_spec("vector", True, n_cpus, inst, scale, seed)

    t_newton, r_newton = _best_of(reps, newton_spec, run_simulation)
    t_vector, r_vector = _best_of(reps, vector_spec, run_simulation)
    identical = r_newton == r_vector
    assert identical, "vectorized hot path diverged from the newton reference"

    # One extra profiled run for the hot-path counters (never timed: the
    # per-phase timers themselves cost wall clock).
    profiled = run_simulation(
        _scaled_spec("vector", True, n_cpus, inst, scale, seed, profile=True)
    )
    prof = profiled.profile or {}
    rescored = prof.get("sel_est_rescored", 0)
    reused = prof.get("sel_est_reused", 0)
    section = {
        "workload": {
            "n_cpus": n_cpus,
            "apps": SCALED_APPS,
            "instances_per_app": inst,
            "target_apps": len(SCALED_APPS) * inst,
            "background_apps": 4 * inst,
            "work_scale": scale,
            "scheduler": "quanta-window",
            "seed": seed,
        },
        "best_of": reps,
        "serial_newton_warm": {
            "wall_clock_s": round(t_newton, 4),
            "solver_mode": "newton",
            "incremental_selection": False,
            "solve_calls": r_newton.bus_solve_calls,
            "solver_steps": r_newton.bus_bisection_steps,
        },
        "vectorized": {
            "wall_clock_s": round(t_vector, 4),
            "solver_mode": "vector",
            "incremental_selection": True,
            "solve_calls": r_vector.bus_solve_calls,
            "solver_steps": r_vector.bus_bisection_steps,
            "batched_lanes": prof.get("batched_lanes", 0),
            "dirty_mask_hits": prof.get("dirty_mask_hits", 0),
            "sel_est_rescored": rescored,
            "sel_est_reused": reused,
            "sel_rerank_fraction": (
                round(rescored / (rescored + reused), 4)
                if (rescored + reused)
                else None
            ),
        },
        "speedup_vs_newton": round(t_newton / t_vector, 2),
        "prior_walls": dict(PRIOR_WALLS),
        "speedup_vs_prior_vector": round(
            PRIOR_WALLS["vectorized_s"] / t_vector, 2
        ),
        "total_speedup_vs_prior_newton": round(
            PRIOR_WALLS["serial_newton_warm_s"] / t_vector, 2
        ),
        "bit_identical_newton_vector": identical,
    }
    return section


def _entry_build_benchmark(n_lanes: int, reps: int = 3) -> dict:
    """Micro-benchmark: ``_ensure_solution`` entry build, µs per 1k dirty lanes.

    Builds a fully-occupied ``n_lanes``-CPU machine in each solver mode,
    then repeatedly invalidates the lane signature (so every lane is
    dirty and the skip path cannot fire) and rebuilds. The bus solve
    itself is memoized after the first iteration — identical rates hit
    the solve cache — so the loop isolates exactly the per-lane entry
    construction the SoA store batches: demand-segment lookup, debt/fill
    classification, request building and the grant fold.
    """
    from repro.hw.machine import Machine
    from repro.sim.engine import Engine

    class _Stepped:
        def __init__(self, rate: float, step: float):
            self._rate = rate
            self._step = step

        def segment(self, work: float) -> tuple[float, float]:
            k = int(work // self._step)
            return self._rate * (1.0 + 0.1 * (k % 3)), (k + 1) * self._step

    def build(mode: str) -> Machine:
        machine = Machine(
            MachineConfig(
                n_cpus=n_lanes,
                bus=BusConfig(
                    solver_mode=mode,
                    capacity_txus=BusConfig().capacity_txus * (n_lanes / 4.0),
                ),
            ),
            Engine(),
        )
        for i in range(n_lanes):
            st = machine.add_thread(
                f"t{i}", _Stepped(4.0 + (i % 13), 1_000.0),
                work_total=1e9, footprint_lines=200.0 * (i % 5),
            )
            machine.dispatch(i, st.tid)
        machine.advance_to(1.0)  # settle once: prime lanes and seg caches
        return machine

    iters = max(1, 20_000 // n_lanes)  # ~20k lane entry-builds per rep
    section = {"n_lanes": n_lanes, "iterations": iters, "best_of": reps}
    for mode, key in (
        ("newton", "scalar_us_per_1k_lanes"),
        ("vector", "soa_us_per_1k_lanes"),
    ):
        machine = build(mode)
        best = float("inf")
        for _ in range(reps):
            start = time.perf_counter()
            for _ in range(iters):
                machine._soa_sig = None  # defeat the solve-skip path:
                machine._lane_sig = None  # every lane rebuilds
                machine._dirty = True
                machine._ensure_solution()
            best = min(best, time.perf_counter() - start)
        section[key] = round(best / (iters * n_lanes) * 1e9, 2)
    section["soa_speedup"] = round(
        section["scalar_us_per_1k_lanes"] / section["soa_us_per_1k_lanes"], 2
    )
    return section


def _multicore_benchmark(n_cpus: int, inst: int, scale: float, seed: int,
                         jobs: int, cpu_count: int, affinity: int) -> dict:
    """``run_many`` speedup over replications of the scaled workload.

    Honest by construction: the speedup is only measured (and reported)
    when at least two CPUs are actually usable by this process *and*
    fork-based workers exist; otherwise the entry says exactly why it was
    skipped instead of timing oversubscription.
    """
    from repro.parallel import run_many

    quota = cgroup_cpu_quota()
    section = {
        "cpu_count": cpu_count,
        "affinity_cpus": affinity,
        "cgroup_cpu_quota": quota,
        "fork_available": fork_available(),
        "jobs": jobs,
    }
    quota_ok = quota is None or quota >= 2.0
    meaningful = affinity >= 2 and quota_ok and jobs > 1 and fork_available()
    if not meaningful:
        section["skipped"] = True
        quota_str = "none" if quota is None else f"{quota:.2f} cores"
        section["note"] = (
            f"cpu_count={cpu_count}, usable (affinity) CPUs={affinity}, "
            f"cgroup quota={quota_str}, jobs={jobs}, "
            f"fork={fork_available()}: a run_many speedup needs >=2 "
            "usable CPUs (affinity AND cgroup quota) and fork workers; "
            "timing parallel dispatch here would measure "
            "oversubscription, not speedup"
        )
        return section

    def grid():
        return [
            _scaled_spec("vector", True, n_cpus, inst, scale, seed + i)
            for i in range(jobs)
        ]

    t_serial, r_serial = _best_of(1, grid, lambda s: run_many(s, jobs=1))
    t_par, r_par = _best_of(1, grid, lambda s: run_many(s, jobs=jobs))
    assert r_par == r_serial, "run_many diverged from serial on scaled grid"
    section.update(
        {
            "skipped": False,
            "replications": jobs,
            "serial_wall_clock_s": round(t_serial, 4),
            "parallel_wall_clock_s": round(t_par, 4),
            "run_many_speedup": round(t_serial / t_par, 2),
            "bit_identical_serial_parallel": True,
        }
    )
    return section


def _assert_within_tolerance(reference, candidate, label: str) -> None:
    """Every finished turnaround must agree to solver tolerance."""
    for a, b in zip(reference, candidate):
        for ra, rb in zip(a.apps, b.apps):
            if ra.turnaround_us is not None:
                assert abs(ra.turnaround_us - rb.turnaround_us) <= max(
                    1e-6 * ra.turnaround_us, 1e-3
                ), f"{label} changed {ra.name} turnaround"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--set", dest="set_name", default="A", choices=["A", "B", "C"])
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--jobs", type=int, default=0, help="0 = all cores")
    parser.add_argument(
        "--apps", type=str, default="Barnes,SP,CG,Raytrace",
        help="comma-separated application subset",
    )
    parser.add_argument("--out", type=str, default="BENCH_fig2.json")
    parser.add_argument(
        "--vector-cpus", type=int, default=256,
        help="machine size for the scaled-up vectorized gate",
    )
    parser.add_argument(
        "--vector-inst", type=int, default=32,
        help="instances of each scaled app (targets = 4*inst)",
    )
    parser.add_argument(
        "--vector-scale", type=float, default=0.05,
        help="work scale for the vectorized gate workload",
    )
    parser.add_argument(
        "--best-of", type=int, default=2,
        help="timing repetitions per vectorized variant (best wins)",
    )
    parser.add_argument(
        "--skip-vector", action="store_true",
        help="skip the scaled-up vectorized section entirely",
    )
    args = parser.parse_args(argv)
    apps = [a.strip() for a in args.apps.split(",") if a.strip()]
    jobs = resolve_jobs(args.jobs)
    cpu_count = os.cpu_count() or 1
    affinity = usable_cpus()
    # On a 1-core (or fork-less, or affinity-restricted) box a timed
    # parallel run only measures oversubscription; still verify
    # bit-identity with 2 workers, but annotate the timing as meaningless.
    parallel_meaningful = affinity >= 2 and jobs > 1 and fork_available()
    parallel_jobs = jobs if parallel_meaningful else 2

    variants = {}
    base_results, variants["serial_cache_off"] = _run(
        args.set_name, _machine(cache=False), 1, args.scale, apps, args.seed
    )
    cached_results, variants["serial_cache_on"] = _run(
        args.set_name, _machine(cache=True), 1, args.scale, apps, args.seed
    )
    newton_results, variants["serial_newton_warm"] = _run(
        args.set_name, _machine(cache=True, solver="newton"), 1, args.scale,
        apps, args.seed,
    )
    parallel_results, variants["parallel_chunked"] = _run(
        args.set_name, _machine(cache=True), parallel_jobs, args.scale, apps,
        args.seed,
    )
    if not parallel_meaningful:
        variants["parallel_chunked"]["timing_meaningful"] = False
        variants["parallel_chunked"]["note"] = (
            f"cpu_count={cpu_count}, usable (affinity) CPUs={affinity}, "
            f"jobs={jobs}, fork={fork_available()}: ran with 2 workers for "
            "the bit-identity gate only; wall clock measures "
            "oversubscription, not speedup"
        )

    # Correctness gates: chunked parallel must be exactly serial; neither
    # the cache nor the newton solver may move any turnaround beyond
    # solver tolerance.
    assert parallel_results == cached_results, "parallel diverged from serial"
    _assert_within_tolerance(base_results, cached_results, "cache")
    _assert_within_tolerance(cached_results, newton_results, "newton solver")

    vector_section = None
    entry_build_section = None
    if not args.skip_vector:
        vector_section = _vector_benchmark(
            args.vector_cpus, args.vector_inst, args.vector_scale,
            args.seed, args.best_of,
        )
        entry_build_section = _entry_build_benchmark(args.vector_cpus)
    multicore_section = _multicore_benchmark(
        args.vector_cpus, args.vector_inst, args.vector_scale, args.seed,
        jobs, cpu_count, affinity,
    )

    base = variants["serial_cache_off"]
    cached = variants["serial_cache_on"]
    newton = variants["serial_newton_warm"]
    par = variants["parallel_chunked"]
    report = {
        "experiment": f"fig2{args.set_name}",
        "apps": apps,
        "work_scale": args.scale,
        "seed": args.seed,
        "jobs": jobs,
        "cpu_count": cpu_count,
        "affinity_cpus": affinity,
        "cgroup_cpu_quota": cgroup_cpu_quota(),
        "variants": variants,
        "vectorized": vector_section,
        "entry_build": entry_build_section,
        "multicore": multicore_section,
        "vector_speedup_vs_newton": (
            vector_section["speedup_vs_newton"] if vector_section else None
        ),
        "bisection_reduction_pct": round(
            100.0 * (1.0 - cached["solver_steps"] / base["solver_steps"]), 1
        )
        if base["solver_steps"]
        else 0.0,
        "newton_step_reduction_pct": round(
            100.0 * (1.0 - newton["solver_steps"] / cached["solver_steps"]), 1
        )
        if cached["solver_steps"]
        else 0.0,
        "cache_speedup_serial": round(
            base["wall_clock_s"] / cached["wall_clock_s"], 2
        ),
        "newton_speedup_vs_cached_serial": round(
            cached["wall_clock_s"] / newton["wall_clock_s"], 2
        ),
        "parallel_speedup_vs_cached_serial": round(
            cached["wall_clock_s"] / par["wall_clock_s"], 2
        )
        if parallel_meaningful
        else None,
        "total_speedup_vs_baseline": round(
            base["wall_clock_s"] / par["wall_clock_s"], 2
        )
        if parallel_meaningful
        else None,
        "bit_identical_serial_parallel": True,
        "newton_within_tolerance": True,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")

    print(f"[bench] wrote {args.out}", file=sys.stderr)
    print(json.dumps(report, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
