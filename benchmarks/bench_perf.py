"""PERF: serial-vs-parallel wall clock and bus-solver cache effectiveness.

A standalone script (not a pytest-benchmark module) that times ``run_fig2``
three ways and writes ``BENCH_fig2.json``:

1. **serial / cache off** — the pre-optimization baseline
   (``solve_cache_size=0``);
2. **serial / cache on** — the default solver cache;
3. **parallel / cache on** — the same grid through ``run_many(jobs=N)``.

Alongside wall-clock it records solver-work counters summed over every
simulation in the grid: ``solve`` invocations, memo-cache hits, and
bisection throughput evaluations — the cache's job is to make the last
number drop. The script asserts the three variants agree on the figure's
actual rows (cache-on must match cache-off to solver tolerance; parallel
must match serial *exactly*).

Usage::

    PYTHONPATH=src python benchmarks/bench_perf.py            # defaults
    PYTHONPATH=src python benchmarks/bench_perf.py --jobs 4 --scale 0.2
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.config import BusConfig, MachineConfig
from repro.parallel import resolve_jobs


def _machine(cache: bool) -> MachineConfig:
    bus = BusConfig() if cache else BusConfig(solve_cache_size=0)
    return MachineConfig(bus=bus)


def _run(set_name: str, machine: MachineConfig, jobs: int, scale: float,
         apps: list[str], seed: int):
    from repro.experiments.fig2 import (
        _background, _fresh_policy, default_policies, replace_scheduler,
    )
    from repro.config import ManagerConfig, LinuxSchedConfig
    from repro.experiments.base import SimulationSpec
    from repro.parallel import run_many
    from repro.workloads.suites import PAPER_APPS

    manager = ManagerConfig()
    specs = []
    for name in apps:
        app_spec = PAPER_APPS[name].scaled(scale)
        base = SimulationSpec(
            targets=[app_spec, app_spec],
            background=_background(set_name),
            scheduler="linux",
            machine=machine,
            manager=manager,
            linux=LinuxSchedConfig(),
            seed=seed,
        )
        specs.append(base)
        for template in default_policies(manager):
            specs.append(replace_scheduler(base, _fresh_policy(template)))
    start = time.perf_counter()
    results = run_many(specs, jobs=jobs)
    elapsed = time.perf_counter() - start
    stats = {
        "wall_clock_s": round(elapsed, 4),
        "simulations": len(results),
        "solve_calls": sum(r.bus_solve_calls for r in results),
        "cache_hits": sum(r.bus_cache_hits for r in results),
        "bisection_steps": sum(r.bus_bisection_steps for r in results),
    }
    stats["cache_hit_rate"] = (
        round(stats["cache_hits"] / stats["solve_calls"], 4)
        if stats["solve_calls"]
        else 0.0
    )
    return results, stats


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--set", dest="set_name", default="A", choices=["A", "B", "C"])
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--jobs", type=int, default=0, help="0 = all cores")
    parser.add_argument(
        "--apps", type=str, default="Barnes,SP,CG,Raytrace",
        help="comma-separated application subset",
    )
    parser.add_argument("--out", type=str, default="BENCH_fig2.json")
    args = parser.parse_args(argv)
    apps = [a.strip() for a in args.apps.split(",") if a.strip()]
    jobs = resolve_jobs(args.jobs)

    variants = {}
    base_results, variants["serial_cache_off"] = _run(
        args.set_name, _machine(cache=False), 1, args.scale, apps, args.seed
    )
    cached_results, variants["serial_cache_on"] = _run(
        args.set_name, _machine(cache=True), 1, args.scale, apps, args.seed
    )
    parallel_results, variants["parallel_cache_on"] = _run(
        args.set_name, _machine(cache=True), jobs, args.scale, apps, args.seed
    )

    # Correctness gates: parallel must be exactly serial; the cache must
    # not move any turnaround beyond solver tolerance.
    assert parallel_results == cached_results, "parallel diverged from serial"
    for a, b in zip(base_results, cached_results):
        for ra, rb in zip(a.apps, b.apps):
            if ra.turnaround_us is not None:
                assert abs(ra.turnaround_us - rb.turnaround_us) <= max(
                    1e-6 * ra.turnaround_us, 1e-3
                ), f"cache changed {ra.name} turnaround"

    base = variants["serial_cache_off"]
    cached = variants["serial_cache_on"]
    par = variants["parallel_cache_on"]
    report = {
        "experiment": f"fig2{args.set_name}",
        "apps": apps,
        "work_scale": args.scale,
        "seed": args.seed,
        "jobs": jobs,
        "cpu_count": os.cpu_count(),
        "variants": variants,
        "bisection_reduction_pct": round(
            100.0 * (1.0 - cached["bisection_steps"] / base["bisection_steps"]), 1
        )
        if base["bisection_steps"]
        else 0.0,
        "cache_speedup_serial": round(
            base["wall_clock_s"] / cached["wall_clock_s"], 2
        ),
        "parallel_speedup_vs_cached_serial": round(
            cached["wall_clock_s"] / par["wall_clock_s"], 2
        ),
        "total_speedup_vs_baseline": round(
            base["wall_clock_s"] / par["wall_clock_s"], 2
        ),
        "bit_identical_serial_parallel": True,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")

    print(f"[bench] wrote {args.out}", file=sys.stderr)
    print(json.dumps(report, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
