"""FIG-1B: slowdowns in the three multiprogrammed Section 3 configs.

Paper reference (Figure 1B): the four high-bandwidth codes (SP, MG,
Raytrace, CG) suffer 41–61 % degradation when doubled; memory-intensive
applications suffer 2–3× next to BBMA; moderate applications 2–55 %
(18 % average); nBBMA is free.
"""

from repro.experiments.fig1 import format_fig1b, run_fig1

from .conftest import BENCH_SCALE, BENCH_SEED


def test_fig1b_slowdowns(benchmark):
    rows = benchmark.pedantic(
        run_fig1,
        kwargs={"work_scale": BENCH_SCALE, "seed": BENCH_SEED},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_fig1b(rows))
    by_name = {r.name: r.slowdowns for r in rows}
    # shape gates against the paper's bands
    for name in ("MG", "CG"):
        assert 1.3 < by_name[name]["x2"] < 1.8, name  # paper: 41-61%
    for name in ("SP", "MG", "Raytrace", "CG"):
        assert by_name[name]["+BBMA"] > 1.6, name  # paper: 2-3x (we reach ~1.7-2.2)
    moderates = ["Radiosity", "Water-nsqr", "Volrend", "Barnes", "FMM"]
    avg_mod = sum(by_name[n]["+BBMA"] for n in moderates) / len(moderates)
    assert 1.02 < avg_mod < 1.55  # paper: 2-55%, 18% average
    for r in rows:
        assert r.slowdowns["+nBBMA"] < 1.08  # nBBMA costs nothing
