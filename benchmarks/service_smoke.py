"""SERVICE-SMOKE: end-to-end check of the ``repro serve`` HTTP service.

Boots the real CLI entry point (``python -m repro serve --port 0``) as a
subprocess, then drives the public HTTP API with stdlib ``urllib`` the
way an external client would:

1. ``GET /v1/healthz`` answers and reports a live dispatcher;
2. ``POST /v1/runs`` with a fig2-style spec is accepted (202) and polls
   through ``queued``/``running`` to ``done``;
3. the stored result decodes to a :class:`~repro.metrics.accounting.
   RunResult` that is **bit-identical** (dataclass equality) to a direct
   in-process :func:`~repro.experiments.base.run_simulation` of the same
   spec — the service adds transport, not physics;
4. resubmitting the identical spec is served from cache (200,
   ``cached_from`` set) with *zero* new simulation work — asserted via
   the stats counters (``executed_runs`` stays 1, ``cache.hits`` is 1);
5. ``GET /v1/stats`` exposes queue/dispatch/cache/store sections;
6. a malformed spec is rejected 400 with a path-annotated validation
   error (never enqueued);
7. SIGINT drains the server cleanly (exit code 0).

Run from the repo root (the CI ``service-smoke`` job does exactly this)::

    PYTHONPATH=src python benchmarks/service_smoke.py
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.experiments.base import run_simulation  # noqa: E402
from repro.service.schemas import result_from_dict, spec_from_dict  # noqa: E402

#: A fig2-style cell: one target app + one bandwidth-consuming
#: microbenchmark under the paper's latest-quantum policy, scaled down so
#: the smoke run takes seconds. (Same shape as repro.experiments.fig2.)
FIG2_SPEC = {
    "targets": [{"app": "CG", "work_scale": 0.02}],
    "background": [{"microbench": "BBMA"}],
    "scheduler": {"policy": "latest_quantum"},
    "max_time_us": 200_000,
}

MALFORMED_SPEC = {
    "targets": [{"app": "CG", "work_scale": 0.02}],
    "scheduler": {"policy": "no_such_policy"},
}


def request(base: str, method: str, path: str, body: dict | None = None):
    """One JSON request; returns (status, decoded body) without raising."""
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(
        base + path, data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def wait_terminal(base: str, run_id: str, timeout_s: float = 120.0) -> dict:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        status, record = request(base, "GET", f"/v1/runs/{run_id}")
        assert status == 200, (status, record)
        if record["status"] in ("done", "cached", "failed", "cancelled"):
            return record
        time.sleep(0.05)
    raise TimeoutError(f"run {run_id} not terminal after {timeout_s}s")


def start_server(results_dir: str) -> tuple[subprocess.Popen, str]:
    """Launch ``repro serve`` on an ephemeral port; returns (proc, base URL)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(os.getcwd(), "src"), env.get("PYTHONPATH")) if p
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--results-dir", results_dir],
        stderr=subprocess.PIPE, text=True, env=env,
    )
    # The CLI prints the bound address once the socket is up.
    deadline = time.monotonic() + 30.0
    line = ""
    while time.monotonic() < deadline:
        line = proc.stderr.readline()
        if not line and proc.poll() is not None:
            raise RuntimeError(f"server exited early (rc={proc.returncode})")
        match = re.search(r"listening on (http://\S+)", line)
        if match:
            return proc, match.group(1)
    raise TimeoutError(f"no startup line within 30s (last: {line!r})")


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-service-smoke-") as results_dir:
        proc, base = start_server(results_dir)
        print(f"[smoke] server up at {base}")
        try:
            status, health = request(base, "GET", "/v1/healthz")
            assert status == 200 and health["ok"] and health["dispatcher_running"], health
            print("[smoke] healthz OK")

            status, accepted = request(base, "POST", "/v1/runs", {"spec": FIG2_SPEC})
            assert status == 202 and accepted["status"] == "queued", (status, accepted)
            run_id = accepted["run_id"]
            record = wait_terminal(base, run_id)
            assert record["status"] == "done", record
            assert record["wall_time_s"] and record["wall_time_s"] > 0, record
            print(f"[smoke] run {run_id} done in {record['wall_time_s']:.3f}s")

            status, body = request(base, "GET", f"/v1/runs/{run_id}/result")
            assert status == 200, (status, body)
            served = result_from_dict(body["result"])
            direct = run_simulation(spec_from_dict(FIG2_SPEC))
            assert served == direct, "served result != direct in-process run"
            print("[smoke] result bit-identical to direct run_simulation")

            status, cached = request(base, "POST", "/v1/runs", {"spec": FIG2_SPEC})
            assert status == 200 and cached["cached"], (status, cached)
            assert cached["cached_from"] == run_id, cached
            status, body = request(base, "GET", f"/v1/runs/{cached['run_id']}/result")
            assert status == 200 and result_from_dict(body["result"]) == direct
            print(f"[smoke] resubmit served from cache ({cached['run_id']})")

            status, stats = request(base, "GET", "/v1/stats")
            assert status == 200, (status, stats)
            assert stats["dispatch"]["executed_runs"] == 1, stats  # no re-execution
            assert stats["cache"]["hits"] == 1 and stats["cache"]["lookups"] == 2, stats
            assert stats["store"] == {"cached": 1, "done": 1}, stats
            assert stats["queue"]["depth"] == 0 and stats["queue"]["capacity"] > 0, stats
            print("[smoke] stats: 1 executed, 1 cache hit, queue empty")

            status, err = request(base, "POST", "/v1/runs", {"spec": MALFORMED_SPEC})
            assert status == 400, (status, err)
            assert err["error"]["type"] == "validation", err
            assert err["error"]["path"].startswith("request.spec.scheduler"), err
            status, stats = request(base, "GET", "/v1/stats")
            assert stats["dispatch"]["rejected_invalid"] == 1, stats
            print(f"[smoke] malformed spec rejected 400 at {err['error']['path']}")
        finally:
            proc.send_signal(signal.SIGINT)
            try:
                proc.wait(timeout=60)
            except subprocess.TimeoutExpired:
                proc.kill()
                raise
        assert proc.returncode == 0, f"server exit code {proc.returncode}"
        print("[smoke] clean SIGINT drain, exit 0")
    print("SERVICE-SMOKE: all checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
