"""FIG-1A: cumulative bus transaction rates in the four Section 3 configs.

Paper reference (Figure 1A): solo rates 0.48 … 23.31 tx/µs in increasing
order; the +BBMA configurations run near saturation (the paper's workload
average is 28.34 tx/µs); +nBBMA configurations match the solo rates.
"""

from repro.experiments.fig1 import format_fig1a, run_fig1

from .conftest import BENCH_SCALE, BENCH_SEED


def test_fig1a_bus_transaction_rates(benchmark):
    rows = benchmark.pedantic(
        run_fig1,
        kwargs={"work_scale": BENCH_SCALE, "seed": BENCH_SEED},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_fig1a(rows))
    # shape gates
    solo = [r.rates_txus["solo"] for r in rows]
    assert solo == sorted(solo)  # figure order preserved
    assert 0.4 < solo[0] < 0.6  # Radiosity ~0.48
    assert 21.0 < solo[-1] < 24.0  # CG ~23.31
    for r in rows:
        assert abs(r.rates_txus["+BBMA"] - 29.5) < 1.5  # saturation plateau
        assert abs(r.rates_txus["+nBBMA"] - r.rates_txus["solo"]) < max(
            0.3, 0.12 * r.rates_txus["solo"]
        )
