"""EXT-SMT / EXT-IO / ABL-M / VALIDATION: the beyond-the-paper artefacts.

These regenerate the future-work experiments (hyperthreading, I/O-bound
servers, model-driven scheduling) and the automated claim-validation table.
"""

from repro.experiments.io import format_io_experiment, run_io_experiment
from repro.experiments.ablations import format_model_ablation, run_model_ablation
from repro.experiments.smt import format_smt_experiment, run_smt_experiment
from repro.experiments.validation import format_validation, run_validation

from .conftest import BENCH_SCALE, BENCH_SEED


def test_ext_smt_hyperthreading(benchmark):
    rows = benchmark.pedantic(
        run_smt_experiment,
        kwargs={"work_scale": BENCH_SCALE, "seed": BENCH_SEED},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_smt_experiment(rows))
    by_name = {r.name: r for r in rows}
    # bus-bound applications lose from enabling HT (permanent saturation);
    # the finding that motivated real sites to disable HT for such codes
    assert by_name["CG"].improvement_of_ht("window") < 0.0


def test_ext_io_servers(benchmark):
    rows = benchmark.pedantic(
        run_io_experiment,
        kwargs={"work_scale": BENCH_SCALE, "seed": BENCH_SEED},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_io_experiment(rows))
    for r in rows:
        assert r.io_waits > 0
        assert r.improvement("window") > -10.0  # policies remain competitive


def test_ablm_model_driven(benchmark):
    results = benchmark.pedantic(
        run_model_ablation,
        kwargs={"work_scale": 0.3, "seed": BENCH_SEED},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_model_ablation(results))
    # the optimizer's edge is on the saturated set
    a = results["A"]
    avg_model = sum(a["model-driven"].values()) / len(a["model-driven"])
    assert avg_model > 0.0


def test_ext_k_kernel_baselines(benchmark):
    from repro.experiments.kernels import format_kernel_experiment, run_kernel_experiment

    rows = benchmark.pedantic(
        run_kernel_experiment,
        kwargs={"work_scale": 0.3, "seed": BENCH_SEED},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_kernel_experiment(rows))
    by_name = {r.name: r for r in rows}
    # the policies' edge shrinks against the O(1) kernel but survives for
    # the most bus-bound application
    assert by_name["CG"].improvement("24") > by_name["CG"].improvement("26")
    assert by_name["CG"].improvement("26") > 0.0


def test_validation_claims(benchmark):
    results = benchmark.pedantic(
        run_validation,
        kwargs={"work_scale": BENCH_SCALE, "seed": BENCH_SEED},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_validation(results))
    assert not any(r.verdict == "MISS" for r in results)
