"""CHAOS-SMOKE: crash-recovery check of the ``repro serve`` service.

Boots the real CLI entry point as a subprocess and injures it the way
production does, asserting the durability contract end to end:

1. **Worker crash → quarantine.** With ``REPRO_CHAOS_KILL_SPEC`` armed in
   the server's environment, the worker process executing one poisoned
   spec SIGKILLs itself mid-run on every attempt. The supervised
   dispatcher must survive the broken pool, finish every sibling run in
   the same batch, and dead-letter the poisoned spec as ``quarantined``
   after **exactly** ``--max-attempts`` execution attempts, with the
   crash recorded in the run's ``error``.
2. **Service SIGKILL → restart recovery.** With runs queued and running,
   the service process itself is SIGKILLed (no drain, no cleanup) and
   restarted on the same ``--results-dir``. The restart's recovery pass
   must re-enqueue the orphaned rows and drive every one to a terminal
   state — no run lost, none duplicated, none stuck.
3. **The store survives.** After the restart, resubmitting a completed
   spec is still served from cache bit-identically, and resubmitting the
   formerly poisoned spec (chaos disarmed) executes cleanly — quarantine
   dead-letters the *run*, it does not poison the spec hash.

A deterministic trick makes the batch shapes reproducible: each phase
first submits one *slow* spec and waits until it reports ``running`` —
the dispatcher is then provably busy, so everything submitted next
accumulates in the queue and lands in a single multi-spec (parallel)
batch on the following cycle.

Run from the repo root (the CI ``chaos-smoke`` job does exactly this)::

    PYTHONPATH=src python benchmarks/chaos_smoke.py
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.experiments.base import run_simulation  # noqa: E402
from repro.service.schemas import result_from_dict, spec_from_dict  # noqa: E402

MAX_ATTEMPTS = 2

#: Quick fig2-style cell (~tens of ms): the bulk of the traffic.
def quick_spec(seed: int) -> dict:
    return {
        "targets": [{"app": "CG", "work_scale": 0.02}],
        "background": [{"microbench": "BBMA"}],
        "scheduler": {"policy": "latest_quantum"},
        "max_time_us": 200_000,
        "seed": seed,
    }


#: Slow cell (~1 s): parks the dispatcher so the next submissions queue up.
def slow_spec(seed: int) -> dict:
    return {
        "targets": [{"app": "CG", "work_scale": 20.0}],
        "background": [{"microbench": "BBMA"}],
        "scheduler": {"policy": "latest_quantum"},
        "max_time_us": 200_000_000,
        "seed": seed,
    }


#: The poisoned spec: perfectly valid — it "crashes" only because the
#: chaos hook SIGKILLs whichever worker executes its hash.
BAD_SPEC = quick_spec(999)

TERMINAL = ("done", "cached", "failed", "cancelled", "quarantined")


def request(base: str, method: str, path: str, body: dict | None = None):
    """One JSON request; returns (status, decoded body) without raising."""
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(
        base + path, data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def wait_status(base: str, run_id: str, want, timeout_s: float = 120.0) -> dict:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        status, record = request(base, "GET", f"/v1/runs/{run_id}")
        assert status == 200, (status, record)
        if record["status"] in want:
            return record
        if record["status"] in TERMINAL:  # terminal but not what we wanted
            raise AssertionError(f"run {run_id} ended {record['status']}: {record}")
        time.sleep(0.02)
    raise TimeoutError(f"run {run_id} not {want} after {timeout_s}s")


def wait_terminal(base: str, run_id: str, timeout_s: float = 120.0) -> dict:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        status, record = request(base, "GET", f"/v1/runs/{run_id}")
        assert status == 200, (status, record)
        if record["status"] in TERMINAL:
            return record
        time.sleep(0.02)
    raise TimeoutError(f"run {run_id} not terminal after {timeout_s}s")


def start_server(results_dir: str, chaos_env: dict | None = None):
    """Launch ``repro serve`` on an ephemeral port; returns (proc, base URL)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(os.getcwd(), "src"), env.get("PYTHONPATH")) if p
    )
    env.update(chaos_env or {})
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--results-dir", results_dir, "--jobs", "2",
         "--max-attempts", str(MAX_ATTEMPTS)],
        stderr=subprocess.PIPE, text=True, env=env,
    )
    deadline = time.monotonic() + 30.0
    line = ""
    while time.monotonic() < deadline:
        line = proc.stderr.readline()
        if not line and proc.poll() is not None:
            raise RuntimeError(f"server exited early (rc={proc.returncode})")
        match = re.search(r"listening on (http://\S+)", line)
        if match:
            return proc, match.group(1)
    raise TimeoutError(f"no startup line within 30s (last: {line!r})")


def submit(base: str, spec: dict) -> str:
    status, accepted = request(base, "POST", "/v1/runs", {"spec": spec})
    assert status == 202 and accepted["status"] == "queued", (status, accepted)
    return accepted["run_id"]


def main() -> int:
    bad_hash = spec_from_dict(BAD_SPEC).spec_hash()
    accepted: list[str] = []  # every run_id the service ever acknowledged

    with tempfile.TemporaryDirectory(prefix="repro-chaos-smoke-") as results_dir:
        # ---- Phase A: worker crashes mid-run, spec is quarantined -----
        proc, base = start_server(
            results_dir, chaos_env={"REPRO_CHAOS_KILL_SPEC": bad_hash}
        )
        print(f"[chaos] server up at {base} (kill armed for {bad_hash[:12]})")

        park = submit(base, slow_spec(seed=7))
        accepted.append(park)
        wait_status(base, park, ("running",))  # dispatcher is now busy
        goods = [submit(base, quick_spec(seed)) for seed in (1, 2)]
        bad = submit(base, BAD_SPEC)
        goods.append(submit(base, quick_spec(3)))
        accepted += goods + [bad]
        print(f"[chaos] batch queued behind the parked run: "
              f"{len(goods)} good + 1 poisoned")

        for run_id in [park] + goods:
            record = wait_terminal(base, run_id)
            assert record["status"] == "done", record
        bad_record = wait_terminal(base, bad)
        assert bad_record["status"] == "quarantined", bad_record
        assert bad_record["attempts"] == MAX_ATTEMPTS, bad_record
        assert bad_record["error"], bad_record
        assert proc.poll() is None, "service died with its worker"
        status, stats = request(base, "GET", "/v1/stats")
        assert status == 200 and stats["dispatch"]["quarantined_runs"] == 1, stats
        print(f"[chaos] worker SIGKILLed twice; siblings done, poisoned spec "
              f"quarantined after exactly {bad_record['attempts']} attempts")

        # ---- Phase B: SIGKILL the service itself mid-batch ------------
        park2 = submit(base, slow_spec(seed=8))
        accepted.append(park2)
        wait_status(base, park2, ("running",))  # orphan-to-be: running
        wave = [submit(base, quick_spec(seed)) for seed in (4, 5, 6)]
        accepted += wave  # orphans-to-be: queued
        proc.kill()  # SIGKILL: no drain, no marks, no cleanup
        proc.wait(timeout=30)
        print("[chaos] service SIGKILLed with 1 running + 3 queued runs")

        # ---- Restart on the same results dir: recovery ----------------
        proc, base = start_server(results_dir)  # chaos disarmed
        print(f"[chaos] restarted at {base}")
        status, stats = request(base, "GET", "/v1/stats")
        assert status == 200, (status, stats)
        assert stats["dispatch"]["recovered_requeued"] == 4, stats
        assert stats["dispatch"]["recovered_quarantined"] == 0, stats
        try:
            for run_id in wave:
                assert wait_terminal(base, run_id)["status"] == "done"
            park2_record = wait_terminal(base, park2)
            assert park2_record["status"] == "done", park2_record
            # The interrupted attempt still counts: 1 pre-kill + 1 rerun.
            assert park2_record["attempts"] == 2, park2_record
            print("[chaos] recovery re-enqueued all 4 orphans; all done")

            # Quarantine survived the restart untouched.
            record = wait_terminal(base, bad)
            assert record["status"] == "quarantined", record
            assert record["attempts"] == MAX_ATTEMPTS, record

            # No run lost, none duplicated, none invented.
            status, body = request(base, "GET", "/v1/runs?limit=100")
            assert status == 200, (status, body)
            listed = [r["run_id"] for r in body["runs"]]
            assert len(listed) == len(set(listed)), "duplicated run ids"
            assert set(listed) == set(accepted), (
                sorted(set(accepted) - set(listed)),  # lost
                sorted(set(listed) - set(accepted)),  # invented
            )
            assert all(r["status"] in TERMINAL for r in body["runs"]), body

            # Cache still serves across the crash, bit-identically.
            status, cached = request(base, "POST", "/v1/runs",
                                     {"spec": quick_spec(1)})
            assert status == 200 and cached["cached"], (status, cached)
            accepted.append(cached["run_id"])
            status, body = request(base, "GET",
                                   f"/v1/runs/{cached['run_id']}/result")
            assert status == 200, (status, body)
            direct = run_simulation(spec_from_dict(quick_spec(1)))
            assert result_from_dict(body["result"]) == direct
            print("[chaos] cache hit after restart, result bit-identical")

            # Quarantine dead-letters the run, not the spec hash: the
            # same spec resubmitted with chaos disarmed runs clean.
            retry = submit(base, BAD_SPEC)
            accepted.append(retry)
            assert wait_terminal(base, retry)["status"] == "done"
            print("[chaos] formerly poisoned spec reruns clean once disarmed")
        finally:
            proc.send_signal(signal.SIGINT)
            try:
                proc.wait(timeout=60)
            except subprocess.TimeoutExpired:
                proc.kill()
                raise
        assert proc.returncode == 0, f"server exit code {proc.returncode}"
        print("[chaos] clean SIGINT drain, exit 0")
    print("CHAOS-SMOKE: all checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
