"""Streaming-metrics benchmark: flat metric memory + sketch accuracy, gated.

Three gates, written to ``BENCH_streaming.json`` for the CI smoke job:

1. **Synthetic flat-memory gate** — feed a ``StreamingQueueingStats``
   accumulator directly at two sizes (default 20k and 400k observations)
   under ``tracemalloc`` and require that the live memory attributed to
   ``repro/metrics`` stays flat (bounded ratio and a small absolute cap):
   the accumulator really is O(1) in the number of jobs.
2. **Real-run flat-memory gate** — run the open-system simulation with
   ``record_jobs=False`` at two traced sizes (default 2k and 8k jobs;
   tracemalloc slows the simulator several-fold, so the traced pair is
   kept small) and compare the live allocations attributed to
   ``repro/metrics/streaming.py`` while the driver is still alive — the
   layer that replaced the O(n) ``JobRecord`` list. An untraced large
   run (default 100k jobs) must then complete every scheduled job and
   produce a usable streamed summary: the acceptance path behind
   ``repro dynamic --no-records`` at scale. (The whole-package filter is
   deliberately narrow: ``repro/metrics/accounting.py`` keeps per-app
   ledgers that are O(jobs) by design and predate streaming.)
3. **Accuracy gate** — from a records-enabled reference run, require the
   streamed mean to be bit-identical to the exact record-based mean and
   the P² p50/p95/p99 estimates to sit inside the documented
   ``P2_RANK_TOLERANCE`` rank envelope of the exact empirical quantiles.

Usage::

    PYTHONPATH=src python benchmarks/bench_streaming.py             # defaults
    PYTHONPATH=src python benchmarks/bench_streaming.py --large-n 100000
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time
import tracemalloc


def _metrics_live_bytes(pattern: str = "*repro/metrics/streaming.py") -> int:
    """Live traced allocations attributed to the streaming metric layer."""
    snapshot = tracemalloc.take_snapshot().filter_traces(
        [tracemalloc.Filter(True, pattern)]
    )
    return sum(stat.size for stat in snapshot.statistics("filename"))


def _synthetic_gate(small_n: int, large_n: int) -> dict:
    from repro.metrics.streaming import StreamingQueueingStats

    def feed(n: int) -> int:
        stream = StreamingQueueingStats(warmup_jobs=n // 10, tau_us=10_000.0)
        tracemalloc.start()
        try:
            for i in range(n):
                t = float(i) * 37.0
                stream.observe(
                    arrival_us=t,
                    admit_us=t + (i % 13) * 5.0,
                    completion_us=t + 100.0 + (i % 97) * 11.0,
                    nominal_service_us=50.0 + (i % 7) * 20.0,
                )
            return _metrics_live_bytes()
        finally:
            tracemalloc.stop()

    small = feed(small_n)
    large = feed(large_n)
    flat = large <= max(small * 1.25, small + 4096) and large < 64 * 1024
    return {
        "small_n": small_n,
        "large_n": large_n,
        "small_metric_bytes": small,
        "large_metric_bytes": large,
        "flat": flat,
    }


def _run_open_system(n_jobs: int, rate_per_s: float, scale: float, seed: int,
                     record_jobs: bool):
    from repro.dynamic import DynamicWorkload, PoissonArrivals, paper_mix
    from repro.experiments.base import SimulationSpec, run_simulation_with_handle

    workload = DynamicWorkload(
        arrivals=PoissonArrivals(rate_per_s=rate_per_s),
        mix=paper_mix(work_scale=scale),
        n_jobs=n_jobs,
        record_jobs=record_jobs,
    )
    # Size the horizon to the workload: n_jobs Poisson arrivals at
    # rate_per_s span ~n_jobs/rate seconds of simulated time; 2x slack
    # covers arrival variance plus queue drain after the last admit.
    horizon_us = max(600e6, 2.0 * n_jobs / rate_per_s * 1e6)
    spec = SimulationSpec(targets=[], scheduler="linux", dynamic=workload,
                          seed=seed, max_time_us=horizon_us)
    result, handle = run_simulation_with_handle(spec)
    return workload, result, handle


def _real_run_gate(traced_small_n: int, traced_mid_n: int, large_n: int,
                   rate_per_s: float, scale: float, seed: int) -> dict:
    from repro.metrics.queueing import summarize_queueing

    def traced(n: int) -> int:
        tracemalloc.start()
        try:
            _, _, handle = _run_open_system(
                n, rate_per_s, scale, seed, record_jobs=False
            )
            live = _metrics_live_bytes()  # driver + stream still alive here
        finally:
            tracemalloc.stop()
        del handle
        return live

    small_bytes = traced(traced_small_n)
    mid_bytes = traced(traced_mid_n)

    t0 = time.perf_counter()
    workload, result, _ = _run_open_system(
        large_n, rate_per_s, scale, seed, record_jobs=False
    )
    large_wall = time.perf_counter() - t0

    d = result.dynamic
    summary = summarize_queueing(
        d, warmup_jobs=workload.warmup_jobs(), tau_us=workload.slowdown_tau_us
    )
    flat = mid_bytes <= max(small_bytes * 1.25, small_bytes + 16 * 1024)
    return {
        "traced_small_n": traced_small_n,
        "traced_mid_n": traced_mid_n,
        "large_n": large_n,
        "rate_per_s": rate_per_s,
        "scale": scale,
        "small_metric_bytes": small_bytes,
        "mid_metric_bytes": mid_bytes,
        "large_wall_s": round(large_wall, 3),
        "flat": flat,
        "records_dropped": d.jobs == (),
        # With records off, the streamed counters are the source of truth.
        "all_completed": d.streaming.n_observed == large_n and d.dropped == 0,
        "streamed_mean_response_us": summary.mean_response_us,
        "streamed_p50_us": summary.response_p50_us,
        "streamed_p95_us": summary.response_p95_us,
        "streamed_p99_us": summary.response_p99_us,
        "quantiles_present": all(
            v is not None
            for v in (
                summary.response_p50_us,
                summary.response_p95_us,
                summary.response_p99_us,
            )
        ),
    }


def _accuracy_gate(n_jobs: int, rate_per_s: float, scale: float, seed: int) -> dict:
    from repro.metrics.queueing import summarize_queueing
    from repro.metrics.streaming import P2_RANK_TOLERANCE, exact_quantile

    workload, result, _ = _run_open_system(
        n_jobs, rate_per_s, scale, seed, record_jobs=True
    )
    d = result.dynamic
    kw = dict(warmup_jobs=workload.warmup_jobs(), tau_us=workload.slowdown_tau_us)
    exact = summarize_queueing(d, **kw)
    streamed = summarize_queueing(dataclasses.replace(d, jobs=()), **kw)

    done = sorted(
        (j for j in d.jobs if j.completion_us is not None),
        key=lambda j: (j.completion_us, j.index),
    )[workload.warmup_jobs():]
    responses = sorted(j.completion_us - j.arrival_us for j in done)

    quantiles = {}
    in_envelope = True
    for q, attr in [(0.5, "response_p50_us"), (0.95, "response_p95_us"),
                    (0.99, "response_p99_us")]:
        estimate = getattr(streamed, attr)
        lo = exact_quantile(responses, max(0.0, q - P2_RANK_TOLERANCE))
        hi = exact_quantile(responses, min(1.0, q + P2_RANK_TOLERANCE))
        ok = lo <= estimate <= hi
        in_envelope = in_envelope and ok
        quantiles[attr] = {
            "exact": getattr(exact, attr),
            "sketch": estimate,
            "envelope": [lo, hi],
            "within_envelope": ok,
        }

    return {
        "n_jobs": n_jobs,
        "mean_bit_identical": streamed.mean_response_us == exact.mean_response_us,
        "throughput_bit_identical": (
            streamed.throughput_jobs_per_s == exact.throughput_jobs_per_s
        ),
        "ci_present": streamed.response_ci_us is not None,
        "quantiles": quantiles,
        "quantiles_within_envelope": in_envelope,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--small-n", type=int, default=10_000,
                        help="jobs in the records-on accuracy reference run")
    parser.add_argument("--large-n", type=int, default=100_000,
                        help="jobs in the large records-off run")
    parser.add_argument("--traced-small-n", type=int, default=2_000,
                        help="jobs in the small tracemalloc-instrumented run")
    parser.add_argument("--traced-mid-n", type=int, default=8_000,
                        help="jobs in the larger tracemalloc-instrumented run")
    parser.add_argument("--synthetic-factor", type=int, default=4,
                        help="synthetic sizes are small-n*2 and large-n*factor")
    parser.add_argument("--rate", type=float, default=100.0, help="arrival rate (jobs/s)")
    parser.add_argument("--scale", type=float, default=0.002, help="application work scale")
    parser.add_argument("--seed", type=int, default=7, help="root random seed")
    parser.add_argument("--out", type=str, default="BENCH_streaming.json", help="report path")
    args = parser.parse_args(argv)

    synthetic = _synthetic_gate(args.small_n * 2, args.large_n * args.synthetic_factor)
    print(f"synthetic accumulator: {synthetic['small_metric_bytes']}B at "
          f"n={synthetic['small_n']}, {synthetic['large_metric_bytes']}B at "
          f"n={synthetic['large_n']} (flat={synthetic['flat']})")

    real = _real_run_gate(args.traced_small_n, args.traced_mid_n, args.large_n,
                          args.rate, args.scale, args.seed)
    print(f"records-off run: {real['large_n']} jobs in {real['large_wall_s']}s; "
          f"streaming-layer memory {real['small_metric_bytes']}B at "
          f"n={real['traced_small_n']} -> {real['mid_metric_bytes']}B at "
          f"n={real['traced_mid_n']} (flat={real['flat']})")

    accuracy = _accuracy_gate(args.small_n, args.rate, args.scale, args.seed)
    print(f"accuracy: mean bit-identical={accuracy['mean_bit_identical']}, "
          f"quantiles within envelope={accuracy['quantiles_within_envelope']}")

    report = {
        "synthetic": synthetic,
        "real_run": real,
        "accuracy": accuracy,
        "gates_ok": bool(
            synthetic["flat"]
            and real["flat"]
            and real["all_completed"]
            and real["records_dropped"]
            and real["quantiles_present"]
            and accuracy["mean_bit_identical"]
            and accuracy["quantiles_within_envelope"]
        ),
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
    print(f"report written to {args.out}; gates_ok={report['gates_ok']}")
    return 0 if report["gates_ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
