"""Supervision smoke benchmark: the fault-free tax, timed and gated.

A standalone script (like ``bench_faults.py``) that measures what worker
supervision costs an execution that never faults, and writes
``BENCH_supervision.json`` with:

* the wall-clock overhead of passing a ``SupervisionConfig`` to a
  fault-free **serial** ``run_many`` — gated at **< 2%** with the same
  median-of-paired-ratios method as ``bench_faults.py`` (supervision is
  inert on the serial path by design, so this gate pins that down);
* the fault-free **parallel** supervised/unsupervised ratio, reported but
  not gated (it measures the deadline-poll loop, and single-core CI boxes
  make parallel wall times too noisy to gate honestly);
* three bit-identity gates: supervised serial vs unsupervised serial,
  supervised parallel vs serial (fork permitting), and — the retry
  contract — a run whose worker is chaos-SIGKILLed on first attempt and
  succeeds on retry must equal the first-try serial result exactly.

The CI ``chaos-smoke`` job runs this and fails on any gate violation.

Usage::

    PYTHONPATH=src python benchmarks/bench_supervision.py            # defaults
    PYTHONPATH=src python benchmarks/bench_supervision.py --repeats 5
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

OVERHEAD_LIMIT_PCT = 2.0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.05, help="application work scale")
    parser.add_argument("--seed", type=int, default=42, help="root random seed")
    parser.add_argument(
        "--repeats",
        type=int,
        default=7,
        help="interleaved sample pairs (the median pair ratio is gated)",
    )
    parser.add_argument(
        "--specs",
        type=int,
        default=6,
        help="simulation specs per run_many call",
    )
    parser.add_argument(
        "--inner",
        type=int,
        default=20,
        help="run_many calls per timing sample (one call is too short to time)",
    )
    parser.add_argument("--out", type=str, default="BENCH_supervision.json", help="report path")
    args = parser.parse_args(argv)

    from repro.core.policies import QuantaWindowPolicy
    from repro.experiments.base import SimulationSpec
    from repro.parallel import SupervisionConfig, fork_available, run_many
    from repro.workloads.microbench import bbma_spec
    from repro.workloads.suites import PAPER_APPS

    app = PAPER_APPS["CG"].scaled(args.scale)
    specs = [
        SimulationSpec(
            targets=[app],
            background=[bbma_spec(), bbma_spec()],
            scheduler=QuantaWindowPolicy(),
            seed=args.seed + i,
        )
        for i in range(args.specs)
    ]
    sup = SupervisionConfig()

    def sample(supervise):
        t0 = time.perf_counter()
        for _ in range(args.inner):
            results = run_many(specs, jobs=1, supervise=supervise)
        return time.perf_counter() - t0, results

    # Warm both paths (imports, caches), then interleave the legs in
    # pairs: the per-pair ratio cancels slow drift on a shared box, and
    # the median of ratios kills outliers.
    sample(None)
    sample(sup)
    plain_samples, sup_samples, ratios = [], [], []
    plain = supervised = None
    for _ in range(args.repeats):
        sup_dt, supervised = sample(sup)
        plain_dt, plain = sample(None)
        sup_samples.append(sup_dt)
        plain_samples.append(plain_dt)
        ratios.append(sup_dt / plain_dt)
    ratios.sort()
    median_ratio = ratios[len(ratios) // 2]
    overhead_pct = 100.0 * (median_ratio - 1.0)

    report = {
        "scale": args.scale,
        "seed": args.seed,
        "repeats": args.repeats,
        "specs": args.specs,
        "inner": args.inner,
        "supervised_wall_s_best": round(min(sup_samples), 4),
        "plain_wall_s_best": round(min(plain_samples), 4),
        "pair_ratios": [round(r, 4) for r in ratios],
        "fault_free_serial_overhead_pct": round(overhead_pct, 3),
        "overhead_limit_pct": OVERHEAD_LIMIT_PCT,
        "bit_identical_serial": supervised == plain,
        "fork_available": fork_available(),
    }

    if fork_available():
        t0 = time.perf_counter()
        par_plain = run_many(specs, jobs=2, chunk_size=1)
        plain_par_dt = time.perf_counter() - t0
        t0 = time.perf_counter()
        par_sup = run_many(specs, jobs=2, chunk_size=1, supervise=sup)
        sup_par_dt = time.perf_counter() - t0
        report["bit_identical_parallel"] = par_sup == plain and par_plain == plain
        report["parallel_supervised_over_plain_ratio"] = round(
            sup_par_dt / plain_par_dt, 4
        )  # informational only: not gated

        # Retry contract: SIGKILL the worker executing spec 0 on its
        # first attempt (kill-once marker dir); the supervised retry must
        # reproduce the first-try serial result bit-for-bit.
        with tempfile.TemporaryDirectory(prefix="repro-chaos-once-") as once_dir:
            os.environ["REPRO_CHAOS_KILL_SPEC"] = specs[0].spec_hash()
            os.environ["REPRO_CHAOS_KILL_ONCE_DIR"] = once_dir
            try:
                retried = run_many(
                    specs,
                    jobs=2,
                    chunk_size=1,
                    supervise=SupervisionConfig(backoff_base_s=0.01, backoff_max_s=0.05),
                )
            finally:
                del os.environ["REPRO_CHAOS_KILL_SPEC"]
                del os.environ["REPRO_CHAOS_KILL_ONCE_DIR"]
        report["bit_identical_after_retry"] = retried == plain
    else:  # pragma: no cover - fork-less platform
        report["bit_identical_parallel"] = None
        report["parallel_supervised_over_plain_ratio"] = None
        report["bit_identical_after_retry"] = None

    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)

    print(
        f"fault-free serial supervision overhead: {overhead_pct:+.2f}% "
        f"(median of {args.repeats} paired ratios, "
        f"{args.inner}x{args.specs} runs per sample)"
    )
    if report["parallel_supervised_over_plain_ratio"] is not None:
        print(
            "parallel supervised/plain ratio: "
            f"{report['parallel_supervised_over_plain_ratio']:.3f} (not gated)"
        )
    print(f"wrote {args.out}", file=sys.stderr)

    ok = (
        overhead_pct < OVERHEAD_LIMIT_PCT
        and report["bit_identical_serial"]
        and report["bit_identical_parallel"] in (True, None)
        and report["bit_identical_after_retry"] in (True, None)
    )
    if not ok:
        print("GATE FAILURE: see report", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
