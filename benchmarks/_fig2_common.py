"""Shared runner for the Figure 2 benchmarks (one workload set each)."""

from __future__ import annotations

from repro.experiments.fig2 import Fig2Row, format_fig2, run_fig2

from .conftest import BENCH_SCALE, BENCH_SEED


def run_set(benchmark, set_name: str) -> list[Fig2Row]:
    """Benchmark one workload set at benchmark scale and print the figure."""
    rows = benchmark.pedantic(
        run_fig2,
        args=(set_name,),
        kwargs={"work_scale": BENCH_SCALE, "seed": BENCH_SEED},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_fig2(set_name, rows))
    return rows


def average_improvement(rows: list[Fig2Row], policy: str) -> float:
    """Mean improvement across applications for one policy."""
    return sum(r.improvement(policy) for r in rows) / len(rows)
