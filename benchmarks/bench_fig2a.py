"""FIG-2A: 2 apps + 4 BBMA — improvement over the Linux scheduler.

Paper reference (Figure 2A / Section 5): Latest Quantum improves average
turnaround by 4–68 % (41 % average); Quanta Window by 2–53 % (31 %
average). Every application benefits on the saturated bus.
"""

from ._fig2_common import average_improvement, run_set


def test_fig2a_saturated_bus(benchmark):
    rows = run_set(benchmark, "A")
    # shape gates: everyone improves, averages in the tens of percent
    for row in rows:
        for cell in row.cells:
            assert cell.improvement_percent > 0, (row.name, cell.policy)
    assert 15.0 < average_improvement(rows, "latest-quantum") < 60.0  # paper avg 41%
    assert 15.0 < average_improvement(rows, "quanta-window") < 55.0  # paper avg 31%
