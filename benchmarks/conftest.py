"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's artefacts (figure, table, or
calibration anchor) at a reduced work scale — rates, slowdown ratios and
improvement percentages are scale-invariant in this simulator, only
absolute turnaround times shrink. The reproduced rows are printed to stdout
(run with ``-s`` to see them) and the paper's reference values are shown
alongside where the paper states them.
"""

from __future__ import annotations

#: Work scale for benchmark runs. 0.1 → tens of milliseconds of simulated
#: work per thread; every qualitative shape survives (verified by the
#: integration tests, which run the same harness at several scales).
BENCH_SCALE: float = 0.1

#: Root seed for all benchmark runs.
BENCH_SEED: int = 42
