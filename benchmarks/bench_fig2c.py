"""FIG-2C: 2 apps + 2 BBMA + 2 nBBMA — improvement over Linux.

Paper reference (Figure 2C / Section 5): Latest Quantum up to 50 %, 26 %
average (LU the only regression, −7 %); Quanta Window up to 47 %, 25 %
average (Water-nsqr −2 %, LU −5 %).
"""

from ._fig2_common import average_improvement, run_set


def test_fig2c_mixed_environment(benchmark):
    rows = run_set(benchmark, "C")
    avg_latest = average_improvement(rows, "latest-quantum")
    avg_window = average_improvement(rows, "quanta-window")
    # paper: both policies average ~25-26% in the mixed set
    assert 12.0 < avg_latest < 45.0
    assert 12.0 < avg_window < 45.0
    # regressions, if any, stay small (paper's worst: -7%)
    for row in rows:
        for cell in row.cells:
            assert cell.improvement_percent > -12.0, (row.name, cell.policy)
