"""Simulator micro-benchmarks: the costs underlying every experiment.

Not a paper artefact — these measure the reproduction's own machinery (bus
equilibrium solve, event engine throughput, one full managed simulation) so
regressions in simulator performance are caught alongside result shapes.
"""

import numpy as np

from repro.config import BusConfig, MachineConfig
from repro.core.policies import QuantaWindowPolicy
from repro.experiments.base import SimulationSpec, run_simulation
from repro.hw.bus import BusModel, BusRequest
from repro.sim.engine import Engine
from repro.workloads.microbench import bbma_spec
from repro.workloads.suites import paper_app


def test_bus_solver_saturated(benchmark):
    bus = BusModel(BusConfig())
    reqs = [bus.request_for_rate(r) for r in (11.6, 11.6, 7.0, 2.0)] + [
        BusRequest(23.6, 1.0)
    ] * 2
    sol = benchmark(bus.solve, reqs)
    assert sol.saturated


def test_bus_solver_unsaturated(benchmark):
    bus = BusModel(BusConfig())
    reqs = [bus.request_for_rate(r) for r in (1.0, 2.0, 3.0, 0.5)]
    sol = benchmark(bus.solve, reqs)
    assert not sol.saturated


def test_engine_event_throughput(benchmark):
    def run_10k_events():
        eng = Engine()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 10_000:
                eng.schedule_after(1.0, tick)

        eng.schedule_after(1.0, tick)
        eng.run()
        return count[0]

    assert benchmark(run_10k_events) == 10_000


def test_full_managed_simulation(benchmark):
    """One complete CPU-manager run (the unit of every Figure 2 cell)."""

    def run():
        cg = paper_app("CG").scaled(0.05)
        spec = SimulationSpec(
            targets=[cg, cg],
            background=[bbma_spec()] * 4,
            scheduler=QuantaWindowPolicy(),
            machine=MachineConfig(),
            seed=3,
            trace=False,
        )
        return run_simulation(spec).mean_target_turnaround_us()

    assert benchmark(run) > 0
