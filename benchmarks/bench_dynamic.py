"""DYN smoke benchmark: the open-system sweep, timed and gated.

A standalone script (like ``bench_perf.py``) that runs the
arrival-rate × policy sweep of ``repro.experiments.dynamic`` at a reduced
work scale and writes ``BENCH_dynamic.json`` with:

* wall-clock per sweep and per simulated job;
* completion counts (every scheduled job must finish — an open-system
  deadlock under churn would show up here first);
* the starvation watchdog verdict at every operating point (the paper's
  head-first rotation guarantee, now asserted under connect/disconnect
  churn instead of a static job set);
* a serial-vs-parallel bit-identity gate over the full sweep, including
  the per-job queueing records.

The CI benchmark smoke job runs this at a small scale and fails on any
gate violation.

Usage::

    PYTHONPATH=src python benchmarks/bench_dynamic.py             # defaults
    PYTHONPATH=src python benchmarks/bench_dynamic.py --scale 0.05 --jobs 2
"""

from __future__ import annotations

import argparse
import json
import sys
import time


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.1, help="application work scale")
    parser.add_argument("--seed", type=int, default=7, help="root random seed")
    parser.add_argument("--jobs", type=int, default=2, help="worker processes for the parallel leg")
    parser.add_argument("--num-jobs", type=int, default=8, help="jobs per dynamic run")
    parser.add_argument("--rates", type=str, default="1.0,2.0,4.0", help="arrival-rate sweep")
    parser.add_argument("--out", type=str, default="BENCH_dynamic.json", help="report path")
    args = parser.parse_args(argv)

    from repro.experiments.dynamic import format_dynamic, run_dynamic_sweep

    rates = [float(r) for r in args.rates.split(",") if r.strip()]
    kw = dict(
        rates_per_s=rates,
        n_jobs=args.num_jobs,
        replications=1,
        seed=args.seed,
        work_scale=args.scale,
    )

    t0 = time.perf_counter()
    serial = run_dynamic_sweep(jobs=1, **kw)
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = run_dynamic_sweep(jobs=args.jobs, **kw)
    parallel_s = time.perf_counter() - t0

    total_completed = sum(s.n_completed for row in serial for s in row.summaries)
    total_scheduled = sum(s.n_jobs for row in serial for s in row.summaries)
    report = {
        "scale": args.scale,
        "seed": args.seed,
        "rates_per_s": rates,
        "policies": [row.policy for row in serial],
        "serial_wall_s": round(serial_s, 3),
        "parallel_wall_s": round(parallel_s, 3),
        "parallel_jobs": args.jobs,
        "total_jobs_scheduled": total_scheduled,
        "total_jobs_completed": total_completed,
        "total_drops": sum(s.n_dropped for row in serial for s in row.summaries),
        "max_starvation_age_us": max(r.max_starvation_age_us for r in serial),
        "starvation_bound_us": max(r.starvation_bound_us for r in serial),
        "starvation_ok_everywhere": all(r.starvation_ok for r in serial),
        "bit_identical_serial_parallel": serial == parallel,
        "rows": [
            {
                "policy": r.policy,
                "rate_per_s": r.rate_per_s,
                "mean_response_us": r.mean_response_us,
                "mean_slowdown": r.mean_slowdown,
                "throughput_jobs_per_s": r.throughput_jobs_per_s,
                "saturated_fraction": r.saturated_fraction,
                "max_starvation_age_us": r.max_starvation_age_us,
                "starvation_ok": r.starvation_ok,
            }
            for r in serial
        ],
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)

    print(format_dynamic(serial))
    print(f"\nserial {serial_s:.2f}s, parallel({args.jobs}) {parallel_s:.2f}s", file=sys.stderr)
    print(f"wrote {args.out}", file=sys.stderr)

    ok = (
        report["total_jobs_completed"] == report["total_jobs_scheduled"] - report["total_drops"]
        and report["total_jobs_completed"] > 0
        and report["starvation_ok_everywhere"]
        and report["bit_identical_serial_parallel"]
    )
    if not ok:
        print("GATE FAILURE: see report", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
