#!/usr/bin/env python3
"""Quickstart: schedule a bandwidth-hungry workload three ways.

Builds the paper's headline scenario — two instances of CG (the most
bus-demanding NAS code) competing with four streaming microbenchmarks on a
4-way Xeon SMP — and runs it under:

1. the stock Linux 2.4-like scheduler (the paper's baseline),
2. the Latest Quantum policy,
3. the Quanta Window policy,

then prints turnaround times and the improvement the paper's Figure 2A
reports. Runs in about a second.

Usage::

    python examples/quickstart.py [--scale 0.25] [--seed 42]
"""

import argparse

from repro import LatestQuantumPolicy, QuantaWindowPolicy, SimulationSpec, solo_run
from repro.experiments.base import run_simulation_with_handle
from repro.metrics.gantt import render_gantt
from repro.metrics.stats import improvement_percent, slowdown
from repro.workloads import bbma_spec, paper_app


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.25, help="work scale (1.0 = paper size)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--app", type=str, default="CG", help="target application name")
    args = parser.parse_args()

    app = paper_app(args.app).scaled(args.scale)
    background = [bbma_spec()] * 4

    solo = solo_run(app, seed=args.seed)
    solo_t = solo.mean_target_turnaround_us()
    print(f"solo {args.app}: {solo_t / 1e3:.0f} ms "
          f"({solo.workload_rate_txus:.1f} bus transactions/us)")
    print()

    results = {}
    charts = {}
    for label, scheduler in [
        ("linux", "linux"),
        ("latest-quantum", LatestQuantumPolicy()),
        ("quanta-window", QuantaWindowPolicy()),
    ]:
        spec = SimulationSpec(
            targets=[app, app],
            background=background,
            scheduler=scheduler,
            seed=args.seed,
        )
        results[label], handle = run_simulation_with_handle(spec)
        charts[label] = render_gantt(handle.machine, width=64)

    linux_t = results["linux"].mean_target_turnaround_us()
    print(f"{'scheduler':16s} {'turnaround':>12s} {'slowdown':>9s} {'vs linux':>9s}")
    for label, result in results.items():
        t = result.mean_target_turnaround_us()
        imp = improvement_percent(linux_t, t)
        print(
            f"{label:16s} {t / 1e3:9.0f} ms {slowdown(t, solo_t):8.2f}x {imp:+8.1f}%"
        )
    print()
    for label in ("linux", "quanta-window"):
        print(f"--- CPU occupancy under {label} ---")
        print(charts[label])
        print()
    print("The policies co-schedule jobs whose per-thread bandwidth matches the")
    print("remaining per-processor bus budget (Equation 1): the Gantt charts")
    print("show Linux's thread soup vs the manager's clean gang quanta.")


if __name__ == "__main__":
    main()
