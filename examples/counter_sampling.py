#!/usr/bin/env python3
"""Reading performance counters the way the paper's runtime does.

Demonstrates the low-level monitoring stack: open a ``perfctr``-style
virtual counter per thread, sample twice per 200 ms quantum while a bursty
application runs next to a streaming antagonist, and print the live
per-thread bandwidth trace — the exact signal the CPU manager's policies
consume from the shared arena.

Usage::

    python examples/counter_sampling.py
"""

from repro import Engine, Machine, MachineConfig
from repro.hw.perfctr import PerfctrDriver
from repro.sim.events import EventPriority
from repro.workloads import bbma_spec, paper_app
from repro.workloads.base import Application
from repro.rng import RngRegistry


def main() -> None:
    engine = Engine()
    machine = Machine(MachineConfig(), engine)
    rng = RngRegistry(seed=7)

    raytrace = Application.launch(paper_app("Raytrace").scaled(0.15), machine, rng.stream("rt"))
    bbma = Application.launch(bbma_spec(), machine, rng.stream("bbma"))

    # pin: Raytrace on CPUs 0-1, BBMA on CPU 2 (CPU 3 idle)
    machine.dispatch(0, raytrace.tids[0])
    machine.dispatch(1, raytrace.tids[1])
    machine.dispatch(2, bbma.tids[0])

    driver = PerfctrDriver(machine.counters)
    handles = {tid: driver.open(tid) for tid in raytrace.tids + bbma.tids}
    previous = {tid: h.read() for tid, h in handles.items()}

    sample_period = 100_000.0  # twice per 200 ms quantum, as in the paper
    print(f"{'t (ms)':>7s}" + "".join(f"{name:>14s}" for name in
          ["raytrace.t0", "raytrace.t1", "bbma", "bus util"]))

    def sample() -> None:
        nonlocal previous
        row = f"{engine.now / 1e3:7.0f}"
        for tid in raytrace.tids + bbma.tids:
            now_reading = handles[tid].read()
            prev = previous[tid]
            dt = now_reading.tsc_us - prev.tsc_us
            rate = (now_reading.bus_transactions - prev.bus_transactions) / dt if dt > 0 else 0.0
            previous[tid] = now_reading
            row += f"{rate:11.2f} tx"
        row += f"{machine.bus_utilisation:13.0%}"
        print(row)
        if not raytrace.finished:
            engine.schedule_after(sample_period, sample, priority=EventPriority.SAMPLE)

    engine.schedule_after(sample_period, sample, priority=EventPriority.SAMPLE)
    engine.run(advancer=machine, stop=lambda: raytrace.finished, max_time=1e9)

    total = machine.counters.read_many(raytrace.tids)
    print()
    print(f"Raytrace finished at {engine.now / 1e3:.0f} ms; issued "
          f"{total.bus_transactions / 1e3:.0f}k bus transactions over "
          f"{total.cycles_us / 1e3:.0f} ms of CPU time "
          f"({total.bus_transactions / total.cycles_us:.2f} tx/us). ")
    print("The per-sample rates above alternate with Raytrace's burst phases —")
    print("exactly the irregularity that misleads the Latest Quantum policy and")
    print("motivates the paper's 5-sample Quanta Window.")


if __name__ == "__main__":
    main()
