#!/usr/bin/env python3
"""Server consolidation: the paper's future-work scenario.

The paper closes with: "We plan to test our scheduler with I/O and
network-intensive workloads which stress the bus bandwidth, using
scientific applications, web and database servers." This example builds
that mix on the public API:

* a **database scan** service — long streaming phases (table scans) broken
  by index-lookup phases: heavy, phased bus demand;
* a **web server** — short bursts of request processing over a hot cache:
  low demand with spikes;
* a **log analytics** batch job — steady moderate streaming;
* an **in-memory cache** service — nBBMA-like, nearly bus-silent.

Two of each are consolidated onto one 4-way SMP and scheduled with the
Linux baseline, Quanta Window, and the EWMA extension the paper suggests
for wider windows. Per-service turnarounds show who wins where.

Usage::

    python examples/server_consolidation.py [--seed 42]
"""

import argparse

from repro import EwmaPolicy, QuantaWindowPolicy, SimulationSpec, run_simulation
from repro.metrics.stats import improvement_percent
from repro.workloads import (
    ApplicationSpec,
    ConstantPattern,
    MarkovBurstPattern,
    PhasedPattern,
)


def services(work_scale: float) -> list[ApplicationSpec]:
    """The consolidated service mix (two-thread services, one-thread jobs)."""
    db_scan = ApplicationSpec(
        name="db-scan",
        n_threads=2,
        work_per_thread_us=450_000.0 * work_scale,
        pattern=PhasedPattern(((40_000.0, 11.0), (25_000.0, 2.5))),  # scan / index
        footprint_lines=8192.0,
    )
    web = ApplicationSpec(
        name="web",
        n_threads=2,
        work_per_thread_us=350_000.0 * work_scale,
        pattern=MarkovBurstPattern(
            low_rate_txus=0.8,
            high_rate_txus=7.0,
            mean_low_work_us=30_000.0,
            mean_high_work_us=12_000.0,
        ),
        footprint_lines=1536.0,
        migration_sensitivity=1.5,  # hot request cache
    )
    analytics = ApplicationSpec(
        name="analytics",
        n_threads=1,
        work_per_thread_us=500_000.0 * work_scale,
        pattern=ConstantPattern(9.0),
        footprint_lines=8192.0,
    )
    memcache = ApplicationSpec(
        name="memcache",
        n_threads=1,
        work_per_thread_us=400_000.0 * work_scale,
        pattern=ConstantPattern(0.05),
        footprint_lines=1024.0,
    )
    return [db_scan, web, analytics, memcache]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--scale", type=float, default=1.0)
    args = parser.parse_args()

    mix = services(args.scale)
    targets = [spec for spec in mix for _ in range(2)]  # two instances each

    outcomes: dict[str, dict[str, float]] = {}
    for label, scheduler in [
        ("linux", "linux"),
        ("quanta-window", QuantaWindowPolicy()),
        ("ewma", EwmaPolicy(alpha=1 / 3)),
    ]:
        result = run_simulation(
            SimulationSpec(targets=targets, scheduler=scheduler, seed=args.seed)
        )
        per_service: dict[str, list[float]] = {}
        for app in result.apps:
            per_service.setdefault(app.name, []).append(app.turnaround_us)
        outcomes[label] = {
            name: sum(ts) / len(ts) for name, ts in per_service.items()
        }

    names = [spec.name for spec in mix]
    print("consolidated mix: 2x db-scan + 2x web + 2x analytics + 2x memcache")
    print(f"{'service':12s}" + "".join(f"{label:>16s}" for label in outcomes))
    for name in names:
        row = f"{name:12s}"
        for label in outcomes:
            row += f"{outcomes[label][name] / 1e3:13.0f} ms"
        print(row)
    print()
    for label in ("quanta-window", "ewma"):
        imps = [
            improvement_percent(outcomes["linux"][n], outcomes[label][n]) for n in names
        ]
        print(f"{label}: mean improvement over linux {sum(imps) / len(imps):+.1f}% "
              f"(per service: " + ", ".join(f"{n} {i:+.0f}%" for n, i in zip(names, imps)) + ")")
    print()
    print("Reading the result: bandwidth-aware gang scheduling speeds up the")
    print("bus-hungry services (db-scan, analytics) by pairing them with quiet")
    print("partners, but the quiet services themselves (memcache, web) lose CPU")
    print("share relative to Linux's thread-level fairness — gang quanta are")
    print("allocated per *job*, not per thread. Consolidation with mixed SLOs")
    print("therefore needs demand-weighted quanta, which is exactly the kind of")
    print("policy extension BandwidthPolicy subclassing supports.")


if __name__ == "__main__":
    main()
