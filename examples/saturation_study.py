#!/usr/bin/env python3
"""Section-3-style saturation study for a custom application.

Sweeps the per-thread bus demand of a synthetic two-thread application and
measures, for each demand level, the slowdown it suffers when (a) doubled
and (b) run next to two streaming BBMA microbenchmarks — reproducing the
analysis behind the paper's Figure 1 for *your* application instead of the
NAS/Splash-2 codes. Prints a table plus ASCII bars of the slowdown curve
and marks the saturation knee.

Usage::

    python examples/saturation_study.py [--points 8] [--work 150000]
"""

import argparse

from repro import SimulationSpec, run_simulation, solo_run
from repro.experiments.reporting import bar
from repro.workloads import ApplicationSpec, ConstantPattern, bbma_spec


def build_app(rate_per_thread: float, work_us: float) -> ApplicationSpec:
    """A two-thread application with a flat demand profile."""
    return ApplicationSpec(
        name=f"synthetic@{rate_per_thread:.1f}",
        n_threads=2,
        work_per_thread_us=work_us,
        pattern=ConstantPattern(rate_per_thread),
        footprint_lines=4096.0,
    )


def measure(app: ApplicationSpec, seed: int) -> tuple[float, float, float]:
    """Return (solo, doubled, +BBMA) turnaround times."""
    solo = solo_run(app, seed=seed).mean_target_turnaround_us()
    doubled = run_simulation(
        SimulationSpec(targets=[app, app], scheduler="dedicated", seed=seed, trace=False)
    ).mean_target_turnaround_us()
    with_bbma = run_simulation(
        SimulationSpec(
            targets=[app],
            background=[bbma_spec(), bbma_spec()],
            scheduler="dedicated",
            seed=seed,
            trace=False,
        )
    ).mean_target_turnaround_us()
    return solo, doubled, with_bbma


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--points", type=int, default=8, help="demand levels to sweep")
    parser.add_argument("--work", type=float, default=150_000.0, help="work per thread (us)")
    parser.add_argument("--max-rate", type=float, default=12.0, help="max per-thread tx/us")
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    print(f"{'tx/us/thr':>9s} {'x2 slowdown':>12s} {'+BBMA slowdown':>15s}   x2 profile")
    knee = None
    for i in range(1, args.points + 1):
        rate = args.max_rate * i / args.points
        app = build_app(rate, args.work)
        solo, doubled, with_bbma = measure(app, args.seed)
        s2 = doubled / solo
        sb = with_bbma / solo
        if knee is None and s2 > 1.10:
            knee = rate
        print(f"{rate:9.2f} {s2:11.2f}x {sb:14.2f}x   |{bar(s2 - 1.0, 1.2, width=30)}|")

    print()
    if knee is not None:
        print(f"saturation knee: doubling the application starts to hurt at "
              f"~{knee:.1f} tx/us per thread ({4 * knee:.1f} tx/us offered by 4 threads; "
              f"the bus sustains 29.5).")
    else:
        print("no saturation observed in the swept range — raise --max-rate.")
    print("Next to two BBMA streams, even low-demand levels pay the latency tax")
    print("of a saturated bus; memory-bound levels approach the paper's 2-3x.")


if __name__ == "__main__":
    main()
