#!/usr/bin/env python3
"""Writing a custom scheduling policy against the public API.

Implements **HysteresisPolicy**, a variant the paper does not evaluate: it
uses the Quanta Window estimator but only *changes* its mind when the new
estimate differs from the one it last acted on by more than a configurable
fraction — trading a little bandwidth-matching accuracy for fewer gang
switches (and therefore fewer cache-state rebuilds).

The example then compares it against the two paper policies and the Linux
baseline on the mixed workload (set C) and prints turnarounds plus the
number of kernel context switches each scheduler caused.

Usage::

    python examples/custom_policy.py [--scale 0.25]
"""

import argparse

from repro import LatestQuantumPolicy, QuantaWindowPolicy, SimulationSpec
from repro.core.policies import QuantaWindowPolicy as _Window
from repro.experiments.base import run_simulation_with_handle
from repro.metrics.stats import improvement_percent
from repro.workloads import bbma_spec, nbbma_spec, paper_app


class HysteresisPolicy(_Window):
    """Quanta Window + estimate hysteresis.

    The estimate reported to the selection algorithm moves only when the
    underlying window average drifts more than ``deadband`` (relative) from
    the estimate last used — suppressing gratuitous selection churn caused
    by small measurement noise.
    """

    name = "hysteresis"

    def __init__(self, deadband: float = 0.25, **kwargs) -> None:
        super().__init__(**kwargs)
        if not 0.0 <= deadband < 1.0:
            raise ValueError("deadband must be in [0, 1)")
        self.deadband = deadband
        self._acted: dict[int, float] = {}

    def estimate(self, app_id: int) -> float | None:
        fresh = super().estimate(app_id)
        if fresh is None:
            return None
        held = self._acted.get(app_id)
        if held is None or abs(fresh - held) > self.deadband * max(held, 1e-9):
            self._acted[app_id] = fresh
            return fresh
        return held

    def forget(self, app_id: int) -> None:
        super().forget(app_id)
        self._acted.pop(app_id, None)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--app", type=str, default="Raytrace")
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    app = paper_app(args.app).scaled(args.scale)
    background = [bbma_spec(), bbma_spec(), nbbma_spec(), nbbma_spec()]

    rows = []
    linux_t = None
    for label, scheduler in [
        ("linux", "linux"),
        ("latest-quantum", LatestQuantumPolicy()),
        ("quanta-window", QuantaWindowPolicy()),
        ("hysteresis", HysteresisPolicy(deadband=0.25)),
    ]:
        spec = SimulationSpec(
            targets=[app, app], background=background, scheduler=scheduler, seed=args.seed
        )
        result, handle = run_simulation_with_handle(spec)
        t = result.mean_target_turnaround_us()
        if label == "linux":
            linux_t = t
        rows.append((label, t, result.context_switches, result.migrations))

    print(f"workload: 2x {args.app} + 2x BBMA + 2x nBBMA (set C), scale {args.scale}")
    print()
    print(f"{'policy':16s} {'turnaround':>12s} {'vs linux':>9s} {'switches':>9s} {'migrations':>11s}")
    for label, t, switches, migrations in rows:
        imp = improvement_percent(linux_t, t)
        print(f"{label:16s} {t / 1e3:9.0f} ms {imp:+8.1f}% {switches:9d} {migrations:11d}")
    print()
    print("HysteresisPolicy plugs straight into the CPU manager: subclass a")
    print("policy, override estimate()/forget(), and pass the instance as the")
    print("SimulationSpec scheduler. Nothing else in the stack changes.")


if __name__ == "__main__":
    main()
