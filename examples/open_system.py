#!/usr/bin/env python3
"""Open-system scheduling: jobs arriving at a running CPU manager.

The paper's CPU manager is a *server*: applications connect whenever they
start ("Each application that wishes to use the new scheduling policies
sends a 'connection' message to the CPU manager"). The figure experiments
start everything at t=0; this example exercises the open-system mode — a
batch queue submitting jobs over time, some characterized by a recorded
counter trace (:class:`repro.workloads.TracePattern`).

Timeline: a long CG runs from t=0 next to two nBBMA services; Barnes
arrives at 0.3 s, a trace-characterized job at 0.6 s, and a second CG at
1.0 s. The Quanta Window manager connects each on arrival and keeps
matching gangs to the bus budget.

Usage::

    python examples/open_system.py
"""

from repro import QuantaWindowPolicy, SimulationSpec
from repro.experiments.base import run_simulation_with_handle
from repro.workloads import ApplicationSpec, TracePattern, nbbma_spec, paper_app


def traced_job() -> ApplicationSpec:
    """A job characterized from recorded counter samples.

    In a real deployment these pairs would come from a pilot run's
    performance counters (runtime_us, cumulative transactions); here we
    fabricate a ramp-up profile.
    """
    samples = [(0.0, 0.0)]
    runtime, tx = 0.0, 0.0
    for i in range(10):
        runtime += 40_000.0
        tx += 40_000.0 * (1.0 + i)  # demand ramps 1 -> 10 tx/us
        samples.append((runtime, tx))
    return ApplicationSpec(
        name="traced",
        n_threads=2,
        work_per_thread_us=400_000.0,
        pattern=TracePattern.from_counter_samples(samples),
        footprint_lines=4096.0,
    )


def main() -> None:
    spec = SimulationSpec(
        targets=[paper_app("CG").scaled(0.5)],
        background=[nbbma_spec(), nbbma_spec()],
        arrivals=[
            (300_000.0, paper_app("Barnes").scaled(0.25)),
            (600_000.0, traced_job()),
            (1_000_000.0, paper_app("CG").scaled(0.25)),
        ],
        scheduler=QuantaWindowPolicy(),
        seed=11,
    )
    result, handle = run_simulation_with_handle(spec)

    print("open-system run under the Quanta Window CPU manager")
    print(f"{'job':12s} {'arrived':>9s} {'finished':>9s} {'resident':>9s}")
    for app in handle.target_apps:
        arrived = min(t.created_at for t in app.threads)
        finished = app.turnaround_us
        print(
            f"{app.name:12s} {arrived / 1e3:7.0f}ms {finished / 1e3:7.0f}ms "
            f"{(finished - arrived) / 1e3:7.0f}ms"
        )
    print()
    quanta = handle.manager.quanta
    print(f"manager processed {quanta} quanta; "
          f"{handle.machine.trace.count('workload.arrival')} jobs connected mid-run; "
          f"{handle.manager.signals.signals_sent} block/unblock signals sent.")
    print("Each arrival went through the paper's connection protocol: a shared")
    print("arena page, an initial zero sample, and a descriptor appended to the")
    print("circular list — scheduling decisions pick it up at the next quantum.")


if __name__ == "__main__":
    main()
