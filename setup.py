"""Setup shim.

The primary build configuration lives in ``pyproject.toml``. This file
exists so that environments without the ``wheel`` package (where PEP 660
editable installs are unavailable) can still do a legacy editable install:

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
