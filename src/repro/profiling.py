"""Lightweight per-phase profiling for the simulation hot loop.

The simulator's cheap event counters (solve calls, cache hits, bisection
steps, settle calls) are always maintained — they are plain integer
increments. The *wall-clock* phase timers (solve / settle / dispatch
seconds) cost a ``perf_counter`` pair per call, so they are off by default
and activated per run.

Two activation paths exist:

* per-spec — ``SimulationSpec(profile=True)`` profiles that run only;
* process-global — :func:`enable` (the CLI's ``--profile`` flag) profiles
  every subsequent run in this process. Fork-based workers inherit the
  switch at fork time, so ``run_many`` fan-outs are covered too.

Profiled runs carry their snapshot on ``RunResult.profile`` (a plain
picklable dict, one entry per counter — see
``Machine.profile_snapshot``). Because the snapshot rides on the result,
worker-side profiles survive the trip back to the parent, where harnesses
can fold them into one report with :func:`record` / :func:`aggregate`.

Counter semantics under the struct-of-arrays machine (PR 7):
``dirty_mask_hits`` counts lane entries whose demand segment was served
from the thread store's per-row ``seg_rate``/``seg_end`` cache during an
entry rebuild — i.e. the ``demand.segment()`` Python calls the batched
build avoided. (Before the SoA store it counted whole entries reused from
a per-CPU dirty-mask cache; the new count measures the same reuse at finer
grain.) ``batched_lanes``, ``solve_skips``, ``lane_rebuilds`` and the
``sel_*`` selection counters are unchanged. Scalar solver modes report
``dirty_mask_hits == 0`` as before.

All profile data is observability, never physics: profiling on or off,
the simulated trajectories are bit-identical, and profile fields are
excluded from ``RunResult`` equality.
"""

from __future__ import annotations

__all__ = [
    "enable",
    "disable",
    "enabled",
    "record",
    "aggregate",
    "reset_aggregate",
    "merge",
]

_enabled = False
_aggregate: dict[str, float] = {}


def enable() -> None:
    """Turn on wall-clock phase timers for every run in this process."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn the process-global profiling switch back off."""
    global _enabled
    _enabled = False


def enabled() -> bool:
    """Whether the process-global profiling switch is on."""
    return _enabled


def merge(into: dict[str, float], snapshot: dict[str, float]) -> dict[str, float]:
    """Sum a profile snapshot into an accumulator dict (in place)."""
    for key, value in snapshot.items():
        into[key] = into.get(key, 0.0) + value
    return into


def record(snapshot: dict[str, float] | None) -> None:
    """Fold one run's profile snapshot into the process aggregate."""
    if snapshot:
        merge(_aggregate, snapshot)


def aggregate() -> dict[str, float]:
    """A copy of the process-wide aggregated profile."""
    return dict(_aggregate)


def reset_aggregate() -> None:
    """Clear the process-wide aggregate (harness setup/teardown)."""
    _aggregate.clear()
