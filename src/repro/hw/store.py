"""Struct-of-arrays backing store for per-thread simulation state.

The machine's hot loops (lane entry build, batched advance, horizon scan,
transition commit) read and write a handful of per-thread scalars tens of
thousands of times per run. Keeping those scalars in Python objects makes
every loop iteration a chain of attribute lookups; keeping them in
contiguous numpy arrays — one row per thread — turns each loop into a few
elementwise array passes.

:class:`ThreadStore` owns those arrays. :class:`repro.hw.machine.ThreadState`
is a thin index-backed view over one row: attribute reads gather from the
arrays, attribute writes scatter into them, so the store and the object API
can never disagree. Rows are append-only (``row == tid - 1`` under the
machine's monotone tid assignment; finished threads keep their row), and
the arrays grow by doubling, so a long-lived open-system run never pays
per-thread reallocation.

Field groups
------------
* float64 — ``work_done``, ``work_total``, ``rebuild_debt``,
  ``next_io_at_work``, ``run_time_us``, ``footprint_lines``, plus the
  demand-segment cache ``seg_rate`` / ``seg_end`` (valid while
  ``work_done < seg_end``; ``seg_end`` starts at ``-inf`` = never queried).
* int64 — ``cpu``, ``last_cpu`` (−1 encodes "none").
* bool — ``blocked``, ``stalled``, ``finished``, ``in_io``.

Growth reallocates the arrays, so long-lived references to a *specific
array object* must be re-fetched from the store after :meth:`add`; the
machine's hot paths read ``store.<field>`` freshly on every pass.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["ThreadStore"]

#: Fields stored as float64 rows.
FLOAT_FIELDS = (
    "work_done",
    "work_total",
    "rebuild_debt",
    "next_io_at_work",
    "run_time_us",
    "footprint_lines",
    "seg_rate",
    "seg_end",
)
#: Fields stored as int64 rows (−1 = none).
INT_FIELDS = ("cpu", "last_cpu")
#: Fields stored as bool rows.
BOOL_FIELDS = ("blocked", "stalled", "finished", "in_io")


class ThreadStore:
    """Contiguous per-thread scalar arrays; one row per registered thread."""

    __slots__ = FLOAT_FIELDS + INT_FIELDS + BOOL_FIELDS + ("n", "_capacity")

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError("store capacity must be positive")
        self.n = 0
        self._capacity = capacity
        for name in FLOAT_FIELDS:
            setattr(self, name, np.zeros(capacity))
        for name in INT_FIELDS:
            setattr(self, name, np.full(capacity, -1, dtype=np.int64))
        for name in BOOL_FIELDS:
            setattr(self, name, np.zeros(capacity, dtype=bool))

    def _grow(self) -> None:
        cap = self._capacity * 2
        for name in FLOAT_FIELDS + INT_FIELDS + BOOL_FIELDS:
            old = getattr(self, name)
            fresh = np.empty(cap, dtype=old.dtype)
            fresh[: self.n] = old[: self.n]
            setattr(self, name, fresh)
        self._capacity = cap

    def add(self) -> int:
        """Append a fresh row with default state; returns its index."""
        if self.n == self._capacity:
            self._grow()
        i = self.n
        self.n = i + 1
        self.work_done[i] = 0.0
        self.work_total[i] = 0.0
        self.rebuild_debt[i] = 0.0
        self.next_io_at_work[i] = math.inf
        self.run_time_us[i] = 0.0
        self.footprint_lines[i] = 0.0
        self.seg_rate[i] = 0.0
        self.seg_end[i] = -math.inf  # stale: first entry build refreshes
        self.cpu[i] = -1
        self.last_cpu[i] = -1
        self.blocked[i] = False
        self.stalled[i] = False
        self.finished[i] = False
        self.in_io[i] = False
        return i

    def row_dict(self, i: int) -> dict[str, float | int | bool]:
        """One row as plain Python scalars (round-trip tests, debugging)."""
        if not 0 <= i < self.n:
            raise IndexError(f"store row {i} out of range (n={self.n})")
        out: dict[str, float | int | bool] = {}
        for name in FLOAT_FIELDS:
            out[name] = float(getattr(self, name)[i])
        for name in INT_FIELDS:
            out[name] = int(getattr(self, name)[i])
        for name in BOOL_FIELDS:
            out[name] = bool(getattr(self, name)[i])
        return out
