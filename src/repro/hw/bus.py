"""The shared front-side bus: analytic contention model.

This module is the physical heart of the reproduction. It answers one
question: *given the set of threads currently running on the SMP's
processors, how fast does each one execute and how many bus transactions
does each actually issue?*

Model
-----
Each running thread ``i`` is described by a :class:`BusRequest`:

* ``rate_txus`` (``r``) — the bus-transaction rate the thread sustains when
  running alone on an unloaded machine (transactions per µs). This is the
  quantity the paper reports in Figure 1A (divided by the thread count).
* ``mem_fraction`` (``m``) — the fraction of the thread's standalone
  execution time that is sensitive to bus latency. By default it is derived
  as ``m = min(1, (r·lam0)^alpha)`` (:func:`derive_mem_fraction`), where
  ``lam0`` is the unloaded per-transaction stall cost and ``alpha ≤ 1`` the
  configured ``mem_exponent``. ``lam0`` is calibrated so a pure streaming
  thread (the BBMA microbenchmark, ~0 % cache hit rate) issues the paper's
  23.6 tx/µs: ``lam0 = 1/23.6 µs``; the sublinear exponent models the
  latency-bound (non-overlapped) misses of moderate-rate codes.

Under load, every transaction's stall cost inflates from ``lam0`` to a
common equilibrium latency ``lam``. A thread's wall-clock time per
standalone-µs is ``(1-m) + m·lam/lam0``, so its execution *speed*
(standalone-µs per wall-µs) is::

    s(lam) = 1 / ((1 - m) + m * lam / lam0)          (0 < s <= 1)

and its actual transaction rate is ``a = r·s(lam)``. The equilibrium
latency is determined by two regimes:

* **Below saturation** — arbitration inflates latency mildly with offered
  load: ``lam_c = lam0 · (1 + c·rho²)`` where ``rho = Σr / C`` is the
  offered-demand ratio and ``c`` the configured ``contention_coeff``. If the
  resulting aggregate throughput fits, ``lam = lam_c``.
* **Saturation** — when demand at ``lam_c`` would exceed the sustained
  capacity ``C`` (29.5 tx/µs, the STREAM measurement), the latency rises to
  exactly the value at which ``Σ a_i(lam) = C``: under saturation the bus
  delivers its full sustained bandwidth, as STREAM demonstrates on the real
  platform. ``Σ a_i(lam)`` is strictly decreasing (and convex: every term
  is ``r_i / (A_i + B_i·lam)`` with ``B_i >= 0``) in ``lam``, so this
  equilibrium is unique. Two interchangeable root finders are provided,
  selected by :attr:`repro.config.BusConfig.solver_mode`:

  * ``"bisect"`` (default) — grow a bracket from ``lam_c`` by doubling,
    then bisect: the reference implementation.
  * ``"newton"`` — guarded Newton with the analytic derivative,
    warm-started from this model's *previous* saturated equilibrium (the
    running set changes little between adjacent scheduling quanta, so the
    previous root is an excellent seed). Convexity makes every Newton
    iterate a lower bound on the root, so the iteration converges
    monotonically; any step that leaves the known bracket falls back to a
    bisection step. Both modes agree within ``fixed_point_tol``.
  * ``"vector"`` — the newton iteration with all per-lane arithmetic
    batched into numpy array kernels: one elementwise evaluation per
    Newton step instead of a Python loop over lanes. The kernels compute
    the *identical* IEEE-754 expression sequence (elementwise ``+ - × ÷``
    round once, exactly like CPython floats) and reduce with ``cumsum``
    (a strictly left-to-right scan, unlike ``np.sum``'s pairwise tree),
    so every vector solve is **bitwise identical** to the newton solve it
    replaces; below :data:`_VECTOR_MIN_LANES` lanes the scalar newton
    loop runs instead (array-kernel launch overhead beats the loop there,
    and the results are bit-equal either way). Lanes processed through
    the batched kernels are counted on :attr:`BusModel.batched_lanes`.

Consequences (all matching Section 3 of the paper by construction):

* a solo application runs at speed ≈ 1 and issues its Figure 1A rate;
* four streaming threads sustain exactly the STREAM capacity;
* doubling a high-demand application drives everyone to the
  bandwidth-limited ceiling ``C/Σr`` (41–61 % degradation band);
* a low-demand thread sharing a saturated bus slows only by its
  latency-sensitive fraction (the 2–55 % band), while memory-intensive
  threads suffer 2–3×.

A second arbitration model, ``"max-min"``, divides saturated capacity
max-min fairly among demands instead; it exists for the ABL-A ablation.

All rates are piecewise constant between machine reconfigurations, so one
``solve`` call per reconfiguration suffices; still, a long run reconfigures
thousands of times and the same running-thread sets recur every scheduling
cycle, so ``solve`` keeps an LRU memo cache keyed on the canonicalized
(sorted) multiset of quantized ``(rate, mem_fraction)`` pairs. A hit skips
the bisection entirely and returns the stored equilibrium with the grants
matched back to the caller's request order (identical requests receive
identical grants under both arbitration models, so the match is exact).
Hit/miss accounting is surfaced via :attr:`BusModel.solve_calls`,
:attr:`BusModel.cache_hits` and :attr:`BusModel.bisection_steps` (which
counts throughput evaluations in *both* solver modes) for the performance
harness (``benchmarks/bench_perf.py``).

A second, process-wide cache layer — the *shared solve cache* — can be
installed with :func:`install_shared_solve_cache`. The chunked parallel
dispatcher (:func:`repro.parallel.run_many`) installs one per worker chunk
so consecutive simulations of the same experiment grid reuse each other's
equilibria. Entries are keyed by the full :class:`~repro.config.BusConfig`
plus the *ordered* request sequence, and only the default ``"bisect"``
mode participates: an exact-order bisect solve is a pure function of
(config, requests), so a shared hit is bitwise identical to the solve it
replaces — results stay bit-identical no matter how specs are chunked.
(The newton mode's warm start makes its last-ulp output depend on the
model's solve history, so it never reads or writes the shared layer.)
"""

from __future__ import annotations

import math
import time
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Callable, Sequence

import numpy as np

from ..config import BusConfig
from ..errors import WorkloadError

__all__ = [
    "BusRequest",
    "ThreadGrant",
    "BusSolution",
    "BusModel",
    "SharedSolveCache",
    "derive_mem_fraction",
    "install_shared_solve_cache",
    "clear_shared_solve_cache",
    "shared_solve_cache",
]

#: Decimal places of the solve-cache key quantization. Exact matching on
#: floats rounded this finely is an identity for the rates the simulator
#: produces (they differ by far more than 1e-12 unless truly equal), while
#: still collapsing bit-level noise from request-order permutations.
_CACHE_DECIMALS = 12

#: Minimum lane count for the ``"vector"`` solver's numpy kernels. Below
#: this, per-call array construction costs more than the scalar loop it
#: replaces; the scalar newton path runs instead (bit-equal either way).
_VECTOR_MIN_LANES = 4


class SharedSolveCache:
    """Process-wide cross-run solve memo (see module docstring).

    Entries map ``(BusConfig, ordered quantized request sequence)`` to a
    ``(solution, grant_map)`` pair. Hits require the *exact* request order
    of the original solve: the bisection sums floats in request order, so
    only same-order replays are guaranteed bitwise identical to a fresh
    computation. Permuted recurrences still hit each model's local LRU.
    """

    __slots__ = ("data", "size", "hits", "stores")

    def __init__(self, size: int = 8192) -> None:
        if size <= 0:
            raise ValueError(f"shared cache size must be positive, got {size}")
        self.data: OrderedDict[tuple, tuple[BusSolution, dict]] = OrderedDict()
        self.size = size
        self.hits = 0
        self.stores = 0


#: The ambient shared cache consulted by every BusModel in this process
#: (``None`` = layer disabled, the default outside chunked workers).
_SHARED_CACHE: SharedSolveCache | None = None


def install_shared_solve_cache(size: int = 8192) -> SharedSolveCache:
    """Install (replacing any previous) the process-wide solve cache."""
    global _SHARED_CACHE
    _SHARED_CACHE = SharedSolveCache(size)
    return _SHARED_CACHE


def clear_shared_solve_cache() -> None:
    """Remove the process-wide solve cache (models fall back to local LRUs)."""
    global _SHARED_CACHE
    _SHARED_CACHE = None


def shared_solve_cache() -> SharedSolveCache | None:
    """The currently installed process-wide solve cache, if any."""
    return _SHARED_CACHE


def derive_mem_fraction(rate_txus: float, lam0_us: float, mem_exponent: float = 0.65) -> float:
    """Default latency-sensitive fraction for a thread issuing ``rate_txus``.

    ``m = min(1, (r·lam0)^alpha)``: a thread demanding the streaming
    ceiling ``1/lam0`` or more is fully memory-bound; below it, sensitivity
    falls off sublinearly (``alpha < 1``) because sparse misses overlap
    less with computation. The default exponent matches
    :attr:`repro.config.BusConfig.mem_exponent` (α = 0.65, DESIGN.md §4);
    a config test asserts the two stay in lockstep.

    >>> derive_mem_fraction(23.6, 1 / 23.6)
    1.0
    >>> round(derive_mem_fraction(11.8, 1 / 23.6, 1.0), 2)
    0.5
    >>> derive_mem_fraction(0.0, 1 / 23.6)
    0.0
    """
    if rate_txus < 0:
        raise WorkloadError(f"negative transaction rate {rate_txus}")
    if rate_txus == 0.0:
        return 0.0
    x = rate_txus * lam0_us
    if x >= 1.0:
        return 1.0
    return x**mem_exponent


@dataclass(frozen=True)
class BusRequest:
    """Demand of one running thread.

    Attributes
    ----------
    rate_txus:
        Standalone (unloaded) transaction rate, tx/µs. May exceed the
        streaming ceiling ``1/lam0`` during bursts; the model caps actual
        throughput naturally.
    mem_fraction:
        Latency-sensitive fraction of standalone time, in ``[0, 1]``.
        Use :meth:`BusModel.request_for_rate` unless modelling something
        unusual.
    """

    rate_txus: float
    mem_fraction: float

    def __post_init__(self) -> None:
        if self.rate_txus < 0:
            raise WorkloadError(f"negative transaction rate {self.rate_txus}")
        if not 0.0 <= self.mem_fraction <= 1.0:
            raise WorkloadError(f"mem_fraction {self.mem_fraction} outside [0, 1]")
        if self.rate_txus == 0.0 and self.mem_fraction > 0.0:
            raise WorkloadError("a thread with zero demand cannot have memory stalls")


@dataclass(frozen=True)
class ThreadGrant:
    """Per-thread outcome of a bus solution.

    Attributes
    ----------
    speed:
        Execution speed in standalone-µs per wall-µs, in ``(0, 1]``.
    actual_txus:
        Transaction rate actually issued under contention.
    """

    speed: float
    actual_txus: float


@dataclass(frozen=True)
class BusSolution:
    """Outcome of one contention solve.

    Attributes
    ----------
    grants:
        One :class:`ThreadGrant` per request, in request order.
    utilisation:
        Bus utilisation ``Σ actual / capacity`` in ``[0, 1]`` (equals 1.0
        exactly when saturated).
    latency_us:
        The per-transaction stall latency all threads observe (``lam0`` at
        zero load). For ``max-min`` arbitration this reports ``lam0``.
    total_txus:
        Aggregate actual transaction rate, ``Σ actual``.
    saturated:
        Whether the saturation regime was in effect.
    """

    grants: tuple[ThreadGrant, ...]
    utilisation: float
    latency_us: float
    total_txus: float
    saturated: bool = False
    #: Vector mode only: the grants' speed / actual columns as float64
    #: arrays (same bit patterns as the ``grants`` fields, request order).
    #: ``None`` whenever the order guarantee cannot hold (scalar solves,
    #: reordered memo hits). Observability of the batched kernel, excluded
    #: from equality like the counters on ``RunResult``.
    speeds_arr: "np.ndarray | None" = field(default=None, compare=False, repr=False)
    actuals_arr: "np.ndarray | None" = field(default=None, compare=False, repr=False)


class BusModel:
    """Solver turning thread demands into speeds and actual rates.

    Parameters
    ----------
    config:
        Bus parameters (capacity, ``lam0``, contention coefficient,
        arbitration model). See :class:`repro.config.BusConfig`.

    Examples
    --------
    A single low-demand thread runs at full speed:

    >>> from repro.config import BusConfig
    >>> bus = BusModel(BusConfig())
    >>> sol = bus.solve([bus.request_for_rate(0.5)])
    >>> sol.grants[0].speed > 0.99
    True

    Four streaming threads saturate the bus and sustain exactly its
    capacity (the STREAM experiment):

    >>> sol = bus.solve([BusRequest(23.6, 1.0)] * 4)
    >>> sol.saturated
    True
    >>> abs(sol.total_txus - bus.capacity) < 1e-6
    True
    """

    def __init__(self, config: BusConfig) -> None:
        self._cfg = config
        self._capacity = config.capacity_txus
        self._lam0 = config.lam0_us
        self._c = config.contention_coeff
        self._alpha = config.mem_exponent
        self._tol = config.fixed_point_tol
        # "vector" is the newton iteration with batched lane evaluation:
        # it shares the warm-start slot, the shared-cache exclusion and the
        # saturation search; only the per-lane arithmetic differs (numpy
        # kernels, bitwise identical — see module docstring).
        self._newton = config.solver_mode in ("newton", "vector")
        self._vector = config.solver_mode == "vector"
        # Warm-start slot: the previous *saturated* equilibrium latency of
        # this model (per machine, distinct from the LRU memo below). The
        # running set drifts little between adjacent quanta, so it seeds
        # the newton search within a few ulps of the next root.
        self._last_lam: float | None = None
        self._solve_calls = 0
        self._cache_hits = 0
        self._shared_hits = 0
        self._warm_starts = 0
        self._bisection_steps = 0
        self._batched_lanes = 0
        self._solve_time_s = 0.0
        self._profiling = False
        # Only the bisect mode may use the cross-run shared cache: its
        # solve is a pure function of (config, ordered requests).
        self._shared_ok = not self._newton and config.solve_cache_size > 0
        # solve() memo: canonical multiset key -> (key sequence in the
        # miss's request order, solution, quantized request -> grant).
        self._cache: OrderedDict[
            tuple, tuple[tuple, BusSolution, dict[tuple[float, float], ThreadGrant]]
        ] = OrderedDict()
        self._cache_size = config.solve_cache_size
        # request_for_rate memo: the same handful of demand rates recur on
        # every reconfiguration; m = (r·lam0)^alpha is the pow() hot spot.
        self._request_cache: dict[float, BusRequest] = {}

    @property
    def capacity(self) -> float:
        """Sustained capacity in tx/µs."""
        return self._capacity

    @property
    def lam0(self) -> float:
        """Unloaded per-transaction latency in µs."""
        return self._lam0

    @property
    def config(self) -> BusConfig:
        """The configuration this model was built from."""
        return self._cfg

    @property
    def solve_calls(self) -> int:
        """Number of ``solve`` invocations (profiling aid)."""
        return self._solve_calls

    @property
    def cache_hits(self) -> int:
        """``solve`` invocations answered from the memo cache."""
        return self._cache_hits

    @property
    def cache_len(self) -> int:
        """Number of solutions currently memoized."""
        return len(self._cache)

    @property
    def shared_hits(self) -> int:
        """``solve`` invocations answered from the process-wide shared cache."""
        return self._shared_hits

    @property
    def warm_starts(self) -> int:
        """Newton searches seeded from this model's previous equilibrium."""
        return self._warm_starts

    @property
    def bisection_steps(self) -> int:
        """Aggregate throughput evaluations spent in saturation searches.

        Counts evaluations in both solver modes (the name is historical);
        it is the work the memo caches and the newton path exist to cut.
        """
        return self._bisection_steps

    @property
    def batched_lanes(self) -> int:
        """Lanes evaluated through the vector mode's numpy kernels.

        Incremented by the lane count of every shared-latency solve that
        took the batched path (``solver_mode="vector"`` and at least
        :data:`_VECTOR_MIN_LANES` requests); zero in the scalar modes.
        """
        return self._batched_lanes

    @property
    def solve_time_s(self) -> float:
        """Wall-clock seconds spent inside ``solve`` (profiling mode only)."""
        return self._solve_time_s

    def enable_profiling(self) -> None:
        """Start accumulating wall-clock solve time (small per-call cost)."""
        self._profiling = True

    # ------------------------------------------------------------------

    def request_for_rate(self, rate_txus: float) -> BusRequest:
        """Build a request with the default derived memory fraction."""
        req = self._request_cache.get(rate_txus)
        if req is None:
            req = BusRequest(rate_txus, derive_mem_fraction(rate_txus, self._lam0, self._alpha))
            if len(self._request_cache) < 65536:
                self._request_cache[rate_txus] = req
        return req

    def requests_for_rates(self, rates: list[float]) -> list[BusRequest]:
        """Batch :meth:`request_for_rate` (the SoA entry build's one call).

        Same memo, same eviction cap, same ``BusRequest`` identity on a
        hit — just the per-rate lookup inlined so a full lane rebuild is
        one call instead of one per CPU.
        """
        cache = self._request_cache
        out: list[BusRequest] = []
        for rate in rates:
            req = cache.get(rate)
            if req is None:
                req = BusRequest(rate, derive_mem_fraction(rate, self._lam0, self._alpha))
                if len(cache) < 65536:
                    cache[rate] = req
            out.append(req)
        return out

    def contention_latency(self, rho: float) -> float:
        """Sub-saturation arbitration latency at offered-demand ratio ``rho``.

        ``lam_c = lam0 · (1 + c · rho²)``, a mild monotone inflation.
        """
        if rho < 0:
            raise ValueError(f"negative offered-demand ratio {rho}")
        return self._lam0 * (1.0 + self._c * rho * rho)

    def speed_at_latency(self, req: BusRequest, lam: float) -> float:
        """Execution speed of one thread at base latency ``lam``.

        The thread's *effective* latency includes the arbitration
        unfairness term: ``lam_eff = lam0 + (lam - lam0)·(1 + beta·(1-m))``
        — streaming requesters (m → 1) pay the base contention penalty;
        sparse requesters re-arbitrate per transaction and pay up to
        ``(1 + beta)`` times more of it. At ``lam = lam0`` every thread
        runs at its solo speed regardless of ``beta``.
        """
        m = req.mem_fraction
        if m == 0.0:
            return 1.0
        beta = self._cfg.unfairness
        lam_eff = self._lam0 + (lam - self._lam0) * (1.0 + beta * (1.0 - m))
        denom = (1.0 - m) + m * (lam_eff / self._lam0)
        return 1.0 / denom

    def solve(self, requests: Sequence[BusRequest]) -> BusSolution:
        """Compute the contention equilibrium for the running thread set.

        Results are memoized on the multiset of ``(rate, mem_fraction)``
        pairs (quantized to :data:`_CACHE_DECIMALS` decimals): two calls
        whose requests differ only in order observe the same equilibrium,
        and the per-thread grants are matched back by request value.
        """
        if not self._profiling:
            return self._solve(requests)
        t0 = time.perf_counter()
        try:
            return self._solve(requests)
        finally:
            self._solve_time_s += time.perf_counter() - t0

    def _solve(self, requests: Sequence[BusRequest]) -> BusSolution:
        self._solve_calls += 1
        if not requests:
            return BusSolution(
                grants=(), utilisation=0.0, latency_us=self._lam0, total_txus=0.0
            )
        key_seq: tuple | None = None
        key: tuple | None = None
        if self._cache_size > 0:
            key_seq = tuple(
                (round(req.rate_txus, _CACHE_DECIMALS), round(req.mem_fraction, _CACHE_DECIMALS))
                for req in requests
            )
            key = tuple(sorted(key_seq))
            entry = self._cache.get(key)
            if entry is not None:
                self._cache_hits += 1
                self._cache.move_to_end(key)
                stored_seq, solution, grant_map = entry
                if stored_seq == key_seq:
                    return solution
                # Same multiset, different request order: rebuild the
                # grants tuple in the caller's order by value match. The
                # lane arrays are stored in the *original* order, so they
                # must not ride along.
                return replace(
                    solution,
                    grants=tuple(grant_map[q] for q in key_seq),
                    speeds_arr=None,
                    actuals_arr=None,
                )
        shared = _SHARED_CACHE if (self._shared_ok and key is not None) else None
        if shared is not None:
            skey = (self._cfg, key_seq)
            sentry = shared.data.get(skey)
            if sentry is not None:
                shared.data.move_to_end(skey)
                shared.hits += 1
                self._shared_hits += 1
                solution, grant_map = sentry
                self._cache[key] = (key_seq, solution, grant_map)
                if len(self._cache) > self._cache_size:
                    self._cache.popitem(last=False)
                return solution
        if self._cfg.arbitration == "max-min":
            solution = self._solve_max_min(requests)
        else:
            solution = self._solve_shared_latency(requests)
        if key is not None:
            grant_map = {}
            for q, grant in zip(key_seq, solution.grants):  # type: ignore[arg-type]
                grant_map.setdefault(q, grant)
            self._cache[key] = (key_seq, solution, grant_map)
            if len(self._cache) > self._cache_size:
                self._cache.popitem(last=False)
            if shared is not None:
                shared.data[(self._cfg, key_seq)] = (solution, grant_map)
                shared.stores += 1
                if len(shared.data) > shared.size:
                    shared.data.popitem(last=False)
        return solution

    # ------------------------------------------------------------------

    def _speed_params(
        self, requests: Sequence[BusRequest]
    ) -> list[tuple[float, float, float, float]]:
        """Hoist the per-request constants of :meth:`speed_at_latency`.

        Returns ``(rate, m, 1-m, 1 + beta·(1-m))`` per request — everything
        the bisection loop needs that does not depend on ``lam``. The
        arithmetic below reproduces :meth:`speed_at_latency` expression by
        expression, so hoisting changes nothing bit-for-bit.
        """
        beta = self._cfg.unfairness
        return [
            (req.rate_txus, req.mem_fraction, 1.0 - req.mem_fraction,
             1.0 + beta * (1.0 - req.mem_fraction))
            for req in requests
        ]

    def _throughput_hoisted(
        self, params: list[tuple[float, float, float, float]], lam: float
    ) -> float:
        """Aggregate actual rate at ``lam`` using pre-hoisted constants."""
        lam0 = self._lam0
        total = 0.0
        for r, m, one_minus_m, unfair in params:
            if m == 0.0:
                total += r
                continue
            lam_eff = lam0 + (lam - lam0) * unfair
            s = 1.0 / (one_minus_m + m * (lam_eff / lam0))
            total += r * s
        return total

    def _throughput_grad_hoisted(
        self, params: list[tuple[float, float, float, float]], lam: float
    ) -> tuple[float, float]:
        """Aggregate actual rate at ``lam`` and its derivative d/dlam.

        Each thread's actual rate is ``r / D(lam)`` with
        ``D = 1 + (m·unfair/lam0)·(lam - lam0)`` linear in ``lam`` (the
        algebraic collapse of :meth:`speed_at_latency`'s expression), so
        the derivative is ``-r·D'/D²`` — one extra multiply per thread on
        top of the plain evaluation.
        """
        lam0 = self._lam0
        total = 0.0
        grad = 0.0
        for r, m, one_minus_m, unfair in params:
            if m == 0.0:
                total += r
                continue
            lam_eff = lam0 + (lam - lam0) * unfair
            d = one_minus_m + m * (lam_eff / lam0)
            s = 1.0 / d
            total += r * s
            grad -= r * (m * unfair / lam0) * s * s
        return total, grad

    def _saturation_root_newton(
        self,
        params: list[tuple[float, float, float, float]],
        lam_c: float,
        cap: float,
        grad_eval: "Callable[[float], tuple[float, float]] | None" = None,
    ) -> tuple[float, int]:
        """Solve ``throughput(lam) = cap`` by warm-started guarded Newton.

        The caller guarantees ``throughput(lam_c) > cap``, so the root lies
        in ``(lam_c, ∞)``. Throughput is convex and strictly decreasing in
        ``lam`` (see :meth:`_throughput_grad_hoisted`), hence every Newton
        iterate is a *lower bound* on the root: the iteration climbs
        monotonically and terminates when a step falls below the solver
        tolerance — the same ``fixed_point_tol·lam0`` resolution the
        bisection stops at. A guard keeps every iterate inside the known
        ``(lo, hi)`` bracket, falling back to a bisection step (or bracket
        doubling while ``hi`` is unknown) whenever Newton would leave it.

        ``grad_eval`` substitutes the throughput/derivative evaluation —
        the vector mode passes its batched numpy kernel, which returns the
        bitwise-identical values, so the iterate sequence is unchanged.

        Returns ``(root, evaluations)``.
        """
        tol = self._tol * self._lam0
        lo = lam_c
        hi = math.inf
        x = self._last_lam
        if x is not None and x > lo:
            self._warm_starts += 1
        else:
            x = lo
        steps = 0
        for _ in range(200):
            steps += 1
            if grad_eval is not None:
                g, dg = grad_eval(x)
            else:
                g, dg = self._throughput_grad_hoisted(params, x)
            g -= cap
            if g > 0.0:
                lo = max(lo, x)
            elif g < 0.0:
                hi = min(hi, x)
            else:
                return x, steps  # exact root
            if hi - lo < tol:
                break
            x_new = x - g / dg if dg < 0.0 else math.inf
            if not lo < x_new < hi:
                # Newton left the bracket (warm start far off, or the
                # pathological all-m==0 demand set where dg == 0): take a
                # plain bisection step, doubling while hi is unknown.
                x_new = 0.5 * (lo + hi) if math.isfinite(hi) else 2.0 * max(x, lo)
            if abs(x_new - x) < tol:
                return x_new, steps
            x = x_new
        return 0.5 * (lo + hi) if math.isfinite(hi) else x, steps

    def _grants_at_hoisted(
        self, params: list[tuple[float, float, float, float]], lam: float
    ) -> tuple[tuple[ThreadGrant, ...], float]:
        lam0 = self._lam0
        grants = []
        total = 0.0
        for r, m, one_minus_m, unfair in params:
            if m == 0.0:
                s = 1.0
            else:
                lam_eff = lam0 + (lam - lam0) * unfair
                s = 1.0 / (one_minus_m + m * (lam_eff / lam0))
            a = r * s
            grants.append(ThreadGrant(speed=s, actual_txus=a))
            total += a
        return tuple(grants), total

    def _throughput(self, requests: Sequence[BusRequest], lam: float) -> float:
        """Aggregate actual rate if every thread saw latency ``lam``."""
        total = 0.0
        for req in requests:
            total += req.rate_txus * self.speed_at_latency(req, lam)
        return total

    def _grants_at(self, requests: Sequence[BusRequest], lam: float) -> tuple[tuple[ThreadGrant, ...], float]:
        grants = []
        total = 0.0
        for req in requests:
            s = self.speed_at_latency(req, lam)
            a = req.rate_txus * s
            grants.append(ThreadGrant(speed=s, actual_txus=a))
            total += a
        return tuple(grants), total

    # ---------------------------------------------------- vector lane batch

    def _vector_lanes(
        self, requests: Sequence[BusRequest]
    ) -> tuple["np.ndarray", "np.ndarray", "np.ndarray", "np.ndarray", "np.ndarray"]:
        """Hoist per-request constants into lane arrays (vector mode).

        Array analogue of :meth:`_speed_params`: one float64 slot per lane
        for ``r``, ``m``, ``1-m`` and ``1 + beta·(1-m)``, built with the
        same expressions, plus the pre-collapsed gradient coefficient
        ``r·((m·unfair)/lam0)`` (the lam-independent prefix of the grad
        term — the same product sequence the scalar loop evaluates).
        """
        n = len(requests)
        r = np.empty(n)
        m = np.empty(n)
        for i, req in enumerate(requests):
            r[i] = req.rate_txus
            m[i] = req.mem_fraction
        one_minus_m = 1.0 - m
        unfair = 1.0 + self._cfg.unfairness * one_minus_m
        gcoef = r * ((m * unfair) / self._lam0)
        return r, m, one_minus_m, unfair, gcoef

    def _solve_shared_latency_vector(self, requests: Sequence[BusRequest]) -> BusSolution:
        """Shared-latency equilibrium with numpy-batched lane evaluation.

        Control flow is the newton solve verbatim — sub-saturation check,
        guarded-Newton saturation search, grant fold — with every per-lane
        Python loop replaced by one elementwise kernel over the lane
        arrays. Reductions use ``cumsum`` (strictly left-to-right, the
        accumulation order of the scalar loops; ``np.sum``'s pairwise tree
        would round differently), and ``tolist()`` hands back the exact
        float64 bit patterns, so the returned :class:`BusSolution` is
        bitwise identical to the scalar newton mode's.
        """
        self._batched_lanes += len(requests)
        cap = self._capacity
        lam0 = self._lam0
        r, m, one_minus_m, unfair, gcoef = self._vector_lanes(requests)

        def speeds_at(lam: float) -> "np.ndarray":
            # speed_at_latency, elementwise: lanes with m == 0 fall out
            # exactly (denominator (1-0) + 0·x == 1.0 → s == 1.0), so no
            # branch is needed to match the scalar shortcut bitwise.
            lam_eff = lam0 + (lam - lam0) * unfair
            d = one_minus_m + m * (lam_eff / lam0)
            return 1.0 / d

        def thr_grad(lam: float) -> tuple[float, float]:
            s = speeds_at(lam)
            total = float((r * s).cumsum()[-1])
            # Scalar loop: grad -= term, term >= 0 — a running negation,
            # and IEEE rounding is sign-symmetric, so negating the
            # positive cumsum reproduces it bitwise. `0.0 - x` (not `-x`)
            # keeps the all-zero-demand case at +0.0 like the scalar loop.
            grad = 0.0 - float(((gcoef * s) * s).cumsum()[-1])
            return total, grad

        def solution_at(lam: float, saturated: bool) -> BusSolution:
            s = speeds_at(lam)
            a = r * s
            total = float(a.cumsum()[-1])
            grants = tuple(
                ThreadGrant(speed=sv, actual_txus=av)
                for sv, av in zip(s.tolist(), a.tolist())
            )
            util = 1.0 if saturated else total / cap
            return BusSolution(
                grants, util, lam, total, saturated=saturated,
                speeds_arr=s, actuals_arr=a,
            )

        offered = float(r.cumsum()[-1])
        rho = offered / cap
        lam_c = self.contention_latency(rho)
        throughput_c, _ = thr_grad(lam_c)
        if throughput_c <= cap:
            return solution_at(lam_c, saturated=False)
        lam, steps = self._saturation_root_newton([], lam_c, cap, grad_eval=thr_grad)
        self._bisection_steps += steps
        self._last_lam = lam
        return solution_at(lam, saturated=True)

    # ------------------------------------------------------------------

    def _solve_shared_latency(self, requests: Sequence[BusRequest]) -> BusSolution:
        if self._vector and len(requests) >= _VECTOR_MIN_LANES:
            return self._solve_shared_latency_vector(requests)
        cap = self._capacity
        offered = 0.0
        for req in requests:
            offered += req.rate_txus
        rho = offered / cap
        lam_c = self.contention_latency(rho)
        params = self._speed_params(requests)
        throughput_c = self._throughput_hoisted(params, lam_c)
        if throughput_c <= cap:
            grants, total = self._grants_at_hoisted(params, lam_c)
            return BusSolution(grants, total / cap, lam_c, total, saturated=False)
        # Saturation: find lam with throughput(lam) = capacity. Throughput
        # is strictly decreasing in lam (every request here has m > 0,
        # otherwise throughput could not exceed capacity ... a thread with
        # m == 0 contributes a constant term, which is fine: the remaining
        # threads absorb the slowdown).
        if self._newton:
            lam, steps = self._saturation_root_newton(params, lam_c, cap)
            self._bisection_steps += steps
            self._last_lam = lam
            grants, total = self._grants_at_hoisted(params, lam)
            return BusSolution(grants, 1.0, lam, total, saturated=True)
        steps = 0
        lo = lam_c
        hi = lam_c * 2.0
        for _ in range(200):
            steps += 1
            if self._throughput_hoisted(params, hi) < cap:
                break
            hi *= 2.0
        else:  # pragma: no cover - pathological (all m == 0)
            self._bisection_steps += steps
            grants, total = self._grants_at_hoisted(params, hi)
            return BusSolution(grants, 1.0, hi, total, saturated=True)
        for _ in range(200):
            steps += 1
            mid = 0.5 * (lo + hi)
            if self._throughput_hoisted(params, mid) > cap:
                lo = mid
            else:
                hi = mid
            if hi - lo < self._tol * self._lam0:
                break
        self._bisection_steps += steps
        lam = 0.5 * (lo + hi)
        self._last_lam = lam
        grants, total = self._grants_at_hoisted(params, lam)
        return BusSolution(grants, 1.0, lam, total, saturated=True)

    def _solve_max_min(self, requests: Sequence[BusRequest]) -> BusSolution:
        """Max-min fair division of capacity among demands (ablation ABL-A).

        Each thread *wants* ``r_i`` tx/µs. Bandwidth is allocated max-min
        fairly; a thread whose demand is not fully granted is
        bandwidth-limited: its progress scales with its grant ratio,
        ``s = alloc / r`` (its issue rate then exactly equals its
        allocation). Fully-granted threads run at solo speed. There is no
        sub-saturation arbitration term in this variant — the idealized
        fair bus the real platform is *not*.
        """
        cap = self._capacity
        rates = [req.rate_txus for req in requests]
        allocs = self._max_min_allocation(rates, cap)
        grants = []
        total = 0.0
        for req, alloc in zip(requests, allocs):
            if req.rate_txus <= 0.0:
                grants.append(ThreadGrant(speed=1.0, actual_txus=0.0))
                continue
            g = min(1.0, alloc / req.rate_txus)
            a = req.rate_txus * g
            grants.append(ThreadGrant(speed=g, actual_txus=a))
            total += a
        saturated = sum(rates) > cap
        return BusSolution(tuple(grants), min(total / cap, 1.0), self._lam0, total, saturated)

    @staticmethod
    def _max_min_allocation(demands: Sequence[float], capacity: float) -> list[float]:
        """Classic water-filling max-min fair allocation.

        >>> BusModel._max_min_allocation([1.0, 2.0, 10.0], 6.0)
        [1.0, 2.0, 3.0]
        """
        n = len(demands)
        alloc = [0.0] * n
        remaining = capacity
        active = sorted(range(n), key=lambda i: demands[i])
        while active and remaining > 1e-15:
            share = remaining / len(active)
            smallest = active[0]
            need = demands[smallest] - alloc[smallest]
            if need <= share:
                alloc[smallest] = demands[smallest]
                remaining -= need
                active.pop(0)
            else:
                for i in active:
                    alloc[i] += share
                remaining = 0.0
        return alloc
