"""The shared front-side bus: analytic contention model.

This module is the physical heart of the reproduction. It answers one
question: *given the set of threads currently running on the SMP's
processors, how fast does each one execute and how many bus transactions
does each actually issue?*

Model
-----
Each running thread ``i`` is described by a :class:`BusRequest`:

* ``rate_txus`` (``r``) — the bus-transaction rate the thread sustains when
  running alone on an unloaded machine (transactions per µs). This is the
  quantity the paper reports in Figure 1A (divided by the thread count).
* ``mem_fraction`` (``m``) — the fraction of the thread's standalone
  execution time that is sensitive to bus latency. By default it is derived
  as ``m = min(1, (r·lam0)^alpha)`` (:func:`derive_mem_fraction`), where
  ``lam0`` is the unloaded per-transaction stall cost and ``alpha ≤ 1`` the
  configured ``mem_exponent``. ``lam0`` is calibrated so a pure streaming
  thread (the BBMA microbenchmark, ~0 % cache hit rate) issues the paper's
  23.6 tx/µs: ``lam0 = 1/23.6 µs``; the sublinear exponent models the
  latency-bound (non-overlapped) misses of moderate-rate codes.

Under load, every transaction's stall cost inflates from ``lam0`` to a
common equilibrium latency ``lam``. A thread's wall-clock time per
standalone-µs is ``(1-m) + m·lam/lam0``, so its execution *speed*
(standalone-µs per wall-µs) is::

    s(lam) = 1 / ((1 - m) + m * lam / lam0)          (0 < s <= 1)

and its actual transaction rate is ``a = r·s(lam)``. The equilibrium
latency is determined by two regimes:

* **Below saturation** — arbitration inflates latency mildly with offered
  load: ``lam_c = lam0 · (1 + c·rho²)`` where ``rho = Σr / C`` is the
  offered-demand ratio and ``c`` the configured ``contention_coeff``. If the
  resulting aggregate throughput fits, ``lam = lam_c``.
* **Saturation** — when demand at ``lam_c`` would exceed the sustained
  capacity ``C`` (29.5 tx/µs, the STREAM measurement), the latency rises to
  exactly the value at which ``Σ a_i(lam) = C``: under saturation the bus
  delivers its full sustained bandwidth, as STREAM demonstrates on the real
  platform. ``Σ a_i(lam)`` is strictly decreasing in ``lam``, so this
  equilibrium is unique; we find it by bisection.

Consequences (all matching Section 3 of the paper by construction):

* a solo application runs at speed ≈ 1 and issues its Figure 1A rate;
* four streaming threads sustain exactly the STREAM capacity;
* doubling a high-demand application drives everyone to the
  bandwidth-limited ceiling ``C/Σr`` (41–61 % degradation band);
* a low-demand thread sharing a saturated bus slows only by its
  latency-sensitive fraction (the 2–55 % band), while memory-intensive
  threads suffer 2–3×.

A second arbitration model, ``"max-min"``, divides saturated capacity
max-min fairly among demands instead; it exists for the ABL-A ablation.

All rates are piecewise constant between machine reconfigurations, so one
``solve`` call per reconfiguration suffices; still, a long run reconfigures
thousands of times and the same running-thread sets recur every scheduling
cycle, so ``solve`` keeps an LRU memo cache keyed on the canonicalized
(sorted) multiset of quantized ``(rate, mem_fraction)`` pairs. A hit skips
the bisection entirely and returns the stored equilibrium with the grants
matched back to the caller's request order (identical requests receive
identical grants under both arbitration models, so the match is exact).
Hit/miss accounting is surfaced via :attr:`BusModel.solve_calls`,
:attr:`BusModel.cache_hits` and :attr:`BusModel.bisection_steps` for the
performance harness (``benchmarks/bench_perf.py``).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Sequence

from ..config import BusConfig
from ..errors import WorkloadError

__all__ = ["BusRequest", "ThreadGrant", "BusSolution", "BusModel", "derive_mem_fraction"]

#: Decimal places of the solve-cache key quantization. Exact matching on
#: floats rounded this finely is an identity for the rates the simulator
#: produces (they differ by far more than 1e-12 unless truly equal), while
#: still collapsing bit-level noise from request-order permutations.
_CACHE_DECIMALS = 12


def derive_mem_fraction(rate_txus: float, lam0_us: float, mem_exponent: float = 0.65) -> float:
    """Default latency-sensitive fraction for a thread issuing ``rate_txus``.

    ``m = min(1, (r·lam0)^alpha)``: a thread demanding the streaming
    ceiling ``1/lam0`` or more is fully memory-bound; below it, sensitivity
    falls off sublinearly (``alpha < 1``) because sparse misses overlap
    less with computation. The default exponent matches
    :attr:`repro.config.BusConfig.mem_exponent` (α = 0.65, DESIGN.md §4);
    a config test asserts the two stay in lockstep.

    >>> derive_mem_fraction(23.6, 1 / 23.6)
    1.0
    >>> round(derive_mem_fraction(11.8, 1 / 23.6, 1.0), 2)
    0.5
    >>> derive_mem_fraction(0.0, 1 / 23.6)
    0.0
    """
    if rate_txus < 0:
        raise WorkloadError(f"negative transaction rate {rate_txus}")
    if rate_txus == 0.0:
        return 0.0
    x = rate_txus * lam0_us
    if x >= 1.0:
        return 1.0
    return x**mem_exponent


@dataclass(frozen=True)
class BusRequest:
    """Demand of one running thread.

    Attributes
    ----------
    rate_txus:
        Standalone (unloaded) transaction rate, tx/µs. May exceed the
        streaming ceiling ``1/lam0`` during bursts; the model caps actual
        throughput naturally.
    mem_fraction:
        Latency-sensitive fraction of standalone time, in ``[0, 1]``.
        Use :meth:`BusModel.request_for_rate` unless modelling something
        unusual.
    """

    rate_txus: float
    mem_fraction: float

    def __post_init__(self) -> None:
        if self.rate_txus < 0:
            raise WorkloadError(f"negative transaction rate {self.rate_txus}")
        if not 0.0 <= self.mem_fraction <= 1.0:
            raise WorkloadError(f"mem_fraction {self.mem_fraction} outside [0, 1]")
        if self.rate_txus == 0.0 and self.mem_fraction > 0.0:
            raise WorkloadError("a thread with zero demand cannot have memory stalls")


@dataclass(frozen=True)
class ThreadGrant:
    """Per-thread outcome of a bus solution.

    Attributes
    ----------
    speed:
        Execution speed in standalone-µs per wall-µs, in ``(0, 1]``.
    actual_txus:
        Transaction rate actually issued under contention.
    """

    speed: float
    actual_txus: float


@dataclass(frozen=True)
class BusSolution:
    """Outcome of one contention solve.

    Attributes
    ----------
    grants:
        One :class:`ThreadGrant` per request, in request order.
    utilisation:
        Bus utilisation ``Σ actual / capacity`` in ``[0, 1]`` (equals 1.0
        exactly when saturated).
    latency_us:
        The per-transaction stall latency all threads observe (``lam0`` at
        zero load). For ``max-min`` arbitration this reports ``lam0``.
    total_txus:
        Aggregate actual transaction rate, ``Σ actual``.
    saturated:
        Whether the saturation regime was in effect.
    """

    grants: tuple[ThreadGrant, ...]
    utilisation: float
    latency_us: float
    total_txus: float
    saturated: bool = False


class BusModel:
    """Solver turning thread demands into speeds and actual rates.

    Parameters
    ----------
    config:
        Bus parameters (capacity, ``lam0``, contention coefficient,
        arbitration model). See :class:`repro.config.BusConfig`.

    Examples
    --------
    A single low-demand thread runs at full speed:

    >>> from repro.config import BusConfig
    >>> bus = BusModel(BusConfig())
    >>> sol = bus.solve([bus.request_for_rate(0.5)])
    >>> sol.grants[0].speed > 0.99
    True

    Four streaming threads saturate the bus and sustain exactly its
    capacity (the STREAM experiment):

    >>> sol = bus.solve([BusRequest(23.6, 1.0)] * 4)
    >>> sol.saturated
    True
    >>> abs(sol.total_txus - bus.capacity) < 1e-6
    True
    """

    def __init__(self, config: BusConfig) -> None:
        self._cfg = config
        self._capacity = config.capacity_txus
        self._lam0 = config.lam0_us
        self._c = config.contention_coeff
        self._alpha = config.mem_exponent
        self._tol = config.fixed_point_tol
        self._solve_calls = 0
        self._cache_hits = 0
        self._bisection_steps = 0
        # solve() memo: canonical multiset key -> (key sequence in the
        # miss's request order, solution, quantized request -> grant).
        self._cache: OrderedDict[
            tuple, tuple[tuple, BusSolution, dict[tuple[float, float], ThreadGrant]]
        ] = OrderedDict()
        self._cache_size = config.solve_cache_size
        # request_for_rate memo: the same handful of demand rates recur on
        # every reconfiguration; m = (r·lam0)^alpha is the pow() hot spot.
        self._request_cache: dict[float, BusRequest] = {}

    @property
    def capacity(self) -> float:
        """Sustained capacity in tx/µs."""
        return self._capacity

    @property
    def lam0(self) -> float:
        """Unloaded per-transaction latency in µs."""
        return self._lam0

    @property
    def config(self) -> BusConfig:
        """The configuration this model was built from."""
        return self._cfg

    @property
    def solve_calls(self) -> int:
        """Number of ``solve`` invocations (profiling aid)."""
        return self._solve_calls

    @property
    def cache_hits(self) -> int:
        """``solve`` invocations answered from the memo cache."""
        return self._cache_hits

    @property
    def cache_len(self) -> int:
        """Number of solutions currently memoized."""
        return len(self._cache)

    @property
    def bisection_steps(self) -> int:
        """Aggregate throughput evaluations spent in saturation searches."""
        return self._bisection_steps

    # ------------------------------------------------------------------

    def request_for_rate(self, rate_txus: float) -> BusRequest:
        """Build a request with the default derived memory fraction."""
        req = self._request_cache.get(rate_txus)
        if req is None:
            req = BusRequest(rate_txus, derive_mem_fraction(rate_txus, self._lam0, self._alpha))
            if len(self._request_cache) < 65536:
                self._request_cache[rate_txus] = req
        return req

    def contention_latency(self, rho: float) -> float:
        """Sub-saturation arbitration latency at offered-demand ratio ``rho``.

        ``lam_c = lam0 · (1 + c · rho²)``, a mild monotone inflation.
        """
        if rho < 0:
            raise ValueError(f"negative offered-demand ratio {rho}")
        return self._lam0 * (1.0 + self._c * rho * rho)

    def speed_at_latency(self, req: BusRequest, lam: float) -> float:
        """Execution speed of one thread at base latency ``lam``.

        The thread's *effective* latency includes the arbitration
        unfairness term: ``lam_eff = lam0 + (lam - lam0)·(1 + beta·(1-m))``
        — streaming requesters (m → 1) pay the base contention penalty;
        sparse requesters re-arbitrate per transaction and pay up to
        ``(1 + beta)`` times more of it. At ``lam = lam0`` every thread
        runs at its solo speed regardless of ``beta``.
        """
        m = req.mem_fraction
        if m == 0.0:
            return 1.0
        beta = self._cfg.unfairness
        lam_eff = self._lam0 + (lam - self._lam0) * (1.0 + beta * (1.0 - m))
        denom = (1.0 - m) + m * (lam_eff / self._lam0)
        return 1.0 / denom

    def solve(self, requests: Sequence[BusRequest]) -> BusSolution:
        """Compute the contention equilibrium for the running thread set.

        Results are memoized on the multiset of ``(rate, mem_fraction)``
        pairs (quantized to :data:`_CACHE_DECIMALS` decimals): two calls
        whose requests differ only in order observe the same equilibrium,
        and the per-thread grants are matched back by request value.
        """
        self._solve_calls += 1
        if not requests:
            return BusSolution(
                grants=(), utilisation=0.0, latency_us=self._lam0, total_txus=0.0
            )
        key_seq: tuple | None = None
        key: tuple | None = None
        if self._cache_size > 0:
            key_seq = tuple(
                (round(req.rate_txus, _CACHE_DECIMALS), round(req.mem_fraction, _CACHE_DECIMALS))
                for req in requests
            )
            key = tuple(sorted(key_seq))
            entry = self._cache.get(key)
            if entry is not None:
                self._cache_hits += 1
                self._cache.move_to_end(key)
                stored_seq, solution, grant_map = entry
                if stored_seq == key_seq:
                    return solution
                # Same multiset, different request order: rebuild the
                # grants tuple in the caller's order by value match.
                return replace(solution, grants=tuple(grant_map[q] for q in key_seq))
        if self._cfg.arbitration == "max-min":
            solution = self._solve_max_min(requests)
        else:
            solution = self._solve_shared_latency(requests)
        if key is not None:
            grant_map = {}
            for q, grant in zip(key_seq, solution.grants):  # type: ignore[arg-type]
                grant_map.setdefault(q, grant)
            self._cache[key] = (key_seq, solution, grant_map)
            if len(self._cache) > self._cache_size:
                self._cache.popitem(last=False)
        return solution

    # ------------------------------------------------------------------

    def _speed_params(
        self, requests: Sequence[BusRequest]
    ) -> list[tuple[float, float, float, float]]:
        """Hoist the per-request constants of :meth:`speed_at_latency`.

        Returns ``(rate, m, 1-m, 1 + beta·(1-m))`` per request — everything
        the bisection loop needs that does not depend on ``lam``. The
        arithmetic below reproduces :meth:`speed_at_latency` expression by
        expression, so hoisting changes nothing bit-for-bit.
        """
        beta = self._cfg.unfairness
        return [
            (req.rate_txus, req.mem_fraction, 1.0 - req.mem_fraction,
             1.0 + beta * (1.0 - req.mem_fraction))
            for req in requests
        ]

    def _throughput_hoisted(
        self, params: list[tuple[float, float, float, float]], lam: float
    ) -> float:
        """Aggregate actual rate at ``lam`` using pre-hoisted constants."""
        lam0 = self._lam0
        total = 0.0
        for r, m, one_minus_m, unfair in params:
            if m == 0.0:
                total += r
                continue
            lam_eff = lam0 + (lam - lam0) * unfair
            s = 1.0 / (one_minus_m + m * (lam_eff / lam0))
            total += r * s
        return total

    def _grants_at_hoisted(
        self, params: list[tuple[float, float, float, float]], lam: float
    ) -> tuple[tuple[ThreadGrant, ...], float]:
        lam0 = self._lam0
        grants = []
        total = 0.0
        for r, m, one_minus_m, unfair in params:
            if m == 0.0:
                s = 1.0
            else:
                lam_eff = lam0 + (lam - lam0) * unfair
                s = 1.0 / (one_minus_m + m * (lam_eff / lam0))
            a = r * s
            grants.append(ThreadGrant(speed=s, actual_txus=a))
            total += a
        return tuple(grants), total

    def _throughput(self, requests: Sequence[BusRequest], lam: float) -> float:
        """Aggregate actual rate if every thread saw latency ``lam``."""
        total = 0.0
        for req in requests:
            total += req.rate_txus * self.speed_at_latency(req, lam)
        return total

    def _grants_at(self, requests: Sequence[BusRequest], lam: float) -> tuple[tuple[ThreadGrant, ...], float]:
        grants = []
        total = 0.0
        for req in requests:
            s = self.speed_at_latency(req, lam)
            a = req.rate_txus * s
            grants.append(ThreadGrant(speed=s, actual_txus=a))
            total += a
        return tuple(grants), total

    def _solve_shared_latency(self, requests: Sequence[BusRequest]) -> BusSolution:
        cap = self._capacity
        offered = 0.0
        for req in requests:
            offered += req.rate_txus
        rho = offered / cap
        lam_c = self.contention_latency(rho)
        params = self._speed_params(requests)
        throughput_c = self._throughput_hoisted(params, lam_c)
        if throughput_c <= cap:
            grants, total = self._grants_at_hoisted(params, lam_c)
            return BusSolution(grants, total / cap, lam_c, total, saturated=False)
        # Saturation: find lam with throughput(lam) = capacity. Throughput
        # is strictly decreasing in lam (every request here has m > 0,
        # otherwise throughput could not exceed capacity ... a thread with
        # m == 0 contributes a constant term, which is fine: the remaining
        # threads absorb the slowdown).
        steps = 0
        lo = lam_c
        hi = lam_c * 2.0
        for _ in range(200):
            steps += 1
            if self._throughput_hoisted(params, hi) < cap:
                break
            hi *= 2.0
        else:  # pragma: no cover - pathological (all m == 0)
            self._bisection_steps += steps
            grants, total = self._grants_at_hoisted(params, hi)
            return BusSolution(grants, 1.0, hi, total, saturated=True)
        for _ in range(200):
            steps += 1
            mid = 0.5 * (lo + hi)
            if self._throughput_hoisted(params, mid) > cap:
                lo = mid
            else:
                hi = mid
            if hi - lo < self._tol * self._lam0:
                break
        self._bisection_steps += steps
        lam = 0.5 * (lo + hi)
        grants, total = self._grants_at_hoisted(params, lam)
        return BusSolution(grants, 1.0, lam, total, saturated=True)

    def _solve_max_min(self, requests: Sequence[BusRequest]) -> BusSolution:
        """Max-min fair division of capacity among demands (ablation ABL-A).

        Each thread *wants* ``r_i`` tx/µs. Bandwidth is allocated max-min
        fairly; a thread whose demand is not fully granted is
        bandwidth-limited: its progress scales with its grant ratio,
        ``s = alloc / r`` (its issue rate then exactly equals its
        allocation). Fully-granted threads run at solo speed. There is no
        sub-saturation arbitration term in this variant — the idealized
        fair bus the real platform is *not*.
        """
        cap = self._capacity
        rates = [req.rate_txus for req in requests]
        allocs = self._max_min_allocation(rates, cap)
        grants = []
        total = 0.0
        for req, alloc in zip(requests, allocs):
            if req.rate_txus <= 0.0:
                grants.append(ThreadGrant(speed=1.0, actual_txus=0.0))
                continue
            g = min(1.0, alloc / req.rate_txus)
            a = req.rate_txus * g
            grants.append(ThreadGrant(speed=g, actual_txus=a))
            total += a
        saturated = sum(rates) > cap
        return BusSolution(tuple(grants), min(total / cap, 1.0), self._lam0, total, saturated)

    @staticmethod
    def _max_min_allocation(demands: Sequence[float], capacity: float) -> list[float]:
        """Classic water-filling max-min fair allocation.

        >>> BusModel._max_min_allocation([1.0, 2.0, 10.0], 6.0)
        [1.0, 2.0, 3.0]
        """
        n = len(demands)
        alloc = [0.0] * n
        remaining = capacity
        active = sorted(range(n), key=lambda i: demands[i])
        while active and remaining > 1e-15:
            share = remaining / len(active)
            smallest = active[0]
            need = demands[smallest] - alloc[smallest]
            if need <= share:
                alloc[smallest] = demands[smallest]
                remaining -= need
                active.pop(0)
            else:
                for i in active:
                    alloc[i] += share
                remaining = 0.0
        return alloc
