"""The assembled SMP machine: threads, CPUs, caches, bus, counters.

:class:`Machine` is the simulation's continuous component (the engine's
``Advancer``): between timer events it integrates thread progress
analytically. All rates are piecewise constant between *reconfigurations*
(dispatch changes, demand-segment boundaries, rebuild-debt drains), so the
machine caches one bus solution per configuration and reports the earliest
internal transition as its *horizon*; the engine never advances past it.

Thread execution model
----------------------
Each thread's workload is a quantity of *work* measured in standalone-µs
(one unit = one µs of solo execution on an unloaded machine) plus a demand
process giving its unloaded bus-transaction rate as a piecewise-constant
function of completed work. While dispatched, a thread advances work at
``speed × progress_factor`` where ``speed`` comes from the bus contention
model and ``progress_factor < 1`` only while the thread is rebuilding cache
state after a cold dispatch.

Cache rebuild
-------------
On dispatch, the thread's warmth on that CPU determines a rebuild debt of
compulsory refill transactions (working-set lines not resident). While debt
is positive the thread's bus demand is elevated by the configured fill rate
and its progress scaled by ``rebuild_progress_factor``; the portion of its
actual transaction rate attributable to refills drains the debt. Migrations
(dispatch on a different CPU than the last) multiply the debt by
``1 + migration_sensitivity`` — the knob that reproduces the paper's
observation that very-high-hit-ratio codes (LU CB, 99.53 %; Water-nsqr) are
disproportionately hurt by thread migrations.

Struct-of-arrays thread state
-----------------------------
Every per-thread scalar the hot loops touch lives in a
:class:`repro.hw.store.ThreadStore` row (``row == tid - 1``);
:class:`ThreadState` is an index-backed view over that row, so the object
API policies/audit/faults/tests use and the arrays the batched loops use
are the same storage. With ``solver_mode="vector"`` (and no SMT coupling)
the machine runs fully batched passes over the store — lane entry build,
advance, horizon scan, transition detection — each bit-identical to the
scalar reference loops kept for the other solver modes.
"""

from __future__ import annotations

import math
import time
from typing import Callable, Protocol

import numpy as np

from ..config import MachineConfig
from ..errors import SchedulingError, SimulationError, WorkloadError
from ..sim.engine import Engine
from ..sim.trace import TraceRecorder
from .bus import BusModel, BusRequest
from .cache import CacheL2
from .counters import CounterBank
from .cpu import Cpu
from .store import ThreadStore

__all__ = ["DemandProcess", "Machine", "ThreadState"]

#: Absolute tolerance (in work-µs / lines) for snapping to transitions.
_SNAP = 1e-6

_EMPTY_ROWS = np.empty(0, dtype=np.int64)
_EMPTY_F = np.empty(0)


class DemandProcess(Protocol):
    """Per-thread demand trace: unloaded tx rate as a function of work.

    ``segment(work)`` returns ``(rate_txus, end_work)``: the thread's
    unloaded transaction rate from ``work`` until its completed work reaches
    ``end_work`` (exclusive; ``math.inf`` if the rate never changes again).
    Implementations must be deterministic and support monotone
    non-decreasing ``work`` queries.
    """

    def segment(self, work: float) -> tuple[float, float]:
        """Rate in effect at ``work`` and the work at which it next changes."""
        ...


class ThreadState:
    """Per-thread simulation state: a view over one :class:`ThreadStore` row.

    Created via :meth:`Machine.add_thread`. Scalar fields the hot loops
    read/write (work, debt, flags, CPU placement) are properties backed by
    the store arrays — a write through the object is immediately visible to
    the batched passes and vice versa. Cold metadata (name, demand process,
    dispatch statistics) stays in ordinary slots.
    """

    __slots__ = (
        "_store",
        "_row",
        "tid",
        "app_id",
        "name",
        "demand",
        "migration_sensitivity",
        "created_at",
        "finished_at",
        "dispatch_count",
        "migration_count",
        "io_interval_work_us",
        "io_duration_us",
        "io_count",
    )

    def __init__(
        self,
        store: ThreadStore,
        row: int,
        tid: int,
        app_id: int,
        name: str,
        demand: DemandProcess,
        work_total: float,
        footprint_lines: float,
        migration_sensitivity: float,
        created_at: float,
    ) -> None:
        self._store = store
        self._row = row
        self.tid = tid
        self.app_id = app_id
        self.name = name
        self.demand = demand
        store.work_total[row] = work_total
        store.footprint_lines[row] = footprint_lines
        self.migration_sensitivity = migration_sensitivity
        self.created_at = created_at
        self.finished_at: float | None = None
        self.dispatch_count = 0
        self.migration_count = 0
        # I/O behaviour (the paper's future-work workloads): after every
        # ``io_interval_work_us`` of completed work the thread sleeps for
        # ``io_duration_us`` (disk/network wait), releasing its CPU.
        self.io_interval_work_us: float | None = None
        self.io_duration_us = 0.0
        self.io_count = 0

    # -- store-backed scalars -------------------------------------------------

    @property
    def work_total(self) -> float:
        """Total work to complete, in standalone-µs."""
        return float(self._store.work_total[self._row])

    @work_total.setter
    def work_total(self, value: float) -> None:
        self._store.work_total[self._row] = value

    @property
    def work_done(self) -> float:
        """Completed work, in standalone-µs."""
        return float(self._store.work_done[self._row])

    @work_done.setter
    def work_done(self, value: float) -> None:
        self._store.work_done[self._row] = value

    @property
    def footprint_lines(self) -> float:
        """Working-set size in cache lines."""
        return float(self._store.footprint_lines[self._row])

    @footprint_lines.setter
    def footprint_lines(self, value: float) -> None:
        self._store.footprint_lines[self._row] = value

    @property
    def rebuild_debt(self) -> float:
        """Outstanding compulsory refill transactions."""
        return float(self._store.rebuild_debt[self._row])

    @rebuild_debt.setter
    def rebuild_debt(self, value: float) -> None:
        self._store.rebuild_debt[self._row] = value

    @property
    def run_time_us(self) -> float:
        """Cumulative wall time spent dispatched (µs)."""
        return float(self._store.run_time_us[self._row])

    @run_time_us.setter
    def run_time_us(self, value: float) -> None:
        self._store.run_time_us[self._row] = value

    @property
    def next_io_at_work(self) -> float:
        """Completed-work point of the next I/O sleep (inf = never)."""
        return float(self._store.next_io_at_work[self._row])

    @next_io_at_work.setter
    def next_io_at_work(self, value: float) -> None:
        self._store.next_io_at_work[self._row] = value

    @property
    def cpu(self) -> int | None:
        """The CPU currently running this thread, or ``None``."""
        c = self._store.cpu[self._row]
        return int(c) if c >= 0 else None

    @cpu.setter
    def cpu(self, value: int | None) -> None:
        self._store.cpu[self._row] = -1 if value is None else value

    @property
    def last_cpu(self) -> int | None:
        """The CPU this thread last ran on, or ``None`` (never dispatched)."""
        c = self._store.last_cpu[self._row]
        return int(c) if c >= 0 else None

    @last_cpu.setter
    def last_cpu(self, value: int | None) -> None:
        self._store.last_cpu[self._row] = -1 if value is None else value

    @property
    def blocked(self) -> bool:
        """Blocked by a CPU-manager signal (cannot be dispatched)."""
        return bool(self._store.blocked[self._row])

    @blocked.setter
    def blocked(self, value: bool) -> None:
        self._store.blocked[self._row] = value

    @property
    def stalled(self) -> bool:
        """Hung: occupies its CPU without progressing or issuing traffic."""
        return bool(self._store.stalled[self._row])

    @stalled.setter
    def stalled(self, value: bool) -> None:
        self._store.stalled[self._row] = value

    @property
    def finished(self) -> bool:
        """Completed (or killed); never dispatched again."""
        return bool(self._store.finished[self._row])

    @finished.setter
    def finished(self, value: bool) -> None:
        self._store.finished[self._row] = value

    @property
    def in_io(self) -> bool:
        """Asleep on I/O (off-CPU, not runnable until the wakeup)."""
        return bool(self._store.in_io[self._row])

    @in_io.setter
    def in_io(self, value: bool) -> None:
        self._store.in_io[self._row] = value

    # -- derived --------------------------------------------------------------

    @property
    def running(self) -> bool:
        """Whether the thread is currently dispatched on a CPU."""
        return self._store.cpu[self._row] >= 0

    @property
    def runnable(self) -> bool:
        """Eligible for dispatch: not finished, not blocked, not in I/O."""
        s = self._store
        r = self._row
        return not (s.finished[r] or s.blocked[r] or s.in_io[r])

    @property
    def remaining_work(self) -> float:
        """Work left to completion, in standalone-µs."""
        s = self._store
        r = self._row
        return max(0.0, float(s.work_total[r] - s.work_done[r]))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = f"cpu{self.cpu}" if self.cpu is not None else ("blocked" if self.blocked else "ready")
        return f"<Thread {self.tid} {self.name!r} {where} {self.work_done:.0f}/{self.work_total:.0f}>"


class _Lane:
    """Cached per-running-thread rates for the current configuration.

    Holds the :class:`ThreadState` directly (not just the tid) so the
    integration and horizon loops skip a dict lookup per lane per event.
    Scalar-path structure; the SoA path keeps lane columns as arrays.
    """

    __slots__ = ("state", "speed", "progress_rate", "tx_rate", "fill_rate", "seg_end")

    def __init__(
        self, state: ThreadState, speed: float, progress_rate: float, tx_rate: float,
        fill_rate: float, seg_end: float
    ) -> None:
        self.state = state
        self.speed = speed
        self.progress_rate = progress_rate
        self.tx_rate = tx_rate
        self.fill_rate = fill_rate
        self.seg_end = seg_end

    @property
    def tid(self) -> int:
        return self.state.tid


class Machine:
    """The simulated SMP (see module docstring).

    Parameters
    ----------
    config:
        Machine description (CPUs, bus, cache).
    engine:
        Simulation engine providing the clock.
    trace:
        Optional trace recorder for dispatch/migration records.
    """

    def __init__(
        self,
        config: MachineConfig,
        engine: Engine,
        trace: TraceRecorder | None = None,
    ) -> None:
        self.config = config
        self._engine = engine
        # Note: `trace or default` would be wrong — an empty TraceRecorder
        # has len() == 0 and is falsy.
        self.trace = trace if trace is not None else TraceRecorder(enabled=False)
        self.bus = BusModel(config.bus)
        self.counters = CounterBank()
        #: Struct-of-arrays backing store for every thread's hot scalars
        #: (``row == tid - 1``). Maintained in every solver mode — the
        #: ThreadState views write through to it — so readers (schedulers,
        #: the manager) may use it regardless of the solve path.
        self.store = ThreadStore()
        # Schedulers see logical CPUs; SMT siblings share a core and its L2.
        self.cpus = [Cpu(i) for i in range(config.n_logical_cpus)]
        self.caches = [CacheL2(config.cache) for _ in range(config.n_cpus)]
        self._threads: dict[int, ThreadState] = {}
        self._time = engine.now
        self._dirty = True
        self._lanes: list[_Lane] = []
        self._lane_sig: tuple | None = None
        # Vector mode ("vector" bus solver) arms the machine's batched hot
        # path. SMT couples cores through the sibling factor, so the fully
        # batched SoA pipeline requires smt_ways == 1; vector machines with
        # SMT still get the batched bus solve + advance mirror. All fast
        # paths are bitwise identical to the scalar reference kept for
        # "newton"/"bisect".
        self._vector = config.bus.solver_mode == "vector"
        self._soa = self._vector and config.smt_ways == 1
        # CPU occupancy mirror: _cpu_tid[cpu_id] == tid or -1. Updated by
        # _set_cpu_thread alongside the Cpu objects in every mode.
        self._cpu_tid = np.full(config.n_logical_cpus, -1, dtype=np.int64)
        # Ready queue: tids that are runnable and not on any CPU, i.e. the
        # candidates a scheduler's O(n) pick scan actually considers.
        # Maintained incrementally at every lifecycle edge (dispatch,
        # block, I/O, finish); vector-mode schedulers iterate this instead
        # of rescanning all threads.
        self._ready: set[int] = set()
        self._ready_sorted: list[int] | None = None
        # Vector mode: memoized runnable list/rows (see runnable_threads).
        self._use_runnable_cache = self._vector
        self._runnable_cache: list[ThreadState] | None = None
        self._runnable_rows: np.ndarray | None = None
        self._dirty_mask_hits = 0
        # SoA lane columns (valid between rebuilds; row-aligned with
        # _lane_rows, which lists store rows in CPU order).
        self._lane_rows = _EMPTY_ROWS
        self._lane_states: list[ThreadState] = []
        self._lane_speed = _EMPTY_F
        self._lane_fill = _EMPTY_F
        self._lane_seg = _EMPTY_F
        self._lane_fill_pos: tuple[np.ndarray, np.ndarray] | None = None
        self._soa_sig: tuple | None = None
        self._adv_pr: np.ndarray | None = None
        self._adv_tx: np.ndarray | None = None
        self._adv_caches: list[CacheL2] = []
        self._adv_cacc: list[tuple[CacheL2, int, float]] = []
        self._adv_crows = _EMPTY_ROWS
        # Cached absolute horizon. While the configuration is unchanged,
        # every internal transition time is a *constant* absolute instant
        # (work, debt and I/O positions all advance linearly), so the
        # horizon computed once per configuration stays valid across any
        # number of intervening timer events — the settle-loop fast path.
        self._horizon_abs: float | None = None
        self._bus_utilisation = 0.0
        self._bus_latency = config.bus.lam0_us
        # Settle-loop profiling counters (cheap ints, always maintained);
        # wall-clock phase timers activate only via enable_profiling().
        self._settle_calls = 0
        self._lane_rebuilds = 0
        self._solve_skips = 0
        self._settle_time_s = 0.0
        self._dispatch_time_s = 0.0
        self._profiling = False
        self._exit_listeners: list[Callable[[ThreadState], None]] = []
        self._io_listeners: list[Callable[[ThreadState, bool], None]] = []
        self._next_tid = 1

    # ----------------------------------------------------------------- setup

    @property
    def n_cpus(self) -> int:
        """Number of schedulable (logical) CPUs."""
        return self.config.n_logical_cpus

    def cache_of(self, cpu_id: int) -> CacheL2:
        """The L2 cache serving a logical CPU (shared by SMT siblings)."""
        return self.caches[self.config.core_of(cpu_id)]

    def _smt_factor(self, cpu_id: int) -> float:
        """Execution efficiency of the thread on ``cpu_id`` given siblings.

        1.0 when the thread has its core to itself; ``smt_efficiency``
        when at least one SMT sibling is also busy.
        """
        cfg = self.config
        if cfg.smt_ways == 1:
            return 1.0
        core = cfg.core_of(cpu_id)
        for other in self.cpus:
            if other.cpu_id != cpu_id and cfg.core_of(other.cpu_id) == core and other.tid is not None:
                return cfg.smt_efficiency
        return 1.0

    @property
    def now(self) -> float:
        """The machine's settled-up-to time (µs)."""
        return self._time

    # ------------------------------------------------------------- profiling

    @property
    def settle_calls(self) -> int:
        """Number of ``advance_to`` integrations performed."""
        return self._settle_calls

    @property
    def lane_rebuilds(self) -> int:
        """Times the lane set was rebuilt and the bus re-solved."""
        return self._lane_rebuilds

    @property
    def solve_skips(self) -> int:
        """Dirty settles that skipped the bus solve (signature unchanged)."""
        return self._solve_skips

    @property
    def dirty_mask_hits(self) -> int:
        """Lane entries served from the store's segment cache (SoA mode).

        Counts occupied CPUs whose demand segment was reused from the
        per-thread ``seg_rate``/``seg_end`` store columns during an entry
        rebuild — the ``demand.segment()`` call the SoA pass avoided.
        Always zero in the scalar solver modes.
        """
        return self._dirty_mask_hits

    def enable_profiling(self) -> None:
        """Turn on wall-clock phase timers (per-machine and bus solver)."""
        self._profiling = True
        self.bus.enable_profiling()

    def profile_snapshot(self) -> dict[str, float]:
        """Per-phase counters for this machine (see repro.profiling)."""
        bus = self.bus
        return {
            "settle_calls": float(self._settle_calls),
            "lane_rebuilds": float(self._lane_rebuilds),
            "solve_skips": float(self._solve_skips),
            "dirty_mask_hits": float(self._dirty_mask_hits),
            "settle_time_s": self._settle_time_s,
            "dispatch_time_s": self._dispatch_time_s,
            "solve_calls": float(bus.solve_calls),
            "solve_cache_hits": float(bus.cache_hits),
            "solve_shared_hits": float(bus.shared_hits),
            "solve_warm_starts": float(bus.warm_starts),
            "solve_steps": float(bus.bisection_steps),
            "batched_lanes": float(bus.batched_lanes),
            "solve_time_s": bus.solve_time_s,
        }

    def add_thread(
        self,
        name: str,
        demand: DemandProcess,
        work_total: float,
        app_id: int = 0,
        footprint_lines: float | None = None,
        migration_sensitivity: float = 0.0,
        io_interval_work_us: float | None = None,
        io_duration_us: float = 0.0,
    ) -> ThreadState:
        """Register a new thread; it starts ready (not dispatched).

        Returns the created :class:`ThreadState`; its ``tid`` is unique and
        monotonically assigned (``store row == tid - 1``).
        """
        if work_total <= 0.0:
            raise WorkloadError(f"thread {name!r} must have positive work, got {work_total}")
        if footprint_lines is None:
            footprint_lines = float(self.config.cache.total_lines)
        if footprint_lines < 0:
            raise WorkloadError(f"negative cache footprint for thread {name!r}")
        if migration_sensitivity < 0:
            raise WorkloadError(f"negative migration sensitivity for thread {name!r}")
        tid = self._next_tid
        self._next_tid += 1
        row = self.store.add()
        assert row == tid - 1
        state = ThreadState(
            store=self.store,
            row=row,
            tid=tid,
            app_id=app_id,
            name=name,
            demand=demand,
            work_total=float(work_total),
            footprint_lines=float(footprint_lines),
            migration_sensitivity=float(migration_sensitivity),
            created_at=self._time,
        )
        if io_interval_work_us is not None:
            if io_interval_work_us <= 0:
                raise WorkloadError(f"thread {name!r}: io interval must be positive")
            if io_duration_us < 0:
                raise WorkloadError(f"thread {name!r}: negative io duration")
            state.io_interval_work_us = float(io_interval_work_us)
            state.io_duration_us = float(io_duration_us)
            state.next_io_at_work = float(io_interval_work_us)
        self._threads[tid] = state
        self.counters.register(tid)
        self._invalidate_runnable()
        self._ready.add(tid)
        self._ready_sorted = None
        return state

    def add_exit_listener(self, callback: Callable[[ThreadState], None]) -> None:
        """Register a callback invoked whenever a thread completes its work."""
        self._exit_listeners.append(callback)

    def add_io_listener(self, callback: Callable[[ThreadState, bool], None]) -> None:
        """Register ``callback(thread, asleep)`` for I/O sleep/wake events.

        Fired when a thread starts an I/O sleep (its CPU just freed) and
        when it wakes (it is runnable again). Listeners fire while the
        machine may be ahead of the engine clock; schedulers must defer
        dispatch to a same-instant engine event (the base scheduler's
        plumbing does this).
        """
        self._io_listeners.append(callback)

    # ------------------------------------------------------------- accessors

    def thread(self, tid: int) -> ThreadState:
        """Look up a thread by id."""
        try:
            return self._threads[tid]
        except KeyError:
            raise SchedulingError(f"unknown thread id {tid}") from None

    def threads(self) -> list[ThreadState]:
        """All threads, ordered by tid.

        Tids are assigned monotonically and threads are never removed
        from the registry (finish/kill only flag them), so dict insertion
        order *is* tid order — no sort needed on this hot path (the O(n)
        baseline scheduler scans it every tick).
        """
        return list(self._threads.values())

    def runnable_threads(self) -> list[ThreadState]:
        """Threads eligible for dispatch (unfinished, unblocked), by tid.

        One vectorized mask over the store (finished | blocked | in_io)
        replaces the per-thread attribute scan. Vector mode memoizes the
        list: membership only changes when a thread is added, finishes,
        blocks/unblocks, or enters/leaves I/O — each of those paths drops
        the memo, so a hit returns the same threads (same tid order) the
        scan would.
        """
        if self._runnable_cache is not None:
            return self._runnable_cache
        s = self.store
        n = len(self._threads)
        mask = ~(s.finished[:n] | s.blocked[:n] | s.in_io[:n])
        out = [t for t, ok in zip(self._threads.values(), mask.tolist()) if ok]
        if self._use_runnable_cache:
            self._runnable_cache = out
        return out

    def runnable_rows(self) -> np.ndarray:
        """Store rows of the runnable threads, ascending (memoized).

        Same membership and order as :meth:`runnable_threads`
        (``row == tid - 1``); invalidated at the same lifecycle edges.
        Callers must treat the array as read-only.
        """
        rows = self._runnable_rows
        if rows is None:
            s = self.store
            n = len(self._threads)
            mask = ~(s.finished[:n] | s.blocked[:n] | s.in_io[:n])
            rows = np.nonzero(mask)[0]
            self._runnable_rows = rows
        return rows

    def ready_tids(self) -> list[int]:
        """Tids that are runnable *and* off-CPU, ascending (incremental).

        The candidate set an O(n) pick scan actually dispatches from
        (besides the CPU's incumbent): maintained as a set at every
        lifecycle edge, sorted lazily. Callers must not mutate the list.
        """
        out = self._ready_sorted
        if out is None:
            out = sorted(self._ready)
            self._ready_sorted = out
        return out

    def _invalidate_runnable(self) -> None:
        self._runnable_cache = None
        self._runnable_rows = None

    def _ready_add(self, state: ThreadState) -> None:
        if state.runnable:
            self._ready.add(state.tid)
            self._ready_sorted = None

    def _ready_discard(self, tid: int) -> None:
        if tid in self._ready:
            self._ready.remove(tid)
            self._ready_sorted = None

    def running_tids(self) -> list[int]:
        """Tids currently dispatched, in CPU order (idle CPUs skipped)."""
        occ = self._cpu_tid
        return occ[occ >= 0].tolist()

    @property
    def cpu_tids(self) -> np.ndarray:
        """Occupancy array: ``cpu_tids[cpu_id]`` is the tid or −1 (read-only)."""
        return self._cpu_tid

    @property
    def soa_store(self) -> ThreadStore | None:
        """The store when the fully batched SoA path is armed, else ``None``.

        Schedulers gate their own vectorized scans on this so the scalar
        solver modes keep exercising the reference code paths.
        """
        return self.store if self._soa else None

    def all_finished(self) -> bool:
        """Whether every registered thread has completed."""
        n = len(self._threads)
        return bool(self.store.finished[:n].all())

    @property
    def bus_utilisation(self) -> float:
        """Bus utilisation of the current configuration."""
        self._ensure_solution()
        return self._bus_utilisation

    @property
    def bus_latency_us(self) -> float:
        """Per-transaction latency of the current configuration."""
        self._ensure_solution()
        return self._bus_latency

    @property
    def bus_total_txus(self) -> float:
        """Aggregate *actual* transaction rate of the current configuration.

        Sum of the per-lane granted rates; the bus model guarantees it
        never exceeds the configured capacity (within solver tolerance),
        which is exactly what the audit layer asserts. The SoA cumsum tail
        reproduces the scalar left-to-right fold bit-for-bit.
        """
        self._ensure_solution()
        if self._soa:
            tx = self._adv_tx
            if tx is None or len(tx) == 0:
                return 0.0
            return float(tx.cumsum()[-1])
        return sum(lane.tx_rate for lane in self._lanes)

    def thread_speed(self, tid: int) -> float:
        """Current execution speed of a running thread (0 if not running)."""
        self._ensure_solution()
        if self._soa:
            hit = np.nonzero(self._lane_rows == tid - 1)[0]
            if hit.size:
                return float(self._lane_speed[hit[0]])
            return 0.0
        for lane in self._lanes:
            if lane.tid == tid:
                return lane.speed
        return 0.0

    # ------------------------------------------------------------ scheduling

    def _set_cpu_thread(self, cpu_id: int, tid: int | None) -> int | None:
        """Point a CPU at ``tid`` (or idle), keeping the occupancy mirror."""
        prev = self.cpus[cpu_id].set_thread(tid, self._time)
        self._cpu_tid[cpu_id] = -1 if tid is None else tid
        return prev

    def dispatch(self, cpu_id: int, tid: int | None) -> None:
        """Place thread ``tid`` on CPU ``cpu_id`` (or idle it with ``None``).

        Preempts whatever ran there. A thread already running on another CPU
        is migrated (removed there first). Dispatching a blocked or finished
        thread is a scheduling bug and raises.
        """
        if not self._profiling:
            self._dispatch(cpu_id, tid)
            return
        t0 = time.perf_counter()
        try:
            self._dispatch(cpu_id, tid)
        finally:
            self._dispatch_time_s += time.perf_counter() - t0

    def _dispatch(self, cpu_id: int, tid: int | None) -> None:
        if not 0 <= cpu_id < len(self.cpus):
            raise SchedulingError(f"no such cpu {cpu_id}")
        self._require_settled()
        now = self._time
        cpu = self.cpus[cpu_id]
        if tid is not None and cpu.tid == tid:
            return  # idempotent re-dispatch
        if tid is None:
            prev = self._set_cpu_thread(cpu_id, None)
            if prev is not None:
                pstate = self._threads[prev]
                pstate.cpu = None
                self._ready_add(pstate)
            self._mark_dirty(prev)
            return
        state = self.thread(tid)
        if state.finished:
            raise SchedulingError(f"cannot dispatch finished thread {tid}")
        if state.blocked:
            raise SchedulingError(f"cannot dispatch blocked thread {tid}")
        if state.cpu is not None:
            # migrating from another CPU: vacate it
            self._set_cpu_thread(state.cpu, None)
            state.cpu = None
        prev = self._set_cpu_thread(cpu_id, tid)
        if prev is not None:
            pstate = self._threads[prev]
            pstate.cpu = None
            self._ready_add(pstate)
        migrated = state.last_cpu is not None and state.last_cpu != cpu_id
        self._charge_rebuild(state, cpu_id, migrated)
        state.cpu = cpu_id
        state.last_cpu = cpu_id
        state.dispatch_count += 1
        self._ready_discard(tid)
        if migrated:
            state.migration_count += 1
        self.trace.record(
            now,
            "sched.migrate" if migrated else "sched.dispatch",
            cpu=cpu_id,
            tid=tid,
            preempted=prev,
        )
        self._mark_dirty(tid)
        if prev is not None:
            self._mark_dirty(prev)

    def preempt_thread(self, tid: int) -> None:
        """Remove a thread from whichever CPU it runs on (no-op if not running)."""
        state = self.thread(tid)
        if state.cpu is not None:
            self.dispatch(state.cpu, None)

    def set_blocked(self, tid: int, blocked: bool) -> None:
        """Set a thread's blocked flag (CPU-manager signal semantics).

        Blocking a running thread immediately vacates its CPU — a stopped
        thread cannot execute. Schedulers learn about the freed CPU at their
        next decision point (or via their own listeners).
        """
        state = self.thread(tid)
        if state.finished:
            return
        if state.blocked == blocked:
            return
        self._require_settled()
        state.blocked = blocked
        self._invalidate_runnable()
        if blocked:
            self._ready_discard(tid)
            if state.cpu is not None:
                self.dispatch(state.cpu, None)
        else:
            self._ready_add(state)
        self.trace.record(self._time, "sched.block" if blocked else "sched.unblock", tid=tid)
        self._mark_dirty(tid)

    def set_stalled(self, tid: int, stalled: bool) -> None:
        """Set a thread's stalled flag (fault injection's hang semantics).

        A stalled thread *keeps its CPU* but makes no progress and issues
        no bus traffic — modelling a hung or temporarily wedged process
        that still occupies a processor. Contrast :meth:`set_blocked`,
        which vacates the CPU. Finished threads ignore the call.
        """
        state = self.thread(tid)
        if state.finished:
            return
        if state.stalled == stalled:
            return
        self._require_settled()
        state.stalled = stalled
        self.trace.record(
            self._time, "thread.stall" if stalled else "thread.resume", tid=tid
        )
        if state.cpu is not None:
            self._mark_dirty(tid)

    def kill_thread(self, tid: int) -> None:
        """Terminate a thread mid-flight (fault injection's crash semantics).

        Unlike natural completion the thread's remaining work is *lost*:
        ``work_done`` stays where it was. Everything else mirrors
        :meth:`_finish_thread` — the CPU is freed, the thread is marked
        finished (so schedulers, the manager and the arena treat it as
        departed) and exit listeners fire. Killing a finished thread is a
        no-op.
        """
        state = self.thread(tid)
        if state.finished:
            return
        self._require_settled()
        state.stalled = False
        state.finished = True
        self._invalidate_runnable()
        self._ready_discard(tid)
        state.finished_at = self._time
        if state.cpu is not None:
            self._set_cpu_thread(state.cpu, None)
            state.cpu = None
        self._mark_dirty(tid)
        self.trace.record(self._time, "thread.kill", tid=state.tid, name=state.name)
        for cb in self._exit_listeners:
            cb(state)

    def add_rebuild_debt(self, tid: int, lines: float) -> None:
        """Charge extra rebuild debt to a thread (signal handling, traps).

        Used by the CPU manager's signal path to model the cache
        disturbance of asynchronous signal delivery.
        """
        if lines < 0:
            raise SchedulingError(f"negative rebuild debt {lines}")
        if lines == 0.0:
            return
        state = self.thread(tid)
        if state.finished:
            return
        state.rebuild_debt += lines
        if state.cpu is not None:
            self._mark_dirty(tid)

    def _charge_rebuild(self, state: ThreadState, cpu_id: int, migrated: bool) -> None:
        """Compute the rebuild debt a dispatch incurs."""
        cache = self.cache_of(cpu_id)
        warmth = cache.warmth(state.tid, state.footprint_lines)
        cold_lines = (1.0 - warmth) * min(state.footprint_lines, cache.total_lines)
        if migrated:
            cold_lines *= 1.0 + state.migration_sensitivity
        # Accumulate (don't reset): an interrupted rebuild still owes lines.
        state.rebuild_debt = max(state.rebuild_debt, cold_lines)

    # ----------------------------------------------------------- integration

    def _mark_dirty(self, tid: int | None = None) -> None:
        """Flag a reconfiguration: lanes and the cached horizon are stale.

        ``tid`` names the affected thread when the call site knows it
        (kept for trace-friendly call sites and the scalar reference);
        the SoA entry rebuild is a full-width array pass whose per-thread
        work is already amortized by the store's demand-segment cache, so
        no per-tid dirty set is tracked anymore.
        """
        self._dirty = True
        self._horizon_abs = None

    def _require_settled(self) -> None:
        # The machine may be momentarily *ahead* of the engine clock (exit
        # listeners fire inside advance_to, before the engine commits the new
        # time), but it must never be behind: reconfiguring an unsettled
        # machine would mis-account the elapsed interval.
        if self._engine.now > self._time + 1e-6:
            raise SimulationError(
                f"machine settled to t={self._time} but engine is at t={self._engine.now}; "
                "reconfiguration attempted on an unsettled machine"
            )

    def _ensure_solution(self) -> None:
        if not self._dirty:
            return
        if self._soa:
            self._ensure_solution_soa()
            return
        cfg_cache = self.config.cache
        entries: list[tuple[ThreadState, float, float, float, float]] = []
        for cpu in self.cpus:
            if cpu.tid is None:
                continue
            st = self._threads[cpu.tid]
            if st.stalled:
                # Hung/stalled: the thread pins its CPU but consumes
                # nothing — zero demand, zero fill, zero progress, and no
                # segment boundary can arrive while it isn't progressing.
                entries.append((st, 0.0, 0.0, 0.0, math.inf))
                continue
            rate, seg_end = st.demand.segment(st.work_done)
            if rate < 0:
                raise WorkloadError(f"demand pattern of thread {st.tid} returned negative rate")
            if st.rebuild_debt > _SNAP:
                fill = cfg_cache.rebuild_fill_rate_txus
                r_eff = rate + fill
                pf = cfg_cache.rebuild_progress_factor
            else:
                fill = 0.0
                r_eff = rate
                pf = 1.0
            # SMT: a thread sharing its core runs (and issues) slower.
            smt = self._smt_factor(cpu.cpu_id)
            r_eff *= smt
            fill *= smt
            pf *= smt
            entries.append((st, r_eff, fill, pf, seg_end))
        # A reconfiguration that lands on the exact same running set with
        # the same effective rates (e.g. a re-dispatch cycle, a blocked
        # thread that never ran) leaves the cached lanes and bus solution
        # valid — skip the rebuild entirely.
        sig = tuple((st.tid, r_eff, fill, pf, seg_end) for st, r_eff, fill, pf, seg_end in entries)
        if sig == self._lane_sig:
            self._solve_skips += 1
            if self._vector:
                # The signature does not encode CPU ids, so a migration can
                # leave it unchanged (e.g. a lone running thread moving
                # cores). The scalar advance reads ``st.cpu`` live; the
                # vectorized advance uses the cache handles captured here,
                # so refresh them before reusing the lanes.
                self._adv_caches = [
                    self.cache_of(lane.state.cpu) for lane in self._lanes
                ]
            self._dirty = False
            return
        self._lane_rebuilds += 1
        lanes: list[_Lane] = []
        requests: list[BusRequest] = []
        n = len(entries)
        if self._vector:
            reff_arr = np.empty(n)
            fill_arr = np.empty(n)
            pf_arr = np.empty(n)
            for i, (st, r_eff, fill, pf, seg_end) in enumerate(entries):
                requests.append(self.bus.request_for_rate(r_eff))
                lanes.append(_Lane(st, 0.0, pf, 0.0, fill, seg_end))
                reff_arr[i] = r_eff
                fill_arr[i] = fill
                pf_arr[i] = pf
        else:
            for st, r_eff, fill, pf, seg_end in entries:
                requests.append(self.bus.request_for_rate(r_eff))
                lanes.append(_Lane(st, 0.0, pf, 0.0, fill, seg_end))
        solution = self.bus.solve(requests)
        sp_arr = solution.speeds_arr
        if self._vector and sp_arr is not None and len(sp_arr) == n:
            # Batched grant fold: the solution's lane arrays carry the
            # exact grant bit patterns in request order, so the fold is
            # elementwise — speed·pf for progress, actual·(fill/r_eff)
            # for the refill stream (divide masked to the lanes the
            # scalar fold would touch). One pass writes the lane fields
            # and the structure-of-arrays advance mirror together.
            ac_arr = solution.actuals_arr
            pr_arr = sp_arr * pf_arr
            mask = (reff_arr > 0.0) & (fill_arr > 0.0)
            ratio = np.divide(
                fill_arr, reff_arr, out=np.zeros(n), where=mask
            )
            fill_new = np.where(mask, ac_arr * ratio, fill_arr)
            sp_l = sp_arr.tolist()
            pr_l = pr_arr.tolist()
            tx_l = ac_arr.tolist()
            fl_l = fill_new.tolist()
            for i, lane in enumerate(lanes):
                lane.speed = sp_l[i]
                lane.progress_rate = pr_l[i]
                lane.tx_rate = tx_l[i]
                lane.fill_rate = fl_l[i]
            self._adv_pr = pr_arr
            self._adv_tx = ac_arr
            self._adv_caches = [self.cache_of(lane.state.cpu) for lane in lanes]
        else:
            for lane, grant, req in zip(lanes, solution.grants, requests):
                lane.speed = grant.speed
                lane.progress_rate = grant.speed * lane.progress_rate  # pf folded in
                lane.tx_rate = grant.actual_txus
                if req.rate_txus > 0.0 and lane.fill_rate > 0.0:
                    lane.fill_rate = grant.actual_txus * (lane.fill_rate / req.rate_txus)
            if self._vector:
                # Scalar fold (few lanes, or a reordered memo hit dropped
                # the arrays): build the advance mirror from the lanes.
                pr = np.empty(n)
                tx = np.empty(n)
                for i, lane in enumerate(lanes):
                    pr[i] = lane.progress_rate
                    tx[i] = lane.tx_rate
                self._adv_pr = pr
                self._adv_tx = tx
                self._adv_caches = [self.cache_of(lane.state.cpu) for lane in lanes]
        self._lanes = lanes
        self._lane_sig = sig
        self._bus_utilisation = solution.utilisation
        self._bus_latency = solution.latency_us
        self._dirty = False

    def _ensure_solution_soa(self) -> None:
        """Fully batched lane entry build over the thread store.

        Bit-identity with the scalar entry loop, expression by expression:
        the cached segment rate/end equal the fresh ``demand.segment()``
        values (deterministic process, monotone queries), ``rate + 0.0``
        and the skipped ``× 1.0`` SMT fold are float identities for the
        non-negative rates involved, and the grant fold reuses the exact
        arrays/expressions of the scalar vector path.
        """
        s = self.store
        occ = self._cpu_tid
        rows = occ[occ >= 0] - 1  # store rows in CPU order
        n = rows.size
        wd = s.work_done[rows]
        stalled = s.stalled[rows]
        # Demand-segment cache: segment(work) is deterministic and
        # work_done monotone, so a cached (rate, end) row is valid until
        # work_done reaches end. Only stale rows pay the Python call.
        seg_end = s.seg_end[rows]
        fresh = wd < seg_end
        live = ~stalled
        self._dirty_mask_hits += int(np.count_nonzero(fresh & live))
        refresh = live & ~fresh
        if refresh.any():
            threads = self._threads
            seg_rate_col = s.seg_rate
            seg_end_col = s.seg_end
            for r, w in zip(rows[refresh].tolist(), wd[refresh].tolist()):
                st = threads[r + 1]
                rate, end = st.demand.segment(w)
                if rate < 0:
                    raise WorkloadError(
                        f"demand pattern of thread {r + 1} returned negative rate"
                    )
                seg_rate_col[r] = rate
                seg_end_col[r] = end
            seg_end = s.seg_end[rows]
        rate = s.seg_rate[rows]
        cfg_cache = self.config.cache
        debt_hot = s.rebuild_debt[rows] > _SNAP
        fill = np.where(debt_hot, cfg_cache.rebuild_fill_rate_txus, 0.0)
        pf = np.where(debt_hot, cfg_cache.rebuild_progress_factor, 1.0)
        r_eff = rate + fill
        if stalled.any():
            # Hung/stalled: pins its CPU but consumes nothing; no segment
            # boundary can arrive while it isn't progressing.
            fill = np.where(stalled, 0.0, fill)
            pf = np.where(stalled, 0.0, pf)
            r_eff = np.where(stalled, 0.0, r_eff)
            seg_end = np.where(stalled, np.inf, seg_end)
        sig = self._soa_sig
        if (
            sig is not None
            and np.array_equal(sig[0], rows)
            and np.array_equal(sig[1], r_eff)
            and np.array_equal(sig[2], fill)
            and np.array_equal(sig[3], pf)
            and np.array_equal(sig[4], seg_end)
        ):
            self._solve_skips += 1
            # CPU ids are not in the signature, so a migration can skip
            # the solve yet move lanes across caches — refresh the cache
            # handles from the store's live placement (the SoA port of
            # the stale-_adv_caches-on-migration fix).
            self._bind_lane_handles(rows)
            self._dirty = False
            return
        self._lane_rebuilds += 1
        requests = self.bus.requests_for_rates(r_eff.tolist())
        solution = self.bus.solve(requests)
        sp = solution.speeds_arr
        if sp is not None and len(sp) == n:
            ac = solution.actuals_arr
        else:
            # Scalar solve (few lanes) or a reordered memo hit dropped the
            # arrays: lift the grant columns; the fold below is then the
            # same expressions the scalar fold evaluates per lane.
            sp = np.fromiter((g.speed for g in solution.grants), dtype=np.float64, count=n)
            ac = np.fromiter(
                (g.actual_txus for g in solution.grants), dtype=np.float64, count=n
            )
        pr = sp * pf
        mask = (r_eff > 0.0) & (fill > 0.0)
        ratio = np.divide(fill, r_eff, out=np.zeros(n), where=mask)
        fill_eff = np.where(mask, ac * ratio, fill)
        self._adv_pr = pr
        self._adv_tx = ac
        self._lane_rows = rows
        self._lane_speed = sp
        self._lane_fill = fill_eff
        self._lane_seg = seg_end
        threads = self._threads
        row_list = rows.tolist()
        self._lane_states = [threads[r + 1] for r in row_list]
        self._adv_crows = self.counters.rows_of([r + 1 for r in row_list])
        fmask = fill_eff > 0.0
        self._lane_fill_pos = (rows[fmask], fill_eff[fmask]) if fmask.any() else None
        self._bind_lane_handles(rows)
        self._soa_sig = (rows, r_eff, fill, pf, seg_end)
        self._lanes = []
        self._lane_sig = None
        self._bus_utilisation = solution.utilisation
        self._bus_latency = solution.latency_us
        self._dirty = False

    def _bind_lane_handles(self, rows: np.ndarray) -> None:
        """(Re)capture per-lane cache accounting handles from live placement."""
        s = self.store
        cache_of = self.cache_of
        fps = s.footprint_lines
        self._adv_cacc = [
            (cache_of(c), r + 1, float(fps[r]))
            for c, r in zip(s.cpu[rows].tolist(), rows.tolist())
        ]

    def horizon(self) -> float:
        """Earliest absolute time of the next internal transition.

        The value is computed once per configuration and cached: while the
        lane set and rates are unchanged, work, debt and I/O positions all
        advance linearly, so every candidate transition is a fixed absolute
        instant. The engine queries the horizon on every loop iteration —
        between reconfigurations this is now an O(1) lookup instead of an
        O(lanes) scan (the settle-loop fast path).
        """
        self._ensure_solution()
        h = self._horizon_abs
        if h is not None and h > self._time:
            # Only trust a cached horizon that is strictly in the future.
            # A cached value equal to `now` means the engine already
            # advanced to it and the transition pass left a residual that
            # didn't snap (sub-ulp drain at large absolute times) — serving
            # it again would pin the engine. Recomputing routes such states
            # through the nextafter nudge below, which guarantees forward
            # progress. In healthy runs a cached `h == now` is never
            # re-consulted (a settle fires transitions and marks dirty
            # first), so this costs nothing on the fast path.
            return h
        if self._soa:
            earliest = self._horizon_soa()
        else:
            earliest = math.inf
            for lane in self._lanes:
                st = lane.state
                if lane.progress_rate > 0.0:
                    t_done = st.remaining_work / lane.progress_rate
                    earliest = min(earliest, t_done)
                    if math.isfinite(lane.seg_end):
                        t_seg = max(0.0, lane.seg_end - st.work_done) / lane.progress_rate
                        earliest = min(earliest, t_seg)
                    if math.isfinite(st.next_io_at_work):
                        t_io = max(0.0, st.next_io_at_work - st.work_done) / lane.progress_rate
                        earliest = min(earliest, t_io)
                if lane.fill_rate > 0.0 and st.rebuild_debt > 0.0:
                    earliest = min(earliest, st.rebuild_debt / lane.fill_rate)
        h = self._time + earliest if math.isfinite(earliest) else math.inf
        if earliest > 0.0 and h <= self._time:
            # Sub-ulp transition at a large absolute time: the residual is
            # real (above the snap tolerance, or transitions would already
            # have cleared it) but its drain time rounds to zero against
            # `now`, which would pin the engine at the current instant.
            # Quantize up to the next representable time so a positive dt
            # integrates and the residual drains. earliest == 0.0 keeps
            # returning `now` exactly: zero-time settles rely on it.
            h = math.nextafter(self._time, math.inf)
        self._horizon_abs = h
        return h

    def _horizon_soa(self) -> float:
        """One masked-divide pass per event family + a single ``min``.

        ``min`` over floats is exact and order-independent (no NaNs
        arise: divides are masked to positive denominators), so the value
        equals the scalar loop's running-minimum chain bit-for-bit.
        """
        rows = self._lane_rows
        n = rows.size
        if n == 0:
            return math.inf
        s = self.store
        pr = self._adv_pr
        done = s.work_done[rows]
        pos = pr > 0.0
        t = np.full(n, np.inf)
        rem = np.maximum(0.0, s.work_total[rows] - done)
        np.divide(rem, pr, out=t, where=pos)
        earliest = t.min()
        seg = self._lane_seg
        m = pos & np.isfinite(seg)
        if m.any():
            t.fill(np.inf)
            np.divide(np.maximum(0.0, seg - done), pr, out=t, where=m)
            earliest = min(earliest, t.min())
        nio = s.next_io_at_work[rows]
        m = pos & np.isfinite(nio)
        if m.any():
            t.fill(np.inf)
            np.divide(np.maximum(0.0, nio - done), pr, out=t, where=m)
            earliest = min(earliest, t.min())
        fill = self._lane_fill
        debt = s.rebuild_debt[rows]
        m = (fill > 0.0) & (debt > 0.0)
        if m.any():
            t.fill(np.inf)
            np.divide(debt, fill, out=t, where=m)
            earliest = min(earliest, t.min())
        return float(earliest)

    def advance_to(self, t: float) -> None:
        """Integrate machine state forward to absolute time ``t``."""
        if not self._profiling:
            self._advance_to(t)
            return
        t0 = time.perf_counter()
        try:
            self._advance_to(t)
        finally:
            self._settle_time_s += time.perf_counter() - t0

    def _advance_to(self, t: float) -> None:
        if t < self._time - 1e-9:
            raise SimulationError(f"machine cannot advance backwards ({self._time} -> {t})")
        self._settle_calls += 1
        self._ensure_solution()
        dt = t - self._time
        if dt > 0.0:
            if self._soa:
                if self._lane_rows.size:
                    self._advance_lanes_soa(dt)
            elif self._lanes:
                if self._vector:
                    self._advance_lanes_vector(dt)
                else:
                    for lane in self._lanes:
                        st = lane.state
                        st.work_done += lane.progress_rate * dt
                        st.run_time_us += dt
                        tx = lane.tx_rate * dt
                        self.counters.credit(
                            lane.tid,
                            bus_transactions=tx,
                            cycles_us=dt,
                            work_us=lane.progress_rate * dt,
                        )
                        assert st.cpu is not None
                        self.cache_of(st.cpu).account_run(st.tid, st.footprint_lines, tx)
                        if lane.fill_rate > 0.0:
                            st.rebuild_debt = max(0.0, st.rebuild_debt - lane.fill_rate * dt)
        self._time = t
        if self._soa:
            self._process_transitions_soa()
        else:
            self._process_transitions()

    def _advance_lanes_vector(self, dt: float) -> None:
        """Batched lane integration (vector mode with SMT): same bits.

        The per-lane work/transaction increments come from one elementwise
        numpy product each (``rate × dt`` rounds identically to the scalar
        multiply), counters are credited through the bank's unchecked
        fast path, and cache accounting goes through
        :meth:`repro.hw.cache.CacheL2.account_run_fast` with the L2
        references hoisted at lane-rebuild time. Every mutation is
        byte-equal to the scalar loop in ``_advance_to``.
        """
        dwork = (self._adv_pr * dt).tolist()
        dtx = (self._adv_tx * dt).tolist()
        credit = self.counters.credit_run
        caches = self._adv_caches
        for i, lane in enumerate(self._lanes):
            st = lane.state
            dw = dwork[i]
            tx = dtx[i]
            st.work_done += dw
            st.run_time_us += dt
            credit(st.tid, tx, dt, dw)
            caches[i].account_run_fast(st.tid, st.footprint_lines, tx)
            if lane.fill_rate > 0.0:
                st.rebuild_debt = max(0.0, st.rebuild_debt - lane.fill_rate * dt)

    def _advance_lanes_soa(self, dt: float) -> None:
        """Store-wide lane integration: three fancy-indexed adds + caches.

        ``work_done[rows] += pr·dt`` gathers, adds and scatters exactly
        the scalar ``st.work_done += dw`` per lane (rows are unique);
        counters batch through :meth:`CounterBank.credit_rows`; the debt
        drain is a masked ``maximum`` over the fill-positive lanes. Only
        the per-core L2 accounting stays a Python loop (each lane owns a
        distinct cache object with dict state), with its handles hoisted
        at rebuild time.
        """
        s = self.store
        rows = self._lane_rows
        dwork = self._adv_pr * dt
        dtx = self._adv_tx * dt
        s.work_done[rows] += dwork
        s.run_time_us[rows] += dt
        self.counters.credit_rows(self._adv_crows, dtx, dt, dwork)
        for (cache, tid, fp), tx in zip(self._adv_cacc, dtx.tolist()):
            cache.account_run_fast(tid, fp, tx)
        fsel = self._lane_fill_pos
        if fsel is not None:
            frows, frate = fsel
            s.rebuild_debt[frows] = np.maximum(0.0, s.rebuild_debt[frows] - frate * dt)

    def _process_transitions(self) -> None:
        """Handle completions, segment boundaries and debt drains at `now`."""
        for lane in list(self._lanes):
            st = lane.state
            if st.finished:
                continue
            if st.work_done >= st.work_total - _SNAP:
                self._finish_thread(st)
                continue
            if st.work_done >= st.next_io_at_work - _SNAP and not st.in_io:
                self._start_io(st)
                continue
            if math.isfinite(lane.seg_end) and st.work_done >= lane.seg_end - _SNAP:
                st.work_done = max(st.work_done, lane.seg_end)
                self._mark_dirty(st.tid)  # demand rate changes at the boundary
            if lane.fill_rate > 0.0 and st.rebuild_debt <= _SNAP:
                st.rebuild_debt = 0.0
                self._mark_dirty(st.tid)

    def _process_transitions_soa(self) -> None:
        """Masked transition detection; scalar commit per flagged lane.

        The candidate mask evaluates the scalar loop's conditions over the
        lane columns in one pass; the (rare) flagged lanes then replay the
        original per-lane logic in lane order, so listeners, trace records
        and engine events fire exactly as the reference loop fires them.
        A lane's conditions depend only on its own thread's state, so the
        pre-commit snapshot the mask reads cannot miss a transition that
        the in-loop mutations of *other* lanes would have created.
        """
        rows = self._lane_rows
        if rows.size == 0:
            return
        s = self.store
        done = s.work_done[rows]
        cand = done >= s.work_total[rows] - _SNAP
        cand |= (done >= s.next_io_at_work[rows] - _SNAP) & ~s.in_io[rows]
        seg = self._lane_seg
        cand |= np.isfinite(seg) & (done >= seg - _SNAP)
        cand |= (self._lane_fill > 0.0) & (s.rebuild_debt[rows] <= _SNAP)
        if not cand.any():
            return
        states = self._lane_states
        fill = self._lane_fill
        for i in np.nonzero(cand)[0].tolist():
            st = states[i]
            if st.finished:
                continue
            if st.work_done >= st.work_total - _SNAP:
                self._finish_thread(st)
                continue
            if st.work_done >= st.next_io_at_work - _SNAP and not st.in_io:
                self._start_io(st)
                continue
            seg_end = float(seg[i])
            if math.isfinite(seg_end) and st.work_done >= seg_end - _SNAP:
                st.work_done = max(st.work_done, seg_end)
                self._mark_dirty(st.tid)  # demand rate changes at the boundary
            if fill[i] > 0.0 and st.rebuild_debt <= _SNAP:
                st.rebuild_debt = 0.0
                self._mark_dirty(st.tid)

    def _start_io(self, st: ThreadState) -> None:
        """Put a thread to sleep on I/O: free its CPU, arm the wakeup."""
        st.in_io = True
        self._invalidate_runnable()
        self._ready_discard(st.tid)
        st.io_count += 1
        assert st.io_interval_work_us is not None
        st.next_io_at_work = st.work_done + st.io_interval_work_us
        if st.cpu is not None:
            self._set_cpu_thread(st.cpu, None)
            st.cpu = None
        self._mark_dirty(st.tid)
        self.trace.record(self._time, "thread.iosleep", tid=st.tid)
        for cb in self._io_listeners:
            cb(st, True)
        # The wakeup is a plain engine event; the machine is never behind
        # the engine when it fires, so listeners may dispatch directly.
        self._engine.schedule_at(
            self._time + st.io_duration_us, lambda: self._end_io(st.tid)
        )

    def _end_io(self, tid: int) -> None:
        st = self._threads[tid]
        if st.finished or not st.in_io:
            return
        st.in_io = False
        self._invalidate_runnable()
        self._ready_add(st)
        self._mark_dirty(st.tid)
        self.trace.record(self._time, "thread.iowake", tid=st.tid)
        for cb in self._io_listeners:
            cb(st, False)

    def _finish_thread(self, st: ThreadState) -> None:
        st.work_done = st.work_total
        st.finished = True
        self._invalidate_runnable()
        self._ready_discard(st.tid)
        st.finished_at = self._time
        if st.cpu is not None:
            self._set_cpu_thread(st.cpu, None)
            st.cpu = None
        self._mark_dirty(st.tid)
        self.trace.record(self._time, "thread.exit", tid=st.tid, name=st.name)
        for cb in self._exit_listeners:
            cb(st)
