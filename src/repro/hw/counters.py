"""Per-thread performance-monitoring counters.

Real Xeons expose bus-transaction counts through hardware performance
counters; the paper's CPU manager reads them through Mikael Pettersson's
``perfctr`` Linux driver, which *virtualizes* counters per thread (a
thread's counter only advances while that thread runs). This module is the
simulated equivalent: the machine credits each running thread's counters
during every settling interval, and readers (the :mod:`repro.hw.perfctr`
driver facade, the CPU-manager runtime) take snapshots.

Counters are monotone non-decreasing by construction; :class:`CounterBank`
enforces this and raises :class:`repro.errors.CounterError` on misuse, which
property tests rely on.

Storage is struct-of-arrays: three float64 arrays (transactions, cycles,
work) indexed by a per-bank row, so the machine's batched advance can
credit every running lane with three fancy-indexed adds
(:meth:`CounterBank.credit_rows`) and the manager can accumulate an
application's counters without a per-thread dict walk
(:meth:`CounterBank.read_rows`). The aggregate in ``read_rows`` is a
``cumsum`` tail — bit-identical to the left-to-right scalar fold of
:meth:`read_many`, which stays as the reference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import CounterError

__all__ = ["CounterSnapshot", "CounterBank"]


@dataclass(frozen=True)
class CounterSnapshot:
    """Immutable reading of one thread's counters.

    Attributes
    ----------
    bus_transactions:
        Cumulative bus transactions issued by the thread.
    cycles_us:
        Cumulative wall time the thread spent dispatched on a CPU (µs).
        (The simulator's stand-in for the cycle counter.)
    work_us:
        Cumulative useful work completed, in standalone-µs.
    """

    bus_transactions: float
    cycles_us: float
    work_us: float

    def delta(self, earlier: "CounterSnapshot") -> "CounterSnapshot":
        """Counter increments since an ``earlier`` snapshot of the same thread.

        Raises
        ------
        CounterError
            If any field would go negative (snapshots out of order).
        """
        d_tx = self.bus_transactions - earlier.bus_transactions
        d_cy = self.cycles_us - earlier.cycles_us
        d_wk = self.work_us - earlier.work_us
        if d_tx < -1e-9 or d_cy < -1e-9 or d_wk < -1e-9:
            raise CounterError("counter snapshots compared out of order (negative delta)")
        return CounterSnapshot(max(d_tx, 0.0), max(d_cy, 0.0), max(d_wk, 0.0))


class CounterBank:
    """Monotone counters for a set of threads, stored as float64 arrays.

    The machine is the only writer; any number of readers may snapshot.

    Examples
    --------
    >>> bank = CounterBank()
    >>> bank.register(1)
    >>> bank.credit(1, bus_transactions=10.0, cycles_us=2.0, work_us=1.5)
    >>> bank.read(1).bus_transactions
    10.0
    """

    def __init__(self) -> None:
        self._row: dict[int, int] = {}
        capacity = 64
        self._tx = np.zeros(capacity)
        self._cycles = np.zeros(capacity)
        self._work = np.zeros(capacity)

    def _grow(self) -> None:
        n = len(self._row)
        capacity = self._tx.size * 2
        for name in ("_tx", "_cycles", "_work"):
            old = getattr(self, name)
            fresh = np.zeros(capacity)
            fresh[:n] = old[:n]
            setattr(self, name, fresh)

    def register(self, tid: int) -> None:
        """Start counting for thread ``tid`` (all counters at zero).

        Raises
        ------
        CounterError
            If ``tid`` is already registered.
        """
        if tid in self._row:
            raise CounterError(f"thread {tid} already registered")
        row = len(self._row)
        if row == self._tx.size:
            self._grow()
        self._tx[row] = 0.0
        self._cycles[row] = 0.0
        self._work[row] = 0.0
        self._row[tid] = row

    def known(self, tid: int) -> bool:
        """Whether ``tid`` has been registered."""
        return tid in self._row

    def row_of(self, tid: int) -> int:
        """The array row backing ``tid`` (for batched credit/read paths).

        Raises
        ------
        CounterError
            If ``tid`` is unknown.
        """
        try:
            return self._row[tid]
        except KeyError:
            raise CounterError(f"row of unknown thread {tid}") from None

    def rows_of(self, tids: list[int]) -> np.ndarray:
        """Array rows for several threads, in input order."""
        try:
            return np.fromiter((self._row[t] for t in tids), dtype=np.int64, count=len(tids))
        except KeyError as exc:
            raise CounterError(f"row of unknown thread {exc.args[0]}") from None

    def credit(
        self,
        tid: int,
        bus_transactions: float = 0.0,
        cycles_us: float = 0.0,
        work_us: float = 0.0,
    ) -> None:
        """Add increments to a thread's counters.

        Raises
        ------
        CounterError
            If ``tid`` is unknown or any increment is negative.
        """
        row = self._row.get(tid)
        if row is None:
            raise CounterError(f"credit for unknown thread {tid}")
        if bus_transactions < 0 or cycles_us < 0 or work_us < 0:
            raise CounterError(
                f"negative counter increment for thread {tid}: "
                f"tx={bus_transactions} cycles={cycles_us} work={work_us}"
            )
        self._tx[row] += bus_transactions
        self._cycles[row] += cycles_us
        self._work[row] += work_us

    def credit_run(
        self,
        tid: int,
        bus_transactions: float,
        cycles_us: float,
        work_us: float,
    ) -> None:
        """Unchecked :meth:`credit` for the machine's settle loop.

        Skips the registration and negativity checks: the machine only
        credits lanes it built from registered, dispatched threads, and
        the increments are products of non-negative rates and a positive
        ``dt``. A ``KeyError`` here indicates a machine bug, not misuse.
        """
        row = self._row[tid]
        self._tx[row] += bus_transactions
        self._cycles[row] += cycles_us
        self._work[row] += work_us

    def credit_rows(
        self,
        rows: np.ndarray,
        bus_transactions: np.ndarray,
        cycles_us: float,
        work_us: np.ndarray,
    ) -> None:
        """Batched unchecked credit for the SoA advance (unique ``rows``).

        ``cycles_us`` is the settle interval, common to every lane; the
        per-row transaction/work increments are elementwise products the
        caller already formed. Each fancy-indexed add performs exactly the
        scalar ``+=`` of :meth:`credit_run` per row, so the stored bits
        match the per-lane reference loop.
        """
        self._tx[rows] += bus_transactions
        self._cycles[rows] += cycles_us
        self._work[rows] += work_us

    def read(self, tid: int) -> CounterSnapshot:
        """Snapshot one thread's counters.

        Raises
        ------
        CounterError
            If ``tid`` is unknown.
        """
        row = self._row.get(tid)
        if row is None:
            raise CounterError(f"read of unknown thread {tid}")
        return CounterSnapshot(
            float(self._tx[row]), float(self._cycles[row]), float(self._work[row])
        )

    def read_many(self, tids: list[int]) -> CounterSnapshot:
        """Accumulated snapshot over several threads (e.g. one application).

        This mirrors the paper's runtime library, which polls the counters
        of all application threads and accumulates the values before writing
        the result to the shared arena. Reference path for
        :meth:`read_rows` (same bits, per-thread loop).
        """
        tx = cy = wk = 0.0
        for tid in tids:
            snap = self.read(tid)
            tx += snap.bus_transactions
            cy += snap.cycles_us
            wk += snap.work_us
        return CounterSnapshot(tx, cy, wk)

    def read_rows(self, rows: np.ndarray) -> CounterSnapshot:
        """Accumulated snapshot over pre-resolved rows (see :meth:`rows_of`).

        The sums are ``cumsum`` tails: numpy's cumulative sum accumulates
        strictly left to right, which reproduces ``read_many``'s
        ``0.0 + x0 + x1 + …`` fold bit-for-bit (``0.0 + x == x`` for the
        non-negative counter values).
        """
        if rows.size == 0:
            return CounterSnapshot(0.0, 0.0, 0.0)
        return CounterSnapshot(
            float(self._tx[rows].cumsum()[-1]),
            float(self._cycles[rows].cumsum()[-1]),
            float(self._work[rows].cumsum()[-1]),
        )

    def threads(self) -> list[int]:
        """All registered thread ids, sorted."""
        return sorted(self._row)
