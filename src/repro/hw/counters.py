"""Per-thread performance-monitoring counters.

Real Xeons expose bus-transaction counts through hardware performance
counters; the paper's CPU manager reads them through Mikael Pettersson's
``perfctr`` Linux driver, which *virtualizes* counters per thread (a
thread's counter only advances while that thread runs). This module is the
simulated equivalent: the machine credits each running thread's counters
during every settling interval, and readers (the :mod:`repro.hw.perfctr`
driver facade, the CPU-manager runtime) take snapshots.

Counters are monotone non-decreasing by construction; :class:`CounterBank`
enforces this and raises :class:`repro.errors.CounterError` on misuse, which
property tests rely on.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CounterError

__all__ = ["CounterSnapshot", "CounterBank"]


@dataclass(frozen=True)
class CounterSnapshot:
    """Immutable reading of one thread's counters.

    Attributes
    ----------
    bus_transactions:
        Cumulative bus transactions issued by the thread.
    cycles_us:
        Cumulative wall time the thread spent dispatched on a CPU (µs).
        (The simulator's stand-in for the cycle counter.)
    work_us:
        Cumulative useful work completed, in standalone-µs.
    """

    bus_transactions: float
    cycles_us: float
    work_us: float

    def delta(self, earlier: "CounterSnapshot") -> "CounterSnapshot":
        """Counter increments since an ``earlier`` snapshot of the same thread.

        Raises
        ------
        CounterError
            If any field would go negative (snapshots out of order).
        """
        d_tx = self.bus_transactions - earlier.bus_transactions
        d_cy = self.cycles_us - earlier.cycles_us
        d_wk = self.work_us - earlier.work_us
        if d_tx < -1e-9 or d_cy < -1e-9 or d_wk < -1e-9:
            raise CounterError("counter snapshots compared out of order (negative delta)")
        return CounterSnapshot(max(d_tx, 0.0), max(d_cy, 0.0), max(d_wk, 0.0))


class CounterBank:
    """Monotone counters for a set of threads.

    The machine is the only writer; any number of readers may snapshot.

    Examples
    --------
    >>> bank = CounterBank()
    >>> bank.register(1)
    >>> bank.credit(1, bus_transactions=10.0, cycles_us=2.0, work_us=1.5)
    >>> bank.read(1).bus_transactions
    10.0
    """

    def __init__(self) -> None:
        self._tx: dict[int, float] = {}
        self._cycles: dict[int, float] = {}
        self._work: dict[int, float] = {}

    def register(self, tid: int) -> None:
        """Start counting for thread ``tid`` (all counters at zero).

        Raises
        ------
        CounterError
            If ``tid`` is already registered.
        """
        if tid in self._tx:
            raise CounterError(f"thread {tid} already registered")
        self._tx[tid] = 0.0
        self._cycles[tid] = 0.0
        self._work[tid] = 0.0

    def known(self, tid: int) -> bool:
        """Whether ``tid`` has been registered."""
        return tid in self._tx

    def credit(
        self,
        tid: int,
        bus_transactions: float = 0.0,
        cycles_us: float = 0.0,
        work_us: float = 0.0,
    ) -> None:
        """Add increments to a thread's counters.

        Raises
        ------
        CounterError
            If ``tid`` is unknown or any increment is negative.
        """
        if tid not in self._tx:
            raise CounterError(f"credit for unknown thread {tid}")
        if bus_transactions < 0 or cycles_us < 0 or work_us < 0:
            raise CounterError(
                f"negative counter increment for thread {tid}: "
                f"tx={bus_transactions} cycles={cycles_us} work={work_us}"
            )
        self._tx[tid] += bus_transactions
        self._cycles[tid] += cycles_us
        self._work[tid] += work_us

    def credit_run(
        self,
        tid: int,
        bus_transactions: float,
        cycles_us: float,
        work_us: float,
    ) -> None:
        """Unchecked :meth:`credit` for the machine's settle loop.

        Skips the registration and negativity checks: the machine only
        credits lanes it built from registered, dispatched threads, and
        the increments are products of non-negative rates and a positive
        ``dt``. A ``KeyError`` here indicates a machine bug, not misuse.
        """
        self._tx[tid] += bus_transactions
        self._cycles[tid] += cycles_us
        self._work[tid] += work_us

    def read(self, tid: int) -> CounterSnapshot:
        """Snapshot one thread's counters.

        Raises
        ------
        CounterError
            If ``tid`` is unknown.
        """
        try:
            return CounterSnapshot(self._tx[tid], self._cycles[tid], self._work[tid])
        except KeyError:
            raise CounterError(f"read of unknown thread {tid}") from None

    def read_many(self, tids: list[int]) -> CounterSnapshot:
        """Accumulated snapshot over several threads (e.g. one application).

        This mirrors the paper's runtime library, which polls the counters
        of all application threads and accumulates the values before writing
        the result to the shared arena.
        """
        tx = cy = wk = 0.0
        for tid in tids:
            snap = self.read(tid)
            tx += snap.bus_transactions
            cy += snap.cycles_us
            wk += snap.work_us
        return CounterSnapshot(tx, cy, wk)

    def threads(self) -> list[int]:
        """All registered thread ids, sorted."""
        return sorted(self._tx)
