"""Processor bookkeeping.

A :class:`Cpu` tracks which thread is dispatched on it and accounts idle
time, dispatch counts and context switches. It holds no scheduling policy —
schedulers call :meth:`Cpu.set_thread` through the machine.
"""

from __future__ import annotations

from ..errors import SchedulingError

__all__ = ["Cpu"]


class Cpu:
    """One physical processor of the simulated SMP.

    Attributes
    ----------
    cpu_id:
        Zero-based processor index.
    """

    __slots__ = (
        "cpu_id",
        "_tid",
        "_idle_since",
        "_idle_total",
        "_dispatches",
        "_switches",
    )

    def __init__(self, cpu_id: int) -> None:
        self.cpu_id = cpu_id
        self._tid: int | None = None
        self._idle_since: float = 0.0
        self._idle_total: float = 0.0
        self._dispatches: int = 0
        self._switches: int = 0

    @property
    def tid(self) -> int | None:
        """Thread currently dispatched here, or ``None`` if idle."""
        return self._tid

    @property
    def idle(self) -> bool:
        """Whether the CPU is idle."""
        return self._tid is None

    @property
    def dispatches(self) -> int:
        """Total dispatch operations (idle → running or thread change)."""
        return self._dispatches

    @property
    def context_switches(self) -> int:
        """Dispatches that replaced a different thread (running → running)."""
        return self._switches

    def idle_time(self, now: float) -> float:
        """Cumulative idle time up to ``now`` (µs)."""
        total = self._idle_total
        if self._tid is None:
            total += now - self._idle_since
        return total

    def set_thread(self, tid: int | None, now: float) -> int | None:
        """Dispatch ``tid`` here (or idle the CPU with ``None``).

        Returns the thread that was previously running, if any.

        Raises
        ------
        SchedulingError
            If asked to dispatch the thread that is already running here
            (schedulers must treat re-dispatch as a no-op themselves; the
            machine filters these, so reaching this indicates a bug).
        """
        prev = self._tid
        if tid is not None and tid == prev:
            raise SchedulingError(f"thread {tid} is already running on cpu {self.cpu_id}")
        if prev is None and tid is not None:
            # leaving idle
            self._idle_total += now - self._idle_since
        if prev is not None and tid is None:
            self._idle_since = now
        if tid is not None:
            self._dispatches += 1
            if prev is not None:
                self._switches += 1
        self._tid = tid
        return prev
