"""A driver-style facade over the performance counters.

The paper monitors its Xeons' hardware counters through Mikael Pettersson's
``perfctr`` Linux driver and its run-time library, which *virtualize*
counters per thread: a thread opens a virtual counter (``vperfctr_open``),
and reads return counts accumulated only while that thread runs. This
module mirrors that API shape against the simulated
:class:`~repro.hw.counters.CounterBank`, so the CPU-manager runtime reads
counters exactly the way the paper's user-level code does — and so a
downstream user could, in principle, swap this module for real bindings.

One faithful quirk is kept: the real driver could not virtualize counters
for two hyperthreads sharing a physical processor, which is why the paper
disabled hyperthreading. The simulated machine has no hyperthreading either,
so :meth:`PerfctrDriver.open` enforces at most one open virtual counter per
thread (mirroring the one-vperfctr-per-task rule).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CounterError
from .counters import CounterBank, CounterSnapshot

__all__ = ["PerfctrDriver", "VPerfCtr", "PerfctrReading"]


@dataclass(frozen=True)
class PerfctrReading:
    """One read of a virtual counter.

    Attributes
    ----------
    bus_transactions:
        Cumulative bus transactions of the monitored thread.
    tsc_us:
        Cumulative on-CPU time (the simulator's time-stamp-counter analog).
    """

    bus_transactions: float
    tsc_us: float


class VPerfCtr:
    """A virtualized per-thread counter handle (cf. ``vperfctr_open``).

    Handles are obtained from :meth:`PerfctrDriver.open` and remain valid
    until :meth:`close`.
    """

    def __init__(self, driver: "PerfctrDriver", tid: int) -> None:
        self._driver = driver
        self._tid = tid
        self._closed = False

    @property
    def tid(self) -> int:
        """The monitored thread's id."""
        return self._tid

    @property
    def closed(self) -> bool:
        """Whether the handle has been released."""
        return self._closed

    def read(self) -> PerfctrReading:
        """Read the thread's virtualized counters.

        Raises
        ------
        CounterError
            If the handle is closed.
        """
        if self._closed:
            raise CounterError(f"read on closed vperfctr for thread {self._tid}")
        snap: CounterSnapshot = self._driver._bank.read(self._tid)
        return PerfctrReading(bus_transactions=snap.bus_transactions, tsc_us=snap.cycles_us)

    def close(self) -> None:
        """Release the handle (idempotent)."""
        if not self._closed:
            self._closed = True
            self._driver._release(self._tid)


class PerfctrDriver:
    """Factory of per-thread virtual counters over a :class:`CounterBank`.

    Parameters
    ----------
    bank:
        The machine's counter bank (``machine.counters``).

    Examples
    --------
    >>> from repro.hw.counters import CounterBank
    >>> bank = CounterBank(); bank.register(1)
    >>> drv = PerfctrDriver(bank)
    >>> h = drv.open(1)
    >>> h.read().bus_transactions
    0.0
    """

    def __init__(self, bank: CounterBank) -> None:
        self._bank = bank
        self._open: set[int] = set()

    def open(self, tid: int) -> VPerfCtr:
        """Open a virtual counter for thread ``tid``.

        Raises
        ------
        CounterError
            If the thread is unknown or already has an open handle (the
            real driver allows one vperfctr per task).
        """
        if not self._bank.known(tid):
            raise CounterError(f"cannot open vperfctr: unknown thread {tid}")
        if tid in self._open:
            raise CounterError(f"thread {tid} already has an open vperfctr")
        self._open.add(tid)
        return VPerfCtr(self, tid)

    def _release(self, tid: int) -> None:
        self._open.discard(tid)

    @property
    def open_count(self) -> int:
        """Number of currently open handles."""
        return len(self._open)
