"""Per-CPU L2 cache warmth model.

The simulator does not track individual cache lines. Instead, each CPU's L2
tracks an approximate per-thread *resident footprint* (in lines):

* while a thread runs on a CPU, the transactions it issues bring lines in,
  growing its residency toward its working-set footprint;
* inflow beyond a thread's own growth (steady-state misses of a streaming
  thread) *pollutes* the cache, evicting other threads' lines
  proportionally, as does growth when the cache is full;
* when a thread is dispatched, its *warmth* — resident lines over footprint
  — determines the rebuild debt of compulsory refills it owes before
  running at full efficiency (see :class:`repro.hw.machine.Machine`).

This coarse model reproduces exactly the phenomena the paper leans on:
cache-affinity scheduling helps because residency survives on the last CPU;
migrations hurt high-hit-ratio codes (LU CB, Water-nsqr) the most; and
post-migration refill bursts create the short-lived bandwidth spikes that
destabilize the Latest Quantum policy but not Quanta Window.
"""

from __future__ import annotations

from ..config import CacheConfig

__all__ = ["CacheL2"]


class CacheL2:
    """The private L2 cache of one processor.

    Parameters
    ----------
    config:
        Geometry and rebuild parameters.

    Examples
    --------
    >>> from repro.config import CacheConfig
    >>> l2 = CacheL2(CacheConfig())
    >>> l2.warmth(tid=7, footprint_lines=1000)
    0.0
    >>> l2.account_run(tid=7, footprint_lines=1000, inflow_lines=500)
    >>> l2.warmth(tid=7, footprint_lines=1000)
    0.5
    """

    def __init__(self, config: CacheConfig) -> None:
        self._cfg = config
        self._total = float(config.total_lines)
        self._resident: dict[int, float] = {}
        # Steady-state memo for account_run_fast: (tid, mine, occ, others,
        # free) captured after a call that mutated nothing. Any mutation
        # path clears it.
        self._fast: tuple[int, float, float, float, float] | None = None

    @property
    def total_lines(self) -> float:
        """Cache capacity in lines."""
        return self._total

    def resident(self, tid: int) -> float:
        """Lines of ``tid``'s working set currently resident here."""
        return self._resident.get(tid, 0.0)

    def occupancy(self) -> float:
        """Total resident lines across all threads."""
        return sum(self._resident.values())

    def warmth(self, tid: int, footprint_lines: float) -> float:
        """Fraction of ``tid``'s working set resident here, in [0, 1].

        The footprint is capped at the cache capacity: a working set larger
        than the L2 can never be fully warm, and a thread that has filled
        the whole cache is as warm as it will ever get.
        """
        cap = min(float(footprint_lines), self._total)
        if cap <= 0.0:
            return 1.0
        return min(1.0, self._resident.get(tid, 0.0) / cap)

    def account_run(self, tid: int, footprint_lines: float, inflow_lines: float) -> None:
        """Account ``inflow_lines`` transactions issued by ``tid`` running here.

        Residency grows toward the (capacity-capped) footprint; all inflow —
        growth or steady-state streaming — evicts other threads' lines when
        the cache lacks free space.
        """
        if inflow_lines <= 0.0:
            return
        self._fast = None
        cap = min(float(footprint_lines), self._total)
        mine = self._resident.get(tid, 0.0)
        grow = min(inflow_lines, max(0.0, cap - mine))
        # Pollution: every incoming line displaces something once the cache
        # is full. Lines beyond own growth recycle the thread's own stale
        # data too, but preferentially hit victims (LRU-ish): model all
        # non-growth inflow as eviction pressure on others, bounded by what
        # others actually hold.
        # free is already clamped non-negative, so subtracting it directly
        # is exact (no re-clamp needed — bitwise the same displacement).
        free = max(0.0, self._total - self.occupancy())
        displacing = max(0.0, inflow_lines - free)
        self._evict_others(tid, min(displacing, self._others_total(tid)))
        if grow > 0.0:
            self._resident[tid] = mine + grow

    def account_run_fast(self, tid: int, footprint_lines: float, inflow_lines: float) -> None:
        """Unchecked single-pass variant of :meth:`account_run`.

        Byte-equal to :meth:`account_run`: the occupancy and others sums
        are accumulated in the same dict-iteration order as the two
        separate passes of the reference path, so eviction fractions (and
        everything downstream — warmth, rebuild debt) round identically.
        Used by the machine's vector-mode advance loop where the call
        count makes the redundant dict walks show up in profiles.

        A steady-state memo makes the common no-op case O(1): once a
        thread's residency has converged (no growth possible) and its
        inflow displaces nothing (either it owns the whole cache or there
        is enough free space), :meth:`account_run` mutates nothing — so
        the sums from the previous call stay valid and the decision needs
        only a few comparisons. Any mutation clears the memo.
        """
        if inflow_lines <= 0.0:
            return
        res = self._resident
        cap = min(float(footprint_lines), self._total)
        fast = self._fast
        if fast is not None and fast[0] == tid:
            _, mine, occ, others, free = fast
            grow = min(inflow_lines, max(0.0, cap - mine))
            if grow <= 0.0 and (others <= 0.0 or inflow_lines <= free):
                return  # provably the same no-op as the full computation
        mine = res.get(tid, 0.0)
        grow = min(inflow_lines, max(0.0, cap - mine))
        occ = 0.0
        others = 0.0
        for k, v in res.items():
            occ += v
            if k != tid:
                others += v
        free = max(0.0, self._total - occ)
        displacing = max(0.0, inflow_lines - free)
        lines = min(displacing, others)
        mutated = False
        if lines > 0.0 and others > 0.0:
            mutated = True
            frac = min(1.0, lines / others)
            for k in list(res):
                if k == tid:
                    continue
                kept = res[k] * (1.0 - frac)
                if kept < 1.0:  # less than one line: gone
                    del res[k]
                else:
                    res[k] = kept
        if grow > 0.0:
            res[tid] = mine + grow
            mutated = True
        if mutated:
            self._fast = None
        else:
            self._fast = (tid, mine, occ, others, free)

    def _others_total(self, tid: int) -> float:
        return sum(v for k, v in self._resident.items() if k != tid)

    def _evict_others(self, tid: int, lines: float) -> None:
        """Remove ``lines`` from other threads' residency, proportionally."""
        if lines <= 0.0:
            return
        others = self._others_total(tid)
        if others <= 0.0:
            return
        frac = min(1.0, lines / others)
        for k in list(self._resident):
            if k == tid:
                continue
            kept = self._resident[k] * (1.0 - frac)
            if kept < 1.0:  # less than one line: gone
                del self._resident[k]
            else:
                self._resident[k] = kept

    def forget(self, tid: int) -> None:
        """Drop all residency bookkeeping for a departed thread."""
        self._fast = None
        self._resident.pop(tid, None)
