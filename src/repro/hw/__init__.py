"""Hardware substrate: the simulated SMP.

Subsystems
----------
* :mod:`repro.hw.bus` — the shared front-side bus: an analytic contention
  model that turns a set of per-thread demand rates into per-thread
  execution speeds and actual transaction rates.
* :mod:`repro.hw.cache` — per-CPU L2 warmth tracking, eviction by
  co-runners, rebuild debt after migrations.
* :mod:`repro.hw.cpu` — processor bookkeeping (running thread, idle time,
  dispatch/context-switch accounting).
* :mod:`repro.hw.counters` — monotone per-thread performance-monitoring
  counters (bus transactions, cycles).
* :mod:`repro.hw.perfctr` — a driver-style API over the counters, modelled
  on the Linux ``perfctr`` driver the paper uses.
* :mod:`repro.hw.machine` — the assembled machine: settles thread progress
  over time intervals using the bus and cache models (the engine's
  :class:`~repro.sim.engine.Advancer`).
* :mod:`repro.hw.store` — the struct-of-arrays backing store for
  per-thread scalars; :class:`~repro.hw.machine.ThreadState` is a view
  over one of its rows.
"""

from .bus import BusModel, BusRequest, BusSolution, ThreadGrant
from .counters import CounterBank, CounterSnapshot
from .cpu import Cpu
from .machine import Machine, ThreadState
from .perfctr import PerfctrDriver, VPerfCtr
from .store import ThreadStore

__all__ = [
    "BusModel",
    "BusRequest",
    "BusSolution",
    "ThreadGrant",
    "CounterBank",
    "CounterSnapshot",
    "Cpu",
    "Machine",
    "ThreadState",
    "ThreadStore",
    "PerfctrDriver",
    "VPerfCtr",
]
