"""Units, conversions and physical constants used throughout the simulator.

The simulator's canonical units are:

* **time** — microseconds (``float``). A microsecond is a convenient grain
  because the paper reports bus activity in *transactions per microsecond*
  and scheduling quanta in milliseconds.
* **bus activity** — transactions per microsecond (``tx/us``). The paper's
  experimental platform transfers 64 bytes per bus transaction, so rates in
  MB/s convert with :func:`mbps_to_txus` / :func:`txus_to_mbps`.
* **work** — abstract "standalone microseconds": one unit of work is the
  amount of computation an application thread completes in one microsecond
  when running alone on an unloaded machine. Turnaround times are therefore
  directly comparable to the solo execution time.

Nothing in this module holds state; it is safe to import from anywhere.
"""

from __future__ import annotations

# --- time helpers -----------------------------------------------------------

#: One microsecond, the canonical time unit.
USEC: float = 1.0

#: One millisecond expressed in microseconds.
MSEC: float = 1_000.0

#: One second expressed in microseconds.
SEC: float = 1_000_000.0


def ms(value: float) -> float:
    """Convert milliseconds to canonical microseconds.

    >>> ms(200)
    200000.0
    """
    return float(value) * MSEC


def seconds(value: float) -> float:
    """Convert seconds to canonical microseconds.

    >>> seconds(1.5)
    1500000.0
    """
    return float(value) * SEC


def to_ms(usecs: float) -> float:
    """Convert canonical microseconds to milliseconds."""
    return float(usecs) / MSEC


def to_seconds(usecs: float) -> float:
    """Convert canonical microseconds to seconds."""
    return float(usecs) / SEC


# --- bus transaction helpers -------------------------------------------------

#: Bytes moved by one front-side-bus transaction on the paper's platform
#: (Intel Xeon, 400 MHz FSB): one full L2 cache line.
BYTES_PER_TRANSACTION: int = 64

#: L2 cache size of the paper's Xeon processors, in bytes (256 KB).
XEON_L2_BYTES: int = 256 * 1024

#: L2 cache line size in bytes.
XEON_L2_LINE_BYTES: int = 64

#: Number of cache lines in the Xeon L2 (4096).
XEON_L2_LINES: int = XEON_L2_BYTES // XEON_L2_LINE_BYTES

#: Sustained bus capacity measured by STREAM on the paper's platform, in
#: transactions per microsecond ("The highest bus transactions rate sustained
#: by STREAM is 29.5 transactions/usec").
STREAM_CAPACITY_TXUS: float = 29.5

#: Sustained bus bandwidth measured by STREAM, in MB/s (paper: 1797 MB/s).
STREAM_BANDWIDTH_MBPS: float = 1797.0

#: Theoretical peak bandwidth of the 400 MHz front-side bus, in MB/s.
PEAK_BANDWIDTH_MBPS: float = 3200.0


def mbps_to_txus(mbps: float) -> float:
    """Convert a bandwidth in MB/s to bus transactions per microsecond.

    Uses the platform's 64-byte transaction size. Note the paper's own
    pair of measurements (1797 MB/s, 29.5 tx/µs) implies ~61 B per
    transaction — "approximately 64 bytes" in the paper's words — so
    round-tripping the paper's numbers is ~5 % off by construction.

    >>> round(mbps_to_txus(1797.0), 2)
    28.08
    """
    bytes_per_usec = float(mbps) * 1e6 / SEC
    return bytes_per_usec / BYTES_PER_TRANSACTION


def txus_to_mbps(txus: float) -> float:
    """Convert bus transactions per microsecond to MB/s.

    >>> round(txus_to_mbps(29.5), 1)
    1888.0
    """
    return float(txus) * BYTES_PER_TRANSACTION * SEC / 1e6


# --- small numeric helpers ---------------------------------------------------


def clamp(value: float, lo: float, hi: float) -> float:
    """Clamp ``value`` into the closed interval ``[lo, hi]``.

    >>> clamp(5.0, 0.0, 1.0)
    1.0
    """
    if lo > hi:
        raise ValueError(f"clamp: lo={lo} exceeds hi={hi}")
    return lo if value < lo else hi if value > hi else value


def approx_equal(a: float, b: float, rel: float = 1e-9, abs_tol: float = 1e-12) -> bool:
    """Relative/absolute float comparison used by tests and invariants."""
    return abs(a - b) <= max(rel * max(abs(a), abs(b)), abs_tol)
