"""Simulation-as-a-service: submit/queue/poll access to the simulator.

The service layer turns the deterministic single-run core
(:func:`repro.experiments.base.run_simulation`) into a long-running
multi-tenant system (the ROADMAP's "millions of users" direction —
parameter-grid scheduling studies are exactly the embarrassingly-parallel
many-tenant workload Eremeev et al., arXiv:2010.16058, evaluate):

* :mod:`repro.service.schemas` — a validated JSON request schema
  (``SubmitRequest`` wrapping :class:`~repro.experiments.base.
  SimulationSpec` / :class:`~repro.dynamic.DynamicWorkload`) with
  actionable, path-annotated 4xx-style errors, plus exact round-trip
  codecs for specs and :class:`~repro.metrics.accounting.RunResult`.
* :mod:`repro.service.jobs` — an in-process bounded job queue with
  per-tenant round-robin fairness and drop/reject accounting, and the
  :class:`SimulationService` dispatcher reusing
  :func:`repro.parallel.run_many` chunked dispatch, with graceful drain
  on shutdown.
* :mod:`repro.service.store` — a persistent sqlite result store (WAL
  mode, versioned schema) keyed by :meth:`SimulationSpec.spec_hash`, so
  identical resubmissions are served from cache without re-running; a
  restart on the same results dir recovers orphaned runs and dead-letters
  specs that keep crashing their workers (``quarantined``).
* :mod:`repro.service.ratelimit` — per-tenant token-bucket overload
  shedding in front of the queue (HTTP 429 + ``Retry-After``, distinct
  from 503 queue-full).
* :mod:`repro.service.stats` — live service statistics (queue depth,
  in-flight, cache hit rate, per-run wall time).
* :mod:`repro.service.api` — the HTTP layer: a dependency-light
  stdlib WSGI core (``repro serve``) with FastAPI as an optional
  ``[service]`` extra.

Determinism guarantee: the service executes the *same*
``run_simulation`` the library exposes, so a stored result is
bit-identical (dataclass equality) to a direct in-process run of the
same spec — ``tests/service/test_service.py`` pins this down.
"""

from .api import create_fastapi_app, create_wsgi_app, serve, serve_background
from .jobs import FairQueue, Job, QueueFullError, ServiceClosedError, SimulationService
from .ratelimit import RateLimitConfig, RateLimitedError, RateLimiter
from .schemas import (
    SpecValidationError,
    SubmitRequest,
    parse_submit_request,
    result_from_dict,
    result_to_dict,
    spec_from_dict,
    spec_to_dict,
)
from .store import ResultStore, RunRecord
from .stats import ServiceStats

__all__ = [
    "FairQueue",
    "Job",
    "QueueFullError",
    "RateLimitConfig",
    "RateLimitedError",
    "RateLimiter",
    "ResultStore",
    "RunRecord",
    "ServiceClosedError",
    "ServiceStats",
    "SimulationService",
    "SpecValidationError",
    "SubmitRequest",
    "create_fastapi_app",
    "create_wsgi_app",
    "parse_submit_request",
    "serve",
    "serve_background",
    "result_from_dict",
    "result_to_dict",
    "spec_from_dict",
    "spec_to_dict",
]
