"""Request schema and JSON codecs for the simulation service.

Two jobs live here:

* **Validation** — :func:`parse_submit_request` turns an untrusted JSON
  payload into a :class:`SubmitRequest` wrapping a fully-validated
  :class:`~repro.experiments.base.SimulationSpec`. Every failure raises
  :class:`SpecValidationError` carrying a JSON-pointer-style ``path`` and
  an actionable message ("expected one of ...", "must be positive"), so
  the HTTP layer can return a precise 400 instead of a stack trace.
  The frozen config dataclasses already validate eagerly in
  ``__post_init__``; the codec translates those :class:`~repro.errors.
  ConfigError`/:class:`~repro.errors.WorkloadError` raises into
  path-annotated schema errors rather than re-implementing the rules.

* **Round-trip codecs** — ``spec_to_dict``/``spec_from_dict`` and
  ``result_to_dict``/``result_from_dict`` are exact: floats serialize via
  ``repr`` semantics (Python's ``json`` emits the shortest round-tripping
  decimal), so ``spec_from_dict(spec_to_dict(s))`` runs bit-identically
  to ``s`` and a stored :class:`~repro.metrics.accounting.RunResult`
  compares equal to the in-process original. The canonical spec dict is
  also the hashing substrate of :meth:`SimulationSpec.spec_hash`.

Wire format sketch (see README "Simulation service")::

    {
      "tenant": "alice",
      "label": "cg-vs-window",
      "spec": {
        "targets": [{"app": "CG", "work_scale": 0.05}],
        "background": [{"microbench": "BBMA"}, {"microbench": "BBMA"}],
        "scheduler": {"policy": "quanta_window", "window_length": 5},
        "seed": 7
      }
    }

Application specs are either inline (``{"name": ..., "n_threads": ...,
"pattern": {"kind": "constant", ...}}``), a paper application reference
(``{"app": "CG", "work_scale": 0.1}``) or a microbenchmark reference
(``{"microbench": "BBMA"}``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable

from ..config import (
    BusConfig,
    CacheConfig,
    LinuxSchedConfig,
    MachineConfig,
    ManagerConfig,
)
from ..core.policies import (
    BandwidthPolicy,
    EwmaPolicy,
    LatestQuantumPolicy,
    OraclePolicy,
    QuantaWindowPolicy,
    RandomGangPolicy,
)
from ..core.policies_model import ModelDrivenPolicy
from ..dynamic.arrivals import (
    ArrivalProcess,
    DiurnalShape,
    FlashCrowdShape,
    MMPPBurstyArrivals,
    PoissonArrivals,
    RateShape,
    ShapedArrivals,
    TraceArrivals,
)
from ..dynamic.config import (
    BurstyMix,
    DynamicWorkload,
    HotspotMix,
    JobMix,
    SequentialMix,
    ZipfianMix,
    paper_mix,
)
from ..errors import ConfigError, ReproError, SchedulingError, WorkloadError
from ..experiments.base import SimulationSpec
from ..faults.plan import FaultPlan
from ..metrics.accounting import AppResult, RunResult
from ..metrics.queueing import DynamicStats, JobRecord
from ..metrics.streaming import StreamingSummary
from ..workloads.base import ApplicationSpec
from ..workloads.patterns import (
    ConstantPattern,
    DemandPattern,
    JitterPattern,
    MarkovBurstPattern,
    PhasedPattern,
    TracePattern,
)

__all__ = [
    "SpecValidationError",
    "SubmitRequest",
    "parse_submit_request",
    "spec_from_dict",
    "spec_to_dict",
    "scheduler_from_json",
    "scheduler_to_json",
    "result_from_dict",
    "result_to_dict",
    "audit_from_dict",
    "audit_to_dict",
]


class SpecValidationError(ReproError):
    """An untrusted payload failed schema validation.

    Attributes
    ----------
    path:
        JSON-pointer-style location of the offending value, e.g.
        ``spec.targets[0].pattern.kind``.
    message:
        What was wrong and what would have been accepted.
    """

    def __init__(self, path: str, message: str) -> None:
        self.path = path
        self.message = message
        super().__init__(f"{path}: {message}")

    def to_dict(self) -> dict[str, str]:
        """The 400-response body fragment."""
        return {"type": "validation", "path": self.path, "message": self.message}

    def __reduce__(self):
        return (type(self), (self.path, self.message))


# --------------------------------------------------------------------------- primitives


def _fail(path: str, message: str) -> "SpecValidationError":
    raise SpecValidationError(path, message)


def _expect_dict(value: Any, path: str) -> dict:
    if not isinstance(value, dict):
        _fail(path, f"expected an object, got {type(value).__name__}")
    return value


def _expect_list(value: Any, path: str) -> list:
    if not isinstance(value, list):
        _fail(path, f"expected an array, got {type(value).__name__}")
    return value


def _expect_str(value: Any, path: str) -> str:
    if not isinstance(value, str):
        _fail(path, f"expected a string, got {type(value).__name__}")
    return value


def _expect_bool(value: Any, path: str) -> bool:
    if not isinstance(value, bool):
        _fail(path, f"expected a boolean, got {type(value).__name__}")
    return value


def _expect_int(value: Any, path: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        _fail(path, f"expected an integer, got {type(value).__name__}")
    return value


def _expect_float(value: Any, path: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        _fail(path, f"expected a number, got {type(value).__name__}")
    result = float(value)
    if not math.isfinite(result):
        _fail(path, f"expected a finite number, got {value!r}")
    return result


def _reject_unknown(payload: dict, known: set[str], path: str) -> None:
    unknown = sorted(set(payload) - known)
    if unknown:
        _fail(
            path,
            f"unknown field(s) {', '.join(map(repr, unknown))}; "
            f"accepted: {', '.join(sorted(known))}",
        )


def _build(factory: Callable[..., Any], kwargs: dict, path: str) -> Any:
    """Construct a validated config object, mapping its eager validation
    errors onto the payload location."""
    try:
        return factory(**kwargs)
    except (ConfigError, WorkloadError, SchedulingError) as exc:
        _fail(path, str(exc))
    except TypeError as exc:
        # Wrong value type reaching a dataclass comparison ("'<' not
        # supported between str and int") or a stray keyword: still the
        # submitter's fault, still a 400.
        _fail(path, f"invalid value: {exc}")


def _pairs(value: Any, path: str) -> tuple[tuple[float, float], ...]:
    """Decode an array of two-number arrays (phases / trace segments)."""
    items = _expect_list(value, path)
    out = []
    for i, pair in enumerate(items):
        pair = _expect_list(pair, f"{path}[{i}]")
        if len(pair) != 2:
            _fail(f"{path}[{i}]", f"expected a [length, rate] pair, got {len(pair)} items")
        out.append(
            (_expect_float(pair[0], f"{path}[{i}][0]"), _expect_float(pair[1], f"{path}[{i}][1]"))
        )
    return tuple(out)


# --------------------------------------------------------------------------- demand patterns

_PATTERN_KINDS = ("constant", "phased", "markov", "jitter", "trace")


def pattern_from_dict(payload: Any, path: str = "pattern") -> DemandPattern:
    """Decode a kind-tagged demand pattern."""
    payload = _expect_dict(payload, path)
    kind = _expect_str(_get(payload, "kind", path), f"{path}.kind")
    if kind == "constant":
        _reject_unknown(payload, {"kind", "rate_txus"}, path)
        return _build(
            ConstantPattern,
            {"rate_txus": _expect_float(_get(payload, "rate_txus", path), f"{path}.rate_txus")},
            path,
        )
    if kind == "phased":
        _reject_unknown(payload, {"kind", "phases"}, path)
        return _build(
            PhasedPattern,
            {"phases": _pairs(_get(payload, "phases", path), f"{path}.phases")},
            path,
        )
    if kind == "markov":
        known = {
            "kind", "low_rate_txus", "high_rate_txus",
            "mean_low_work_us", "mean_high_work_us", "start_high",
        }
        _reject_unknown(payload, known, path)
        kwargs = {
            key: _expect_float(_get(payload, key, path), f"{path}.{key}")
            for key in ("low_rate_txus", "high_rate_txus", "mean_low_work_us", "mean_high_work_us")
        }
        kwargs["start_high"] = _expect_bool(payload.get("start_high", False), f"{path}.start_high")
        return _build(MarkovBurstPattern, kwargs, path)
    if kind == "jitter":
        _reject_unknown(payload, {"kind", "base_rate_txus", "jitter", "chunk_work_us"}, path)
        return _build(
            JitterPattern,
            {
                "base_rate_txus": _expect_float(
                    _get(payload, "base_rate_txus", path), f"{path}.base_rate_txus"
                ),
                "jitter": _expect_float(payload.get("jitter", 0.1), f"{path}.jitter"),
                "chunk_work_us": _expect_float(
                    payload.get("chunk_work_us", 10_000.0), f"{path}.chunk_work_us"
                ),
            },
            path,
        )
    if kind == "trace":
        _reject_unknown(payload, {"kind", "segments", "tail_rate_txus"}, path)
        tail = payload.get("tail_rate_txus")
        return _build(
            TracePattern,
            {
                "segments": _pairs(_get(payload, "segments", path), f"{path}.segments"),
                "tail_rate_txus": None if tail is None else _expect_float(tail, f"{path}.tail_rate_txus"),
            },
            path,
        )
    _fail(f"{path}.kind", f"unknown pattern kind {kind!r}; expected one of {', '.join(_PATTERN_KINDS)}")


def pattern_to_dict(pattern: DemandPattern) -> dict[str, Any]:
    """Encode a demand pattern as its kind-tagged dict."""
    if isinstance(pattern, ConstantPattern):
        return {"kind": "constant", "rate_txus": pattern.rate_txus}
    if isinstance(pattern, PhasedPattern):
        return {"kind": "phased", "phases": [list(p) for p in pattern.phases]}
    if isinstance(pattern, MarkovBurstPattern):
        return {
            "kind": "markov",
            "low_rate_txus": pattern.low_rate_txus,
            "high_rate_txus": pattern.high_rate_txus,
            "mean_low_work_us": pattern.mean_low_work_us,
            "mean_high_work_us": pattern.mean_high_work_us,
            "start_high": pattern.start_high,
        }
    if isinstance(pattern, JitterPattern):
        return {
            "kind": "jitter",
            "base_rate_txus": pattern.base_rate_txus,
            "jitter": pattern.jitter,
            "chunk_work_us": pattern.chunk_work_us,
        }
    if isinstance(pattern, TracePattern):
        return {
            "kind": "trace",
            "segments": [list(s) for s in pattern.segments],
            "tail_rate_txus": pattern.tail_rate_txus,
        }
    raise ConfigError(
        f"cannot serialize demand pattern {type(pattern).__name__}; "
        "only the built-in pattern classes have a wire format"
    )


def _get(payload: dict, key: str, path: str) -> Any:
    if key not in payload:
        _fail(path, f"missing required field {key!r}")
    return payload[key]


# --------------------------------------------------------------------------- application specs


def app_spec_from_dict(payload: Any, path: str = "app") -> ApplicationSpec:
    """Decode an application spec: inline, ``{"app": ...}`` or ``{"microbench": ...}``."""
    payload = _expect_dict(payload, path)
    if "app" in payload:
        _reject_unknown(payload, {"app", "work_scale"}, path)
        from ..workloads.suites import paper_app, paper_app_names

        name = _expect_str(payload["app"], f"{path}.app")
        try:
            spec = paper_app(name)
        except (KeyError, WorkloadError):
            _fail(
                f"{path}.app",
                f"unknown paper application {name!r}; "
                f"expected one of {', '.join(paper_app_names())}",
            )
        scale = _expect_float(payload.get("work_scale", 1.0), f"{path}.work_scale")
        if scale <= 0:
            _fail(f"{path}.work_scale", f"must be positive, got {scale}")
        return spec.scaled(scale) if scale != 1.0 else spec
    if "microbench" in payload:
        _reject_unknown(payload, {"microbench", "work_us"}, path)
        from ..workloads.microbench import bbma_spec, nbbma_spec

        name = _expect_str(payload["microbench"], f"{path}.microbench")
        factory = {"BBMA": bbma_spec, "nBBMA": nbbma_spec}.get(name)
        if factory is None:
            _fail(f"{path}.microbench", f"unknown microbenchmark {name!r}; expected BBMA or nBBMA")
        if "work_us" in payload:
            return factory(_expect_float(payload["work_us"], f"{path}.work_us"))
        return factory()
    known = {
        "name", "n_threads", "work_per_thread_us", "pattern", "footprint_lines",
        "migration_sensitivity", "io_interval_work_us", "io_duration_us",
    }
    _reject_unknown(payload, known, path)
    io_interval = payload.get("io_interval_work_us")
    kwargs = {
        "name": _expect_str(_get(payload, "name", path), f"{path}.name"),
        "n_threads": _expect_int(_get(payload, "n_threads", path), f"{path}.n_threads"),
        "work_per_thread_us": _expect_float(
            _get(payload, "work_per_thread_us", path), f"{path}.work_per_thread_us"
        ),
        "pattern": pattern_from_dict(_get(payload, "pattern", path), f"{path}.pattern"),
        "footprint_lines": _expect_float(payload.get("footprint_lines", 4096.0), f"{path}.footprint_lines"),
        "migration_sensitivity": _expect_float(
            payload.get("migration_sensitivity", 0.0), f"{path}.migration_sensitivity"
        ),
        "io_interval_work_us": (
            None if io_interval is None else _expect_float(io_interval, f"{path}.io_interval_work_us")
        ),
        "io_duration_us": _expect_float(payload.get("io_duration_us", 0.0), f"{path}.io_duration_us"),
    }
    return _build(ApplicationSpec, kwargs, path)


def app_spec_to_dict(spec: ApplicationSpec) -> dict[str, Any]:
    """Encode an application spec inline (references are normalized away)."""
    return {
        "name": spec.name,
        "n_threads": spec.n_threads,
        "work_per_thread_us": spec.work_per_thread_us,
        "pattern": pattern_to_dict(spec.pattern),
        "footprint_lines": spec.footprint_lines,
        "migration_sensitivity": spec.migration_sensitivity,
        "io_interval_work_us": spec.io_interval_work_us,
        "io_duration_us": spec.io_duration_us,
    }


# --------------------------------------------------------------------------- schedulers

_KERNEL_SCHEDULERS = ("linux", "linux26", "dedicated", "gang")

#: policy name -> (factory, extra JSON-safe constructor fields)
_POLICIES: dict[str, tuple[type, dict[str, Callable[[Any, str], Any]]]] = {
    "latest_quantum": (LatestQuantumPolicy, {}),
    "quanta_window": (QuantaWindowPolicy, {"window_length": _expect_int}),
    "ewma": (EwmaPolicy, {"alpha": _expect_float}),
    "model_driven": (
        ModelDrivenPolicy,
        {
            "window_length": _expect_int,
            "idle_penalty": _expect_float,
            "fairness_weight": _expect_float,
            "saturation_inflation": _expect_float,
            "use_peak": _expect_bool,
        },
    ),
    "random_gang": (RandomGangPolicy, {}),
}

_COMMON_POLICY_FIELDS: dict[str, Callable[[Any, str], Any]] = {
    "bus_capacity_txus": _expect_float,
    "fitness_scale": _expect_float,
    "incremental": _expect_bool,
}


def scheduler_from_json(payload: Any, path: str = "scheduler") -> str | BandwidthPolicy:
    """Decode a scheduler: a kernel name string or a policy object."""
    if isinstance(payload, str):
        if payload not in _KERNEL_SCHEDULERS:
            _fail(
                path,
                f"unknown scheduler {payload!r}; expected one of "
                f"{', '.join(_KERNEL_SCHEDULERS)} or a policy object "
                f"{{'policy': ...}}",
            )
        return payload
    payload = _expect_dict(payload, path)
    name = _expect_str(_get(payload, "policy", path), f"{path}.policy")
    if name == "oracle":
        _reject_unknown(payload, {"policy", "true_rates"} | set(_COMMON_POLICY_FIELDS), path)
        rates = _expect_dict(_get(payload, "true_rates", path), f"{path}.true_rates")
        true_rates = {
            _expect_str(k, f"{path}.true_rates"): _expect_float(v, f"{path}.true_rates[{k!r}]")
            for k, v in rates.items()
        }
        kwargs: dict[str, Any] = {"true_rates": true_rates}
        extras: dict[str, Callable[[Any, str], Any]] = {}
    elif name in _POLICIES:
        factory, extras = _POLICIES[name]
        _reject_unknown(payload, {"policy"} | set(extras) | set(_COMMON_POLICY_FIELDS), path)
        kwargs = {}
    else:
        _fail(
            f"{path}.policy",
            f"unknown policy {name!r}; expected one of "
            f"{', '.join(sorted([*_POLICIES, 'oracle']))}",
        )
    for key, decode in {**extras, **_COMMON_POLICY_FIELDS}.items():
        if key in payload:
            kwargs[key] = decode(payload[key], f"{path}.{key}")
    factory = OraclePolicy if name == "oracle" else _POLICIES[name][0]
    return _build(factory, kwargs, path)


def scheduler_to_json(scheduler: str | BandwidthPolicy) -> str | dict[str, Any]:
    """Encode a scheduler to its wire form (the canonical hash substrate)."""
    if isinstance(scheduler, str):
        return scheduler
    if not isinstance(scheduler, BandwidthPolicy):
        raise ConfigError(f"cannot serialize scheduler {scheduler!r}")
    if scheduler._fitness_fn is not None:
        raise ConfigError(
            "a policy with a custom fitness_fn has no wire format; "
            "submit fitness_scale-configured Equation-1 policies instead"
        )
    out: dict[str, Any] = {
        "bus_capacity_txus": scheduler.bus_capacity_txus,
        "fitness_scale": scheduler._fitness_scale,
        "incremental": scheduler.incremental,
    }
    if isinstance(scheduler, ModelDrivenPolicy):
        out.update(
            policy="model_driven",
            window_length=scheduler.window_length,
            idle_penalty=scheduler.idle_penalty,
            fairness_weight=scheduler.fairness_weight,
            saturation_inflation=scheduler.saturation_inflation,
            use_peak=scheduler.use_peak,
        )
    elif isinstance(scheduler, QuantaWindowPolicy):
        out.update(policy="quanta_window", window_length=scheduler.window_length)
    elif isinstance(scheduler, LatestQuantumPolicy):
        out["policy"] = "latest_quantum"
    elif isinstance(scheduler, EwmaPolicy):
        out.update(policy="ewma", alpha=scheduler.alpha)
    elif isinstance(scheduler, OraclePolicy):
        out.update(policy="oracle", true_rates=dict(sorted(scheduler._true.items())))
    elif isinstance(scheduler, RandomGangPolicy):
        out["policy"] = "random_gang"
    else:
        raise ConfigError(
            f"cannot serialize policy {type(scheduler).__name__}; "
            "only the built-in policies have a wire format"
        )
    return out


# --------------------------------------------------------------------------- config dataclasses


def _config_from_dict(factory: type, payload: Any, path: str) -> Any:
    """Decode a flat frozen-dataclass config (BusConfig, ManagerConfig, ...)."""
    payload = _expect_dict(payload, path)
    fields = {f.name for f in factory.__dataclass_fields__.values()}  # type: ignore[attr-defined]
    _reject_unknown(payload, fields, path)
    return _build(factory, dict(payload), path)


def machine_from_dict(payload: Any, path: str = "machine") -> MachineConfig:
    """Decode a machine config with its nested bus/cache sections."""
    payload = _expect_dict(payload, path)
    _reject_unknown(payload, {"n_cpus", "smt_ways", "smt_efficiency", "bus", "cache"}, path)
    kwargs: dict[str, Any] = {
        key: payload[key]
        for key in ("n_cpus", "smt_ways", "smt_efficiency")
        if key in payload
    }
    if "bus" in payload:
        kwargs["bus"] = _config_from_dict(BusConfig, payload["bus"], f"{path}.bus")
    if "cache" in payload:
        kwargs["cache"] = _config_from_dict(CacheConfig, payload["cache"], f"{path}.cache")
    return _build(MachineConfig, kwargs, path)


# --------------------------------------------------------------------------- dynamic workloads


def arrivals_from_dict(payload: Any, path: str) -> ArrivalProcess:
    """Decode a kind-tagged arrival process."""
    payload = _expect_dict(payload, path)
    kind = _expect_str(_get(payload, "kind", path), f"{path}.kind")
    if kind == "poisson":
        _reject_unknown(payload, {"kind", "rate_per_s"}, path)
        return _build(
            PoissonArrivals,
            {"rate_per_s": _expect_float(_get(payload, "rate_per_s", path), f"{path}.rate_per_s")},
            path,
        )
    if kind == "mmpp":
        known = {"kind", "rate_low_per_s", "rate_high_per_s", "mean_low_s", "mean_high_s"}
        _reject_unknown(payload, known, path)
        kwargs = {
            key: _expect_float(payload[key], f"{path}.{key}")
            for key in known - {"kind"}
            if key in payload
        }
        for required in ("rate_low_per_s", "rate_high_per_s"):
            if required not in kwargs:
                _fail(path, f"missing required field {required!r}")
        return _build(MMPPBurstyArrivals, kwargs, path)
    if kind == "trace":
        _reject_unknown(payload, {"kind", "times_us"}, path)
        times = _expect_list(_get(payload, "times_us", path), f"{path}.times_us")
        return _build(
            TraceArrivals,
            {"times_us": tuple(_expect_float(t, f"{path}.times_us[{i}]") for i, t in enumerate(times))},
            path,
        )
    if kind == "shaped":
        _reject_unknown(payload, {"kind", "base", "shape"}, path)
        base = arrivals_from_dict(_get(payload, "base", path), f"{path}.base")
        shape = rate_shape_from_dict(_get(payload, "shape", path), f"{path}.shape")
        return _build(ShapedArrivals, {"base": base, "shape": shape}, path)
    _fail(
        f"{path}.kind",
        f"unknown arrival kind {kind!r}; expected poisson, mmpp, trace or shaped",
    )


def rate_shape_from_dict(payload: Any, path: str) -> RateShape:
    """Decode a kind-tagged rate envelope."""
    payload = _expect_dict(payload, path)
    kind = _expect_str(_get(payload, "kind", path), f"{path}.kind")
    if kind == "diurnal":
        known = {"kind", "period_s", "amplitude", "phase"}
        _reject_unknown(payload, known, path)
        kwargs = {
            key: _expect_float(payload[key], f"{path}.{key}")
            for key in known - {"kind"}
            if key in payload
        }
        return _build(DiurnalShape, kwargs, path)
    if kind == "flash":
        known = {"kind", "at_s", "duration_s", "magnitude"}
        _reject_unknown(payload, known, path)
        kwargs = {
            key: _expect_float(payload[key], f"{path}.{key}")
            for key in known - {"kind"}
            if key in payload
        }
        for required in ("at_s", "duration_s", "magnitude"):
            if required not in kwargs:
                _fail(path, f"missing required field {required!r}")
        return _build(FlashCrowdShape, kwargs, path)
    _fail(f"{path}.kind", f"unknown rate-shape kind {kind!r}; expected diurnal or flash")


def rate_shape_to_dict(shape: RateShape) -> dict[str, Any]:
    """Encode a rate envelope."""
    if isinstance(shape, DiurnalShape):
        return {
            "kind": "diurnal",
            "period_s": shape.period_s,
            "amplitude": shape.amplitude,
            "phase": shape.phase,
        }
    if isinstance(shape, FlashCrowdShape):
        return {
            "kind": "flash",
            "at_s": shape.at_s,
            "duration_s": shape.duration_s,
            "magnitude": shape.magnitude,
        }
    raise ConfigError(f"cannot serialize rate shape {type(shape).__name__}")


def arrivals_to_dict(arrivals: ArrivalProcess) -> dict[str, Any]:
    """Encode an arrival process."""
    if isinstance(arrivals, ShapedArrivals):
        return {
            "kind": "shaped",
            "base": arrivals_to_dict(arrivals.base),
            "shape": rate_shape_to_dict(arrivals.shape),
        }
    if isinstance(arrivals, PoissonArrivals):
        return {"kind": "poisson", "rate_per_s": arrivals.rate_per_s}
    if isinstance(arrivals, MMPPBurstyArrivals):
        return {
            "kind": "mmpp",
            "rate_low_per_s": arrivals.rate_low_per_s,
            "rate_high_per_s": arrivals.rate_high_per_s,
            "mean_low_s": arrivals.mean_low_s,
            "mean_high_s": arrivals.mean_high_s,
        }
    if isinstance(arrivals, TraceArrivals):
        return {"kind": "trace", "times_us": list(arrivals.times_us)}
    raise ConfigError(f"cannot serialize arrival process {type(arrivals).__name__}")


#: Skewed/correlated mix families: kind → (factory, extra-field decoders).
_MIX_KINDS: dict[str, tuple[type, dict[str, Callable[[Any, str], Any]]]] = {
    "weighted": (JobMix, {}),
    "zipfian": (ZipfianMix, {"exponent": _expect_float}),
    "hotspot": (HotspotMix, {"hot_fraction": _expect_float, "hot_index": _expect_int}),
    "sequential": (SequentialMix, {"run_length": _expect_int}),
    "bursty": (BurstyMix, {"mean_run_length": _expect_float}),
}


def job_mix_from_dict(payload: Any, path: str) -> JobMix:
    """Decode a job mix: explicit entries or a ``{"paper": [...]}`` palette.

    An optional ``kind`` tag (plus its parameters) selects a skewed or
    correlated family over the same palette; absent, the mix is the plain
    weighted one — keeping the pre-family wire format (and its spec
    hashes) byte-identical.
    """
    payload = _expect_dict(payload, path)
    kind = "weighted"
    if "kind" in payload:
        kind = _expect_str(payload["kind"], f"{path}.kind")
        if kind not in _MIX_KINDS:
            _fail(
                f"{path}.kind",
                f"unknown mix kind {kind!r}; expected one of {', '.join(sorted(_MIX_KINDS))}",
            )
    factory, params = _MIX_KINDS[kind]
    if "paper" in payload:
        _reject_unknown(payload, {"kind", "paper", "work_scale"} | set(params), path)
        names = [
            _expect_str(n, f"{path}.paper[{i}]")
            for i, n in enumerate(_expect_list(payload["paper"], f"{path}.paper"))
        ]
        scale = _expect_float(payload.get("work_scale", 1.0), f"{path}.work_scale")
        try:
            entries = paper_mix(names, work_scale=scale).entries
        except (ConfigError, WorkloadError, KeyError) as exc:
            _fail(f"{path}.paper", str(exc))
    else:
        _reject_unknown(payload, {"kind", "entries"} | set(params), path)
        raw = _expect_list(_get(payload, "entries", path), f"{path}.entries")
        decoded = []
        for i, entry in enumerate(raw):
            entry = _expect_list(entry, f"{path}.entries[{i}]")
            if len(entry) != 2:
                _fail(f"{path}.entries[{i}]", "expected a [app_spec, weight] pair")
            decoded.append(
                (
                    app_spec_from_dict(entry[0], f"{path}.entries[{i}][0]"),
                    _expect_float(entry[1], f"{path}.entries[{i}][1]"),
                )
            )
        entries = tuple(decoded)
    kwargs: dict[str, Any] = {"entries": entries}
    for key, decode in params.items():
        if key in payload:
            kwargs[key] = decode(payload[key], f"{path}.{key}")
    return _build(factory, kwargs, path)


def job_mix_to_dict(mix: JobMix) -> dict[str, Any]:
    """Encode a job mix with inline application specs.

    Plain weighted mixes keep the bare ``{"entries": ...}`` form so
    existing spec hashes are unchanged; the mix families add their
    ``kind`` tag and parameters.
    """
    out: dict[str, Any] = {"entries": [[app_spec_to_dict(s), w] for s, w in mix.entries]}
    if isinstance(mix, ZipfianMix):
        out.update(kind="zipfian", exponent=mix.exponent)
    elif isinstance(mix, HotspotMix):
        out.update(kind="hotspot", hot_fraction=mix.hot_fraction, hot_index=mix.hot_index)
    elif isinstance(mix, SequentialMix):
        out.update(kind="sequential", run_length=mix.run_length)
    elif isinstance(mix, BurstyMix):
        out.update(kind="bursty", mean_run_length=mix.mean_run_length)
    elif type(mix) is not JobMix:
        raise ConfigError(f"cannot serialize job mix {type(mix).__name__}")
    return out


_DYNAMIC_SCALARS: dict[str, Callable[[Any, str], Any]] = {
    "n_jobs": _expect_int,
    "max_in_service": _expect_int,
    "poll_period_us": _expect_float,
    "watchdog_factor": _expect_float,
    "watchdog_strict": _expect_bool,
    "warmup_frac": _expect_float,
    "slowdown_tau_us": _expect_float,
    "saturation_threshold": _expect_float,
    "record_jobs": _expect_bool,
}


def dynamic_from_dict(payload: Any, path: str = "dynamic") -> DynamicWorkload:
    """Decode an open-system workload description."""
    payload = _expect_dict(payload, path)
    known = {"arrivals", "mix", "queue_capacity"} | set(_DYNAMIC_SCALARS)
    _reject_unknown(payload, known, path)
    kwargs: dict[str, Any] = {
        "arrivals": arrivals_from_dict(_get(payload, "arrivals", path), f"{path}.arrivals"),
        "mix": job_mix_from_dict(_get(payload, "mix", path), f"{path}.mix"),
    }
    if "queue_capacity" in payload:
        cap = payload["queue_capacity"]
        kwargs["queue_capacity"] = None if cap is None else _expect_int(cap, f"{path}.queue_capacity")
    for key, decode in _DYNAMIC_SCALARS.items():
        if key in payload:
            kwargs[key] = decode(payload[key], f"{path}.{key}")
    return _build(DynamicWorkload, kwargs, path)


def dynamic_to_dict(workload: DynamicWorkload) -> dict[str, Any]:
    """Encode an open-system workload description."""
    return {
        "arrivals": arrivals_to_dict(workload.arrivals),
        "mix": job_mix_to_dict(workload.mix),
        "n_jobs": workload.n_jobs,
        "max_in_service": workload.max_in_service,
        "queue_capacity": workload.queue_capacity,
        "poll_period_us": workload.poll_period_us,
        "watchdog_factor": workload.watchdog_factor,
        "watchdog_strict": workload.watchdog_strict,
        "warmup_frac": workload.warmup_frac,
        "slowdown_tau_us": workload.slowdown_tau_us,
        "saturation_threshold": workload.saturation_threshold,
        "record_jobs": workload.record_jobs,
    }


# --------------------------------------------------------------------------- simulation specs

_SPEC_FIELDS = {
    "targets", "background", "scheduler", "kernel", "machine", "manager", "linux",
    "seed", "max_time_us", "dedicated_migration_interval_us", "trace",
    "timeline_period_us", "arrivals", "profile", "dynamic", "audit", "faults",
}


def _seed(value: Any, path: str) -> int:
    # np.random.default_rng rejects negative seeds only at run time;
    # catch it at submission so the client gets a 400, not a failed run.
    seed = _expect_int(value, path)
    if seed < 0:
        _fail(path, f"seed must be non-negative, got {seed}")
    return seed


def spec_from_dict(payload: Any, path: str = "spec") -> SimulationSpec:
    """Decode and fully validate a :class:`SimulationSpec` payload."""
    payload = _expect_dict(payload, path)
    _reject_unknown(payload, _SPEC_FIELDS, path)

    targets = [
        app_spec_from_dict(t, f"{path}.targets[{i}]")
        for i, t in enumerate(_expect_list(payload.get("targets", []), f"{path}.targets"))
    ]
    background = [
        app_spec_from_dict(b, f"{path}.background[{i}]")
        for i, b in enumerate(_expect_list(payload.get("background", []), f"{path}.background"))
    ]
    arrivals = []
    for i, entry in enumerate(_expect_list(payload.get("arrivals", []), f"{path}.arrivals")):
        entry = _expect_list(entry, f"{path}.arrivals[{i}]")
        if len(entry) != 2:
            _fail(f"{path}.arrivals[{i}]", "expected a [time_us, app_spec] pair")
        at_us = _expect_float(entry[0], f"{path}.arrivals[{i}][0]")
        if at_us < 0:
            _fail(f"{path}.arrivals[{i}][0]", f"arrival time must be non-negative, got {at_us}")
        arrivals.append((at_us, app_spec_from_dict(entry[1], f"{path}.arrivals[{i}][1]")))

    dynamic = payload.get("dynamic")
    if not targets and not arrivals and dynamic is None:
        _fail(
            f"{path}.targets",
            "a simulation needs at least one target application "
            "(or 'arrivals' / a 'dynamic' workload)",
        )

    kernel = _expect_str(payload.get("kernel", "linux"), f"{path}.kernel")
    if kernel not in ("linux", "linux26"):
        _fail(f"{path}.kernel", f"unknown kernel substrate {kernel!r}; expected linux or linux26")

    migration = payload.get("dedicated_migration_interval_us")
    timeline = payload.get("timeline_period_us")
    faults = payload.get("faults")
    kwargs: dict[str, Any] = {
        "targets": targets,
        "background": background,
        "scheduler": scheduler_from_json(payload.get("scheduler", "linux"), f"{path}.scheduler"),
        "kernel": kernel,
        "machine": (
            machine_from_dict(payload["machine"], f"{path}.machine")
            if "machine" in payload else MachineConfig()
        ),
        "manager": (
            _config_from_dict(ManagerConfig, payload["manager"], f"{path}.manager")
            if "manager" in payload else ManagerConfig()
        ),
        "linux": (
            _config_from_dict(LinuxSchedConfig, payload["linux"], f"{path}.linux")
            if "linux" in payload else LinuxSchedConfig()
        ),
        "seed": _seed(payload.get("seed", 42), f"{path}.seed"),
        "max_time_us": _expect_float(payload.get("max_time_us", SimulationSpec.__dataclass_fields__["max_time_us"].default), f"{path}.max_time_us"),
        "dedicated_migration_interval_us": (
            None if migration is None
            else _expect_float(migration, f"{path}.dedicated_migration_interval_us")
        ),
        "trace": _expect_bool(payload.get("trace", True), f"{path}.trace"),
        "timeline_period_us": (
            None if timeline is None else _expect_float(timeline, f"{path}.timeline_period_us")
        ),
        "arrivals": arrivals,
        "profile": _expect_bool(payload.get("profile", False), f"{path}.profile"),
        "dynamic": None if dynamic is None else dynamic_from_dict(dynamic, f"{path}.dynamic"),
        "audit": _expect_bool(payload.get("audit", False), f"{path}.audit"),
        "faults": (
            None if faults is None else _config_from_dict(FaultPlan, faults, f"{path}.faults")
        ),
    }
    spec = _build(SimulationSpec, kwargs, path)
    # Cross-field rules _build() would only hit at run time — check now so
    # the submitter gets a 400, not a failed run.
    if (spec.arrivals or spec.dynamic is not None) and spec.scheduler in ("dedicated", "gang"):
        _fail(
            f"{path}.scheduler",
            f"dynamic arrivals need a time-sharing scheduler; "
            f"{spec.scheduler!r} has a static job set",
        )
    if spec.faults is not None and spec.faults.enabled and not isinstance(spec.scheduler, BandwidthPolicy):
        _fail(
            f"{path}.faults",
            "fault injection requires a bandwidth-policy scheduler "
            "(the fault surface only exists under a CPU manager)",
        )
    return spec


def spec_to_dict(spec: SimulationSpec) -> dict[str, Any]:
    """Encode a spec as its fully-explicit canonical dict.

    Every field is present with its effective value (defaults are
    materialized), so the dict — not the submitter's partial payload —
    is the substrate of :meth:`SimulationSpec.spec_hash`.
    """
    return {
        "targets": [app_spec_to_dict(t) for t in spec.targets],
        "background": [app_spec_to_dict(b) for b in spec.background],
        "scheduler": scheduler_to_json(spec.scheduler),
        "kernel": spec.kernel,
        "machine": spec.machine.to_dict(),
        "manager": spec.manager.to_dict(),
        "linux": spec.linux.to_dict(),
        "seed": spec.seed,
        "max_time_us": spec.max_time_us,
        "dedicated_migration_interval_us": spec.dedicated_migration_interval_us,
        "trace": spec.trace,
        "timeline_period_us": spec.timeline_period_us,
        "arrivals": [[at_us, app_spec_to_dict(s)] for at_us, s in spec.arrivals],
        "profile": spec.profile,
        "dynamic": None if spec.dynamic is None else dynamic_to_dict(spec.dynamic),
        "audit": spec.audit,
        "faults": None if spec.faults is None else spec.faults.to_dict(),
    }


# --------------------------------------------------------------------------- submit requests

_TENANT_MAX = 64
_LABEL_MAX = 200


@dataclass(frozen=True)
class SubmitRequest:
    """A validated run submission.

    Attributes
    ----------
    spec:
        The fully-validated simulation to run.
    tenant:
        Fair-queueing identity; each tenant gets a round-robin share of
        the worker pool no matter how many jobs other tenants flood in.
    label:
        Free-form caller annotation stored with the run.
    no_cache:
        Force execution even when a completed run with the same
        ``spec_hash`` exists (e.g. to measure wall-time variance).
    """

    spec: SimulationSpec
    tenant: str = "default"
    label: str | None = None
    no_cache: bool = False


def parse_submit_request(payload: Any) -> SubmitRequest:
    """Validate a raw JSON submission body into a :class:`SubmitRequest`."""
    payload = _expect_dict(payload, "request")
    _reject_unknown(payload, {"spec", "tenant", "label", "no_cache"}, "request")
    tenant = _expect_str(payload.get("tenant", "default"), "request.tenant")
    if not tenant or len(tenant) > _TENANT_MAX:
        _fail("request.tenant", f"must be 1..{_TENANT_MAX} characters, got {len(tenant)}")
    label = payload.get("label")
    if label is not None:
        label = _expect_str(label, "request.label")
        if len(label) > _LABEL_MAX:
            _fail("request.label", f"must be at most {_LABEL_MAX} characters, got {len(label)}")
    return SubmitRequest(
        spec=spec_from_dict(_get(payload, "spec", "request"), "request.spec"),
        tenant=tenant,
        label=label,
        no_cache=_expect_bool(payload.get("no_cache", False), "request.no_cache"),
    )


# --------------------------------------------------------------------------- run results


def _streaming_to_dict(summary: StreamingSummary | None) -> dict[str, Any] | None:
    """Encode the streamed queueing summary (flat scalars + quantile pairs)."""
    if summary is None:
        return None
    out = {f: getattr(summary, f) for f in summary.__dataclass_fields__}
    out["response_quantiles_us"] = [list(p) for p in summary.response_quantiles_us]
    out["slowdown_quantiles"] = [list(p) for p in summary.slowdown_quantiles]
    return out


def _streaming_from_dict(payload: dict[str, Any] | None) -> StreamingSummary | None:
    """Decode the streamed queueing summary. Inverse of :func:`_streaming_to_dict`."""
    if payload is None:
        return None
    kwargs = dict(payload)
    kwargs["response_quantiles_us"] = tuple(
        (q, v) for q, v in payload["response_quantiles_us"]
    )
    kwargs["slowdown_quantiles"] = tuple(
        (q, v) for q, v in payload["slowdown_quantiles"]
    )
    return StreamingSummary(**kwargs)


def audit_to_dict(audit: Any) -> dict[str, Any] | None:
    """Encode an :class:`~repro.audit.AuditReport` (or ``None``) as JSON.

    Shared by :func:`result_to_dict` and the result store's persisted
    ``audit_json`` column (the ``GET /v1/runs/<id>/audit`` body).
    """
    if audit is None:
        return None
    return {
        "checks": [[name, n] for name, n in audit.checks],
        "violations": list(audit.violations),
    }


def audit_from_dict(payload: dict[str, Any] | None) -> Any:
    """Decode :func:`audit_to_dict` output back into an ``AuditReport``."""
    if payload is None:
        return None
    from ..audit.checks import AuditReport

    return AuditReport(
        checks=tuple((name, n) for name, n in payload["checks"]),
        violations=tuple(payload["violations"]),
    )


def result_to_dict(result: RunResult) -> dict[str, Any]:
    """Encode a :class:`RunResult` for storage. Exact: floats round-trip
    bit-for-bit through JSON, so ``result_from_dict(result_to_dict(r)) == r``
    including the ``dynamic`` and ``faults`` sections that participate in
    equality. Observability fields (solver counters, profile, audit
    summary) are carried for queryability but excluded from equality by
    the dataclass itself."""
    return {
        "makespan_us": result.makespan_us,
        "apps": [
            {
                "name": a.name,
                "app_id": a.app_id,
                "turnaround_us": a.turnaround_us,
                "transactions": a.transactions,
                "run_time_us": a.run_time_us,
                "work_done_us": a.work_done_us,
                "migrations": a.migrations,
                "dispatches": a.dispatches,
            }
            for a in result.apps
        ],
        "target_names": list(result.target_names),
        "total_transactions": result.total_transactions,
        "context_switches": result.context_switches,
        "migrations": result.migrations,
        "cpu_idle_us": result.cpu_idle_us,
        "bus_solve_calls": result.bus_solve_calls,
        "bus_cache_hits": result.bus_cache_hits,
        "bus_bisection_steps": result.bus_bisection_steps,
        "bus_shared_hits": result.bus_shared_hits,
        "bus_warm_starts": result.bus_warm_starts,
        "solve_skips": result.solve_skips,
        "lane_rebuilds": result.lane_rebuilds,
        "profile": result.profile,
        "audit": audit_to_dict(result.audit),
        "dynamic": (
            None if result.dynamic is None
            else {
                "jobs": [
                    {
                        "index": j.index,
                        "name": j.name,
                        "arrival_us": j.arrival_us,
                        "admit_us": j.admit_us,
                        "completion_us": j.completion_us,
                        "nominal_service_us": j.nominal_service_us,
                        "app_id": j.app_id,
                    }
                    for j in result.dynamic.jobs
                ],
                "queue_len_time_avg": result.dynamic.queue_len_time_avg,
                "max_queue_len": result.dynamic.max_queue_len,
                "dropped": result.dynamic.dropped,
                "max_starvation_age_us": result.dynamic.max_starvation_age_us,
                "starvation_bound_us": result.dynamic.starvation_bound_us,
                "starvation_violations": result.dynamic.starvation_violations,
                "utilization_time_avg": result.dynamic.utilization_time_avg,
                "saturated_fraction": result.dynamic.saturated_fraction,
                "horizon_us": result.dynamic.horizon_us,
                "streaming": _streaming_to_dict(result.dynamic.streaming),
            }
        ),
        "faults": None if result.faults is None else result.faults.to_dict(),
    }


def result_from_dict(payload: dict[str, Any]) -> RunResult:
    """Decode a stored :class:`RunResult`. Inverse of :func:`result_to_dict`."""
    from ..faults.injector import FaultStats

    audit = payload.get("audit")
    dynamic = payload.get("dynamic")
    faults = payload.get("faults")
    return RunResult(
        makespan_us=payload["makespan_us"],
        apps=tuple(AppResult(**a) for a in payload["apps"]),
        target_names=tuple(payload["target_names"]),
        total_transactions=payload["total_transactions"],
        context_switches=payload["context_switches"],
        migrations=payload["migrations"],
        cpu_idle_us=payload["cpu_idle_us"],
        bus_solve_calls=payload.get("bus_solve_calls", 0),
        bus_cache_hits=payload.get("bus_cache_hits", 0),
        bus_bisection_steps=payload.get("bus_bisection_steps", 0),
        bus_shared_hits=payload.get("bus_shared_hits", 0),
        bus_warm_starts=payload.get("bus_warm_starts", 0),
        solve_skips=payload.get("solve_skips", 0),
        lane_rebuilds=payload.get("lane_rebuilds", 0),
        profile=payload.get("profile"),
        audit=audit_from_dict(audit),
        dynamic=(
            None if dynamic is None
            else DynamicStats(
                jobs=tuple(JobRecord(**j) for j in dynamic["jobs"]),
                queue_len_time_avg=dynamic["queue_len_time_avg"],
                max_queue_len=dynamic["max_queue_len"],
                dropped=dynamic["dropped"],
                max_starvation_age_us=dynamic["max_starvation_age_us"],
                starvation_bound_us=dynamic["starvation_bound_us"],
                starvation_violations=dynamic["starvation_violations"],
                utilization_time_avg=dynamic["utilization_time_avg"],
                saturated_fraction=dynamic["saturated_fraction"],
                horizon_us=dynamic["horizon_us"],
                streaming=_streaming_from_dict(dynamic.get("streaming")),
            )
        ),
        faults=None if faults is None else FaultStats(**faults),
    )
