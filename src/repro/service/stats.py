"""Live service statistics: the ``GET /v1/stats`` payload.

Counters split into three layers, mirroring where the numbers live:

* **queue** — current depth, per-tenant backlogs, accept/reject
  accounting (owned by :class:`repro.service.jobs.FairQueue`);
* **dispatch** — in-flight count, executed runs, failures, cancellations
  (owned by :class:`repro.service.jobs.SimulationService`);
* **cache / store** — lookups, hits, hit rate, persistent status counts
  and executed wall-time aggregates (owned by
  :class:`repro.service.store.ResultStore`).

Everything is monotone counters or instantaneous gauges — no sampling,
no windows — so the endpoint is cheap enough to poll aggressively and
the ``service-smoke`` CI job can assert exact values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["ServiceStats"]


@dataclass
class ServiceStats:
    """Snapshot of the service's operational state.

    Attributes
    ----------
    queue_depth:
        Jobs currently waiting (across all tenants).
    queue_capacity:
        Bounded depth limit the queue rejects beyond.
    queued_by_tenant:
        Per-tenant backlog (fair-queueing visibility).
    in_flight:
        Jobs currently executing in the worker pool.
    submitted / accepted / rejected_full / rejected_invalid /
    rejected_rate_limited / cancelled:
        Submission accounting: everything that arrived, what was
        enqueued, what bounced off the full queue (503), what failed
        validation (400), what the per-tenant rate limiter shed (429),
        what a drain-less shutdown cancelled.
    executed_runs / failed_runs / quarantined_runs:
        Simulations actually run to completion / to an error / dead-
        lettered after exhausting their worker-crash attempt budget.
    recovered_requeued / recovered_quarantined:
        Restart-recovery dispositions of rows orphaned by previous
        service processes on the same results dir.
    cache_lookups / cache_hits:
        Spec-hash cache traffic; ``cache_hit_rate`` derives from these.
    store_counts:
        Persistent per-status row counts (includes prior service lives).
    wall_time:
        Executed wall-time aggregates from the store
        (``executed_runs`` / ``total_wall_s`` / ``mean_wall_s`` /
        ``max_wall_s``).
    draining:
        Whether shutdown has begun (submissions are rejected).
    """

    queue_depth: int = 0
    queue_capacity: int = 0
    queued_by_tenant: dict[str, int] = field(default_factory=dict)
    in_flight: int = 0
    submitted: int = 0
    accepted: int = 0
    rejected_full: int = 0
    rejected_invalid: int = 0
    rejected_rate_limited: int = 0
    cancelled: int = 0
    executed_runs: int = 0
    failed_runs: int = 0
    quarantined_runs: int = 0
    recovered_requeued: int = 0
    recovered_quarantined: int = 0
    cache_lookups: int = 0
    cache_hits: int = 0
    store_counts: dict[str, int] = field(default_factory=dict)
    wall_time: dict[str, float] = field(default_factory=dict)
    draining: bool = False

    @property
    def cache_hit_rate(self) -> float:
        """Hits over lookups (0.0 before any lookup)."""
        return self.cache_hits / self.cache_lookups if self.cache_lookups else 0.0

    def to_dict(self) -> dict[str, Any]:
        """The stats-endpoint body."""
        return {
            "queue": {
                "depth": self.queue_depth,
                "capacity": self.queue_capacity,
                "by_tenant": dict(sorted(self.queued_by_tenant.items())),
            },
            "dispatch": {
                "in_flight": self.in_flight,
                "submitted": self.submitted,
                "accepted": self.accepted,
                "rejected_full": self.rejected_full,
                "rejected_invalid": self.rejected_invalid,
                "rejected_rate_limited": self.rejected_rate_limited,
                "cancelled": self.cancelled,
                "executed_runs": self.executed_runs,
                "failed_runs": self.failed_runs,
                "quarantined_runs": self.quarantined_runs,
                "recovered_requeued": self.recovered_requeued,
                "recovered_quarantined": self.recovered_quarantined,
                "draining": self.draining,
            },
            "cache": {
                "lookups": self.cache_lookups,
                "hits": self.cache_hits,
                "hit_rate": self.cache_hit_rate,
            },
            "store": dict(sorted(self.store_counts.items())),
            "wall_time": dict(self.wall_time),
        }
