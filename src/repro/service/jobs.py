"""Job queue, tenant fairness and the dispatching service core.

Three pieces:

* :class:`FairQueue` — a bounded in-process queue with *per-tenant
  round-robin fairness*: each tenant has its own FIFO, and the dispatcher
  drains tenants in rotation, so one tenant flooding a thousand sweeps
  cannot starve another's single run (the many-tenant grid workload of
  Eremeev et al., arXiv:2010.16058, is exactly this shape). Offers beyond
  the bounded depth raise :class:`QueueFullError` and are counted —
  drop/reject accounting is part of the contract, mirroring the
  simulator's own admission queue (:class:`repro.dynamic.DynamicWorkload.
  queue_capacity`).

* :class:`Job` — one accepted submission: the validated spec, its
  canonical hash, and its store identity.

* :class:`SimulationService` — the long-running core: submit → validate
  → spec-hash cache lookup → enqueue; a dispatcher thread drains fair
  batches into :func:`repro.parallel.run_many` (chunked dispatch, the
  per-spec ``on_result`` hook marks each run done with its measured wall
  time the moment it lands, and the ``cancel`` hook implements graceful
  drain); results persist to the :class:`~repro.service.store.
  ResultStore`. The HTTP layer in :mod:`repro.service.api` is a thin
  veneer over this class — everything is testable in-process.

Determinism: execution goes through the same
:func:`~repro.experiments.base.run_simulation` path as the library
(``run_many`` is bit-identical serial vs parallel), so a result served
by the service equals a direct in-process run of the same spec.
"""

from __future__ import annotations

import json
import threading
import time
import traceback
from collections import deque
from dataclasses import dataclass

from ..config import canonical_json
from ..errors import ExecutionError, ReproError
from ..experiments.base import SimulationSpec
from ..metrics.accounting import RunResult
from ..parallel import SupervisionConfig, run_many
from .ratelimit import RateLimitConfig, RateLimiter
from .schemas import SubmitRequest, parse_submit_request, spec_from_dict, spec_to_dict
from .stats import ServiceStats
from .store import ResultStore, RunRecord

__all__ = [
    "FairQueue",
    "Job",
    "QueueFullError",
    "ServiceClosedError",
    "SimulationService",
]


class QueueFullError(ReproError):
    """The bounded job queue is at capacity (HTTP 503).

    Saturation, not rate: the client should back off substantially or
    spread load, unlike the per-tenant
    :class:`~repro.service.ratelimit.RateLimitedError` (429) which names
    a concrete ``Retry-After``.
    """


class ServiceClosedError(ReproError):
    """The service is draining or stopped and accepts no new work (503)."""


@dataclass
class Job:
    """One accepted submission travelling from queue to worker."""

    run_id: str
    tenant: str
    spec: SimulationSpec
    spec_hash: str
    label: str | None = None


class FairQueue:
    """Bounded multi-tenant queue with round-robin draining.

    Parameters
    ----------
    capacity:
        Total queued jobs across all tenants; offers beyond it raise
        :class:`QueueFullError`. Per-tenant hoarding is already limited
        by fairness, so a single global bound suffices.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._tenants: dict[str, deque[Job]] = {}
        self._rotation: deque[str] = deque()  # tenants with pending jobs
        self._depth = 0
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        # Accounting (monotone; read by the stats endpoint).
        self.offered = 0
        self.accepted = 0
        self.rejected_full = 0

    @property
    def depth(self) -> int:
        """Jobs currently queued."""
        with self._lock:
            return self._depth

    def by_tenant(self) -> dict[str, int]:
        """Current backlog per tenant (empty tenants omitted)."""
        with self._lock:
            return {t: len(q) for t, q in self._tenants.items() if q}

    def offer(self, job: Job) -> None:
        """Enqueue, or raise :class:`QueueFullError` at capacity."""
        with self._lock:
            self.offered += 1
            if self._depth >= self.capacity:
                self.rejected_full += 1
                raise QueueFullError(
                    f"queue full ({self._depth}/{self.capacity} jobs); retry later"
                )
            queue = self._tenants.get(job.tenant)
            if queue is None:
                queue = self._tenants[job.tenant] = deque()
            if not queue:
                self._rotation.append(job.tenant)
            queue.append(job)
            self._depth += 1
            self.accepted += 1
            self._not_empty.notify()

    def _pop_locked(self) -> Job:
        tenant = self._rotation.popleft()
        queue = self._tenants[tenant]
        job = queue.popleft()
        self._depth -= 1
        if queue:
            self._rotation.append(tenant)  # back of the rotation: fairness
        return job

    def take_batch(self, max_jobs: int, timeout: float | None = None) -> list[Job]:
        """Up to ``max_jobs`` jobs in fair rotation order.

        Blocks up to ``timeout`` seconds for the first job (``None``
        waits indefinitely); never blocks for the rest of the batch.
        Returns ``[]`` on timeout — the dispatcher uses that to poll its
        stop flag.
        """
        with self._lock:
            if self._depth == 0 and not self._not_empty.wait(timeout=timeout):
                return []
            batch: list[Job] = []
            while self._rotation and len(batch) < max_jobs:
                batch.append(self._pop_locked())
            return batch

    def drain_all(self) -> list[Job]:
        """Remove and return every queued job (drain-less shutdown)."""
        with self._lock:
            jobs = []
            while self._rotation:
                jobs.append(self._pop_locked())
            return jobs

    def wake(self) -> None:
        """Wake a blocked :meth:`take_batch` (shutdown path)."""
        with self._lock:
            self._not_empty.notify_all()


class SimulationService:
    """The long-running submit/queue/poll core (one per process).

    Parameters
    ----------
    store:
        Persistent run/result store (shared across service restarts).
    queue_depth:
        Bounded queue capacity; submissions beyond it are rejected with
        :class:`QueueFullError` and counted.
    jobs:
        Worker processes per dispatched batch, forwarded to
        :func:`repro.parallel.run_many` (``1`` = serial in the
        dispatcher thread; ``<= 0`` = the effective CPU budget).
    batch_size:
        Jobs drained per dispatch cycle (default: ``max(4, jobs)``).
        Larger batches amortise fork cost through ``run_many`` chunking;
        smaller ones tighten per-job latency.
    cache:
        Serve identical resubmissions (same
        :meth:`~repro.experiments.base.SimulationSpec.spec_hash`) from
        the store instead of re-running. Per-request ``no_cache``
        overrides.
    supervise:
        Worker-supervision policy for parallel batches (see
        :class:`~repro.parallel.SupervisionConfig`). ``None`` builds one
        from ``max_attempts``; supervision is inert when ``jobs=1``.
    max_attempts:
        Executions a spec may be charged before it is quarantined —
        both by the supervised pool (isolation retries) and by the
        restart-recovery pass (store-level ``attempts``).
    rate_limit:
        Optional per-tenant token-bucket config
        (:class:`~repro.service.ratelimit.RateLimitConfig`); ``None``
        disables rate limiting (queue-depth backpressure only).
    max_in_flight:
        Global cap on jobs dispatched per cycle, bounding how much work
        a drain must wait out. ``None`` leaves ``batch_size`` in charge.
    lease_s:
        Advisory execution lease recorded at ``mark_running``; ``None``
        derives it from the supervision timeout ceiling.
    """

    def __init__(
        self,
        store: ResultStore,
        queue_depth: int = 256,
        jobs: int | None = 1,
        batch_size: int | None = None,
        cache: bool = True,
        supervise: SupervisionConfig | None = None,
        max_attempts: int = 3,
        rate_limit: RateLimitConfig | None = None,
        max_in_flight: int | None = None,
        lease_s: float | None = None,
    ) -> None:
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if max_in_flight is not None and max_in_flight < 1:
            raise ValueError(f"max_in_flight must be >= 1, got {max_in_flight}")
        self.store = store
        self.queue = FairQueue(capacity=queue_depth)
        self.jobs = jobs
        self.batch_size = batch_size if batch_size is not None else max(4, jobs or 1)
        self.cache_enabled = cache
        self.max_attempts = max_attempts
        self.supervise = (
            supervise if supervise is not None else SupervisionConfig(max_attempts=max_attempts)
        )
        self.max_in_flight = max_in_flight
        self.lease_s = float(lease_s) if lease_s is not None else self.supervise.timeout_ceiling_s
        self.limiter = None if rate_limit is None else RateLimiter(rate_limit)
        self._lock = threading.Lock()
        self._in_flight: dict[str, Job] = {}
        self._stopping = False
        self._accepting = True
        self._idle = threading.Condition(self._lock)
        self._thread: threading.Thread | None = None
        # Accounting (under self._lock).
        self._submitted = 0
        self._rejected_invalid = 0
        self._cancelled = 0
        self._executed = 0
        self._failed = 0
        self._quarantined = 0
        self._cache_lookups = 0
        self._cache_hits = 0
        self._recovered_requeued = 0
        self._recovered_quarantined = 0

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "SimulationService":
        """Start the dispatcher thread (idempotent); returns self.

        Runs the restart-recovery pass first, so rows orphaned by a
        previous (crashed or killed) service process are back in the
        queue before the dispatcher takes its first batch.
        """
        if self._thread is None or not self._thread.is_alive():
            self._stopping = False
            self._accepting = True
            self.recover()
            self._thread = threading.Thread(
                target=self._dispatch_loop, name="repro-service-dispatch", daemon=True
            )
            self._thread.start()
        return self

    def recover(self) -> dict[str, int]:
        """Re-disposition store rows orphaned by a previous process.

        The store has a single owner (this process), so on a fresh start
        *every* non-terminal row is orphaned — no executor can still be
        running it, whatever its lease says. Disposition:

        * ``attempts >= max_attempts`` → ``quarantined`` (the row has
          already been granted its full execution budget across previous
          service lives; the last error, if any, is preserved);
        * ``running`` with budget left → back to ``queued`` (attempts
          stay charged) and re-enqueued;
        * ``queued`` with budget left → re-enqueued as-is.

        Skipped entirely when this process already has live queue or
        in-flight state (an in-process restart — those rows have a live
        owner). Returns and records ``{"requeued": n, "quarantined": n}``.
        """
        summary = {"requeued": 0, "quarantined": 0}
        if self.queue.depth > 0 or self._in_flight:
            return summary
        for record in self.store.pending_runs():
            if record.attempts >= self.max_attempts:
                prior = f": last error: {record.error}" if record.error else ""
                self.store.mark_quarantined(
                    record.run_id,
                    error=(
                        f"exhausted {record.attempts} execution attempts across"
                        f" service restarts{prior}"
                    ),
                )
                summary["quarantined"] += 1
                continue
            if record.status == "running":
                self.store.requeue(record.run_id)
            spec = spec_from_dict(json.loads(self.store.get_spec_json(record.run_id)))
            job = Job(
                run_id=record.run_id,
                tenant=record.tenant,
                spec=spec,
                spec_hash=record.spec_hash,
                label=record.label,
            )
            try:
                self.queue.offer(job)
            except QueueFullError:
                # A backlog bigger than the queue cannot be readmitted
                # whole; the overflow is terminal rather than silently
                # stranded (the client can resubmit, and will likely be
                # cache-served once the admitted portion completes).
                self.store.mark_cancelled(record.run_id)
                with self._lock:
                    self._cancelled += 1
                continue
            summary["requeued"] += 1
        with self._lock:
            self._recovered_requeued += summary["requeued"]
            self._recovered_quarantined += summary["quarantined"]
        return summary

    def shutdown(self, drain: bool = True, timeout: float | None = None) -> bool:
        """Stop the service.

        ``drain=True`` (graceful): stop accepting submissions, let the
        queue empty and in-flight work finish, then stop the dispatcher.
        ``drain=False``: additionally cancel every queued job (marked
        ``cancelled`` in the store) and ask ``run_many`` to stop
        dispatching further specs between chunks.

        Returns whether the dispatcher fully stopped within ``timeout``.
        """
        with self._lock:
            self._accepting = False
            if not drain:
                self._stopping = True
        if not drain:
            for job in self.queue.drain_all():
                with self._lock:
                    self._cancelled += 1
                self.store.mark_cancelled(job.run_id)
        else:
            # Wait for the backlog to empty before flipping the stop flag.
            with self._idle:
                self._idle.wait_for(
                    lambda: self.queue.depth == 0 and not self._in_flight,
                    timeout=timeout,
                )
            with self._lock:
                self._stopping = True
        self.queue.wake()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=timeout)
            return not thread.is_alive()
        return True

    @property
    def running(self) -> bool:
        """Whether the dispatcher thread is alive."""
        return self._thread is not None and self._thread.is_alive()

    # -- submission ----------------------------------------------------------

    def submit(self, payload: dict) -> dict:
        """Validate and accept one submission; the 202-response body.

        Raises :class:`~repro.service.schemas.SpecValidationError` (400),
        :class:`~repro.service.ratelimit.RateLimitedError` (429 +
        ``Retry-After``), :class:`QueueFullError` (503) or
        :class:`ServiceClosedError` (503). On a cache hit the returned
        status is already terminal (``cached``) and no work is enqueued.
        """
        with self._lock:
            self._submitted += 1
        try:
            request = parse_submit_request(payload)
        except Exception:
            with self._lock:
                self._rejected_invalid += 1
            raise
        return self.submit_request(request)

    def submit_request(self, request: SubmitRequest) -> dict:
        """As :meth:`submit`, for an already-validated request."""
        if not self._accepting:
            raise ServiceClosedError("service is draining; not accepting submissions")
        if self.limiter is not None:
            # Shed before any store row exists: a rate-limited submission
            # leaves no trace beyond the limiter's reject counter.
            self.limiter.acquire(request.tenant)
        spec_hash = request.spec.spec_hash()
        spec_json = canonical_json(spec_to_dict(request.spec))
        record = self.store.create(
            spec_hash=spec_hash,
            spec_json=spec_json,
            tenant=request.tenant,
            label=request.label,
        )

        if self.cache_enabled and not request.no_cache:
            with self._lock:
                self._cache_lookups += 1
            source = self.store.lookup_cached(spec_hash)
            if source is not None:
                self.store.mark_cached(record.run_id, source)
                with self._lock:
                    self._cache_hits += 1
                return {
                    "run_id": record.run_id,
                    "status": "cached",
                    "spec_hash": spec_hash,
                    "cached": True,
                    "cached_from": source.run_id,
                }

        job = Job(
            run_id=record.run_id,
            tenant=request.tenant,
            spec=request.spec,
            spec_hash=spec_hash,
            label=request.label,
        )
        try:
            self.queue.offer(job)
        except QueueFullError:
            self.store.mark_cancelled(job.run_id)
            raise
        return {
            "run_id": record.run_id,
            "status": "queued",
            "spec_hash": spec_hash,
            "cached": False,
        }

    # -- queries -------------------------------------------------------------

    def poll(self, run_id: str) -> dict:
        """The run's current lifecycle record (store-backed)."""
        return self.store.get(run_id).to_dict()

    def result(self, run_id: str) -> RunResult | None:
        """The decoded result, or ``None`` while pending."""
        return self.store.get_result(run_id)

    def list_runs(
        self, tenant: str | None = None, status: str | None = None, limit: int = 100
    ) -> list[dict]:
        """Run history, newest first."""
        return [r.to_dict() for r in self.store.list_runs(tenant, status, limit)]

    def stats(self) -> ServiceStats:
        """Live operational snapshot (see :class:`ServiceStats`)."""
        with self._lock:
            snap = ServiceStats(
                queue_depth=self.queue.depth,
                queue_capacity=self.queue.capacity,
                queued_by_tenant=self.queue.by_tenant(),
                in_flight=len(self._in_flight),
                submitted=self._submitted,
                accepted=self.queue.accepted,
                rejected_full=self.queue.rejected_full,
                rejected_invalid=self._rejected_invalid,
                rejected_rate_limited=(
                    0 if self.limiter is None else self.limiter.rejected
                ),
                cancelled=self._cancelled,
                executed_runs=self._executed,
                failed_runs=self._failed,
                quarantined_runs=self._quarantined,
                recovered_requeued=self._recovered_requeued,
                recovered_quarantined=self._recovered_quarantined,
                cache_lookups=self._cache_lookups,
                cache_hits=self._cache_hits,
                draining=not self._accepting,
            )
        snap.store_counts = self.store.counts()
        snap.wall_time = self.store.wall_time_stats()
        return snap

    # -- dispatch ------------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            with self._lock:
                if self._stopping:
                    return
            # The global in-flight cap bounds how much work one dispatch
            # cycle can own — and hence how long a graceful drain waits.
            allowance = self.batch_size
            if self.max_in_flight is not None:
                with self._lock:
                    allowance = min(allowance, self.max_in_flight - len(self._in_flight))
            if allowance < 1:
                time.sleep(0.02)  # pragma: no cover - dispatch is synchronous today
                continue
            batch = self.queue.take_batch(allowance, timeout=0.2)
            if not batch:
                with self._idle:
                    self._idle.notify_all()
                continue
            self._run_batch(batch)
            with self._idle:
                self._idle.notify_all()

    def _run_batch(self, batch: list[Job]) -> None:
        with self._lock:
            for job in batch:
                self._in_flight[job.run_id] = job
        for job in batch:
            self.store.mark_running(job.run_id, lease_s=self.lease_s)
        pending = batch
        while pending:
            try:
                self._execute_batch(pending)
            except ExecutionError as exc:
                # Supervision attributed a worker crash / hang to exactly
                # one spec and exhausted its retry budget: dead-letter it
                # (attempt count from the supervisor — it saw the
                # attributable isolation runs) and keep running the rest.
                job = pending[exc.spec_index]
                self.store.mark_quarantined(
                    job.run_id, error=str(exc), attempts=exc.attempts
                )
                with self._lock:
                    self._quarantined += 1
                    self._in_flight.pop(job.run_id, None)
                pending = [
                    j for j in pending if self.store.get(j.run_id).status == "running"
                ]
                continue
            except Exception:
                # A worker error without a spec attribution (serial path,
                # or a deterministic spec failure mid-chunk). Runs are
                # deterministic, so replay serially, one guarded spec at
                # a time (already-completed runs were marked done by
                # on_result and are skipped).
                self._run_batch_isolated(pending)
            return

    def _execute_batch(self, batch: list[Job]) -> None:
        """One supervised ``run_many`` pass over ``batch`` (all running)."""

        def _on_result(index: int, result: RunResult, wall_s: float) -> None:
            job = batch[index]
            self.store.mark_done(job.run_id, result, wall_time_s=wall_s)
            with self._lock:
                self._executed += 1
                self._in_flight.pop(job.run_id, None)

        def _cancelled() -> bool:
            with self._lock:
                return self._stopping

        results = run_many(
            [job.spec for job in batch],
            jobs=self.jobs,
            on_result=_on_result,
            cancel=_cancelled,
            supervise=self.supervise,
        )
        # Specs skipped by a cancel hook come back as None: mark them.
        for job, result in zip(batch, results):
            if result is None and self.store.get(job.run_id).status == "running":
                self.store.mark_cancelled(job.run_id)
                with self._lock:
                    self._cancelled += 1
                    self._in_flight.pop(job.run_id, None)

    def _run_batch_isolated(self, batch: list[Job]) -> None:
        """Replay a failed batch one spec at a time, attributing errors."""
        for index, job in enumerate(batch):
            if self.store.get(job.run_id).status != "running":
                continue  # finished (or cancelled) before the batch failed

            def _on_result(i: int, result: RunResult, wall_s: float, job=job) -> None:
                self.store.mark_done(job.run_id, result, wall_time_s=wall_s)
                with self._lock:
                    self._executed += 1
                    self._in_flight.pop(job.run_id, None)

            try:
                run_many([job.spec], jobs=1, on_result=_on_result)
            except Exception as exc:
                detail = "".join(
                    traceback.format_exception_only(type(exc), exc)
                ).strip()
                self.store.mark_failed(job.run_id, detail)
                with self._lock:
                    self._failed += 1
                    self._in_flight.pop(job.run_id, None)

    # -- convenience ---------------------------------------------------------

    def wait(self, run_id: str, timeout: float = 60.0, poll_s: float = 0.02) -> RunRecord:
        """Block until the run reaches a terminal state (tests, scripts)."""
        import time as _time

        deadline = _time.monotonic() + timeout
        while True:
            record = self.store.get(run_id)
            if record.terminal:
                return record
            if _time.monotonic() >= deadline:
                raise TimeoutError(f"run {run_id} still {record.status!r} after {timeout}s")
            _time.sleep(poll_s)
