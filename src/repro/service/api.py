"""HTTP layer over :class:`~repro.service.jobs.SimulationService`.

The core is a plain WSGI application (:func:`create_wsgi_app`) served by
the stdlib ``wsgiref`` threading server — the tier-1 environment installs
nothing, so the service must run dependency-free. A FastAPI veneer over
the *same* service object is available behind the optional ``[service]``
extra (:func:`create_fastapi_app`); both speak the identical JSON wire
format because every route delegates straight to the service core.

Routes (all JSON)::

    POST /v1/runs              submit {"spec": {...}, "tenant"?, "label"?,
                               "no_cache"?} → 202 queued / 200 cached /
                               400 validation / 429 rate-limited (with
                               Retry-After) / 503 queue full or draining
    GET  /v1/runs              list runs (?tenant=&status=&limit=;
                               unknown status → 400 naming the allowed)
    GET  /v1/runs/<id>         poll one run's lifecycle record
    GET  /v1/runs/<id>/result  the stored RunResult (409 until terminal)
    GET  /v1/runs/<id>/audit   the stored audit report (404 when the run
                               was not audited)
    GET  /v1/stats             queue/dispatch/cache/store counters
    GET  /v1/healthz           liveness (also reports dispatcher state)

Overload responses are deliberately distinct: 429 means *this tenant*
should slow to its sustained rate (the ``Retry-After`` header says when
a token is available), while 503 queue-full means the whole service is
saturated — backing off harder or resubmitting later is the right client
move, and the body's ``error.type`` (``rate_limited`` vs ``queue_full``
vs ``draining``) disambiguates programmatically.

Validation failures return the structured
:meth:`~repro.service.schemas.SpecValidationError.to_dict` body — the
``path`` field points at the offending spec field, which is the
"actionable 4xx" contract: a client can fix its payload without reading
server logs.
"""

from __future__ import annotations

import json
import math
import threading
from socketserver import ThreadingMixIn
from typing import Any, Callable, Iterable
from urllib.parse import parse_qs
from wsgiref.simple_server import WSGIRequestHandler, WSGIServer, make_server

from .jobs import QueueFullError, ServiceClosedError, SimulationService
from .ratelimit import RateLimitedError
from .schemas import SpecValidationError, result_to_dict
from .store import RUN_STATUSES, UnknownRunError

__all__ = ["create_wsgi_app", "create_fastapi_app", "serve", "ServiceServer"]

_STATUS_TEXT = {
    200: "200 OK",
    202: "202 Accepted",
    400: "400 Bad Request",
    404: "404 Not Found",
    405: "405 Method Not Allowed",
    409: "409 Conflict",
    413: "413 Content Too Large",
    429: "429 Too Many Requests",
    500: "500 Internal Server Error",
    503: "503 Service Unavailable",
}

#: Submission bodies beyond this are rejected unread (DoS hygiene; a
#: fully-explicit canonical spec is a few KB, generous headroom above).
MAX_BODY_BYTES = 8 * 1024 * 1024


class _HttpError(Exception):
    """Internal: carry (status, body) out of a route handler."""

    def __init__(self, status: int, body: dict[str, Any]) -> None:
        super().__init__(body.get("message", ""))
        self.status = status
        self.body = body


def _error_body(kind: str, message: str, **extra: Any) -> dict[str, Any]:
    return {"error": {"type": kind, "message": message, **extra}}


def _retry_after_header(retry_after_s: float) -> tuple[str, str]:
    """``Retry-After`` wants whole seconds; round up so clients never retry early."""
    return ("Retry-After", str(max(1, math.ceil(retry_after_s))))


def _read_json_body(environ: dict[str, Any]) -> dict[str, Any]:
    try:
        length = int(environ.get("CONTENT_LENGTH") or 0)
    except ValueError:
        length = 0
    if length > MAX_BODY_BYTES:
        raise _HttpError(
            413, _error_body("too_large", f"body exceeds {MAX_BODY_BYTES} bytes")
        )
    raw = environ["wsgi.input"].read(length) if length else b""
    if not raw:
        raise _HttpError(400, _error_body("validation", "empty request body"))
    try:
        payload = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise _HttpError(400, _error_body("validation", f"body is not valid JSON: {exc}"))
    if not isinstance(payload, dict):
        raise _HttpError(400, _error_body("validation", "body must be a JSON object"))
    return payload


def _query(environ: dict[str, Any]) -> dict[str, str]:
    parsed = parse_qs(environ.get("QUERY_STRING", ""), keep_blank_values=False)
    return {key: values[-1] for key, values in parsed.items()}


def create_wsgi_app(service: SimulationService) -> Callable:
    """A WSGI application exposing ``service`` (stdlib-only)."""

    def handle(method: str, path: str, environ: dict[str, Any]) -> tuple[int, dict]:
        parts = [p for p in path.split("/") if p]
        if parts[:1] != ["v1"]:
            raise _HttpError(404, _error_body("not_found", f"no route {path!r}"))
        route = parts[1:]

        if route == ["healthz"]:
            if method != "GET":
                raise _HttpError(405, _error_body("method", f"{method} not allowed"))
            return 200, {"ok": True, "dispatcher_running": service.running}

        if route == ["stats"]:
            if method != "GET":
                raise _HttpError(405, _error_body("method", f"{method} not allowed"))
            return 200, service.stats().to_dict()

        if route == ["runs"]:
            if method == "POST":
                body = _read_json_body(environ)
                response = service.submit(body)
                return (200 if response["cached"] else 202), response
            if method == "GET":
                query = _query(environ)
                try:
                    limit = int(query.get("limit", "100"))
                except ValueError:
                    raise _HttpError(400, _error_body("validation", "limit must be an integer"))
                try:
                    runs = service.list_runs(
                        tenant=query.get("tenant"), status=query.get("status"), limit=limit
                    )
                except ValueError as exc:
                    raise _HttpError(
                        400,
                        _error_body("validation", str(exc), allowed=list(RUN_STATUSES)),
                    )
                return 200, {"runs": runs}
            raise _HttpError(405, _error_body("method", f"{method} not allowed"))

        if len(route) == 2 and route[0] == "runs":
            if method != "GET":
                raise _HttpError(405, _error_body("method", f"{method} not allowed"))
            return 200, service.poll(route[1])

        if len(route) == 3 and route[0] == "runs" and route[2] == "result":
            if method != "GET":
                raise _HttpError(405, _error_body("method", f"{method} not allowed"))
            run_id = route[1]
            record = service.store.get(run_id)
            result = service.result(run_id)
            if result is None:
                raise _HttpError(
                    409,
                    _error_body(
                        "not_ready",
                        f"run {run_id!r} is {record.status!r}; no result stored",
                        status=record.status,
                        error=record.error,
                    ),
                )
            return 200, {"run": record.to_dict(), "result": result_to_dict(result)}

        if len(route) == 3 and route[0] == "runs" and route[2] == "audit":
            if method != "GET":
                raise _HttpError(405, _error_body("method", f"{method} not allowed"))
            run_id = route[1]
            record = service.store.get(run_id)  # unknown id → 404 via UnknownRunError
            audit = service.store.get_audit(run_id)
            if audit is None:
                raise _HttpError(
                    404,
                    _error_body(
                        "no_audit",
                        f"run {run_id!r} has no stored audit report"
                        " (submit the spec with \"audit\": true)",
                        status=record.status,
                    ),
                )
            return 200, {"run_id": run_id, "status": record.status, "audit": audit}

        raise _HttpError(404, _error_body("not_found", f"no route {path!r}"))

    def app(environ: dict[str, Any], start_response: Callable) -> Iterable[bytes]:
        method = environ.get("REQUEST_METHOD", "GET").upper()
        path = environ.get("PATH_INFO", "/")
        extra_headers: list[tuple[str, str]] = []
        try:
            status, body = handle(method, path, environ)
        except _HttpError as exc:
            status, body = exc.status, exc.body
        except SpecValidationError as exc:
            status, body = 400, {"error": exc.to_dict()}
        except RateLimitedError as exc:
            status = 429
            body = _error_body(
                "rate_limited", str(exc), retry_after_s=exc.retry_after_s
            )
            extra_headers.append(_retry_after_header(exc.retry_after_s))
        except QueueFullError as exc:
            status, body = 503, _error_body("queue_full", str(exc))
        except ServiceClosedError as exc:
            status, body = 503, _error_body("draining", str(exc))
        except UnknownRunError as exc:
            status, body = 404, _error_body("not_found", str(exc))
        except Exception as exc:  # pragma: no cover - defensive 500
            status, body = 500, _error_body("internal", f"{type(exc).__name__}: {exc}")
        payload = json.dumps(body).encode("utf-8")
        start_response(
            _STATUS_TEXT.get(status, f"{status} Error"),
            [
                ("Content-Type", "application/json"),
                ("Content-Length", str(len(payload))),
                *extra_headers,
            ],
        )
        return [payload]

    return app


class ServiceServer(ThreadingMixIn, WSGIServer):
    """Threaded WSGI server: polls must not block behind a slow submit."""

    daemon_threads = True


class _QuietHandler(WSGIRequestHandler):
    """Request handler without per-request stderr chatter."""

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass


def serve(
    service: SimulationService,
    host: str = "127.0.0.1",
    port: int = 8642,
    quiet: bool = True,
) -> ServiceServer:
    """Bind the WSGI app; the caller drives ``serve_forever``.

    ``port=0`` binds an ephemeral port (tests, the CI smoke job) —
    read the bound address back from ``server.server_address``.
    """
    handler = _QuietHandler if quiet else WSGIRequestHandler
    server = make_server(
        host, port, create_wsgi_app(service), server_class=ServiceServer, handler_class=handler
    )
    return server


def serve_background(
    service: SimulationService, host: str = "127.0.0.1", port: int = 0
) -> tuple[ServiceServer, threading.Thread]:
    """Start serving on a daemon thread (tests/smoke); returns (server, thread)."""
    server = serve(service, host=host, port=port)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-service-http", daemon=True
    )
    thread.start()
    return server, thread


def create_fastapi_app(service: SimulationService):  # pragma: no cover - optional extra
    """The same API as a FastAPI app (requires the ``[service]`` extra).

    The WSGI app above is the canonical implementation; this veneer adds
    OpenAPI docs and async serving for deployments that installed
    ``repro[service]``. Every route still delegates to the shared
    service core, so behaviour and wire format are identical.
    """
    try:
        from fastapi import FastAPI, Request
        from fastapi.responses import JSONResponse
    except ImportError as exc:
        raise RuntimeError(
            "FastAPI is not installed; install the optional extra "
            "(pip install 'repro[service]') or use the stdlib WSGI server "
            "(repro.service.api.serve), which needs no dependencies"
        ) from exc

    app = FastAPI(title="repro simulation service", version="1")

    def _json(status: int, body: dict) -> JSONResponse:
        return JSONResponse(status_code=status, content=body)

    @app.post("/v1/runs")
    async def submit(request: Request) -> JSONResponse:
        try:
            body = await request.json()
        except Exception:
            return _json(400, _error_body("validation", "body is not valid JSON"))
        try:
            response = service.submit(body)
        except SpecValidationError as exc:
            return _json(400, {"error": exc.to_dict()})
        except RateLimitedError as exc:
            response_429 = _json(
                429,
                _error_body("rate_limited", str(exc), retry_after_s=exc.retry_after_s),
            )
            name, value = _retry_after_header(exc.retry_after_s)
            response_429.headers[name] = value
            return response_429
        except QueueFullError as exc:
            return _json(503, _error_body("queue_full", str(exc)))
        except ServiceClosedError as exc:
            return _json(503, _error_body("draining", str(exc)))
        return _json(200 if response["cached"] else 202, response)

    @app.get("/v1/runs")
    async def list_runs(
        tenant: str | None = None, status: str | None = None, limit: int = 100
    ) -> JSONResponse:
        try:
            runs = service.list_runs(tenant, status, limit)
        except ValueError as exc:
            return _json(
                400, _error_body("validation", str(exc), allowed=list(RUN_STATUSES))
            )
        return _json(200, {"runs": runs})

    @app.get("/v1/runs/{run_id}")
    async def poll(run_id: str) -> JSONResponse:
        try:
            return _json(200, service.poll(run_id))
        except UnknownRunError as exc:
            return _json(404, _error_body("not_found", str(exc)))

    @app.get("/v1/runs/{run_id}/result")
    async def result(run_id: str) -> JSONResponse:
        try:
            record = service.store.get(run_id)
            decoded = service.result(run_id)
        except UnknownRunError as exc:
            return _json(404, _error_body("not_found", str(exc)))
        if decoded is None:
            return _json(
                409,
                _error_body(
                    "not_ready",
                    f"run {run_id!r} is {record.status!r}; no result stored",
                    status=record.status,
                    error=record.error,
                ),
            )
        return _json(200, {"run": record.to_dict(), "result": result_to_dict(decoded)})

    @app.get("/v1/runs/{run_id}/audit")
    async def audit(run_id: str) -> JSONResponse:
        try:
            record = service.store.get(run_id)
            report = service.store.get_audit(run_id)
        except UnknownRunError as exc:
            return _json(404, _error_body("not_found", str(exc)))
        if report is None:
            return _json(
                404,
                _error_body(
                    "no_audit",
                    f"run {run_id!r} has no stored audit report"
                    " (submit the spec with \"audit\": true)",
                    status=record.status,
                ),
            )
        return _json(200, {"run_id": run_id, "status": record.status, "audit": report})

    @app.get("/v1/stats")
    async def stats() -> JSONResponse:
        return _json(200, service.stats().to_dict())

    @app.get("/v1/healthz")
    async def healthz() -> JSONResponse:
        return _json(200, {"ok": True, "dispatcher_running": service.running})

    return app
