"""Per-tenant token-bucket rate limiting for the simulation service.

The fair queue already bounds *standing* backlog (queue-full → 503), but
nothing bounded *arrival rate*: a tenant scripting tight-loop submissions
could consume the whole queue capacity between dispatch cycles, starving
other tenants at admission even though draining stays fair. The
:class:`RateLimiter` sits in front of the queue and sheds that load
early — before a store row is created — with enough information for a
well-behaved client to back off (:class:`RateLimitedError` carries
``retry_after_s``, surfaced as HTTP 429 + ``Retry-After``; a full queue
remains a distinct 503, because "slow down" and "the system is saturated"
call for different client behaviour).

Classic token bucket, one per tenant: tokens refill continuously at
``rate_per_s`` up to ``burst``; each accepted submission spends one.
Buckets start full, so a tenant's first ``burst`` submissions are never
limited — the limiter shapes sustained rate, not honest bursts (exactly
the arrival-envelope framing of :mod:`repro.dynamic`'s shaped arrivals,
applied to our own front door).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable

from ..errors import ReproError

__all__ = ["RateLimitConfig", "RateLimitedError", "RateLimiter", "TokenBucket"]


class RateLimitedError(ReproError):
    """A tenant exceeded its sustained submission rate (HTTP 429).

    ``retry_after_s`` is the time until the tenant's bucket next holds a
    whole token — the value of the ``Retry-After`` response header.
    """

    def __init__(self, tenant: str, retry_after_s: float) -> None:
        self.tenant = tenant
        self.retry_after_s = float(retry_after_s)
        super().__init__(
            f"tenant {tenant!r} exceeded its submission rate;"
            f" retry in {self.retry_after_s:.2f}s"
        )


@dataclass(frozen=True)
class RateLimitConfig:
    """Token-bucket parameters applied to every tenant independently.

    Attributes
    ----------
    rate_per_s:
        Sustained refill rate — accepted submissions per second a tenant
        can maintain indefinitely.
    burst:
        Bucket capacity — submissions a tenant can land back-to-back
        after an idle period before the sustained rate applies.
    """

    rate_per_s: float = 50.0
    burst: float = 100.0

    def __post_init__(self) -> None:
        if self.rate_per_s <= 0.0:
            raise ValueError(f"rate_per_s must be > 0, got {self.rate_per_s}")
        if self.burst < 1.0:
            raise ValueError(f"burst must be >= 1, got {self.burst}")


class TokenBucket:
    """One tenant's bucket. Not thread-safe — callers hold the limiter lock.

    ``clock`` is injectable (monotonic seconds) so tests can drive time
    explicitly instead of sleeping.
    """

    def __init__(self, config: RateLimitConfig, clock: Callable[[], float]) -> None:
        self.config = config
        self._clock = clock
        self._tokens = float(config.burst)
        self._last = clock()

    def try_acquire(self) -> float:
        """Spend one token. Returns 0.0 on success, else seconds to wait."""
        now = self._clock()
        elapsed = max(0.0, now - self._last)
        self._last = now
        self._tokens = min(
            float(self.config.burst),
            self._tokens + elapsed * self.config.rate_per_s,
        )
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return 0.0
        return (1.0 - self._tokens) / self.config.rate_per_s


class RateLimiter:
    """Thread-safe per-tenant bucket map with reject accounting.

    Buckets are created lazily per tenant and never expire — a bucket is
    two floats, and tenant cardinality is bounded by real clients (the
    fair queue's per-tenant map makes the same call).
    """

    def __init__(
        self,
        config: RateLimitConfig,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}
        self._lock = threading.Lock()
        #: Monotone count of submissions shed (stats endpoint).
        self.rejected = 0

    def acquire(self, tenant: str) -> None:
        """Admit one submission or raise :class:`RateLimitedError`."""
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = self._buckets[tenant] = TokenBucket(self.config, self._clock)
            wait_s = bucket.try_acquire()
            if wait_s > 0.0:
                self.rejected += 1
                raise RateLimitedError(tenant, wait_s)
