"""Persistent run/result store for the simulation service.

A single sqlite database (``runs.sqlite3`` under the service's results
directory) holds one row per submitted run: the canonical spec JSON, the
lifecycle timestamps, the stored :class:`~repro.metrics.accounting.
RunResult` (exact JSON round-trip — see :func:`repro.service.schemas.
result_to_dict`) and the run's ``spec_hash``. The hash column is indexed:
:meth:`ResultStore.lookup_cached` answers "has this exact spec already
completed?" in one query, which is what lets the service serve identical
resubmissions from cache without re-running (simulations are
deterministic functions of the spec, so a stored result *is* the result).

sqlite is the right weight here: stdlib (the tier-1 environment installs
nothing), a single file under the results dir, safe across service
restarts, and queryable history for free (``list_runs`` filters). All
access goes through one connection guarded by a lock — the service's
HTTP threads and the dispatcher share the store, and sqlite's own
serialized mode is build-dependent.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
import uuid
from dataclasses import dataclass
from typing import Any

from ..errors import ReproError
from ..metrics.accounting import RunResult
from .schemas import result_from_dict, result_to_dict

__all__ = ["ResultStore", "RunRecord", "UnknownRunError", "RUN_STATUSES"]

#: Run lifecycle states. ``cached`` is terminal like ``done`` but records
#: that the result was copied from a prior run instead of executed.
RUN_STATUSES = ("queued", "running", "done", "cached", "failed", "cancelled")

_TERMINAL = ("done", "cached", "failed", "cancelled")


class UnknownRunError(ReproError):
    """No run with the requested id exists in the store."""


@dataclass(frozen=True)
class RunRecord:
    """One run's stored lifecycle (the poll/list API's unit).

    ``wall_time_s`` is the worker's measured execution time for runs that
    actually ran; ``0.0`` for cache hits (that is the point of the cache).
    ``cached_from`` names the run whose result a cache hit reused.
    """

    run_id: str
    spec_hash: str
    tenant: str
    label: str | None
    status: str
    submitted_at: float
    started_at: float | None
    finished_at: float | None
    wall_time_s: float | None
    cached_from: str | None
    error: str | None

    @property
    def terminal(self) -> bool:
        """Whether the run has reached a final state."""
        return self.status in _TERMINAL

    def to_dict(self) -> dict[str, Any]:
        """The poll-response body."""
        return {
            "run_id": self.run_id,
            "spec_hash": self.spec_hash,
            "tenant": self.tenant,
            "label": self.label,
            "status": self.status,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "wall_time_s": self.wall_time_s,
            "cached_from": self.cached_from,
            "error": self.error,
        }


_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    run_id       TEXT PRIMARY KEY,
    spec_hash    TEXT NOT NULL,
    tenant       TEXT NOT NULL,
    label        TEXT,
    status       TEXT NOT NULL,
    submitted_at REAL NOT NULL,
    started_at   REAL,
    finished_at  REAL,
    wall_time_s  REAL,
    cached_from  TEXT,
    error        TEXT,
    spec_json    TEXT NOT NULL,
    result_json  TEXT
);
CREATE INDEX IF NOT EXISTS idx_runs_spec_hash ON runs(spec_hash, status);
CREATE INDEX IF NOT EXISTS idx_runs_tenant ON runs(tenant, submitted_at);
"""

_RECORD_COLS = (
    "run_id, spec_hash, tenant, label, status, submitted_at, "
    "started_at, finished_at, wall_time_s, cached_from, error"
)


class ResultStore:
    """Thread-safe persistent store of runs and their results.

    Parameters
    ----------
    results_dir:
        Directory holding ``runs.sqlite3`` (created if missing).
        ``":memory:"`` keeps everything in RAM (tests).
    """

    def __init__(self, results_dir: str = "service-results") -> None:
        self.results_dir = results_dir
        if results_dir == ":memory:":
            path = ":memory:"
        else:
            os.makedirs(results_dir, exist_ok=True)
            path = os.path.join(results_dir, "runs.sqlite3")
        self.path = path
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._conn.row_factory = sqlite3.Row
        with self._lock:
            self._conn.executescript(_SCHEMA)
            self._conn.commit()

    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        with self._lock:
            self._conn.close()

    # -- lifecycle -----------------------------------------------------------

    def create(
        self,
        spec_hash: str,
        spec_json: str,
        tenant: str,
        label: str | None = None,
        now: float | None = None,
    ) -> RunRecord:
        """Record a newly-accepted submission in state ``queued``."""
        run_id = uuid.uuid4().hex[:16]
        submitted = time.time() if now is None else now
        with self._lock:
            self._conn.execute(
                "INSERT INTO runs (run_id, spec_hash, tenant, label, status,"
                " submitted_at, spec_json) VALUES (?, ?, ?, ?, 'queued', ?, ?)",
                (run_id, spec_hash, tenant, label, submitted, spec_json),
            )
            self._conn.commit()
        return self.get(run_id)

    def _transition(self, run_id: str, assignments: str, params: tuple) -> None:
        with self._lock:
            cur = self._conn.execute(
                f"UPDATE runs SET {assignments} WHERE run_id = ?", (*params, run_id)
            )
            self._conn.commit()
        if cur.rowcount == 0:
            raise UnknownRunError(f"no run {run_id!r}")

    def mark_running(self, run_id: str, now: float | None = None) -> None:
        """queued → running."""
        self._transition(
            run_id, "status = 'running', started_at = ?", (time.time() if now is None else now,)
        )

    def mark_done(
        self, run_id: str, result: RunResult, wall_time_s: float, now: float | None = None
    ) -> None:
        """running → done, with the exact result JSON."""
        self._transition(
            run_id,
            "status = 'done', finished_at = ?, wall_time_s = ?, result_json = ?",
            (
                time.time() if now is None else now,
                wall_time_s,
                json.dumps(result_to_dict(result)),
            ),
        )

    def mark_cached(self, run_id: str, source: RunRecord, now: float | None = None) -> None:
        """queued → cached: copy the source run's result without executing."""
        with self._lock:
            row = self._conn.execute(
                "SELECT result_json FROM runs WHERE run_id = ?", (source.run_id,)
            ).fetchone()
        if row is None or row["result_json"] is None:
            raise UnknownRunError(f"cache source {source.run_id!r} has no stored result")
        self._transition(
            run_id,
            "status = 'cached', finished_at = ?, wall_time_s = 0.0,"
            " cached_from = ?, result_json = ?",
            (time.time() if now is None else now, source.run_id, row["result_json"]),
        )

    def mark_failed(self, run_id: str, error: str, now: float | None = None) -> None:
        """running → failed, recording the error text."""
        self._transition(
            run_id,
            "status = 'failed', finished_at = ?, error = ?",
            (time.time() if now is None else now, str(error)[:2000]),
        )

    def mark_cancelled(self, run_id: str, now: float | None = None) -> None:
        """queued → cancelled (drain-less shutdown)."""
        self._transition(
            run_id, "status = 'cancelled', finished_at = ?", (time.time() if now is None else now,)
        )

    # -- queries -------------------------------------------------------------

    def get(self, run_id: str) -> RunRecord:
        """The run's lifecycle record, or :class:`UnknownRunError`."""
        with self._lock:
            row = self._conn.execute(
                f"SELECT {_RECORD_COLS} FROM runs WHERE run_id = ?", (run_id,)
            ).fetchone()
        if row is None:
            raise UnknownRunError(f"no run {run_id!r}")
        return RunRecord(**dict(row))

    def get_result(self, run_id: str) -> RunResult | None:
        """The stored result, decoded; ``None`` while not terminal-successful."""
        with self._lock:
            row = self._conn.execute(
                "SELECT result_json FROM runs WHERE run_id = ?", (run_id,)
            ).fetchone()
        if row is None:
            raise UnknownRunError(f"no run {run_id!r}")
        if row["result_json"] is None:
            return None
        return result_from_dict(json.loads(row["result_json"]))

    def get_spec_json(self, run_id: str) -> str:
        """The canonical spec JSON the run was submitted with."""
        with self._lock:
            row = self._conn.execute(
                "SELECT spec_json FROM runs WHERE run_id = ?", (run_id,)
            ).fetchone()
        if row is None:
            raise UnknownRunError(f"no run {run_id!r}")
        return row["spec_json"]

    def lookup_cached(self, spec_hash: str) -> RunRecord | None:
        """The most recent completed run of this exact spec, if any.

        Only ``done``/``cached`` rows with a stored result qualify; the
        returned record is what :meth:`mark_cached` copies from.
        """
        with self._lock:
            row = self._conn.execute(
                f"SELECT {_RECORD_COLS} FROM runs"
                " WHERE spec_hash = ? AND status IN ('done', 'cached')"
                " AND result_json IS NOT NULL"
                " ORDER BY finished_at DESC LIMIT 1",
                (spec_hash,),
            ).fetchone()
        return None if row is None else RunRecord(**dict(row))

    def list_runs(
        self,
        tenant: str | None = None,
        status: str | None = None,
        limit: int = 100,
    ) -> list[RunRecord]:
        """Run history, newest first, optionally filtered."""
        clauses, params = [], []
        if tenant is not None:
            clauses.append("tenant = ?")
            params.append(tenant)
        if status is not None:
            clauses.append("status = ?")
            params.append(status)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        with self._lock:
            rows = self._conn.execute(
                f"SELECT {_RECORD_COLS} FROM runs{where}"
                " ORDER BY submitted_at DESC, run_id DESC LIMIT ?",
                (*params, max(1, int(limit))),
            ).fetchall()
        return [RunRecord(**dict(r)) for r in rows]

    def counts(self) -> dict[str, int]:
        """Stored runs per status (the stats endpoint's history section)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT status, COUNT(*) AS n FROM runs GROUP BY status"
            ).fetchall()
        return {row["status"]: row["n"] for row in rows}

    def wall_time_stats(self) -> dict[str, float]:
        """Aggregate executed wall time (cache hits excluded by definition)."""
        with self._lock:
            row = self._conn.execute(
                "SELECT COUNT(*) AS n, COALESCE(SUM(wall_time_s), 0) AS total,"
                " COALESCE(MAX(wall_time_s), 0) AS max"
                " FROM runs WHERE status = 'done' AND wall_time_s IS NOT NULL"
            ).fetchone()
        n = row["n"] or 0
        total = float(row["total"] or 0.0)
        return {
            "executed_runs": n,
            "total_wall_s": total,
            "mean_wall_s": total / n if n else 0.0,
            "max_wall_s": float(row["max"] or 0.0),
        }
