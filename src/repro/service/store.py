"""Persistent run/result store for the simulation service.

A single sqlite database (``runs.sqlite3`` under the service's results
directory) holds one row per submitted run: the canonical spec JSON, the
lifecycle timestamps, the stored :class:`~repro.metrics.accounting.
RunResult` (exact JSON round-trip — see :func:`repro.service.schemas.
result_to_dict`) and the run's ``spec_hash``. The hash column is indexed:
:meth:`ResultStore.lookup_cached` answers "has this exact spec already
completed?" in one query, which is what lets the service serve identical
resubmissions from cache without re-running (simulations are
deterministic functions of the spec, so a stored result *is* the result).

sqlite is the right weight here: stdlib (the tier-1 environment installs
nothing), a single file under the results dir, safe across service
restarts, and queryable history for free (``list_runs`` filters). All
access goes through one connection guarded by a lock — the service's
HTTP threads and the dispatcher share the store, and sqlite's own
serialized mode is build-dependent.

Durability: file-backed stores open in WAL mode with ``synchronous=
NORMAL`` and a busy timeout, so a SIGKILLed service never corrupts the
database and a concurrent reader never hits ``database is locked``. The
schema is versioned through ``PRAGMA user_version``; opening an older
database migrates it in place (idempotent ``ALTER TABLE`` guarded by
``PRAGMA table_info``). Restart recovery is built on three pieces kept
here: the per-run ``attempts`` counter (charged by every
:meth:`ResultStore.mark_running`), the advisory ``lease_expires_at``
stamp, and the ``quarantined`` dead-letter status for specs that keep
killing their executor.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
import uuid
from dataclasses import dataclass
from typing import Any

from ..errors import ReproError
from ..metrics.accounting import RunResult
from .schemas import audit_to_dict, result_from_dict, result_to_dict

__all__ = ["ResultStore", "RunRecord", "UnknownRunError", "RUN_STATUSES"]

#: Run lifecycle states. ``cached`` is terminal like ``done`` but records
#: that the result was copied from a prior run instead of executed;
#: ``quarantined`` is the dead-letter terminal state for specs that
#: crashed or hung their executor ``max_attempts`` times (last error
#: preserved, never retried automatically).
RUN_STATUSES = (
    "queued",
    "running",
    "done",
    "cached",
    "failed",
    "cancelled",
    "quarantined",
)

_TERMINAL = ("done", "cached", "failed", "cancelled", "quarantined")

#: Current on-disk schema version (``PRAGMA user_version``). v1: PR 8
#: initial schema. v2: ``attempts``, ``lease_expires_at``, ``audit_json``.
_SCHEMA_VERSION = 2


class UnknownRunError(ReproError):
    """No run with the requested id exists in the store."""


@dataclass(frozen=True)
class RunRecord:
    """One run's stored lifecycle (the poll/list API's unit).

    ``wall_time_s`` is the worker's measured execution time for runs that
    actually ran; ``0.0`` for cache hits (that is the point of the cache).
    ``cached_from`` names the run whose result a cache hit reused.
    """

    run_id: str
    spec_hash: str
    tenant: str
    label: str | None
    status: str
    submitted_at: float
    started_at: float | None
    finished_at: float | None
    wall_time_s: float | None
    cached_from: str | None
    error: str | None
    attempts: int = 0
    lease_expires_at: float | None = None

    @property
    def terminal(self) -> bool:
        """Whether the run has reached a final state."""
        return self.status in _TERMINAL

    def to_dict(self) -> dict[str, Any]:
        """The poll-response body."""
        return {
            "run_id": self.run_id,
            "spec_hash": self.spec_hash,
            "tenant": self.tenant,
            "label": self.label,
            "status": self.status,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "wall_time_s": self.wall_time_s,
            "cached_from": self.cached_from,
            "error": self.error,
            "attempts": self.attempts,
            "lease_expires_at": self.lease_expires_at,
        }


_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    run_id       TEXT PRIMARY KEY,
    spec_hash    TEXT NOT NULL,
    tenant       TEXT NOT NULL,
    label        TEXT,
    status       TEXT NOT NULL,
    submitted_at REAL NOT NULL,
    started_at   REAL,
    finished_at  REAL,
    wall_time_s  REAL,
    cached_from  TEXT,
    error        TEXT,
    spec_json    TEXT NOT NULL,
    result_json  TEXT,
    attempts     INTEGER NOT NULL DEFAULT 0,
    lease_expires_at REAL,
    audit_json   TEXT
);
CREATE INDEX IF NOT EXISTS idx_runs_spec_hash ON runs(spec_hash, status);
CREATE INDEX IF NOT EXISTS idx_runs_tenant ON runs(tenant, submitted_at);
"""

#: Columns added after v1, with their declarations — the in-place
#: migration adds whichever of these ``PRAGMA table_info`` says a
#: pre-existing database is missing.
_MIGRATION_COLS = (
    ("attempts", "INTEGER NOT NULL DEFAULT 0"),
    ("lease_expires_at", "REAL"),
    ("audit_json", "TEXT"),
)

_RECORD_COLS = (
    "run_id, spec_hash, tenant, label, status, submitted_at, "
    "started_at, finished_at, wall_time_s, cached_from, error, "
    "attempts, lease_expires_at"
)


class ResultStore:
    """Thread-safe persistent store of runs and their results.

    Parameters
    ----------
    results_dir:
        Directory holding ``runs.sqlite3`` (created if missing).
        ``":memory:"`` keeps everything in RAM (tests).
    """

    def __init__(self, results_dir: str = "service-results") -> None:
        self.results_dir = results_dir
        if results_dir == ":memory:":
            path = ":memory:"
        else:
            os.makedirs(results_dir, exist_ok=True)
            path = os.path.join(results_dir, "runs.sqlite3")
        self.path = path
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._conn.row_factory = sqlite3.Row
        with self._lock:
            # WAL survives a SIGKILL mid-commit (the journal replays on the
            # next open) and lets readers proceed during a write;
            # synchronous=NORMAL is the documented safe pairing with WAL.
            # :memory: databases have no journal — the pragma is a no-op
            # there, so it is simply applied unconditionally.
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.execute("PRAGMA busy_timeout=5000")
            self._conn.executescript(_SCHEMA)
            self._migrate_locked()
            self._conn.commit()

    def _migrate_locked(self) -> None:
        """Bring a pre-existing database up to ``_SCHEMA_VERSION`` in place.

        Idempotent: each post-v1 column is added only if ``PRAGMA
        table_info`` says it is missing, so re-opening an already-migrated
        (or freshly-created) database is a no-op. Old rows keep their
        data; new columns read as their defaults (``attempts=0``, NULLs).
        """
        cols = {row["name"] for row in self._conn.execute("PRAGMA table_info(runs)")}
        for name, decl in _MIGRATION_COLS:
            if name not in cols:
                self._conn.execute(f"ALTER TABLE runs ADD COLUMN {name} {decl}")
        self._conn.execute(f"PRAGMA user_version = {_SCHEMA_VERSION}")

    @property
    def schema_version(self) -> int:
        """The database's ``PRAGMA user_version`` (post-migration)."""
        with self._lock:
            return int(self._conn.execute("PRAGMA user_version").fetchone()[0])

    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        with self._lock:
            self._conn.close()

    # -- lifecycle -----------------------------------------------------------

    def create(
        self,
        spec_hash: str,
        spec_json: str,
        tenant: str,
        label: str | None = None,
        now: float | None = None,
    ) -> RunRecord:
        """Record a newly-accepted submission in state ``queued``."""
        run_id = uuid.uuid4().hex[:16]
        submitted = time.time() if now is None else now
        with self._lock:
            self._conn.execute(
                "INSERT INTO runs (run_id, spec_hash, tenant, label, status,"
                " submitted_at, spec_json) VALUES (?, ?, ?, ?, 'queued', ?, ?)",
                (run_id, spec_hash, tenant, label, submitted, spec_json),
            )
            self._conn.commit()
        return self.get(run_id)

    def _transition(self, run_id: str, assignments: str, params: tuple) -> None:
        with self._lock:
            cur = self._conn.execute(
                f"UPDATE runs SET {assignments} WHERE run_id = ?", (*params, run_id)
            )
            self._conn.commit()
        if cur.rowcount == 0:
            raise UnknownRunError(f"no run {run_id!r}")

    def mark_running(
        self, run_id: str, now: float | None = None, lease_s: float | None = None
    ) -> None:
        """queued → running. Every call charges one execution attempt.

        ``lease_s`` records an advisory expiry (``started_at + lease_s``)
        alongside the transition: this process owns the store exclusively,
        so the lease is not contended for — it exists so the recovery pass
        (and operators inspecting the database) can distinguish a row that
        *should* still be executing from one long abandoned.
        """
        started = time.time() if now is None else now
        lease = None if lease_s is None else started + float(lease_s)
        self._transition(
            run_id,
            "status = 'running', started_at = ?,"
            " attempts = attempts + 1, lease_expires_at = ?",
            (started, lease),
        )

    def mark_done(
        self, run_id: str, result: RunResult, wall_time_s: float, now: float | None = None
    ) -> None:
        """running → done, with the exact result JSON (and audit, if any)."""
        audit = audit_to_dict(result.audit)
        self._transition(
            run_id,
            "status = 'done', finished_at = ?, wall_time_s = ?,"
            " result_json = ?, audit_json = ?, lease_expires_at = NULL",
            (
                time.time() if now is None else now,
                wall_time_s,
                json.dumps(result_to_dict(result)),
                None if audit is None else json.dumps(audit),
            ),
        )

    def mark_cached(self, run_id: str, source: RunRecord, now: float | None = None) -> None:
        """queued → cached: copy the source run's result without executing."""
        with self._lock:
            row = self._conn.execute(
                "SELECT result_json, audit_json FROM runs WHERE run_id = ?",
                (source.run_id,),
            ).fetchone()
        if row is None or row["result_json"] is None:
            raise UnknownRunError(f"cache source {source.run_id!r} has no stored result")
        self._transition(
            run_id,
            "status = 'cached', finished_at = ?, wall_time_s = 0.0,"
            " cached_from = ?, result_json = ?, audit_json = ?",
            (
                time.time() if now is None else now,
                source.run_id,
                row["result_json"],
                row["audit_json"],
            ),
        )

    def mark_failed(self, run_id: str, error: str, now: float | None = None) -> None:
        """running → failed, recording the error text."""
        self._transition(
            run_id,
            "status = 'failed', finished_at = ?, error = ?, lease_expires_at = NULL",
            (time.time() if now is None else now, str(error)[:2000]),
        )

    def mark_cancelled(self, run_id: str, now: float | None = None) -> None:
        """queued → cancelled (drain-less shutdown)."""
        self._transition(
            run_id,
            "status = 'cancelled', finished_at = ?, lease_expires_at = NULL",
            (time.time() if now is None else now,),
        )

    def mark_quarantined(
        self,
        run_id: str,
        error: str,
        attempts: int | None = None,
        now: float | None = None,
    ) -> None:
        """queued/running → quarantined (dead-letter): attempt cap reached.

        Preserves the last error for post-mortem. ``attempts`` overrides
        the stored counter when the executor knows better (the supervised
        ``run_many`` counts attributable isolation runs, which the store's
        per-``mark_running`` counter cannot see).
        """
        assignments = "status = 'quarantined', finished_at = ?, error = ?, lease_expires_at = NULL"
        params: list[Any] = [time.time() if now is None else now, str(error)[:2000]]
        if attempts is not None:
            assignments += ", attempts = ?"
            params.append(int(attempts))
        self._transition(run_id, assignments, tuple(params))

    def requeue(self, run_id: str, now: float | None = None) -> None:
        """running → queued (restart recovery): back to the dispatchable pool.

        Clears the execution timestamps and the stale lease; attempts
        already charged stay charged, which is what eventually routes a
        repeatedly-orphaned run to :meth:`mark_quarantined`.
        """
        self._transition(
            run_id,
            "status = 'queued', started_at = NULL, lease_expires_at = NULL",
            (),
        )

    # -- queries -------------------------------------------------------------

    def get(self, run_id: str) -> RunRecord:
        """The run's lifecycle record, or :class:`UnknownRunError`."""
        with self._lock:
            row = self._conn.execute(
                f"SELECT {_RECORD_COLS} FROM runs WHERE run_id = ?", (run_id,)
            ).fetchone()
        if row is None:
            raise UnknownRunError(f"no run {run_id!r}")
        return RunRecord(**dict(row))

    def get_result(self, run_id: str) -> RunResult | None:
        """The stored result, decoded; ``None`` while not terminal-successful."""
        with self._lock:
            row = self._conn.execute(
                "SELECT result_json FROM runs WHERE run_id = ?", (run_id,)
            ).fetchone()
        if row is None:
            raise UnknownRunError(f"no run {run_id!r}")
        if row["result_json"] is None:
            return None
        return result_from_dict(json.loads(row["result_json"]))

    def get_audit(self, run_id: str) -> dict[str, Any] | None:
        """The stored audit report (decoded JSON), or ``None`` if absent.

        Present only for runs executed with ``audit=True`` in their spec
        (and cache hits copied from such runs).
        """
        with self._lock:
            row = self._conn.execute(
                "SELECT audit_json FROM runs WHERE run_id = ?", (run_id,)
            ).fetchone()
        if row is None:
            raise UnknownRunError(f"no run {run_id!r}")
        if row["audit_json"] is None:
            return None
        return json.loads(row["audit_json"])

    def pending_runs(self) -> list[RunRecord]:
        """Non-terminal rows (``queued``/``running``), oldest first.

        The restart-recovery worklist: on a fresh service process, every
        row this returns was orphaned by the previous process (nothing
        else writes the store), so each must be re-enqueued, cancelled or
        quarantined.
        """
        with self._lock:
            rows = self._conn.execute(
                f"SELECT {_RECORD_COLS} FROM runs"
                " WHERE status IN ('queued', 'running')"
                " ORDER BY submitted_at ASC, run_id ASC"
            ).fetchall()
        return [RunRecord(**dict(r)) for r in rows]

    def get_spec_json(self, run_id: str) -> str:
        """The canonical spec JSON the run was submitted with."""
        with self._lock:
            row = self._conn.execute(
                "SELECT spec_json FROM runs WHERE run_id = ?", (run_id,)
            ).fetchone()
        if row is None:
            raise UnknownRunError(f"no run {run_id!r}")
        return row["spec_json"]

    def lookup_cached(self, spec_hash: str) -> RunRecord | None:
        """The most recent completed run of this exact spec, if any.

        Only ``done``/``cached`` rows with a stored result qualify; the
        returned record is what :meth:`mark_cached` copies from.
        """
        with self._lock:
            row = self._conn.execute(
                f"SELECT {_RECORD_COLS} FROM runs"
                " WHERE spec_hash = ? AND status IN ('done', 'cached')"
                " AND result_json IS NOT NULL"
                " ORDER BY finished_at DESC LIMIT 1",
                (spec_hash,),
            ).fetchone()
        return None if row is None else RunRecord(**dict(row))

    def list_runs(
        self,
        tenant: str | None = None,
        status: str | None = None,
        limit: int = 100,
    ) -> list[RunRecord]:
        """Run history, newest first, optionally filtered.

        An unknown ``status`` raises :class:`ValueError` naming the
        allowed values (the API layer maps it to a 400) — it used to
        silently return an empty list, indistinguishable from "no runs in
        that state".
        """
        if status is not None and status not in RUN_STATUSES:
            raise ValueError(
                f"unknown status {status!r}: expected one of {', '.join(RUN_STATUSES)}"
            )
        clauses, params = [], []
        if tenant is not None:
            clauses.append("tenant = ?")
            params.append(tenant)
        if status is not None:
            clauses.append("status = ?")
            params.append(status)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        with self._lock:
            rows = self._conn.execute(
                f"SELECT {_RECORD_COLS} FROM runs{where}"
                " ORDER BY submitted_at DESC, run_id DESC LIMIT ?",
                (*params, max(1, int(limit))),
            ).fetchall()
        return [RunRecord(**dict(r)) for r in rows]

    def counts(self) -> dict[str, int]:
        """Stored runs per status (the stats endpoint's history section)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT status, COUNT(*) AS n FROM runs GROUP BY status"
            ).fetchall()
        return {row["status"]: row["n"] for row in rows}

    def wall_time_stats(self) -> dict[str, float]:
        """Aggregate executed wall time (cache hits excluded by definition)."""
        with self._lock:
            row = self._conn.execute(
                "SELECT COUNT(*) AS n, COALESCE(SUM(wall_time_s), 0) AS total,"
                " COALESCE(MAX(wall_time_s), 0) AS max"
                " FROM runs WHERE status = 'done' AND wall_time_s IS NOT NULL"
            ).fetchone()
        n = row["n"] or 0
        total = float(row["total"] or 0.0)
        return {
            "executed_runs": n,
            "total_wall_s": total,
            "mean_wall_s": total / n if n else 0.0,
            "max_wall_s": float(row["max"] or 0.0),
        }
