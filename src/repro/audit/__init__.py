"""Opt-in runtime invariant auditing (the correctness twin of profiling).

Three activation paths:

* per-spec — ``SimulationSpec(audit=True)`` audits that run only;
* process-global — :func:`enable` (the CLI's ``--audit`` flag) audits
  every subsequent run in this process; fork-based ``run_many`` workers
  inherit the switch at fork time, and a violation raised inside a worker
  propagates to the parent as a fully-contextualised
  :class:`~repro.errors.AuditViolation`;
* direct — construct an :class:`InvariantAuditor` and hook it up by hand
  (what the audit self-tests do to inject synthetic faults).

Audited runs carry their :class:`AuditReport` on ``RunResult.audit``. The
report is observability, never physics: auditing on or off, simulated
trajectories are bit-identical, and the field is excluded from
``RunResult`` equality.
"""

from __future__ import annotations

from .checks import AuditReport, InvariantAuditor
from .oracle import reference_selection

__all__ = [
    "AuditReport",
    "InvariantAuditor",
    "reference_selection",
    "enable",
    "disable",
    "enabled",
]

_enabled = False


def enable() -> None:
    """Turn on invariant auditing for every run in this process."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn the process-global audit switch back off."""
    global _enabled
    _enabled = False


def enabled() -> bool:
    """Whether the process-global audit switch is on."""
    return _enabled
