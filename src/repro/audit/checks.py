"""The invariant auditor: runtime safety checks for the simulated manager.

:class:`InvariantAuditor` is an opt-in observer threaded through the sim
engine, the machine, the CPU manager and the signal dispatcher. Every hook
is strictly read-only with respect to simulation physics — auditing on or
off, the simulated trajectory is bit-identical (the only side effect is a
handful of extra observer-priority engine events, which never reorder the
existing event stream).

The audited invariants, each anchored in the paper:

* **bus-capacity** — the aggregate granted transaction rate never exceeds
  the configured bus capacity (the STREAM-measured 29.5 tx/µs) beyond
  solver tolerance. The contention model's defining constraint.
* **allocation-intent** — at sample ticks, the set of unblocked live
  threads of managed applications is exactly the union of the selected
  applications' live threads (Section 4's block/unblock protocol realises
  the manager's intent once signals settle).
* **cpu-allocation** — never more running threads than processors, no
  blocked/finished thread on a CPU, and (managed runs) work conservation:
  a CPU sits idle only when no runnable thread waits.
* **signal-counters** — the paper's inversion-protection counters are
  non-negative and each live managed thread's blocked flag equals
  ``received_blocks > received_unblocks`` (counter protocol).
* **signal-departed** — no block/unblock signal is ever *applied* to a
  thread whose application has disconnected (the departed-mute rule).
* **starvation-age** — under the head-first circular-list rotation, an
  application waits at most one full rotation: its consecutive unselected
  quanta never exceed the peak number of co-resident applications observed
  during the wait (the paper's no-starvation guarantee).
* **selection-structure** — every selection allocates the head first,
  fits within the machine and contains no duplicate or foreign app ids.
* **selection-oracle** — for deterministic greedy policies, the selection
  equals an independent replay of the paper's Section 4 algorithm
  (:func:`repro.audit.oracle.reference_selection`).
* **engine-accounting** — the simulated clock is monotone, the machine is
  settled to the engine's clock at every hook, and the exact event ledger
  ``pending == scheduled − fired − cancelled`` holds.
* **accounting-totals** — at end of run, per-thread work never exceeds
  its total or its on-CPU time, and summed thread run time plus CPU idle
  time reconciles against ``n_cpus × makespan``.
* **progress-liveness** (fault runs only) — an application that stays
  selected must eventually retire work: zero progress for well past the
  hardened manager's watchdog patience means a hung application kept its
  processors pinned. With hardening armed the watchdog quarantines first
  and this check never fires; with hardening off it documents exactly the
  degradation the injector caused.

Fault runs adjust two checks: the allocation-intent and signal-counters
checks are suspended while the manager reports
``signal_checks_relaxed`` (signal faults with hardening armed — transient
intent mismatches are *expected* until the verifier converges), and the
selection-oracle replay is skipped for boundaries the manager flags as
head-first fallbacks (the degraded selection intentionally ignores the
fitness metric the oracle replays; the structural check still applies).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..errors import AuditViolation
from ..sim.events import EventPriority
from .oracle import reference_selection

if TYPE_CHECKING:  # pragma: no cover
    from ..core.manager import CpuManager
    from ..core.policies import JobView, Selection
    from ..hw.machine import Machine
    from ..sim.engine import Engine

__all__ = ["AuditReport", "InvariantAuditor"]

#: Relative tolerance on the bus-capacity check (solver fixed-point slack).
_CAPACITY_RTOL = 1e-6
#: Relative tolerance for end-of-run accounting reconciliation.
_ACCOUNT_RTOL = 1e-6
#: Absolute floor for accounting comparisons (µs / work-µs).
_ACCOUNT_ATOL = 1e-3


@dataclass(frozen=True)
class AuditReport:
    """Machine-readable outcome of one run's invariant auditing.

    Attributes
    ----------
    checks:
        ``(check_name, times_evaluated)`` pairs, sorted by name. A check
        that never ran (e.g. manager checks on a kernel-only run) is
        absent.
    violations:
        Human-readable description of every violation observed (empty on a
        clean run; in strict mode the first violation also raises
        :class:`repro.errors.AuditViolation`, so at most one is recorded).
    """

    checks: tuple[tuple[str, int], ...]
    violations: tuple[str, ...]

    @property
    def ok(self) -> bool:
        """Whether every evaluated check passed."""
        return not self.violations

    @property
    def total_checks(self) -> int:
        """Total individual check evaluations across the run."""
        return sum(n for _, n in self.checks)

    def count(self, check: str) -> int:
        """Times a named check was evaluated (0 if it never ran)."""
        return dict(self.checks).get(check, 0)


class InvariantAuditor:
    """Runtime invariant checks over one simulation (see module docstring).

    Parameters
    ----------
    machine / engine:
        The simulation fabric under audit.
    bus_capacity_txus:
        Configured bus capacity the aggregate grant is checked against.
    strict:
        Raise :class:`~repro.errors.AuditViolation` at the first failed
        check (default). Non-strict mode records violations in the report
        instead — used by the self-tests that inject synthetic faults.
    """

    def __init__(
        self,
        machine: "Machine",
        engine: "Engine",
        bus_capacity_txus: float,
        strict: bool = True,
    ) -> None:
        self._machine = machine
        self._engine = engine
        self._capacity = float(bus_capacity_txus)
        self.strict = strict
        self._counts: dict[str, int] = {}
        self._violations: list[AuditViolation] = []
        self._last_clock = engine.now
        # Per-app starvation ages: app_id → [unselected quanta, peak
        # co-resident count during the current wait].
        self._wait: dict[int, list[int]] = {}
        # Progress liveness (fault runs): app_id → [last observed work_us,
        # consecutive zero-progress quanta while selected], plus the
        # previous boundary's selection so "was selected for the quantum
        # that just ended" is judged against the right decision.
        self._liveness: dict[int, list[float]] = {}
        self._prev_selected: set[int] = set()
        self._manager: "CpuManager | None" = None

    # ------------------------------------------------------------------ wiring

    def install_manager(self, manager: "CpuManager") -> None:
        """Attach to a CPU manager (called by the manager on attach)."""
        self._manager = manager

    def start_periodic(self, period_us: float) -> None:
        """Start a self-rescheduling audit tick for manager-less runs.

        Managed runs are audited from the manager's own sample/boundary
        hooks; kernel-only runs get this observer-priority tick instead
        (bus-capacity + engine-ledger checks only — kernel substrates like
        gang or dedicated are not work-conserving by design).
        """
        if period_us <= 0:
            raise ValueError(f"audit period must be positive, got {period_us}")

        def tick() -> None:
            self.check_engine()
            self.check_bus()
            self._engine.schedule_after(period_us, tick, priority=EventPriority.OBSERVER)

        self._engine.schedule_after(period_us, tick, priority=EventPriority.OBSERVER)

    # ----------------------------------------------------------------- plumbing

    def _passed(self, check: str) -> None:
        self._counts[check] = self._counts.get(check, 0) + 1

    def _violation(self, check: str, **details) -> None:
        self._counts[check] = self._counts.get(check, 0) + 1
        err = AuditViolation(check, self._engine.now, details)
        if len(self._violations) < 100:
            self._violations.append(err)
        if self.strict:
            raise err

    def _check(self, check: str, ok: bool, **details) -> None:
        if ok:
            self._passed(check)
        else:
            self._violation(check, **details)

    def report(self) -> AuditReport:
        """Freeze the current audit state into a picklable report."""
        return AuditReport(
            checks=tuple(sorted(self._counts.items())),
            violations=tuple(str(v) for v in self._violations),
        )

    # ------------------------------------------------------------------- checks

    def check_engine(self) -> None:
        """Clock monotonicity, machine/engine sync, exact event ledger."""
        eng = self._engine
        self._check(
            "engine-accounting",
            eng.now >= self._last_clock
            and abs(self._machine.now - eng.now) <= 1e-6
            and eng.pending_events
            == eng.events_scheduled - eng.events_fired - eng.events_cancelled,
            now=eng.now,
            last=self._last_clock,
            machine_now=self._machine.now,
            pending=eng.pending_events,
            scheduled=eng.events_scheduled,
            fired=eng.events_fired,
            cancelled=eng.events_cancelled,
        )
        self._last_clock = eng.now

    def check_bus(self) -> None:
        """Aggregate granted rate ≤ capacity within solver tolerance."""
        total = self._machine.bus_total_txus
        self._check(
            "bus-capacity",
            total <= self._capacity * (1.0 + _CAPACITY_RTOL),
            total_txus=total,
            capacity_txus=self._capacity,
        )

    def _check_running(self) -> None:
        """Structural CPU-allocation invariants (cheap, race-free).

        The per-thread flag scan reads the thread store's bool columns
        directly (``row == tid - 1``): one mask over the running rows
        instead of a ThreadState lookup per dispatched CPU.
        """
        machine = self._machine
        running = machine.running_tids()
        ok = len(running) <= machine.n_cpus and len(set(running)) == len(running)
        if ok and running:
            s = machine.store
            rows = np.asarray(running, dtype=np.int64) - 1
            bad = s.blocked[rows] | s.finished[rows] | s.in_io[rows]
            ok = not bool(bad.any())
        self._check(
            "cpu-allocation", ok, running=running, n_cpus=machine.n_cpus
        )

    def _signal_settle_us(self, manager: "CpuManager") -> float:
        """Worst-case delivery latency of one boundary's signals."""
        widths = [d.n_threads for d in manager.arena.connected()]
        max_width = max(widths, default=1)
        cfg = manager.config
        return cfg.signal_first_hop_us + cfg.signal_forward_us * max_width

    def on_sample(self, manager: "CpuManager") -> None:
        """Sample-tick hook: intent, counters, bus and engine checks.

        Runs at SAMPLE priority, i.e. before any same-instant boundary or
        delivery event, when the previous boundary's signals have long
        settled (sample periods are O(100 ms), signal latencies O(10 µs)).
        The work-conservation half is deferred to a same-instant
        observer-priority event so same-instant kernel refills land first.
        """
        self.check_engine()
        self.check_bus()
        self._check_running()

        machine = manager.machine
        # Intent + counter checks only make sense once signals settle;
        # skip them for degenerate configs with sample periods inside the
        # signal-latency window.
        if manager.config.sample_period_us < 2.0 * self._signal_settle_us(manager):
            return
        # Under signal faults with hardening armed the manager *expects*
        # transient intent/counter mismatches (lost or delayed signals it
        # is still retrying), so these two checks are suspended; every
        # other invariant above and below stays live.
        if not getattr(manager, "signal_checks_relaxed", False):
            selected = manager.selected
            expected: set[int] = set()
            managed: list[int] = []
            for desc in manager.arena.connected():
                live = [t for t in desc.tids if not machine.thread(t).finished]
                managed.extend(live)
                if desc.app_id in selected:
                    expected.update(live)
            unblocked = {t for t in managed if not machine.thread(t).blocked}
            self._check(
                "allocation-intent",
                unblocked == expected,
                unblocked=sorted(unblocked),
                expected=sorted(expected),
                selected=sorted(selected),
            )
            if manager.signals.protocol == "counter":
                ok = True
                for tid in managed:
                    blocks, unblocks = manager.signals.received_counts(tid)
                    if blocks < 0 or unblocks < 0:
                        ok = False
                        break
                    if machine.thread(tid).blocked != (blocks > unblocks):
                        ok = False
                        break
                self._check("signal-counters", ok, managed=sorted(managed))

        def deferred() -> None:
            # Work conservation at observer priority: every same-instant
            # kernel refill has fired by now. Only meaningful in managed
            # runs (the kernel substrates here are work-conserving).
            runnable = len(machine.runnable_threads())
            running = len(machine.running_tids())
            self._check(
                "cpu-allocation",
                running == min(machine.n_cpus, runnable),
                running=running,
                runnable=runnable,
                n_cpus=machine.n_cpus,
            )

        self._engine.schedule_at(
            self._engine.now, deferred, priority=EventPriority.OBSERVER
        )

    def on_quantum(
        self,
        manager: "CpuManager",
        jobs: list["JobView"],
        selection: "Selection",
        fallback: bool = False,
    ) -> None:
        """Quantum-boundary hook: structure, oracle replay, starvation.

        ``fallback`` marks a boundary where the hardened manager degraded
        to bandwidth-agnostic head-first selection (all estimates stale);
        the oracle replay is skipped there — the degraded path is not the
        greedy algorithm — but structure and starvation still apply
        (head-first first-fit preserves both).
        """
        self.check_engine()
        self.check_bus()
        self._check_running()
        machine = manager.machine

        # Structure: head first, fits, no duplicates, no foreign ids.
        widths = {j.app_id: j.width for j in jobs}
        ids = selection.app_ids
        structural = (
            len(set(ids)) == len(ids)
            and all(a in widths for a in ids)
            and sum(widths[a] for a in ids if a in widths) <= machine.n_cpus
            and (not jobs or not ids or ids[0] == jobs[0].app_id)
        )
        self._check(
            "selection-structure",
            structural,
            selected=list(ids),
            jobs=[(j.app_id, j.width) for j in jobs],
            n_cpus=machine.n_cpus,
        )

        # Differential oracle: replay the paper's greedy algorithm.
        policy = manager.policy
        if getattr(policy, "oracle_replayable", False) and not fallback:
            expected = reference_selection(
                jobs,
                machine.n_cpus,
                policy.bus_capacity_txus,
                policy.effective_estimate,
                policy.fitness,
            )
            self._check(
                "selection-oracle",
                ids == expected,
                selected=list(ids),
                oracle=list(expected),
                policy=policy.name,
            )

        # Starvation ages: consecutive unselected quanta never exceed the
        # peak co-resident count during the wait (head-first rotation).
        connected = [d.app_id for d in manager.arena.connected()]
        n = len(connected)
        chosen = set(ids)
        for app_id in list(self._wait):
            if app_id not in connected:
                del self._wait[app_id]
        for app_id in connected:
            state = self._wait.setdefault(app_id, [0, n])
            if app_id in chosen:
                state[0] = 0
                state[1] = n
            else:
                state[0] += 1
                state[1] = max(state[1], n)
                self._check(
                    "starvation-age",
                    state[0] <= state[1],
                    app_id=app_id,
                    wait_quanta=state[0],
                    peak_coresident=state[1],
                )

        # Progress liveness (fault runs only): an application selected for
        # the quantum that just ended, with live threads, must have retired
        # *some* work within the patience window. The threshold sits two
        # quanta past the hardened watchdog's, so with hardening armed the
        # manager always quarantines first and this check stays clean; with
        # hardening off a hung app pins its processors and the violation
        # documents the damage.
        if getattr(manager, "faults_active", False):
            patience = manager.config.watchdog_quanta + 2
            for app_id in list(self._liveness):
                if app_id not in connected:
                    del self._liveness[app_id]
            for desc in manager.arena.connected():
                live = [t for t in desc.tids if not machine.thread(t).finished]
                if not live:
                    continue
                work = machine.counters.read_many(desc.tids).work_us
                state = self._liveness.setdefault(desc.app_id, [work, 0.0])
                if desc.app_id not in self._prev_selected:
                    # Deselected apps legitimately cannot progress; hold
                    # the count rather than punishing the wait.
                    state[0] = work
                    continue
                if work - state[0] > 1e-9:
                    state[0] = work
                    state[1] = 0.0
                else:
                    state[1] += 1.0
                    self._check(
                        "progress-liveness",
                        state[1] <= patience,
                        app_id=desc.app_id,
                        stuck_quanta=int(state[1]),
                        patience=patience,
                    )
            self._prev_selected = set(ids)

    def on_deliver(self, manager: "CpuManager", tid: int) -> None:
        """A block/unblock signal is about to be *applied* to ``tid``.

        The departed-mute rule: deliveries to threads of disconnected
        applications must be inert, so an applied delivery whose thread
        belongs to no connected application is a protocol violation.
        """
        connected = any(
            tid in desc.tids for desc in manager.arena.connected()
        )
        self._check("signal-departed", connected, tid=tid)

    def finalize(self) -> AuditReport:
        """End-of-run accounting reconciliation; returns the final report."""
        machine = self._machine
        self.check_engine()
        ok = True
        detail: dict = {}
        total_run = 0.0
        for t in machine.threads():
            snap = machine.counters.read(t.tid)
            total_run += t.run_time_us
            slack = _ACCOUNT_RTOL * max(t.work_total, snap.cycles_us) + _ACCOUNT_ATOL
            if t.work_done > t.work_total + slack:
                ok = False
                detail = {"tid": t.tid, "work_done": t.work_done, "work_total": t.work_total}
                break
            if snap.work_us > snap.cycles_us * (1.0 + _ACCOUNT_RTOL) + _ACCOUNT_ATOL:
                ok = False
                detail = {"tid": t.tid, "work_us": snap.work_us, "cycles_us": snap.cycles_us}
                break
            if abs(t.run_time_us - snap.cycles_us) > slack:
                ok = False
                detail = {"tid": t.tid, "run_time_us": t.run_time_us, "cycles_us": snap.cycles_us}
                break
        if ok:
            idle = sum(c.idle_time(machine.now) for c in machine.cpus)
            whole = machine.n_cpus * machine.now
            if abs(total_run + idle - whole) > _ACCOUNT_RTOL * max(whole, 1.0) + _ACCOUNT_ATOL:
                ok = False
                detail = {
                    "total_run_us": total_run,
                    "idle_us": idle,
                    "n_cpus_x_makespan": whole,
                }
        self._check("accounting-totals", ok, **detail)
        return self.report()
