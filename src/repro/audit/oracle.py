"""Differential oracle for the paper's quantum-boundary selection.

:func:`reference_selection` is an independent re-implementation of the
Section 4 allocation algorithm — head of the circular list first, then
fitness-driven traversals over the remaining jobs (Equation 1) — written
against the *paper's prose* rather than against :mod:`repro.core.policies`.
The audit layer replays every quantum's decision through it and flags any
divergence from the selection the simulated policy actually produced.

The replay deliberately reuses the live policy's ``effective_estimate``
and ``fitness`` callables (both pure functions of their arguments): the
oracle differentiates the *traversal and allocation logic*, which is where
regressions from refactors land, while holding the estimator inputs fixed.
Tie-breaking matches the paper's list traversal: the first job attaining
the maximal fitness in circular-list order wins each round.

Policies whose selection is legitimately different from the greedy
algorithm — the whole-set optimizer of
:mod:`repro.core.policies_model` (stateful deficit weights) and the
randomized gang baseline (consumes the policy RNG) — declare
``oracle_replayable = False`` and receive structural checks only.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from ..core.policies import JobView

__all__ = ["reference_selection"]


def reference_selection(
    jobs: Sequence["JobView"],
    n_cpus: int,
    bus_capacity_txus: float,
    estimate: Callable[[int], float],
    fitness: Callable[[float, float], float],
) -> tuple[int, ...]:
    """The paper's selection algorithm, re-derived from the prose.

    Parameters
    ----------
    jobs:
        Schedulable applications in circular-list order (head first),
        zero-width jobs already filtered out.
    n_cpus:
        Processors to allocate.
    bus_capacity_txus:
        The manager's believed total bus bandwidth.
    estimate:
        ``estimate(app_id) -> BBW/thread`` (unknown apps mapped to 0.0).
    fitness:
        ``fitness(abbw_per_proc, bbw_per_thread) -> score`` (Equation 1).

    Returns
    -------
    tuple[int, ...]
        Selected app ids in allocation order.
    """
    remaining = list(jobs)
    picked: list["JobView"] = []
    free = n_cpus

    # Step 1 — the head job runs unconditionally (the no-starvation rule).
    # "Allocated unconditionally" in the paper presumes it fits; the first
    # fitting job in list order is the head of the schedulable list.
    for i, job in enumerate(remaining):
        if job.width <= free:
            picked.append(job)
            free -= job.width
            del remaining[i]
            break

    # Step 2 — repeated fitness traversals until nothing fits.
    while free > 0 and remaining:
        allocated_bbw = sum(estimate(j.app_id) * j.width for j in picked)
        abbw_per_proc = (bus_capacity_txus - allocated_bbw) / free
        best_i = -1
        best_score = -float("inf")
        for i, job in enumerate(remaining):
            if job.width > free:
                continue
            score = fitness(abbw_per_proc, estimate(job.app_id))
            if score > best_score:
                best_score = score
                best_i = i
        if best_i < 0:
            break
        job = remaining.pop(best_i)
        picked.append(job)
        free -= job.width

    return tuple(j.app_id for j in picked)
