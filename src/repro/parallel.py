"""Parallel experiment fan-out: run independent simulations on all cores.

Every experiment harness in :mod:`repro.experiments` reduces to a grid of
independent :class:`~repro.experiments.base.SimulationSpec` cells —
(application × configuration × policy × seed) — and bandwidth-aware
scheduling studies are embarrassingly parallel across that grid (Eremeev
et al., arXiv:2010.16058, evaluate exactly such grids). :func:`run_many`
is the single dispatch point: it executes a list of specs either serially
in-process or fanned out over a :class:`concurrent.futures.
ProcessPoolExecutor` in *chunks* (several specs per worker task, so each
worker amortises fork/pickle overhead and keeps a warm shared solve cache
across its chunk), and guarantees the paths are *bit-identical*:

* **Deterministic ordering** — results are returned in spec order no
  matter which worker finishes first.
* **Per-task seeding** — every spec carries its own root seed; no random
  state is shared between tasks (or with the parent process).
* **Run-local identity** — the experiment runner assigns app ids and
  target-name ordering per run, so a result does not depend on which
  process (or how many prior simulations in that process) produced it.

Worker processes are forked, so the cheap platform check
:func:`fork_available` gates the pool: platforms without ``fork`` (or
``jobs=1``) fall back to the serial path transparently. Exceptions raised
inside a worker propagate to the caller.

Usage::

    specs = [SimulationSpec(...), SimulationSpec(...), ...]
    results = run_many(specs, jobs=4, progress=lambda done, n: ...)

The ``collect`` hook supports harnesses that need more than the
:class:`~repro.metrics.accounting.RunResult` (e.g. EXT-IO reads I/O wait
counts off the live handle): a module-level function applied to
``(result, handle)`` *inside the worker*; its picklable return value is
paired with each result.
"""

from __future__ import annotations

import inspect
import multiprocessing
import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Any, Callable, Sequence

from .experiments.base import (
    SimulationSpec,
    run_simulation,
    run_simulation_with_handle,
)
from .hw.bus import install_shared_solve_cache, shared_solve_cache
from .metrics.accounting import RunResult

__all__ = [
    "run_many",
    "default_jobs",
    "fork_available",
    "resolve_jobs",
    "auto_chunk_size",
]

#: Callback invoked as tasks complete: ``progress(done, total)``. Callbacks
#: accepting a third positional argument also receive occasional string
#: notes (e.g. the fork-unavailable serial fallback).
ProgressFn = Callable[..., None]

#: Worker-side post-processor: ``collect(result, handle) -> picklable``.
CollectFn = Callable[..., Any]


def fork_available() -> bool:
    """Whether this platform can fork worker processes.

    Fork workers inherit ``sys.path`` and module state, so they work under
    any invocation (``PYTHONPATH=src``, editable installs, test runners).
    Spawn-based pools would re-import ``repro`` from scratch and are not
    supported — :func:`run_many` falls back to serial instead.
    """
    return "fork" in multiprocessing.get_all_start_methods()


def default_jobs() -> int:
    """Default worker count: ``REPRO_JOBS`` env var, else 1 (serial)."""
    env = os.environ.get("REPRO_JOBS", "").strip()
    if env:
        try:
            return resolve_jobs(int(env))
        except ValueError:
            pass
    return 1


def resolve_jobs(jobs: int | None, n_specs: int | None = None) -> int:
    """Normalize a ``jobs`` request: ``None`` → env default, ``<= 0`` → all cores.

    When ``n_specs`` is given the result is additionally clamped to the
    number of specs — spawning more workers than tasks only pays fork cost
    for processes that will never receive work.
    """
    if jobs is None:
        resolved = default_jobs()
    elif jobs <= 0:
        resolved = os.cpu_count() or 1
    else:
        resolved = jobs
    if n_specs is not None:
        resolved = max(1, min(resolved, n_specs))
    return resolved


def auto_chunk_size(total: int, n_jobs: int) -> int:
    """Default dispatch chunk: ≈ ``total / (4 · n_jobs)`` specs per task.

    Four chunks per worker balances fork/pickle amortisation (and warm
    solve caches within a chunk) against load-balancing slack when spec
    runtimes are uneven. Never below 1.
    """
    return max(1, total // (4 * max(1, n_jobs)))


def _supports_note(progress: ProgressFn) -> bool:
    """Whether a progress callback accepts a third (note) argument."""
    try:
        sig = inspect.signature(progress)
    except (TypeError, ValueError):  # builtins, C callables: stay conservative
        return False
    positional = 0
    for param in sig.parameters.values():
        if param.kind is inspect.Parameter.VAR_POSITIONAL:
            return True
        if param.kind in (
            inspect.Parameter.POSITIONAL_ONLY,
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
        ):
            positional += 1
    return positional >= 3


def _notify(
    progress: ProgressFn | None, done: int, total: int, note: str | None = None
) -> None:
    if progress is None:
        return
    if note is not None:
        # Notes are advisory: only callbacks with a third positional slot
        # receive them; legacy two-arg callbacks see no extra call.
        if _supports_note(progress):
            progress(done, total, note)
        return
    progress(done, total)


def _execute(task: tuple[int, SimulationSpec, CollectFn | None]) -> tuple[int, RunResult, Any]:
    """Run one spec (worker side). Shared by the serial and parallel paths."""
    index, spec, collect = task
    if collect is None:
        return index, run_simulation(spec), None
    result, handle = run_simulation_with_handle(spec)
    return index, result, collect(result, handle)


def _execute_chunk(
    chunk: Sequence[tuple[int, SimulationSpec, CollectFn | None]],
) -> list[tuple[int, RunResult, Any]]:
    """Run a chunk of specs sequentially (worker side).

    The worker installs the process-global shared solve cache (bisect-mode
    equilibria, bitwise-reproducible replays only — see
    :mod:`repro.hw.bus`) so every spec after the first starts with the
    chunk's accumulated equilibrium solutions instead of a cold cache.
    The cache lives for the worker's lifetime, so later chunks dispatched
    to the same worker keep compounding it.
    """
    if shared_solve_cache() is None:
        install_shared_solve_cache()
    return [_execute(task) for task in chunk]


def run_many(
    specs: Sequence[SimulationSpec],
    jobs: int | None = 1,
    progress: ProgressFn | None = None,
    collect: CollectFn | None = None,
    chunk_size: int | None = None,
) -> list:
    """Run every spec and return results in spec order.

    Parameters
    ----------
    specs:
        The simulation grid. Each spec is self-contained (including its
        seed); tasks share nothing.
    jobs:
        Worker processes. ``1`` (default) runs serially in-process;
        ``None`` reads the ``REPRO_JOBS`` env var; ``<= 0`` uses every
        core. Jobs are clamped to ``len(specs)``, and platforms without
        ``fork`` run serially regardless (reported through ``progress``).
    progress:
        Optional ``progress(done, total)`` callback, invoked in the parent
        as specs complete (in completion order; once per finished chunk in
        parallel mode, with ``done`` counting finished *specs*). Callbacks
        taking a third positional argument also receive occasional string
        notes, e.g. when the serial fallback engages.
    collect:
        Optional module-level ``collect(result, handle)`` function run in
        the worker; when given, the return value is ``[(result, aux), ...]``
        instead of ``[result, ...]``.
    chunk_size:
        Specs per worker task. ``None`` picks :func:`auto_chunk_size`
        (≈ ``total / (4 · jobs)``). Larger chunks amortise fork/IPC cost
        and let each worker reuse a warm shared solve cache across its
        chunk; chunking never changes results — only dispatch granularity.

    Returns
    -------
    list
        ``RunResult`` per spec — or ``(RunResult, aux)`` pairs with
        ``collect`` — in the exact order of ``specs``, identical between
        serial and parallel execution (and any chunk size).
    """
    total = len(specs)
    n_jobs = resolve_jobs(jobs, total)
    tasks = [(i, spec, collect) for i, spec in enumerate(specs)]
    out: list[Any] = [None] * total

    if n_jobs <= 1 or total <= 1 or not fork_available():
        if n_jobs > 1 and total > 1:
            _notify(progress, 0, total, "fork unavailable: falling back to serial execution")
        for done, task in enumerate(tasks, start=1):
            index, result, aux = _execute(task)
            out[index] = (result, aux) if collect is not None else result
            _notify(progress, done, total)
        return out

    if chunk_size is not None and chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    chunk = chunk_size if chunk_size is not None else auto_chunk_size(total, n_jobs)
    chunks = [tasks[i : i + chunk] for i in range(0, total, chunk)]

    ctx = multiprocessing.get_context("fork")
    with ProcessPoolExecutor(max_workers=n_jobs, mp_context=ctx) as pool:
        pending = {pool.submit(_execute_chunk, c) for c in chunks}
        done_count = 0
        while pending:
            finished, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in finished:
                for index, result, aux in future.result():  # re-raises worker errors
                    out[index] = (result, aux) if collect is not None else result
                    done_count += 1
                _notify(progress, done_count, total)
    return out
