"""Parallel experiment fan-out: run independent simulations on all cores.

Every experiment harness in :mod:`repro.experiments` reduces to a grid of
independent :class:`~repro.experiments.base.SimulationSpec` cells —
(application × configuration × policy × seed) — and bandwidth-aware
scheduling studies are embarrassingly parallel across that grid (Eremeev
et al., arXiv:2010.16058, evaluate exactly such grids). :func:`run_many`
is the single dispatch point: it executes a list of specs either serially
in-process or fanned out over a :class:`concurrent.futures.
ProcessPoolExecutor`, and guarantees the two paths are *bit-identical*:

* **Deterministic ordering** — results are returned in spec order no
  matter which worker finishes first.
* **Per-task seeding** — every spec carries its own root seed; no random
  state is shared between tasks (or with the parent process).
* **Run-local identity** — the experiment runner assigns app ids and
  target-name ordering per run, so a result does not depend on which
  process (or how many prior simulations in that process) produced it.

Worker processes are forked, so the cheap platform check
:func:`fork_available` gates the pool: platforms without ``fork`` (or
``jobs=1``) fall back to the serial path transparently. Exceptions raised
inside a worker propagate to the caller.

Usage::

    specs = [SimulationSpec(...), SimulationSpec(...), ...]
    results = run_many(specs, jobs=4, progress=lambda done, n: ...)

The ``collect`` hook supports harnesses that need more than the
:class:`~repro.metrics.accounting.RunResult` (e.g. EXT-IO reads I/O wait
counts off the live handle): a module-level function applied to
``(result, handle)`` *inside the worker*; its picklable return value is
paired with each result.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Any, Callable, Sequence

from .experiments.base import (
    SimulationSpec,
    run_simulation,
    run_simulation_with_handle,
)
from .metrics.accounting import RunResult

__all__ = ["run_many", "default_jobs", "fork_available", "resolve_jobs"]

#: Callback invoked after each completed task: ``progress(done, total)``.
ProgressFn = Callable[[int, int], None]

#: Worker-side post-processor: ``collect(result, handle) -> picklable``.
CollectFn = Callable[..., Any]


def fork_available() -> bool:
    """Whether this platform can fork worker processes.

    Fork workers inherit ``sys.path`` and module state, so they work under
    any invocation (``PYTHONPATH=src``, editable installs, test runners).
    Spawn-based pools would re-import ``repro`` from scratch and are not
    supported — :func:`run_many` falls back to serial instead.
    """
    return "fork" in multiprocessing.get_all_start_methods()


def default_jobs() -> int:
    """Default worker count: ``REPRO_JOBS`` env var, else 1 (serial)."""
    env = os.environ.get("REPRO_JOBS", "").strip()
    if env:
        try:
            return resolve_jobs(int(env))
        except ValueError:
            pass
    return 1


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``jobs`` request: ``None`` → env default, ``<= 0`` → all cores."""
    if jobs is None:
        return default_jobs()
    if jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def _execute(task: tuple[int, SimulationSpec, CollectFn | None]) -> tuple[int, RunResult, Any]:
    """Run one spec (worker side). Shared by the serial and parallel paths."""
    index, spec, collect = task
    if collect is None:
        return index, run_simulation(spec), None
    result, handle = run_simulation_with_handle(spec)
    return index, result, collect(result, handle)


def run_many(
    specs: Sequence[SimulationSpec],
    jobs: int | None = 1,
    progress: ProgressFn | None = None,
    collect: CollectFn | None = None,
) -> list:
    """Run every spec and return results in spec order.

    Parameters
    ----------
    specs:
        The simulation grid. Each spec is self-contained (including its
        seed); tasks share nothing.
    jobs:
        Worker processes. ``1`` (default) runs serially in-process;
        ``None`` reads the ``REPRO_JOBS`` env var; ``<= 0`` uses every
        core. More workers than specs are never spawned, and platforms
        without ``fork`` run serially regardless.
    progress:
        Optional ``progress(done, total)`` callback, invoked in the parent
        after each task completes (in completion order).
    collect:
        Optional module-level ``collect(result, handle)`` function run in
        the worker; when given, the return value is ``[(result, aux), ...]``
        instead of ``[result, ...]``.

    Returns
    -------
    list
        ``RunResult`` per spec — or ``(RunResult, aux)`` pairs with
        ``collect`` — in the exact order of ``specs``, identical between
        serial and parallel execution.
    """
    n_jobs = resolve_jobs(jobs)
    total = len(specs)
    tasks = [(i, spec, collect) for i, spec in enumerate(specs)]
    out: list[Any] = [None] * total

    if n_jobs <= 1 or total <= 1 or not fork_available():
        for done, task in enumerate(tasks, start=1):
            index, result, aux = _execute(task)
            out[index] = (result, aux) if collect is not None else result
            if progress is not None:
                progress(done, total)
        return out

    ctx = multiprocessing.get_context("fork")
    with ProcessPoolExecutor(max_workers=min(n_jobs, total), mp_context=ctx) as pool:
        pending = {pool.submit(_execute, task) for task in tasks}
        done_count = 0
        while pending:
            finished, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in finished:
                index, result, aux = future.result()  # re-raises worker errors
                out[index] = (result, aux) if collect is not None else result
                done_count += 1
                if progress is not None:
                    progress(done_count, total)
    return out
