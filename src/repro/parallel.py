"""Parallel experiment fan-out: run independent simulations on all cores.

Every experiment harness in :mod:`repro.experiments` reduces to a grid of
independent :class:`~repro.experiments.base.SimulationSpec` cells —
(application × configuration × policy × seed) — and bandwidth-aware
scheduling studies are embarrassingly parallel across that grid (Eremeev
et al., arXiv:2010.16058, evaluate exactly such grids). :func:`run_many`
is the single dispatch point: it executes a list of specs either serially
in-process or fanned out over a :class:`concurrent.futures.
ProcessPoolExecutor` in *chunks* (several specs per worker task, so each
worker amortises fork/pickle overhead and keeps a warm shared solve cache
across its chunk), and guarantees the paths are *bit-identical*:

* **Deterministic ordering** — results are returned in spec order no
  matter which worker finishes first.
* **Per-task seeding** — every spec carries its own root seed; no random
  state is shared between tasks (or with the parent process).
* **Run-local identity** — the experiment runner assigns app ids and
  target-name ordering per run, so a result does not depend on which
  process (or how many prior simulations in that process) produced it.

Worker processes are forked, so the cheap platform check
:func:`fork_available` gates the pool: platforms without ``fork`` (or
``jobs=1``) fall back to the serial path transparently. Exceptions raised
inside a worker propagate to the caller.

Usage::

    specs = [SimulationSpec(...), SimulationSpec(...), ...]
    results = run_many(specs, jobs=4, progress=lambda done, n: ...)

The ``collect`` hook supports harnesses that need more than the
:class:`~repro.metrics.accounting.RunResult` (e.g. EXT-IO reads I/O wait
counts off the live handle): a module-level function applied to
``(result, handle)`` *inside the worker*; its picklable return value is
paired with each result.
"""

from __future__ import annotations

import inspect
import math
import multiprocessing
import os
import signal
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from .errors import RunTimeoutError, WorkerCrashError
from .experiments.base import (
    SimulationSpec,
    run_simulation,
    run_simulation_with_handle,
)
from .hw.bus import install_shared_solve_cache, shared_solve_cache
from .metrics.accounting import RunResult

__all__ = [
    "run_many",
    "default_jobs",
    "fork_available",
    "resolve_jobs",
    "auto_chunk_size",
    "usable_cpus",
    "cgroup_cpu_quota",
    "effective_cpu_budget",
    "SupervisionConfig",
]

#: Callback invoked as tasks complete: ``progress(done, total)``. Callbacks
#: accepting a third positional argument also receive occasional string
#: notes (e.g. the fork-unavailable serial fallback).
ProgressFn = Callable[..., None]

#: Worker-side post-processor: ``collect(result, handle) -> picklable``.
CollectFn = Callable[..., Any]


def fork_available() -> bool:
    """Whether this platform can fork worker processes.

    Fork workers inherit ``sys.path`` and module state, so they work under
    any invocation (``PYTHONPATH=src``, editable installs, test runners).
    Spawn-based pools would re-import ``repro`` from scratch and are not
    supported — :func:`run_many` falls back to serial instead.
    """
    return "fork" in multiprocessing.get_all_start_methods()


def default_jobs() -> int:
    """Default worker count: ``REPRO_JOBS`` env var, else 1 (serial)."""
    env = os.environ.get("REPRO_JOBS", "").strip()
    if env:
        try:
            return resolve_jobs(int(env))
        except ValueError:
            pass
    return 1


def usable_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def cgroup_cpu_quota() -> float | None:
    """Effective CPU quota from the cgroup (v2 then v1), in cores.

    Containers often present many CPUs in the affinity mask while the
    cgroup throttles the process to a fraction of one — ``jobs <= 0``
    ("all cores") sized off the raw count would then oversubscribe a
    budget of one or two cores with dozens of forked workers. Returns
    ``None`` when no quota applies (or no cgroup files exist, e.g.
    non-Linux).
    """
    try:  # cgroup v2: "max 100000" or "<quota_us> <period_us>"
        with open("/sys/fs/cgroup/cpu.max", encoding="ascii") as fh:
            quota, period = fh.read().split()
            if quota != "max" and float(period) > 0:
                return float(quota) / float(period)
            return None
    except (OSError, ValueError):
        pass
    try:  # cgroup v1
        base = "/sys/fs/cgroup/cpu"
        with open(f"{base}/cpu.cfs_quota_us", encoding="ascii") as fh:
            quota = float(fh.read())
        with open(f"{base}/cpu.cfs_period_us", encoding="ascii") as fh:
            period = float(fh.read())
        if quota > 0 and period > 0:
            return quota / period
    except (OSError, ValueError):
        pass
    return None


def effective_cpu_budget() -> int:
    """Worker count this process can truly use: affinity ∩ cgroup quota.

    The intersection of the scheduler affinity mask and the cgroup CPU
    quota (rounded down to whole cores), floored at 1. This is what
    ``jobs <= 0`` resolves to — never the raw ``os.cpu_count()``, which
    counts CPUs the container cannot touch.
    """
    budget = usable_cpus()
    quota = cgroup_cpu_quota()
    if quota is not None:
        budget = min(budget, int(math.floor(quota)))
    return max(1, budget)


def resolve_jobs(jobs: int | None, n_specs: int | None = None) -> int:
    """Normalize a ``jobs`` request: ``None`` → env default, ``<= 0`` → all cores.

    "All cores" means :func:`effective_cpu_budget` — the affinity mask
    intersected with the cgroup CPU quota — not the raw ``os.cpu_count()``.
    When ``n_specs`` is given the result is additionally clamped to the
    number of specs — spawning more workers than tasks only pays fork cost
    for processes that will never receive work.
    """
    if jobs is None:
        resolved = default_jobs()
    elif jobs <= 0:
        resolved = effective_cpu_budget()
    else:
        resolved = jobs
    if n_specs is not None:
        resolved = max(1, min(resolved, n_specs))
    return resolved


def auto_chunk_size(total: int, n_jobs: int) -> int:
    """Default dispatch chunk: ≈ ``total / (4 · n_jobs)`` specs per task.

    Four chunks per worker balances fork/pickle amortisation (and warm
    solve caches within a chunk) against load-balancing slack when spec
    runtimes are uneven. Never below 1.
    """
    return max(1, total // (4 * max(1, n_jobs)))


@dataclass(frozen=True)
class SupervisionConfig:
    """Worker-supervision policy for the parallel :func:`run_many` path.

    With supervision enabled, a worker process dying mid-batch
    (``BrokenProcessPool`` — e.g. an OOM kill or an external SIGKILL) or a
    worker exceeding its wall-clock budget no longer aborts the whole
    batch: the supervisor harvests every already-completed run, then
    re-executes the unfinished specs one at a time in *isolation* (a fresh
    single-worker pool per attempt) with bounded exponential-backoff
    retries. Because simulations are deterministic functions of their
    spec, a retry re-executes the identical run — a result produced on
    attempt three is bit-identical to a first-try result. A spec that
    keeps crashing (or hanging) its isolation worker raises a typed
    :class:`~repro.errors.WorkerCrashError` /
    :class:`~repro.errors.RunTimeoutError` carrying the spec index and
    attempt count once ``max_attempts`` is reached, so callers can
    quarantine exactly that spec and keep the rest.

    Timeouts derive from observed behaviour: each chunk's wall-clock
    budget is ``specs_in_chunk × clamp(timeout_factor × max(observed
    per-spec wall times), floor, ceiling)`` — before any spec has
    completed, the ceiling applies. Supervision is inert on the serial
    path (an in-process run cannot be preempted or crash in isolation),
    which is also why its fault-free overhead is ~zero there (gated by
    ``benchmarks/bench_supervision.py``).

    Attributes
    ----------
    max_attempts:
        Isolation executions per spec before the typed error is raised.
        The phase-1 batch execution that *detects* a failure is not
        charged to any spec (a broken pool cannot name its killer);
        attempts count attributable isolation runs only.
    timeout_floor_s / timeout_ceiling_s:
        Clamp on the derived per-spec timeout, seconds.
    timeout_factor:
        Multiple of the largest observed per-spec wall time.
    backoff_base_s / backoff_max_s:
        Exponential backoff between isolation attempts:
        ``min(base × 2^(attempt-1), max)`` seconds.
    poll_s:
        Supervisor wake-up interval while watching deadlines.
    """

    max_attempts: int = 3
    timeout_floor_s: float = 30.0
    timeout_ceiling_s: float = 600.0
    timeout_factor: float = 8.0
    backoff_base_s: float = 0.05
    backoff_max_s: float = 2.0
    poll_s: float = 0.05

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if not 0.0 < self.timeout_floor_s <= self.timeout_ceiling_s:
            raise ValueError(
                "need 0 < timeout_floor_s <= timeout_ceiling_s, got "
                f"{self.timeout_floor_s}..{self.timeout_ceiling_s}"
            )
        if self.timeout_factor <= 0.0:
            raise ValueError(f"timeout_factor must be > 0, got {self.timeout_factor}")
        if self.backoff_base_s < 0.0 or self.backoff_max_s < self.backoff_base_s:
            raise ValueError(
                "need 0 <= backoff_base_s <= backoff_max_s, got "
                f"{self.backoff_base_s}..{self.backoff_max_s}"
            )
        if self.poll_s <= 0.0:
            raise ValueError(f"poll_s must be > 0, got {self.poll_s}")

    def timeout_for(self, observed_walls: Sequence[float]) -> float:
        """Per-spec wall-clock budget given the walls observed so far."""
        if not observed_walls:
            return self.timeout_ceiling_s
        derived = self.timeout_factor * max(observed_walls)
        return min(max(derived, self.timeout_floor_s), self.timeout_ceiling_s)

    def backoff_for(self, attempt: int) -> float:
        """Sleep before retrying after the ``attempt``-th failure."""
        return min(self.backoff_base_s * (2.0 ** max(0, attempt - 1)), self.backoff_max_s)


def _kill_pool_workers(pool: ProcessPoolExecutor) -> None:
    """Forcibly kill a pool's worker processes (hung-worker teardown).

    Reaches into the executor's ``_processes`` map (stable across CPython
    versions we support); guarded so a layout change degrades to leaking
    a worker rather than raising. SIGKILL, not SIGTERM: a worker stuck in
    a hot loop may never reach a Python signal handler.
    """
    workers = getattr(pool, "_processes", None) or {}
    for proc in list(workers.values()):
        try:
            proc.kill()
        except Exception:  # pragma: no cover - teardown best-effort
            pass


def _chaos_kill_check(spec: SimulationSpec) -> None:
    """Test hook: crash or hang this process when executing a marked spec.

    Armed only when ``REPRO_CHAOS_KILL_SPEC`` (SIGKILL the worker) or
    ``REPRO_CHAOS_HANG_SPEC`` (sleep far past any timeout) names the
    spec's hash — the chaos harness and supervision tests use these to
    make worker death and hung workers deterministic. With
    ``REPRO_CHAOS_KILL_ONCE_DIR`` set, each fault fires once per hash (a
    marker file makes retries succeed), which is how retry bit-identity
    is exercised. Unset in production: the cost is two environment
    lookups per spec.
    """
    kill = os.environ.get("REPRO_CHAOS_KILL_SPEC")
    hang = os.environ.get("REPRO_CHAOS_HANG_SPEC")
    if not kill and not hang:
        return
    spec_hash = spec.spec_hash()

    def _armed(target: str | None, tag: str) -> bool:
        if not target or spec_hash != target:
            return False
        once_dir = os.environ.get("REPRO_CHAOS_KILL_ONCE_DIR")
        if once_dir:
            marker = os.path.join(once_dir, f"{target}.{tag}")
            if os.path.exists(marker):
                return False
            with open(marker, "w", encoding="ascii"):
                pass
        return True

    if _armed(kill, "kill"):
        os.kill(os.getpid(), signal.SIGKILL)
    if _armed(hang, "hang"):
        time.sleep(3600.0)


def _supports_note(progress: ProgressFn) -> bool:
    """Whether a progress callback accepts a third (note) argument."""
    try:
        sig = inspect.signature(progress)
    except (TypeError, ValueError):  # builtins, C callables: stay conservative
        return False
    positional = 0
    for param in sig.parameters.values():
        if param.kind is inspect.Parameter.VAR_POSITIONAL:
            return True
        if param.kind in (
            inspect.Parameter.POSITIONAL_ONLY,
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
        ):
            positional += 1
    return positional >= 3


def _notify(
    progress: ProgressFn | None, done: int, total: int, note: str | None = None
) -> None:
    if progress is None:
        return
    if note is not None:
        # Notes are advisory: only callbacks with a third positional slot
        # receive them; legacy two-arg callbacks see no extra call.
        if _supports_note(progress):
            progress(done, total, note)
        return
    progress(done, total)


def _execute(
    task: tuple[int, SimulationSpec, CollectFn | None],
) -> tuple[int, RunResult, Any, float]:
    """Run one spec (worker side). Shared by the serial and parallel paths.

    Returns ``(index, result, aux, wall_s)`` with the spec's own execution
    wall time measured inside the worker — fork/pickle/dispatch overhead
    excluded, so per-run timings stored by the service reflect simulation
    cost only.
    """
    index, spec, collect = task
    _chaos_kill_check(spec)
    start = time.perf_counter()
    if collect is None:
        result, aux = run_simulation(spec), None
    else:
        result, handle = run_simulation_with_handle(spec)
        aux = collect(result, handle)
    return index, result, aux, time.perf_counter() - start


def _execute_chunk(
    chunk: Sequence[tuple[int, SimulationSpec, CollectFn | None]],
) -> list[tuple[int, RunResult, Any, float]]:
    """Run a chunk of specs sequentially (worker side).

    The worker installs the process-global shared solve cache (bisect-mode
    equilibria, bitwise-reproducible replays only — see
    :mod:`repro.hw.bus`) so every spec after the first starts with the
    chunk's accumulated equilibrium solutions instead of a cold cache.
    The cache lives for the worker's lifetime, so later chunks dispatched
    to the same worker keep compounding it.
    """
    if shared_solve_cache() is None:
        install_shared_solve_cache()
    return [_execute(task) for task in chunk]


def run_many(
    specs: Sequence[SimulationSpec],
    jobs: int | None = 1,
    progress: ProgressFn | None = None,
    collect: CollectFn | None = None,
    chunk_size: int | None = None,
    on_result: Callable[[int, RunResult, float], None] | None = None,
    cancel: Callable[[], bool] | None = None,
    supervise: SupervisionConfig | None = None,
) -> list:
    """Run every spec and return results in spec order.

    Parameters
    ----------
    specs:
        The simulation grid. Each spec is self-contained (including its
        seed); tasks share nothing.
    jobs:
        Worker processes. ``1`` (default) runs serially in-process;
        ``None`` reads the ``REPRO_JOBS`` env var; ``<= 0`` uses every
        core. Jobs are clamped to ``len(specs)``, and platforms without
        ``fork`` run serially regardless (reported through ``progress``).
    progress:
        Optional ``progress(done, total)`` callback, invoked in the parent
        as specs complete (in completion order; once per finished chunk in
        parallel mode, with ``done`` counting finished *specs*). Callbacks
        taking a third positional argument also receive occasional string
        notes, e.g. when the serial fallback engages.
    collect:
        Optional module-level ``collect(result, handle)`` function run in
        the worker; when given, the return value is ``[(result, aux), ...]``
        instead of ``[result, ...]``.
    chunk_size:
        Specs per worker task. ``None`` picks :func:`auto_chunk_size`
        (≈ ``total / (4 · jobs)``). Larger chunks amortise fork/IPC cost
        and let each worker reuse a warm shared solve cache across its
        chunk; chunking never changes results — only dispatch granularity.
    on_result:
        Optional ``on_result(index, result, wall_s)`` callback, invoked in
        the parent as each spec completes (completion order, not spec
        order) with the spec's position in ``specs`` and its worker-side
        execution wall time. The service's result store hangs off this:
        results persist as they land rather than when the whole batch
        returns.
    cancel:
        Optional ``cancel() -> bool`` poll, checked between specs on the
        serial path and before dispatching each chunk on the parallel
        path. Once it returns true no further specs are started;
        already-dispatched chunks finish (their results are still
        reported). Unstarted specs stay ``None`` in the returned list.
    supervise:
        Optional :class:`SupervisionConfig`. When given (and the parallel
        path engages), worker death and per-spec wall-clock timeouts are
        survived: completed runs are harvested, unfinished specs re-run
        one at a time in isolation with bounded retries, and a spec that
        keeps failing raises :class:`~repro.errors.WorkerCrashError` or
        :class:`~repro.errors.RunTimeoutError` carrying its index and
        attempt count. Inert on the serial path — an in-process run
        cannot be preempted, and nothing is retried.

    Raises
    ------
    WorkerCrashError, RunTimeoutError
        Only with ``supervise``: one spec exhausted its attempt cap.
        Every run that completed before the raise was already delivered
        through ``on_result``.

    Returns
    -------
    list
        ``RunResult`` per spec — or ``(RunResult, aux)`` pairs with
        ``collect`` — in the exact order of ``specs``, identical between
        serial and parallel execution (and any chunk size). Entries for
        specs skipped by ``cancel`` are ``None``.
    """
    total = len(specs)
    n_jobs = resolve_jobs(jobs, total)
    tasks = [(i, spec, collect) for i, spec in enumerate(specs)]
    out: list[Any] = [None] * total

    def _record(index: int, result: RunResult, aux: Any, wall_s: float) -> None:
        out[index] = (result, aux) if collect is not None else result
        if on_result is not None:
            on_result(index, result, wall_s)

    if n_jobs <= 1 or total <= 1 or not fork_available():
        if n_jobs > 1 and total > 1:
            _notify(progress, 0, total, "fork unavailable: falling back to serial execution")
        for done, task in enumerate(tasks, start=1):
            if cancel is not None and cancel():
                break
            _record(*_execute(task))
            _notify(progress, done, total)
        return out

    if chunk_size is not None and chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    chunk = chunk_size if chunk_size is not None else auto_chunk_size(total, n_jobs)
    chunks = [tasks[i : i + chunk] for i in range(0, total, chunk)]

    ctx = multiprocessing.get_context("fork")
    if supervise is None:
        _run_pool(chunks, n_jobs, ctx, _record, progress, total, cancel)
    else:
        _run_supervised(chunks, n_jobs, ctx, supervise, _record, progress, total, cancel)
    return out


def _run_pool(
    chunks: list,
    n_jobs: int,
    ctx,
    record: Callable[[int, RunResult, Any, float], None],
    progress: ProgressFn | None,
    total: int,
    cancel: Callable[[], bool] | None,
) -> None:
    """Unsupervised parallel dispatch: fail fast, but land every finisher.

    A worker exception stops new submissions immediately, yet the loop
    keeps consuming already-dispatched futures so each completed chunk
    still flows through ``record`` (and hence ``on_result``) before the
    first failure is re-raised — a mid-batch error no longer discards the
    wall times of runs that did finish.
    """
    failure: BaseException | None = None
    with ProcessPoolExecutor(max_workers=n_jobs, mp_context=ctx) as pool:
        # With a cancel hook, keep at most one queued chunk per worker so
        # cancellation takes effect within roughly a chunk's latency; the
        # hook-free path submits everything up front as before.
        backlog = list(reversed(chunks))
        window = 2 * n_jobs if cancel is not None else len(chunks)
        pending: set = set()

        def _refill() -> None:
            while backlog and len(pending) < window:
                if cancel is not None and cancel():
                    backlog.clear()
                    break
                pending.add(pool.submit(_execute_chunk, backlog.pop()))

        _refill()
        done_count = 0
        while pending:
            finished, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in finished:
                try:
                    rows = future.result()
                except Exception as exc:
                    if failure is None:
                        failure = exc
                    backlog.clear()
                    continue
                for index, result, aux, wall_s in rows:
                    record(index, result, aux, wall_s)
                    done_count += 1
                _notify(progress, done_count, total)
            _refill()
    if failure is not None:
        raise failure


def _run_supervised(
    chunks: list,
    n_jobs: int,
    ctx,
    sup: SupervisionConfig,
    record: Callable[[int, RunResult, Any, float], None],
    progress: ProgressFn | None,
    total: int,
    cancel: Callable[[], bool] | None,
) -> None:
    """Supervised parallel dispatch: survive worker death and hangs.

    Phase 1 runs the normal chunked pool, but with the submission window
    clamped to ``n_jobs`` (submitted == executing, so a chunk's deadline
    clock only runs while a worker actually holds it) and a deadline per
    in-flight chunk of ``len(chunk) × timeout_for(observed walls)``. A
    ``BrokenProcessPool`` or an expired deadline ends phase 1: completed
    futures are harvested, hung workers are SIGKILLed, and the surviving
    results keep their landed state.

    Phase 2 re-executes each unfinished spec *one at a time* in a fresh
    single-worker pool, so a crash or timeout attributes to exactly that
    spec. Each isolation run counts as one attempt; after
    ``sup.max_attempts`` failures the typed error is raised with the spec
    index (the unattributable phase-1 failure is charged to no spec).
    Deterministic exceptions raised *by* a spec propagate as themselves,
    unretried — supervision covers the execution substrate, not the
    simulation's own contract.
    """
    task_by_index = {task[0]: task for chunk in chunks for task in chunk}
    unfinished = set(task_by_index)
    walls: list[float] = []
    done_count = 0
    failure: BaseException | None = None
    crashed = timed_out = False

    def _land(rows) -> None:
        nonlocal done_count
        for index, result, aux, wall_s in rows:
            record(index, result, aux, wall_s)
            walls.append(wall_s)
            unfinished.discard(index)
            done_count += 1
        _notify(progress, done_count, total)

    with ProcessPoolExecutor(max_workers=n_jobs, mp_context=ctx) as pool:
        backlog = list(reversed(chunks))
        pending: dict = {}  # future -> deadline (monotonic seconds)

        def _refill() -> None:
            while backlog and len(pending) < n_jobs:
                if cancel is not None and cancel():
                    backlog.clear()
                    break
                next_chunk = backlog.pop()
                deadline = time.monotonic() + len(next_chunk) * sup.timeout_for(walls)
                pending[pool.submit(_execute_chunk, next_chunk)] = deadline

        _refill()
        while pending:
            finished, _ = wait(set(pending), timeout=sup.poll_s, return_when=FIRST_COMPLETED)
            for future in finished:
                pending.pop(future, None)
                try:
                    rows = future.result()
                except BrokenProcessPool:
                    crashed = True
                    continue
                except Exception as exc:
                    # The spec's own deterministic failure: no retry. Stop
                    # submitting, drain what is already running, re-raise.
                    if failure is None:
                        failure = exc
                    backlog.clear()
                    continue
                _land(rows)
            if crashed:
                break
            if not finished and pending and min(pending.values()) <= time.monotonic():
                timed_out = True
                _kill_pool_workers(pool)
                break
            _refill()

        # Harvest stragglers that finished before the pool broke; the rest
        # hold BrokenProcessPool and are swallowed here (phase 2 owns them).
        for future in list(pending):
            if future.done():
                try:
                    _land(future.result())
                except Exception:
                    pass
        pool.shutdown(wait=True, cancel_futures=True)

    if failure is not None:
        raise failure
    if not (crashed or timed_out):
        return  # everything landed (or cancel() stopped submissions)

    kind = "worker crash" if crashed else "worker timeout"
    _notify(
        progress,
        done_count,
        total,
        f"{kind} detected: isolating {len(unfinished)} unfinished spec(s)",
    )

    for index in sorted(unfinished):
        if cancel is not None and cancel():
            break  # remaining specs stay None, same as an unsupervised cancel
        task = task_by_index[index]
        attempt = 0
        while True:
            attempt += 1
            timeout_s = sup.timeout_for(walls)
            pool = ProcessPoolExecutor(max_workers=1, mp_context=ctx)
            outcome: str | None = None
            try:
                future = pool.submit(_execute_chunk, [task])
                done_set, _ = wait({future}, timeout=timeout_s)
                if not done_set:
                    _kill_pool_workers(pool)
                    outcome = "timeout"
                else:
                    try:
                        _land(future.result())
                    except BrokenProcessPool:
                        outcome = "crash"
            finally:
                pool.shutdown(wait=True, cancel_futures=True)
            if outcome is None:
                break
            if attempt >= sup.max_attempts:
                if outcome == "timeout":
                    raise RunTimeoutError(index, attempt, timeout_s)
                raise WorkerCrashError(index, attempt)
            time.sleep(sup.backoff_for(attempt))
