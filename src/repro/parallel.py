"""Parallel experiment fan-out: run independent simulations on all cores.

Every experiment harness in :mod:`repro.experiments` reduces to a grid of
independent :class:`~repro.experiments.base.SimulationSpec` cells —
(application × configuration × policy × seed) — and bandwidth-aware
scheduling studies are embarrassingly parallel across that grid (Eremeev
et al., arXiv:2010.16058, evaluate exactly such grids). :func:`run_many`
is the single dispatch point: it executes a list of specs either serially
in-process or fanned out over a :class:`concurrent.futures.
ProcessPoolExecutor` in *chunks* (several specs per worker task, so each
worker amortises fork/pickle overhead and keeps a warm shared solve cache
across its chunk), and guarantees the paths are *bit-identical*:

* **Deterministic ordering** — results are returned in spec order no
  matter which worker finishes first.
* **Per-task seeding** — every spec carries its own root seed; no random
  state is shared between tasks (or with the parent process).
* **Run-local identity** — the experiment runner assigns app ids and
  target-name ordering per run, so a result does not depend on which
  process (or how many prior simulations in that process) produced it.

Worker processes are forked, so the cheap platform check
:func:`fork_available` gates the pool: platforms without ``fork`` (or
``jobs=1``) fall back to the serial path transparently. Exceptions raised
inside a worker propagate to the caller.

Usage::

    specs = [SimulationSpec(...), SimulationSpec(...), ...]
    results = run_many(specs, jobs=4, progress=lambda done, n: ...)

The ``collect`` hook supports harnesses that need more than the
:class:`~repro.metrics.accounting.RunResult` (e.g. EXT-IO reads I/O wait
counts off the live handle): a module-level function applied to
``(result, handle)`` *inside the worker*; its picklable return value is
paired with each result.
"""

from __future__ import annotations

import inspect
import math
import multiprocessing
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Any, Callable, Sequence

from .experiments.base import (
    SimulationSpec,
    run_simulation,
    run_simulation_with_handle,
)
from .hw.bus import install_shared_solve_cache, shared_solve_cache
from .metrics.accounting import RunResult

__all__ = [
    "run_many",
    "default_jobs",
    "fork_available",
    "resolve_jobs",
    "auto_chunk_size",
    "usable_cpus",
    "cgroup_cpu_quota",
    "effective_cpu_budget",
]

#: Callback invoked as tasks complete: ``progress(done, total)``. Callbacks
#: accepting a third positional argument also receive occasional string
#: notes (e.g. the fork-unavailable serial fallback).
ProgressFn = Callable[..., None]

#: Worker-side post-processor: ``collect(result, handle) -> picklable``.
CollectFn = Callable[..., Any]


def fork_available() -> bool:
    """Whether this platform can fork worker processes.

    Fork workers inherit ``sys.path`` and module state, so they work under
    any invocation (``PYTHONPATH=src``, editable installs, test runners).
    Spawn-based pools would re-import ``repro`` from scratch and are not
    supported — :func:`run_many` falls back to serial instead.
    """
    return "fork" in multiprocessing.get_all_start_methods()


def default_jobs() -> int:
    """Default worker count: ``REPRO_JOBS`` env var, else 1 (serial)."""
    env = os.environ.get("REPRO_JOBS", "").strip()
    if env:
        try:
            return resolve_jobs(int(env))
        except ValueError:
            pass
    return 1


def usable_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def cgroup_cpu_quota() -> float | None:
    """Effective CPU quota from the cgroup (v2 then v1), in cores.

    Containers often present many CPUs in the affinity mask while the
    cgroup throttles the process to a fraction of one — ``jobs <= 0``
    ("all cores") sized off the raw count would then oversubscribe a
    budget of one or two cores with dozens of forked workers. Returns
    ``None`` when no quota applies (or no cgroup files exist, e.g.
    non-Linux).
    """
    try:  # cgroup v2: "max 100000" or "<quota_us> <period_us>"
        with open("/sys/fs/cgroup/cpu.max", encoding="ascii") as fh:
            quota, period = fh.read().split()
            if quota != "max" and float(period) > 0:
                return float(quota) / float(period)
            return None
    except (OSError, ValueError):
        pass
    try:  # cgroup v1
        base = "/sys/fs/cgroup/cpu"
        with open(f"{base}/cpu.cfs_quota_us", encoding="ascii") as fh:
            quota = float(fh.read())
        with open(f"{base}/cpu.cfs_period_us", encoding="ascii") as fh:
            period = float(fh.read())
        if quota > 0 and period > 0:
            return quota / period
    except (OSError, ValueError):
        pass
    return None


def effective_cpu_budget() -> int:
    """Worker count this process can truly use: affinity ∩ cgroup quota.

    The intersection of the scheduler affinity mask and the cgroup CPU
    quota (rounded down to whole cores), floored at 1. This is what
    ``jobs <= 0`` resolves to — never the raw ``os.cpu_count()``, which
    counts CPUs the container cannot touch.
    """
    budget = usable_cpus()
    quota = cgroup_cpu_quota()
    if quota is not None:
        budget = min(budget, int(math.floor(quota)))
    return max(1, budget)


def resolve_jobs(jobs: int | None, n_specs: int | None = None) -> int:
    """Normalize a ``jobs`` request: ``None`` → env default, ``<= 0`` → all cores.

    "All cores" means :func:`effective_cpu_budget` — the affinity mask
    intersected with the cgroup CPU quota — not the raw ``os.cpu_count()``.
    When ``n_specs`` is given the result is additionally clamped to the
    number of specs — spawning more workers than tasks only pays fork cost
    for processes that will never receive work.
    """
    if jobs is None:
        resolved = default_jobs()
    elif jobs <= 0:
        resolved = effective_cpu_budget()
    else:
        resolved = jobs
    if n_specs is not None:
        resolved = max(1, min(resolved, n_specs))
    return resolved


def auto_chunk_size(total: int, n_jobs: int) -> int:
    """Default dispatch chunk: ≈ ``total / (4 · n_jobs)`` specs per task.

    Four chunks per worker balances fork/pickle amortisation (and warm
    solve caches within a chunk) against load-balancing slack when spec
    runtimes are uneven. Never below 1.
    """
    return max(1, total // (4 * max(1, n_jobs)))


def _supports_note(progress: ProgressFn) -> bool:
    """Whether a progress callback accepts a third (note) argument."""
    try:
        sig = inspect.signature(progress)
    except (TypeError, ValueError):  # builtins, C callables: stay conservative
        return False
    positional = 0
    for param in sig.parameters.values():
        if param.kind is inspect.Parameter.VAR_POSITIONAL:
            return True
        if param.kind in (
            inspect.Parameter.POSITIONAL_ONLY,
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
        ):
            positional += 1
    return positional >= 3


def _notify(
    progress: ProgressFn | None, done: int, total: int, note: str | None = None
) -> None:
    if progress is None:
        return
    if note is not None:
        # Notes are advisory: only callbacks with a third positional slot
        # receive them; legacy two-arg callbacks see no extra call.
        if _supports_note(progress):
            progress(done, total, note)
        return
    progress(done, total)


def _execute(
    task: tuple[int, SimulationSpec, CollectFn | None],
) -> tuple[int, RunResult, Any, float]:
    """Run one spec (worker side). Shared by the serial and parallel paths.

    Returns ``(index, result, aux, wall_s)`` with the spec's own execution
    wall time measured inside the worker — fork/pickle/dispatch overhead
    excluded, so per-run timings stored by the service reflect simulation
    cost only.
    """
    index, spec, collect = task
    start = time.perf_counter()
    if collect is None:
        result, aux = run_simulation(spec), None
    else:
        result, handle = run_simulation_with_handle(spec)
        aux = collect(result, handle)
    return index, result, aux, time.perf_counter() - start


def _execute_chunk(
    chunk: Sequence[tuple[int, SimulationSpec, CollectFn | None]],
) -> list[tuple[int, RunResult, Any, float]]:
    """Run a chunk of specs sequentially (worker side).

    The worker installs the process-global shared solve cache (bisect-mode
    equilibria, bitwise-reproducible replays only — see
    :mod:`repro.hw.bus`) so every spec after the first starts with the
    chunk's accumulated equilibrium solutions instead of a cold cache.
    The cache lives for the worker's lifetime, so later chunks dispatched
    to the same worker keep compounding it.
    """
    if shared_solve_cache() is None:
        install_shared_solve_cache()
    return [_execute(task) for task in chunk]


def run_many(
    specs: Sequence[SimulationSpec],
    jobs: int | None = 1,
    progress: ProgressFn | None = None,
    collect: CollectFn | None = None,
    chunk_size: int | None = None,
    on_result: Callable[[int, RunResult, float], None] | None = None,
    cancel: Callable[[], bool] | None = None,
) -> list:
    """Run every spec and return results in spec order.

    Parameters
    ----------
    specs:
        The simulation grid. Each spec is self-contained (including its
        seed); tasks share nothing.
    jobs:
        Worker processes. ``1`` (default) runs serially in-process;
        ``None`` reads the ``REPRO_JOBS`` env var; ``<= 0`` uses every
        core. Jobs are clamped to ``len(specs)``, and platforms without
        ``fork`` run serially regardless (reported through ``progress``).
    progress:
        Optional ``progress(done, total)`` callback, invoked in the parent
        as specs complete (in completion order; once per finished chunk in
        parallel mode, with ``done`` counting finished *specs*). Callbacks
        taking a third positional argument also receive occasional string
        notes, e.g. when the serial fallback engages.
    collect:
        Optional module-level ``collect(result, handle)`` function run in
        the worker; when given, the return value is ``[(result, aux), ...]``
        instead of ``[result, ...]``.
    chunk_size:
        Specs per worker task. ``None`` picks :func:`auto_chunk_size`
        (≈ ``total / (4 · jobs)``). Larger chunks amortise fork/IPC cost
        and let each worker reuse a warm shared solve cache across its
        chunk; chunking never changes results — only dispatch granularity.
    on_result:
        Optional ``on_result(index, result, wall_s)`` callback, invoked in
        the parent as each spec completes (completion order, not spec
        order) with the spec's position in ``specs`` and its worker-side
        execution wall time. The service's result store hangs off this:
        results persist as they land rather than when the whole batch
        returns.
    cancel:
        Optional ``cancel() -> bool`` poll, checked between specs on the
        serial path and before dispatching each chunk on the parallel
        path. Once it returns true no further specs are started;
        already-dispatched chunks finish (their results are still
        reported). Unstarted specs stay ``None`` in the returned list.

    Returns
    -------
    list
        ``RunResult`` per spec — or ``(RunResult, aux)`` pairs with
        ``collect`` — in the exact order of ``specs``, identical between
        serial and parallel execution (and any chunk size). Entries for
        specs skipped by ``cancel`` are ``None``.
    """
    total = len(specs)
    n_jobs = resolve_jobs(jobs, total)
    tasks = [(i, spec, collect) for i, spec in enumerate(specs)]
    out: list[Any] = [None] * total

    def _record(index: int, result: RunResult, aux: Any, wall_s: float) -> None:
        out[index] = (result, aux) if collect is not None else result
        if on_result is not None:
            on_result(index, result, wall_s)

    if n_jobs <= 1 or total <= 1 or not fork_available():
        if n_jobs > 1 and total > 1:
            _notify(progress, 0, total, "fork unavailable: falling back to serial execution")
        for done, task in enumerate(tasks, start=1):
            if cancel is not None and cancel():
                break
            _record(*_execute(task))
            _notify(progress, done, total)
        return out

    if chunk_size is not None and chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    chunk = chunk_size if chunk_size is not None else auto_chunk_size(total, n_jobs)
    chunks = [tasks[i : i + chunk] for i in range(0, total, chunk)]

    ctx = multiprocessing.get_context("fork")
    with ProcessPoolExecutor(max_workers=n_jobs, mp_context=ctx) as pool:
        # With a cancel hook, keep at most one queued chunk per worker so
        # cancellation takes effect within roughly a chunk's latency; the
        # hook-free path submits everything up front as before.
        backlog = list(reversed(chunks))
        window = 2 * n_jobs if cancel is not None else len(chunks)
        pending = set()

        def _refill() -> None:
            while backlog and len(pending) < window:
                if cancel is not None and cancel():
                    backlog.clear()
                    break
                pending.add(pool.submit(_execute_chunk, backlog.pop()))

        _refill()
        done_count = 0
        while pending:
            finished, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in finished:
                for index, result, aux, wall_s in future.result():  # re-raises worker errors
                    _record(index, result, aux, wall_s)
                    done_count += 1
                _notify(progress, done_count, total)
            _refill()
    return out
