"""Fault-plan configuration: what to break, how often, how hard.

A :class:`FaultPlan` is a frozen, validated description of the faults a
run injects into the three mechanisms the paper's user-level CPU manager
depends on (Section 4):

* **PMC polling** — the twice-per-quantum performance-counter reads that
  feed the BBW/thread estimate. Real counters are multiplexed, wrap, and
  occasionally return stale or garbage values; the plan models
  multiplicative jitter on the per-interval transaction delta, dropped
  samples, counter wraps/resets and stale (unchanged) reads.
* **Signal delivery** — the UNIX block/unblock signals that realise the
  manager's allocation decisions. The plan bounds extra delivery delay and
  assigns loss and duplication probabilities, applied inside
  :class:`repro.core.signals.SignalDispatcher`.
* **The applications themselves** — cooperating processes that, in
  reality, crash, hang (threads stop consuming work but stay allocated)
  or stall for a few milliseconds at a time.

Plans are plain data: process-safe through ``run_many`` (they pickle with
the spec), comparable, and scalable with :meth:`FaultPlan.scaled` — the
FAULT-1 degradation-curve experiment sweeps one reference plan through a
range of intensities.

All randomness is drawn from dedicated named RNG streams
(``faults.pmc`` / ``faults.signals`` / ``faults.apps``) by the
:class:`repro.faults.injector.FaultInjector`, so enabling a fault family
never perturbs any other stream and runs stay bit-reproducible.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any

from ..errors import ConfigError

__all__ = ["FaultPlan"]


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise ConfigError(message)


def _prob(name: str, value: float) -> None:
    _require(0.0 <= value <= 1.0, f"{name} must be a probability in [0, 1], got {value}")


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic, seed-driven fault-injection plan for one run.

    Attributes
    ----------
    pmc_jitter:
        Multiplicative noise half-width applied to each sampling
        interval's bus-transaction *delta*: a jittered read reports
        ``delta · (1 + u)`` with ``u ~ Uniform(−jitter, +jitter)``
        (clamped so cumulative counters never regress). ``0.2`` models a
        multiplexed counter mis-attributing up to 20 % of an interval.
    pmc_drop_prob:
        Probability that a scheduled counter read simply fails (the
        manager sees no new sample this period).
    pmc_wrap_prob:
        Probability that a read returns a wrapped/reset cumulative count
        (smaller than the previous read). The manager's monotonicity
        guard must reject such reads; the *next* clean read then spans
        two periods and remains unbiased.
    pmc_stale_prob:
        Probability that a read returns the previous values again (a
        stale counter snapshot): the published sample advances in time
        but not in counts, so no rate estimate can be formed from it.
    signal_drop_prob:
        Probability that one block/unblock signal delivery is lost.
    signal_duplicate_prob:
        Probability that one delivery is duplicated (the duplicate lands
        after an extra bounded delay).
    signal_delay_us:
        Bound of the extra uniformly-distributed delivery delay added to
        every signal hop, in µs.
    crash_prob:
        Per-application probability of crashing at a random time (all
        threads die mid-quantum, work left unfinished).
    crash_mean_time_us:
        Mean of the exponential crash-time distribution.
    hang_prob:
        Per-application probability of hanging at a random time: threads
        stop consuming work and bus bandwidth but stay allocated on
        their processors until the watchdog quarantines them.
    hang_mean_time_us:
        Mean of the exponential hang-time distribution.
    stall_prob:
        Per-application probability, evaluated every
        ``stall_check_period_us``, of a transient slow-quantum stall
        (threads stop progressing for ``stall_duration_us`` then resume).
    stall_duration_us:
        Length of one transient stall, in µs.
    stall_check_period_us:
        How often the stall lottery is drawn, in µs.
    targets_immune:
        When true (default), application faults (crash/hang/stall) are
        injected only into *background* applications; the targets whose
        turnaround the experiments measure stay alive. PMC and signal
        faults always apply to every managed application.
    """

    pmc_jitter: float = 0.0
    pmc_drop_prob: float = 0.0
    pmc_wrap_prob: float = 0.0
    pmc_stale_prob: float = 0.0
    signal_drop_prob: float = 0.0
    signal_duplicate_prob: float = 0.0
    signal_delay_us: float = 0.0
    crash_prob: float = 0.0
    crash_mean_time_us: float = 1_000_000.0
    hang_prob: float = 0.0
    hang_mean_time_us: float = 1_000_000.0
    stall_prob: float = 0.0
    stall_duration_us: float = 10_000.0
    stall_check_period_us: float = 200_000.0
    targets_immune: bool = True

    def __post_init__(self) -> None:
        _require(self.pmc_jitter >= 0, "pmc_jitter must be >= 0")
        _prob("pmc_drop_prob", self.pmc_drop_prob)
        _prob("pmc_wrap_prob", self.pmc_wrap_prob)
        _prob("pmc_stale_prob", self.pmc_stale_prob)
        _prob("signal_drop_prob", self.signal_drop_prob)
        _prob("signal_duplicate_prob", self.signal_duplicate_prob)
        _require(self.signal_delay_us >= 0, "signal_delay_us must be >= 0")
        _prob("crash_prob", self.crash_prob)
        _require(self.crash_mean_time_us > 0, "crash_mean_time_us must be positive")
        _prob("hang_prob", self.hang_prob)
        _require(self.hang_mean_time_us > 0, "hang_mean_time_us must be positive")
        _prob("stall_prob", self.stall_prob)
        _require(self.stall_duration_us > 0, "stall_duration_us must be positive")
        _require(self.stall_check_period_us > 0, "stall_check_period_us must be positive")
        _require(
            self.pmc_drop_prob + self.pmc_wrap_prob + self.pmc_stale_prob <= 1.0,
            "pmc_drop_prob + pmc_wrap_prob + pmc_stale_prob must not exceed 1",
        )

    # -- activity predicates -------------------------------------------------

    @property
    def any_pmc_faults(self) -> bool:
        """Whether any counter-read fault can occur under this plan."""
        return (
            self.pmc_jitter > 0
            or self.pmc_drop_prob > 0
            or self.pmc_wrap_prob > 0
            or self.pmc_stale_prob > 0
        )

    @property
    def any_signal_faults(self) -> bool:
        """Whether any signal-delivery fault can occur under this plan."""
        return (
            self.signal_drop_prob > 0
            or self.signal_duplicate_prob > 0
            or self.signal_delay_us > 0
        )

    @property
    def any_app_faults(self) -> bool:
        """Whether any application fault can occur under this plan."""
        return self.crash_prob > 0 or self.hang_prob > 0 or self.stall_prob > 0

    @property
    def enabled(self) -> bool:
        """Whether this plan can inject anything at all.

        A disabled (all-zero) plan builds no injector, wires no hooks and
        schedules no events: the run is bit-identical to one with no plan
        — the property the zero-rate identity test pins down.
        """
        return self.any_pmc_faults or self.any_signal_faults or self.any_app_faults

    # -- derivation ----------------------------------------------------------

    def scaled(self, intensity: float) -> "FaultPlan":
        """This plan with every rate multiplied by ``intensity``.

        Probabilities are clamped to 1; jitter and the delay bound scale
        linearly; the time-scale parameters (means, durations, periods)
        and ``targets_immune`` are preserved. ``scaled(0.0)`` is a
        disabled plan. FAULT-1 sweeps a reference plan through
        intensities this way.
        """
        if intensity < 0:
            raise ConfigError(f"fault intensity must be >= 0, got {intensity}")

        def p(x: float) -> float:
            return min(1.0, x * intensity)

        return dataclasses.replace(
            self,
            pmc_jitter=self.pmc_jitter * intensity,
            pmc_drop_prob=p(self.pmc_drop_prob),
            pmc_wrap_prob=p(self.pmc_wrap_prob),
            pmc_stale_prob=p(self.pmc_stale_prob),
            signal_drop_prob=p(self.signal_drop_prob),
            signal_duplicate_prob=p(self.signal_duplicate_prob),
            signal_delay_us=self.signal_delay_us * intensity,
            crash_prob=p(self.crash_prob),
            hang_prob=p(self.hang_prob),
            stall_prob=p(self.stall_prob),
        )

    def to_dict(self) -> dict[str, Any]:
        """Serialize to a plain dictionary."""
        return dataclasses.asdict(self)
