"""The fault injector: deterministic perturbation of a running simulation.

One :class:`FaultInjector` is built per run when (and only when) the
spec's :class:`~repro.faults.plan.FaultPlan` is enabled. It owns three
dedicated named RNG streams — ``faults.pmc``, ``faults.signals`` and
``faults.apps`` — derived from the run seed, so fault decisions are
bit-reproducible, independent of every other stream, and identical no
matter which worker process of ``run_many`` executes the run.

Injection points
----------------
* **PMC noise** (:meth:`FaultInjector.perturb_sample`) — called by the CPU
  manager between reading the hardware counters and publishing to the
  shared arena. Exactly one categorical draw (and one jitter draw, when
  jitter is configured) is consumed per call regardless of the outcome,
  so the stream stays aligned across plan variations of the same family.
* **Signal faults** (:meth:`FaultInjector.signal_params`) — the manager
  forwards these to :class:`repro.core.signals.SignalDispatcher`, which
  already implements seeded drop/duplicate/extra-delay at delivery
  scheduling time.
* **Application faults** (:meth:`FaultInjector.schedule_app_faults`) —
  crash-at-time and hang-at-time are pre-drawn per application at build
  time (exponential arrival, one lottery draw each, consumed in launch
  order whether or not the fault fires); transient stalls are drawn by a
  recurring scan event.

Degradation accounting
----------------------
The injector doubles as the counter block for everything the hardened
manager does in response: retries, give-ups, staleness fallbacks,
quarantines. A frozen :class:`FaultStats` snapshot lands on
``RunResult.faults`` — it *participates in equality*, so the
serial-vs-parallel bit-identity tests cover fault trajectories too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from ..core.arena import ArenaSample
from .plan import FaultPlan

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    import numpy as np

    from ..core.signals import SignalDispatcher
    from ..hw.machine import Machine
    from ..rng import RngRegistry
    from ..sim.engine import Engine
    from ..workloads.base import Application

__all__ = ["FaultInjector", "FaultStats"]


@dataclass(frozen=True)
class FaultStats:
    """Injected-fault and degradation-response counts for one run.

    Attributes
    ----------
    pmc_jittered / pmc_dropped / pmc_stale / pmc_wraps:
        Counter reads perturbed per fault class. ``pmc_wraps`` counts
        injected wraps; ``pmc_wrap_rejects`` counts the subset the
        manager's monotonicity guard caught and discarded (a wrap that
        happens to stay monotone slips through as ordinary noise).
    signals_dropped / signals_duplicated:
        Deliveries lost / duplicated inside the dispatcher.
    signal_retries:
        Targeted per-thread intent re-sends issued by the
        acknowledgement-deadline verifier.
    signal_giveups:
        Verification chains abandoned after ``signal_max_retries``
        rounds (the next quantum boundary restates intent afresh).
    stale_fallbacks:
        Quantum boundaries at which at least one application's estimate
        was stale and the policy fell back to its last trusted average.
    headfirst_fallbacks:
        Quantum boundaries at which *every* connected application was
        stale and selection fell back to bandwidth-agnostic head-first.
    apps_crashed / apps_hung / stalls_injected:
        Application faults actually injected.
    apps_quarantined:
        Hung applications the watchdog quarantined.
    """

    pmc_jittered: int = 0
    pmc_dropped: int = 0
    pmc_stale: int = 0
    pmc_wraps: int = 0
    pmc_wrap_rejects: int = 0
    signals_dropped: int = 0
    signals_duplicated: int = 0
    signal_retries: int = 0
    signal_giveups: int = 0
    stale_fallbacks: int = 0
    headfirst_fallbacks: int = 0
    apps_crashed: int = 0
    apps_hung: int = 0
    apps_quarantined: int = 0
    stalls_injected: int = 0

    @property
    def any_injected(self) -> bool:
        """Whether any fault was actually injected during the run."""
        return (
            self.pmc_jittered
            + self.pmc_dropped
            + self.pmc_stale
            + self.pmc_wraps
            + self.signals_dropped
            + self.signals_duplicated
            + self.apps_crashed
            + self.apps_hung
            + self.stalls_injected
        ) > 0

    def to_dict(self) -> dict[str, Any]:
        """Serialize to a plain dictionary."""
        import dataclasses

        return dataclasses.asdict(self)


class FaultInjector:
    """Applies one :class:`FaultPlan` to one run, deterministically.

    Parameters
    ----------
    plan:
        The (enabled) fault plan.
    registry:
        The run's :class:`~repro.rng.RngRegistry`; the injector pulls its
        three dedicated streams from it.
    """

    def __init__(self, plan: FaultPlan, registry: "RngRegistry") -> None:
        if not plan.enabled:
            raise ValueError("FaultInjector requires an enabled FaultPlan")
        self.plan = plan
        self._pmc_rng = registry.stream("faults.pmc")
        self._signal_rng = registry.stream("faults.signals")
        self._app_rng = registry.stream("faults.apps")
        self._dispatcher: "SignalDispatcher | None" = None
        self._apps: list["Application"] = []
        self._immune: set[int] = set()
        self._hung_apps: set[int] = set()
        self._hung_tids: set[int] = set()
        # Mutable degradation counters; the hardened manager increments the
        # response-side ones directly.
        self.pmc_jittered = 0
        self.pmc_dropped = 0
        self.pmc_stale = 0
        self.pmc_wraps = 0
        self.pmc_wrap_rejects = 0
        self.signal_retries = 0
        self.signal_giveups = 0
        self.stale_fallbacks = 0
        self.headfirst_fallbacks = 0
        self.apps_crashed = 0
        self.apps_hung = 0
        self.apps_quarantined = 0
        self.stalls_injected = 0

    # -- signal faults -------------------------------------------------------

    def signal_params(self) -> dict[str, Any]:
        """Dispatcher constructor kwargs realising the plan's signal faults."""
        return dict(
            drop_prob=self.plan.signal_drop_prob,
            duplicate_prob=self.plan.signal_duplicate_prob,
            jitter_us=self.plan.signal_delay_us,
            rng=self._signal_rng,
        )

    def bind_dispatcher(self, dispatcher: "SignalDispatcher") -> None:
        """Remember the dispatcher so :meth:`stats` can fold its counts in."""
        self._dispatcher = dispatcher

    # -- PMC faults ----------------------------------------------------------

    def perturb_sample(
        self, app_id: int, sample: ArenaSample, prev: ArenaSample | None
    ) -> ArenaSample | None:
        """Perturb one counter read before publication.

        Returns the (possibly perturbed) sample, or ``None`` for a
        dropped read. ``prev`` is the application's previously *published*
        sample; the first read of an application can only be dropped
        (there is no prior state to wrap against or jitter relative to).

        Draw discipline: one categorical uniform always, plus one jitter
        uniform when jitter is configured — the stream advances the same
        amount whatever the outcome.
        """
        plan = self.plan
        u = float(self._pmc_rng.random())
        jitter_u = (
            float(self._pmc_rng.uniform(-plan.pmc_jitter, plan.pmc_jitter))
            if plan.pmc_jitter > 0
            else 0.0
        )
        edge = plan.pmc_drop_prob
        if u < edge:
            self.pmc_dropped += 1
            return None
        if prev is None:
            return sample
        edge += plan.pmc_stale_prob
        if u < edge:
            self.pmc_stale += 1
            return ArenaSample(
                time_us=sample.time_us,
                cum_transactions=prev.cum_transactions,
                cum_runtime_us=prev.cum_runtime_us,
            )
        edge += plan.pmc_wrap_prob
        if u < edge:
            # The counter reset at (roughly) the interval start: the read
            # reports only this interval's delta, usually regressing below
            # the previous cumulative value. The manager's monotonicity
            # guard discards regressions; the next clean read then spans
            # two intervals and the cumulative estimate stays unbiased.
            self.pmc_wraps += 1
            return ArenaSample(
                time_us=sample.time_us,
                cum_transactions=max(
                    0.0, sample.cum_transactions - prev.cum_transactions
                ),
                cum_runtime_us=max(0.0, sample.cum_runtime_us - prev.cum_runtime_us),
            )
        if plan.pmc_jitter > 0:
            delta = sample.cum_transactions - prev.cum_transactions
            if delta > 0:
                self.pmc_jittered += 1
                jittered = delta * max(0.0, 1.0 + jitter_u)
                return ArenaSample(
                    time_us=sample.time_us,
                    cum_transactions=prev.cum_transactions + jittered,
                    cum_runtime_us=sample.cum_runtime_us,
                )
        return sample

    # -- application faults --------------------------------------------------

    def schedule_app_faults(
        self,
        engine: "Engine",
        machine: "Machine",
        apps: list["Application"],
        immune_ids: set[int] | None = None,
    ) -> None:
        """Pre-draw and schedule crash/hang times; start the stall scan.

        Draws are consumed in launch order for every application whether
        or not the fault fires (and whether or not the application is
        immune), so the ``faults.apps`` stream stays aligned across plans
        that differ only in which applications are immune.
        """
        plan = self.plan
        self._apps = list(apps)
        self._immune = set(immune_ids or ())
        if plan.crash_prob > 0:
            for app in self._apps:
                u = float(self._app_rng.random())
                t = float(self._app_rng.exponential(plan.crash_mean_time_us))
                if u < plan.crash_prob and app.app_id not in self._immune:
                    engine.schedule_at(
                        max(t, engine.now), lambda a=app: self._crash(machine, a)
                    )
        if plan.hang_prob > 0:
            for app in self._apps:
                u = float(self._app_rng.random())
                t = float(self._app_rng.exponential(plan.hang_mean_time_us))
                if u < plan.hang_prob and app.app_id not in self._immune:
                    engine.schedule_at(
                        max(t, engine.now), lambda a=app: self._hang(machine, a)
                    )
        if plan.stall_prob > 0:
            engine.schedule_after(
                plan.stall_check_period_us, lambda: self._stall_scan(engine, machine)
            )

    def _crash(self, machine: "Machine", app: "Application") -> None:
        """Kill every unfinished thread of ``app`` (work left incomplete)."""
        victims = [t.tid for t in app.threads if not t.finished]
        if not victims:
            return
        self.apps_crashed += 1
        self._hung_apps.discard(app.app_id)
        for tid in victims:
            self._hung_tids.discard(tid)
            machine.kill_thread(tid)

    def _hang(self, machine: "Machine", app: "Application") -> None:
        """Permanently stall ``app``: allocated but not consuming."""
        victims = [t.tid for t in app.threads if not t.finished]
        if not victims or app.app_id in self._hung_apps:
            return
        self.apps_hung += 1
        self._hung_apps.add(app.app_id)
        for tid in victims:
            self._hung_tids.add(tid)
            machine.set_stalled(tid, True)

    def _stall_scan(self, engine: "Engine", machine: "Machine") -> None:
        """Periodic transient-stall lottery over the static population."""
        plan = self.plan
        for app in self._apps:
            u = float(self._app_rng.random())
            if app.app_id in self._immune or app.app_id in self._hung_apps:
                continue
            victims = [t.tid for t in app.threads if not t.finished]
            if not victims or u >= plan.stall_prob:
                continue
            self.stalls_injected += 1
            for tid in victims:
                machine.set_stalled(tid, True)
            engine.schedule_after(
                plan.stall_duration_us,
                lambda tids=tuple(victims): self._unstall(machine, tids),
            )
        engine.schedule_after(
            plan.stall_check_period_us, lambda: self._stall_scan(engine, machine)
        )

    def _unstall(self, machine: "Machine", tids: tuple[int, ...]) -> None:
        """End a transient stall, leaving permanently hung threads stalled."""
        for tid in tids:
            if tid not in self._hung_tids:
                machine.set_stalled(tid, False)

    # -- reporting -----------------------------------------------------------

    def stats(self) -> FaultStats:
        """Frozen snapshot of all injection and degradation counters."""
        dispatcher = self._dispatcher
        return FaultStats(
            pmc_jittered=self.pmc_jittered,
            pmc_dropped=self.pmc_dropped,
            pmc_stale=self.pmc_stale,
            pmc_wraps=self.pmc_wraps,
            pmc_wrap_rejects=self.pmc_wrap_rejects,
            signals_dropped=dispatcher.dropped if dispatcher is not None else 0,
            signals_duplicated=dispatcher.duplicated if dispatcher is not None else 0,
            signal_retries=self.signal_retries,
            signal_giveups=self.signal_giveups,
            stale_fallbacks=self.stale_fallbacks,
            headfirst_fallbacks=self.headfirst_fallbacks,
            apps_crashed=self.apps_crashed,
            apps_hung=self.apps_hung,
            apps_quarantined=self.apps_quarantined,
            stalls_injected=self.stalls_injected,
        )
