"""Deterministic fault injection for the reproduction's fragile mechanisms.

The paper's user-level CPU manager (Section 4) leans on three mechanisms
the base simulation models as perfect: performance-counter polling,
UNIX-signal block/unblock delivery, and cooperating applications that
never misbehave. This package breaks each of them on purpose — seeded,
reproducibly, and process-safely through ``run_many`` — so the hardened
manager's graceful degradation can be measured (the FAULT-1 experiment)
and audited (the invariant layer's fault-mode checks).

Public surface:

* :class:`~repro.faults.plan.FaultPlan` — frozen per-run fault
  configuration, attached to ``SimulationSpec.faults``.
* :class:`~repro.faults.injector.FaultInjector` — the live per-run
  injector (built only when the plan is enabled).
* :class:`~repro.faults.injector.FaultStats` — frozen degradation
  counters on ``RunResult.faults``.
"""

from .injector import FaultInjector, FaultStats
from .plan import FaultPlan

__all__ = ["FaultPlan", "FaultInjector", "FaultStats"]
