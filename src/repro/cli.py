"""Command-line interface: ``python -m repro <experiment>``.

Regenerates every table and figure of the paper from the terminal::

    python -m repro calibration          # CAL-1 platform anchors
    python -m repro fig1                 # FIG-1A + FIG-1B
    python -m repro fig2 --set A         # FIG-2A (or B / C, or all)
    python -m repro table1               # TAB-1 headline summary
    python -m repro ablations            # ABL-W/Q/F/A
    python -m repro dynamic --rate 1.0   # DYN-1 open-system sweep
    python -m repro faults               # FAULT-1 degradation curves
    python -m repro serve --port 8642    # long-running simulation service
    python -m repro all                  # everything, full scale

``--scale`` shrinks application work (0.25 runs in seconds and preserves
every qualitative shape); ``--seed`` changes all random streams; ``--jobs``
fans the simulation grid out over worker processes (results are
bit-identical to the serial run; ``--jobs 0`` uses every core).
"""

from __future__ import annotations

import argparse
import sys
import time

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-smp",
        description=(
            "Reproduce 'Scheduling Algorithms with Bus Bandwidth Considerations "
            "for SMPs' (ICPP 2003) on a simulated 4-way Xeon SMP."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=["calibration", "fig1", "fig2", "table1", "ablations", "smt", "io", "kernels", "validate", "dynamic", "faults", "serve", "all"],
        help="which artefact to regenerate",
    )
    parser.add_argument("--set", dest="set_name", choices=["A", "B", "C", "all"], default="all")
    parser.add_argument("--scale", type=float, default=1.0, help="application work scale")
    parser.add_argument("--seed", type=int, default=42, help="root random seed")
    parser.add_argument(
        "--apps", type=str, default=None, help="comma-separated application subset"
    )
    parser.add_argument(
        "--csv", type=str, default=None, metavar="DIR",
        help="with 'all': also export every experiment as CSV into DIR",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help=(
            "worker processes for the simulation grid (default: REPRO_JOBS "
            "env var or 1; 0 = all cores); results are identical to --jobs 1"
        ),
    )
    dyn = parser.add_argument_group("dynamic", "options for the 'dynamic' open-system sweep")
    dyn.add_argument(
        "--arrival", choices=["poisson", "mmpp", "trace"], default="poisson",
        help="arrival process kind ('trace' needs --trace-file)",
    )
    dyn.add_argument(
        "--rate", type=float, default=None, metavar="R",
        help="single arrival rate (jobs per simulated second)",
    )
    dyn.add_argument(
        "--rates", type=str, default=None, metavar="R1,R2,...",
        help="comma-separated arrival-rate sweep (default: 0.5,1.0,2.0)",
    )
    dyn.add_argument(
        "--policy", type=str, default=None, metavar="P1,P2,...",
        help="comma-separated policies: linux, latest_quantum, quanta_window (default: all)",
    )
    dyn.add_argument(
        "--num-jobs", type=int, default=24, metavar="N",
        help="jobs per dynamic run (the arrival schedule length)",
    )
    dyn.add_argument(
        "--replications", type=int, default=3, metavar="N",
        help="seed replications per operating point (seed, seed+1, ...)",
    )
    dyn.add_argument(
        "--queue-capacity", type=int, default=None, metavar="N",
        help="admission queue slots (default: unbounded; bounded queues drop)",
    )
    dyn.add_argument(
        "--trace-file", type=str, default=None, metavar="PATH",
        help="arrival trace to replay (.json or .csv, see TraceArrivals)",
    )
    dyn.add_argument(
        "--quantiles", action="store_true",
        help="add p50/p95/p99 response-time columns to the sweep table",
    )
    dyn.add_argument(
        "--no-records", action="store_true",
        help=(
            "drop the per-job record list and report from the O(1)-memory "
            "streamed accumulators (quantiles become P2 sketch estimates); "
            "use for very large --num-jobs"
        ),
    )
    dyn.add_argument(
        "--shape", action="append", default=None, metavar="KIND:K=V,...",
        help=(
            "rate envelope over the arrival process, e.g. "
            "'diurnal:period_s=60,amplitude=0.5' or "
            "'flash:at_s=10,duration_s=5,magnitude=3'; repeat to nest"
        ),
    )
    dyn.add_argument(
        "--mix", type=str, default=None, metavar="KIND:K=V,...",
        help=(
            "job-mix family over the paper palette: weighted (default), "
            "'zipfian:exponent=1.0', 'hotspot:hot_fraction=0.8,hot_index=0', "
            "'sequential:run_length=4' or 'bursty:mean_run_length=4'"
        ),
    )
    flt = parser.add_argument_group("faults", "options for the 'faults' degradation sweep")
    flt.add_argument(
        "--intensities", type=str, default=None, metavar="I1,I2,...",
        help=(
            "comma-separated fault-intensity sweep scaling the reference "
            "plan (default: 0,0.25,0.5,0.75,1); 0 is the fault-free baseline"
        ),
    )
    flt.add_argument(
        "--fault-app", type=str, default="CG", metavar="APP",
        help="target application for the degradation sweep (default: CG)",
    )
    flt.add_argument(
        "--no-fault-audit", action="store_true",
        help=(
            "skip the strict invariant auditor during the faults sweep "
            "(on by default there: the degradation curve is only "
            "meaningful if the degraded runs stay invariant-clean)"
        ),
    )
    srv = parser.add_argument_group("serve", "options for the 'serve' simulation service")
    srv.add_argument(
        "--host", type=str, default="127.0.0.1", metavar="ADDR",
        help="bind address for the HTTP server (default: 127.0.0.1)",
    )
    srv.add_argument(
        "--port", type=int, default=8642, metavar="PORT",
        help="bind port (default: 8642; 0 = ephemeral, printed at startup)",
    )
    srv.add_argument(
        "--results-dir", type=str, default="service-results", metavar="DIR",
        help=(
            "directory for the persistent run/result store "
            "(default: service-results; results survive restarts and "
            "serve identical resubmissions from cache)"
        ),
    )
    srv.add_argument(
        "--queue-depth", type=int, default=256, metavar="N",
        help="bounded job-queue capacity; submissions beyond it get HTTP 503",
    )
    srv.add_argument(
        "--no-cache", action="store_true",
        help="always re-run submissions even when an identical spec already completed",
    )
    srv.add_argument(
        "--max-attempts", type=int, default=3, metavar="N",
        help=(
            "execution attempts per spec before it is quarantined "
            "(worker crashes/hangs and service restarts both charge "
            "attempts; default: 3)"
        ),
    )
    srv.add_argument(
        "--rate-limit", type=float, default=None, metavar="R",
        help=(
            "per-tenant sustained submission rate in requests/s "
            "(token bucket; rejected submissions get HTTP 429 with "
            "Retry-After; default: unlimited)"
        ),
    )
    srv.add_argument(
        "--burst", type=float, default=None, metavar="B",
        help=(
            "per-tenant burst allowance for --rate-limit "
            "(default: 2x the rate, at least 1)"
        ),
    )
    srv.add_argument(
        "--max-in-flight", type=int, default=None, metavar="N",
        help=(
            "global cap on simulations owned by one dispatch cycle "
            "(bounds graceful-drain latency; default: batch size)"
        ),
    )
    parser.add_argument(
        "--solver", choices=["bisect", "newton", "vector"], default=None,
        help=(
            "bus solver mode override for 'fig2' and 'table1' (default: the "
            "MachineConfig default); all three modes produce equivalent "
            "physics — 'vector' additionally arms the numpy-batched settle "
            "path and is bit-identical to 'newton' (see DESIGN.md)"
        ),
    )
    parser.add_argument(
        "--profile", action="store_true",
        help=(
            "collect per-phase profiling (solver/settle/dispatch time, cache "
            "hit rates) and print the aggregate to stderr; never changes "
            "simulation results (see EXPERIMENTS.md)"
        ),
    )
    parser.add_argument(
        "--audit", action="store_true",
        help=(
            "run the invariant auditor alongside every simulation (bus "
            "capacity, allocation, signal protocol, starvation bound, "
            "accounting reconciliation; see repro.audit); a violation "
            "aborts the run with an AuditViolation, and results are "
            "bit-identical to an unaudited run"
        ),
    )
    return parser


def _progress(args: argparse.Namespace):
    """A stderr progress callback when running multi-process, else None."""
    from .parallel import resolve_jobs

    if resolve_jobs(args.jobs) <= 1:
        return None

    def report(done: int, total: int, note: str | None = None) -> None:
        if note:
            print(f"\r[{note}]", file=sys.stderr)
        print(f"\r[{done}/{total} simulations]", end="", file=sys.stderr)
        if done == total:
            print(file=sys.stderr)

    return report


def _print_profile() -> None:
    """Dump the aggregated per-phase profile to stderr (--profile)."""
    from . import profiling

    agg = profiling.aggregate()
    if not agg:
        print("[profile: no data collected]", file=sys.stderr)
        return
    solve_calls = agg.get("solve_calls", 0.0)
    hits = agg.get("solve_cache_hits", 0.0) + agg.get("solve_shared_hits", 0.0)
    hit_rate = hits / solve_calls if solve_calls else 0.0
    settles = agg.get("settle_calls", 0.0)
    skip_rate = agg.get("solve_skips", 0.0) / settles if settles else 0.0
    print("[profile]", file=sys.stderr)
    for key in sorted(agg):
        value = agg[key]
        text = f"{value:.6f}" if key.endswith("_s") else f"{value:.0f}"
        print(f"  {key:<22} {text}", file=sys.stderr)
    print(f"  {'cache_hit_rate':<22} {hit_rate:.3f}", file=sys.stderr)
    print(f"  {'solve_skip_rate':<22} {skip_rate:.3f}", file=sys.stderr)
    rescored = agg.get("sel_est_rescored", 0.0)
    reused = agg.get("sel_est_reused", 0.0)
    if rescored + reused > 0.0:
        rerank = rescored / (rescored + reused)
        print(f"  {'sel_rerank_fraction':<22} {rerank:.3f}", file=sys.stderr)


def _apps_arg(args: argparse.Namespace) -> list[str] | None:
    if args.apps is None:
        return None
    return [a.strip() for a in args.apps.split(",") if a.strip()]


def _machine_arg(args: argparse.Namespace):
    """A MachineConfig honouring --solver, or None for the default."""
    if args.solver is None:
        return None
    from dataclasses import replace

    from .config import MachineConfig

    base = MachineConfig()
    return replace(base, bus=replace(base.bus, solver_mode=args.solver))


def _run_calibration(args: argparse.Namespace) -> None:
    from .experiments.calibration import format_calibration, run_calibration

    print(
        format_calibration(
            run_calibration(seed=args.seed, work_scale=args.scale, jobs=args.jobs)
        )
    )


def _run_fig1(args: argparse.Namespace) -> None:
    from .experiments.fig1 import format_fig1a, format_fig1b, run_fig1

    rows = run_fig1(
        seed=args.seed, work_scale=args.scale, apps=_apps_arg(args),
        jobs=args.jobs, progress=_progress(args),
    )
    print(format_fig1a(rows))
    print()
    print(format_fig1b(rows))


def _run_fig2(args: argparse.Namespace) -> None:
    from .experiments.fig2 import format_fig2, run_fig2

    sets = ["A", "B", "C"] if args.set_name == "all" else [args.set_name]
    for set_name in sets:
        rows = run_fig2(
            set_name, machine=_machine_arg(args), seed=args.seed,
            work_scale=args.scale, apps=_apps_arg(args),
            jobs=args.jobs, progress=_progress(args),
        )
        print(format_fig2(set_name, rows))
        print()


def _run_table1(args: argparse.Namespace) -> None:
    from .experiments.fig2 import run_fig2
    from .experiments.tables import build_table1, format_table1

    results = {
        s: run_fig2(
            s, machine=_machine_arg(args), seed=args.seed, work_scale=args.scale,
            apps=_apps_arg(args), jobs=args.jobs,
        )
        for s in ("A", "B", "C")
    }
    print(format_table1(build_table1(results)))


def _run_ablations(args: argparse.Namespace) -> None:
    from .experiments.ablations import (
        format_arbitration_ablation,
        format_fitness_ablation,
        format_model_ablation,
        format_quantum_ablation,
        format_saturation_ablation,
        format_window_ablation,
        run_arbitration_ablation,
        run_fitness_ablation,
        run_model_ablation,
        run_quantum_ablation,
        run_saturation_ablation,
        run_window_ablation,
    )

    print(
        format_window_ablation(
            run_window_ablation(seed=args.seed, work_scale=args.scale, jobs=args.jobs)
        )
    )
    print()
    print(
        format_quantum_ablation(
            run_quantum_ablation(seed=args.seed, work_scale=args.scale, jobs=args.jobs)
        )
    )
    print()
    print(
        format_fitness_ablation(
            run_fitness_ablation(seed=args.seed, work_scale=args.scale, jobs=args.jobs)
        )
    )
    print()
    print(
        format_arbitration_ablation(
            run_arbitration_ablation(seed=args.seed, work_scale=args.scale, jobs=args.jobs)
        )
    )
    print()
    print(
        format_saturation_ablation(
            run_saturation_ablation(seed=args.seed, work_scale=args.scale, jobs=args.jobs)
        )
    )
    print()
    print(
        format_model_ablation(
            run_model_ablation(seed=args.seed, work_scale=args.scale, jobs=args.jobs)
        )
    )


def _run_smt(args: argparse.Namespace) -> None:
    from .experiments.smt import format_smt_experiment, run_smt_experiment

    rows = run_smt_experiment(
        apps=_apps_arg(args), seed=args.seed, work_scale=args.scale, jobs=args.jobs
    )
    print(format_smt_experiment(rows))


def _run_io(args: argparse.Namespace) -> None:
    from .experiments.io import format_io_experiment, run_io_experiment

    rows = run_io_experiment(seed=args.seed, work_scale=args.scale, jobs=args.jobs)
    print(format_io_experiment(rows))


def _run_kernels(args: argparse.Namespace) -> None:
    from .experiments.kernels import format_kernel_experiment, run_kernel_experiment

    rows = run_kernel_experiment(
        apps=_apps_arg(args), seed=args.seed, work_scale=args.scale, jobs=args.jobs
    )
    print(format_kernel_experiment(rows))


def _parse_kv_spec(text: str, flag: str) -> tuple[str, dict[str, float]]:
    """Parse a ``kind:key=value,key=value`` CLI argument."""
    from .errors import ConfigError

    kind, _, rest = text.partition(":")
    kind = kind.strip()
    if not kind:
        raise ConfigError(f"{flag} needs a kind, got {text!r}")
    params: dict[str, float] = {}
    for item in rest.split(","):
        item = item.strip()
        if not item:
            continue
        key, sep, value = item.partition("=")
        if not sep:
            raise ConfigError(f"{flag}: expected key=value, got {item!r}")
        try:
            params[key.strip()] = float(value)
        except ValueError:
            raise ConfigError(f"{flag}: bad numeric value in {item!r}") from None
    return kind, params


def _run_dynamic(args: argparse.Namespace) -> None:
    from .dynamic import TraceArrivals
    from .errors import ConfigError
    from .experiments.dynamic import (
        format_dynamic,
        make_mix,
        make_shape,
        run_dynamic_sweep,
    )

    arrivals = None
    if args.arrival == "trace" or args.trace_file is not None:
        if args.trace_file is None:
            raise ConfigError("--arrival trace needs --trace-file")
        loader = (
            TraceArrivals.from_csv
            if args.trace_file.endswith(".csv")
            else TraceArrivals.from_json
        )
        arrivals = loader(args.trace_file)
    if args.rate is not None and args.rates is not None:
        raise ConfigError("--rate and --rates are mutually exclusive")
    rates = None
    if args.rate is not None:
        rates = [args.rate]
    elif args.rates is not None:
        rates = [float(r) for r in args.rates.split(",") if r.strip()]
    policies = None
    if args.policy is not None:
        policies = [p.strip() for p in args.policy.split(",") if p.strip()]
    shapes = None
    if args.shape:
        shapes = [
            make_shape(kind, **params)
            for kind, params in (_parse_kv_spec(s, "--shape") for s in args.shape)
        ]
    mix = None
    if args.mix is not None:
        kind, params = _parse_kv_spec(args.mix, "--mix")
        mix = make_mix(kind, apps=_apps_arg(args), work_scale=args.scale, **params)
    rows = run_dynamic_sweep(
        policies=policies,
        rates_per_s=rates,
        arrival_kind=args.arrival if args.arrival != "trace" else "poisson",
        arrivals=arrivals,
        n_jobs=args.num_jobs,
        queue_capacity=args.queue_capacity,
        seed=args.seed,
        replications=args.replications,
        work_scale=args.scale,
        apps=_apps_arg(args),
        jobs=args.jobs,
        progress=_progress(args),
        shapes=shapes,
        mix=mix,
        record_jobs=not args.no_records,
    )
    print(format_dynamic(rows, quantiles=args.quantiles))


def _run_faults(args: argparse.Namespace) -> None:
    from .config import ManagerConfig
    from .errors import ConfigError
    from .experiments.faults import format_faults, run_faults
    from .experiments.fig2 import default_policies

    intensities = None
    if args.intensities is not None:
        intensities = [float(i) for i in args.intensities.split(",") if i.strip()]
    policies = None
    if args.policy is not None:
        by_name = {p.name: p for p in default_policies(ManagerConfig())}
        # Accept the dynamic sweep's snake_case spellings too.
        aliases = {"latest_quantum": "latest-quantum", "quanta_window": "quanta-window"}
        wanted = [
            aliases.get(p.strip(), p.strip())
            for p in args.policy.split(",")
            if p.strip()
        ]
        unknown = [p for p in wanted if p not in by_name]
        if unknown:
            raise ConfigError(
                f"unknown fault-sweep policies {unknown}; known: {', '.join(by_name)}"
            )
        policies = [by_name[p] for p in wanted]
    rows = run_faults(
        app=args.fault_app,
        intensities=intensities,
        policies=policies,
        replications=args.replications,
        seed=args.seed,
        work_scale=args.scale,
        audit=not args.no_fault_audit,
        jobs=args.jobs,
        progress=_progress(args),
    )
    print(format_faults(rows))


def _run_validate(args: argparse.Namespace) -> None:
    from .experiments.validation import format_validation, run_validation

    print(
        format_validation(
            run_validation(seed=args.seed, work_scale=args.scale, jobs=args.jobs)
        )
    )


def _run_serve(args: argparse.Namespace) -> None:
    from .service import ResultStore, SimulationService
    from .service.api import serve
    from .service.ratelimit import RateLimitConfig

    rate_limit = None
    if args.rate_limit is not None:
        burst = args.burst if args.burst is not None else max(1.0, 2.0 * args.rate_limit)
        rate_limit = RateLimitConfig(rate_per_s=args.rate_limit, burst=burst)
    store = ResultStore(args.results_dir)
    service = SimulationService(
        store,
        queue_depth=args.queue_depth,
        jobs=args.jobs,
        cache=not args.no_cache,
        max_attempts=args.max_attempts,
        rate_limit=rate_limit,
        max_in_flight=args.max_in_flight,
    ).start()
    stats = service.stats()
    if stats.recovered_requeued or stats.recovered_quarantined:
        print(
            f"[repro serve] recovery: re-enqueued {stats.recovered_requeued} "
            f"orphaned run(s), quarantined {stats.recovered_quarantined}",
            file=sys.stderr,
        )
    server = serve(service, host=args.host, port=args.port)
    host, port = server.server_address[:2]
    print(f"[repro serve] listening on http://{host}:{port} "
          f"(results: {store.path}, queue depth {args.queue_depth})", file=sys.stderr)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\n[repro serve] draining...", file=sys.stderr)
    finally:
        server.shutdown()
        server.server_close()
        service.shutdown(drain=True, timeout=60.0)
        store.close()
        print("[repro serve] stopped", file=sys.stderr)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.profile:
        from . import profiling

        profiling.enable()
    if args.audit:
        from . import audit

        audit.enable()
    start = time.time()
    runners = {
        "calibration": _run_calibration,
        "fig1": _run_fig1,
        "fig2": _run_fig2,
        "table1": _run_table1,
        "ablations": _run_ablations,
        "smt": _run_smt,
        "io": _run_io,
        "kernels": _run_kernels,
        "validate": _run_validate,
        "dynamic": _run_dynamic,
        "faults": _run_faults,
        "serve": _run_serve,
    }
    if args.experiment == "all":
        for name in ("calibration", "fig1", "fig2", "table1", "ablations", "smt", "io", "kernels"):
            print(f"=== {name} ===")
            runners[name](args)
            print()
        if args.csv:
            from .experiments.export import export_all

            paths = export_all(
                args.csv, work_scale=args.scale, seed=args.seed, jobs=args.jobs
            )
            print(f"[csv: wrote {len(paths)} files to {args.csv}]", file=sys.stderr)
    else:
        runners[args.experiment](args)
    if args.profile:
        _print_profile()
    if args.audit:
        # Reaching this line means no run raised an AuditViolation.
        print("[audit: all invariant checks passed]", file=sys.stderr)
    print(f"[done in {time.time() - start:.1f}s]", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
