"""Exception hierarchy for the :mod:`repro` package.

Every error the library raises deliberately derives from
:class:`ReproError`, so callers can catch the whole family with one clause
while still distinguishing configuration mistakes from runtime protocol
violations.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the :mod:`repro` library."""


class ConfigError(ReproError):
    """A configuration object is internally inconsistent.

    Raised eagerly at construction time (``__post_init__``) so that invalid
    machines, policies or experiments never start running.
    """


class SimulationError(ReproError):
    """The simulation engine detected an impossible state.

    Examples: time moving backwards, settling a negative interval, an event
    scheduled in the past.
    """


class SchedulingError(ReproError):
    """A scheduler or policy violated its own contract.

    Examples: dispatching the same thread on two CPUs, gang-allocating a job
    whose threads do not fit, blocking an unknown application.
    """


class ArenaError(ReproError):
    """Violation of the CPU-manager shared-arena protocol.

    Examples: publishing samples for a disconnected application, reading a
    descriptor that was never connected.
    """


class CounterError(ReproError):
    """Misuse of the performance-monitoring counter API.

    Examples: reading a counter for an unknown thread, a counter observed to
    decrease (counters are monotone by construction).
    """


class WorkloadError(ReproError):
    """A workload description is invalid.

    Examples: negative demand rate, zero-length phase, application with no
    threads.
    """


class ExecutionError(ReproError):
    """A supervised :func:`repro.parallel.run_many` spec failed terminally.

    Base of the worker-supervision failure family. Unlike an exception a
    spec *raises* (which propagates as itself), these describe failures of
    the execution substrate — a worker process dying or hanging — that the
    supervisor retried up to its attempt cap before giving up. The
    ``spec_index`` attribute points at the offending spec's position in
    the submitted sequence, so callers (the simulation service, sweep
    harnesses) can attribute the failure to one run and keep the rest.
    """

    def __init__(self, spec_index: int, attempts: int, message: str) -> None:
        self.spec_index = int(spec_index)
        self.attempts = int(attempts)
        super().__init__(message)


class WorkerCrashError(ExecutionError):
    """A worker process died while executing one spec (attempt cap hit).

    Raised by a supervised ``run_many`` after the spec crashed its
    isolation worker ``attempts`` times in a row (``BrokenProcessPool`` /
    a worker killed by a signal). Deterministic simulations never crash
    workers on their own, so this points at a poisoned spec or external
    process kills — either way the spec is not retried further.
    """

    def __init__(self, spec_index: int, attempts: int, message: str | None = None) -> None:
        super().__init__(
            spec_index,
            attempts,
            message
            or f"spec {spec_index} crashed its worker process on all {attempts} attempts",
        )

    def __reduce__(self):
        return (type(self), (self.spec_index, self.attempts, str(self)))


class RunTimeoutError(ExecutionError):
    """One spec exceeded its supervised wall-clock timeout (attempt cap hit).

    Carries the timeout that was in force for the final attempt
    (``timeout_s``) alongside the spec index and attempt count. The
    timed-out worker process was killed; the simulation has no partial
    result.
    """

    def __init__(
        self,
        spec_index: int,
        attempts: int,
        timeout_s: float,
        message: str | None = None,
    ) -> None:
        self.timeout_s = float(timeout_s)
        super().__init__(
            spec_index,
            attempts,
            message
            or (
                f"spec {spec_index} exceeded its {self.timeout_s:.1f}s wall-clock "
                f"timeout on all {attempts} attempts"
            ),
        )

    def __reduce__(self):
        return (type(self), (self.spec_index, self.attempts, self.timeout_s, str(self)))


class AuditViolation(ReproError):
    """A runtime invariant check (:mod:`repro.audit`) failed.

    Carries the check name, the simulated time of the failure and a detail
    mapping, so a violation raised inside a ``run_many`` worker process
    arrives in the parent with its full context intact (the exception
    pickles through the standard ``(check, time_us, details)`` argument
    tuple).
    """

    def __init__(self, check: str, time_us: float, details: dict | None = None) -> None:
        self.check = check
        self.time_us = float(time_us)
        self.details = dict(details or {})
        extra = ", ".join(f"{k}={v!r}" for k, v in sorted(self.details.items()))
        message = f"audit check {check!r} failed at t={self.time_us:.3f}us"
        if extra:
            message += f" ({extra})"
        super().__init__(message)

    def __reduce__(self):
        return (type(self), (self.check, self.time_us, self.details))
