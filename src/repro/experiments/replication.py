"""Multi-seed replication: mean ± confidence interval for any experiment.

The paper reports single measurements. The simulator is deterministic per
seed, so replication across seeds measures exactly the variance induced by
workload burstiness and kernel scheduling noise — and tells us which
figure-2 contrasts are robust (e.g. "Quanta Window beats Latest Quantum on
Raytrace in set B") and which are single-seed luck.

:func:`replicate` runs any ``seed -> float`` measurement across seeds and
returns a :class:`Replicated` summary (mean, sample std, Student-t 95 %
confidence interval). :func:`replicate_fig2` wraps the Figure 2 harness:
per application and policy, the improvement percentage over the Linux
baseline *matched by seed* (each seed's policy run is compared against the
same seed's Linux run, eliminating between-seed workload variance from the
contrast).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from scipy import stats

from .fig2 import run_fig2
from .reporting import format_table

__all__ = ["Replicated", "replicate", "replicate_fig2", "format_replicated_fig2"]


@dataclass(frozen=True)
class Replicated:
    """Summary of one measurement replicated across seeds.

    Attributes
    ----------
    values:
        Per-seed measurements, seed order.
    mean / std:
        Sample mean and (n−1) standard deviation.
    ci95:
        Half-width of the Student-t 95 % confidence interval of the mean
        (0 for a single seed).
    """

    values: tuple[float, ...]
    mean: float
    std: float
    ci95: float

    @property
    def n(self) -> int:
        """Number of replicates."""
        return len(self.values)

    def __str__(self) -> str:
        return f"{self.mean:+.1f} ± {self.ci95:.1f} (n={self.n})"


def summarize(values: Sequence[float], confidence: float = 0.95) -> Replicated:
    """Build a :class:`Replicated` from raw per-seed values."""
    vals = tuple(float(v) for v in values)
    if not vals:
        raise ValueError("no values to summarize")
    n = len(vals)
    mean = sum(vals) / n
    if n == 1:
        return Replicated(values=vals, mean=mean, std=0.0, ci95=0.0)
    var = sum((v - mean) ** 2 for v in vals) / (n - 1)
    std = math.sqrt(var)
    t = float(stats.t.ppf(0.5 + confidence / 2.0, df=n - 1))
    return Replicated(values=vals, mean=mean, std=std, ci95=t * std / math.sqrt(n))


def replicate(
    measure: Callable[[int], float],
    seeds: Iterable[int] = (1, 2, 7, 42, 101),
    confidence: float = 0.95,
) -> Replicated:
    """Run ``measure(seed)`` for every seed and summarize.

    >>> r = replicate(lambda seed: float(seed % 3), seeds=(1, 2, 3, 4))
    >>> r.n
    4
    """
    return summarize([measure(seed) for seed in seeds], confidence)


def replicate_fig2(
    set_name: str,
    apps: list[str],
    seeds: Iterable[int] = (1, 2, 7, 42, 101),
    work_scale: float = 1.0,
    policies=None,
    jobs: int | None = 1,
) -> dict[str, dict[str, Replicated]]:
    """Per-application, per-policy replicated Figure 2 improvements.

    Returns ``app → policy → Replicated`` where each replicate is the
    improvement over the *same-seed* Linux baseline. ``jobs`` parallelises
    each seed's (application × scheduler) grid.
    """
    seeds = list(seeds)
    per_seed_rows = [
        run_fig2(
            set_name, seed=seed, work_scale=work_scale, apps=apps,
            policies=policies, jobs=jobs,
        )
        for seed in seeds
    ]
    out: dict[str, dict[str, Replicated]] = {}
    policy_names = [c.policy for c in per_seed_rows[0][0].cells]
    for app_idx, app in enumerate(apps):
        out[app] = {}
        for policy in policy_names:
            values = [rows[app_idx].improvement(policy) for rows in per_seed_rows]
            out[app][policy] = summarize(values)
    return out


def format_replicated_fig2(
    set_name: str, results: dict[str, dict[str, Replicated]]
) -> str:
    """Render replicated Figure 2 improvements with confidence intervals."""
    policies = list(next(iter(results.values())))
    rows = []
    for app, by_policy in results.items():
        rows.append([app] + [str(by_policy[p]) for p in policies])
    return format_table(
        ["app"] + [f"{p} impr. %" for p in policies],
        rows,
        title=f"FIG-2{set_name} replicated: improvement over same-seed Linux (95% CI)",
    )
