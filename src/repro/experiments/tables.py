"""TAB-1: the Section 5 headline numbers.

The paper's text reports, per workload set and policy, the range and
average of the turnaround-time improvements, plus the overall claims
("up to 68 %", "26 % in average"). This module aggregates the Figure 2
rows into the same summary table so the benchmark harness can print
paper-vs-measured side by side.

Paper values (Section 5):

=====  ==============  ====================  =================
Set    Policy          Max improvement (%)   Avg improvement (%)
=====  ==============  ====================  =================
A      Latest Quantum  68                    41
A      Quanta Window   53                    31
B      Latest Quantum  60                    13
B      Quanta Window   64                    21
C      Latest Quantum  50                    26
C      Quanta Window   47                    25
=====  ==============  ====================  =================
"""

from __future__ import annotations

from dataclasses import dataclass

from ..metrics.stats import summarize_improvements
from .fig2 import Fig2Row
from .reporting import format_table

__all__ = ["PAPER_TABLE1", "Table1Row", "build_table1", "format_table1"]

#: Paper-reported (max %, avg %) per (set, policy).
PAPER_TABLE1: dict[tuple[str, str], tuple[float, float]] = {
    ("A", "latest-quantum"): (68.0, 41.0),
    ("A", "quanta-window"): (53.0, 31.0),
    ("B", "latest-quantum"): (60.0, 13.0),
    ("B", "quanta-window"): (64.0, 21.0),
    ("C", "latest-quantum"): (50.0, 26.0),
    ("C", "quanta-window"): (47.0, 25.0),
}

#: The paper's overall average improvement claim.
PAPER_OVERALL_AVG_PERCENT: float = 26.0


@dataclass(frozen=True)
class Table1Row:
    """One (set, policy) summary.

    Attributes
    ----------
    set_name / policy:
        The workload set and policy.
    max_percent / avg_percent / min_percent:
        Measured improvement statistics across the eleven applications.
    paper_max_percent / paper_avg_percent:
        The paper's reported values (``None`` for non-paper policies).
    """

    set_name: str
    policy: str
    max_percent: float
    avg_percent: float
    min_percent: float
    paper_max_percent: float | None
    paper_avg_percent: float | None


def build_table1(results: dict[str, list[Fig2Row]]) -> list[Table1Row]:
    """Aggregate Figure 2 rows (keyed by set name) into Table 1 rows."""
    out: list[Table1Row] = []
    for set_name, rows in results.items():
        if not rows:
            continue
        for policy in [c.policy for c in rows[0].cells]:
            summary = summarize_improvements([r.improvement(policy) for r in rows])
            paper = PAPER_TABLE1.get((set_name, policy))
            out.append(
                Table1Row(
                    set_name=set_name,
                    policy=policy,
                    max_percent=summary.max_percent,
                    avg_percent=summary.mean_percent,
                    min_percent=summary.min_percent,
                    paper_max_percent=paper[0] if paper else None,
                    paper_avg_percent=paper[1] if paper else None,
                )
            )
    return out


def overall_average(rows: list[Table1Row]) -> float:
    """Mean of the per-(set, policy) averages — the paper's '26 % overall'."""
    if not rows:
        raise ValueError("no table rows")
    return sum(r.avg_percent for r in rows) / len(rows)


def format_table1(rows: list[Table1Row]) -> str:
    """Render TAB-1 with paper-vs-measured columns."""
    table_rows = []
    for r in rows:
        table_rows.append(
            [
                r.set_name,
                r.policy,
                f"{r.max_percent:+.0f}%",
                f"{r.paper_max_percent:+.0f}%" if r.paper_max_percent is not None else "-",
                f"{r.avg_percent:+.0f}%",
                f"{r.paper_avg_percent:+.0f}%" if r.paper_avg_percent is not None else "-",
                f"{r.min_percent:+.0f}%",
            ]
        )
    body = format_table(
        ["set", "policy", "max", "paper max", "avg", "paper avg", "min"],
        table_rows,
        title="TAB-1: turnaround improvement summary (measured vs paper)",
    )
    return body + f"\noverall measured avg: {overall_average(rows):+.1f}%  (paper: +26%)"
