"""FAULT-1: degradation curves under injected faults.

The robustness counterpart to Figure 2: the same saturated workload (two
target instances plus four BBMA microbenchmarks), but with the
measurement substrate degrading underneath the manager. A reference
:class:`~repro.faults.FaultPlan` combining PMC noise (20 % multiplicative
jitter, dropped / stale / wrapped reads) with lossy signal delivery
(10 % drops, duplicates, bounded extra delay) is swept from intensity 0
(fault-free) to 1 (the full reference rates) for each bandwidth policy.

The headline metric is **retained throughput**: the fault-free mean
target turnaround divided by the mean turnaround at each intensity,
as a percentage. A robust policy-plus-hardening stack keeps retained
throughput high (the acceptance bar is ≥ 80 % at full reference
intensity) because the degradation machinery — retry-with-backoff on
unconfirmed signals, stale-estimate fallback, head-first selection when
every estimate is stale — turns measurement loss into graceful drift
rather than scheduling collapse.

Every run executes under the strict invariant auditor by default: the
curve is only meaningful if the degraded runs still satisfy the paper's
starvation bound and allocation invariants (fault-adjusted as described
in :mod:`repro.audit.checks`).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import LinuxSchedConfig, MachineConfig, ManagerConfig
from ..core.policies import BandwidthPolicy
from ..errors import ConfigError
from ..faults import FaultPlan, FaultStats
from ..parallel import run_many
from ..workloads.microbench import bbma_spec
from ..workloads.suites import PAPER_APPS
from .base import SimulationSpec
from .fig2 import _fresh_policy, default_policies
from .reporting import format_table

__all__ = [
    "REFERENCE_PLAN",
    "DEFAULT_INTENSITIES",
    "FaultCell",
    "FaultRow",
    "run_faults",
    "format_faults",
]

#: The reference fault mix swept by FAULT-1 (intensity 1.0 values): the
#: acceptance operating point — signal loss at 10 %, PMC jitter at 20 % —
#: plus the cheaper noise classes at realistic minor rates. Application
#: faults are deliberately absent: killing or hanging *background* jobs
#: changes the contention the targets face, which would confound the
#: measurement-degradation curve (they are exercised by the test suite
#: and available through custom plans).
REFERENCE_PLAN = FaultPlan(
    pmc_jitter=0.20,
    pmc_drop_prob=0.05,
    pmc_wrap_prob=0.01,
    pmc_stale_prob=0.05,
    signal_drop_prob=0.10,
    signal_duplicate_prob=0.02,
    signal_delay_us=200.0,
)

#: Default intensity sweep (0 is the fault-free baseline).
DEFAULT_INTENSITIES: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0)


@dataclass(frozen=True)
class FaultCell:
    """One (policy, intensity) operating point.

    Attributes
    ----------
    intensity:
        Scale factor applied to the reference plan (0 = fault-free).
    turnaround_us:
        Mean target turnaround over the replications.
    retained_percent:
        ``100 × fault-free turnaround / turnaround`` — the fraction of
        fault-free throughput the policy retained at this intensity.
    stats:
        Degradation counters summed over the replications.
    audit_ok:
        Every replication's audit report was clean (vacuously true when
        auditing was disabled).
    """

    intensity: float
    turnaround_us: float
    retained_percent: float
    stats: FaultStats
    audit_ok: bool


@dataclass(frozen=True)
class FaultRow:
    """One policy's degradation curve.

    Attributes
    ----------
    policy:
        Policy name.
    baseline_turnaround_us:
        Fault-free mean target turnaround (the curve's reference point).
    cells:
        One cell per requested intensity, in sweep order.
    """

    policy: str
    baseline_turnaround_us: float
    cells: tuple[FaultCell, ...]

    def retained(self, intensity: float) -> float:
        """Retained-throughput percentage at an intensity, by value."""
        for cell in self.cells:
            if abs(cell.intensity - intensity) < 1e-12:
                return cell.retained_percent
        raise KeyError(intensity)


def _sum_stats(stats: list[FaultStats]) -> FaultStats:
    total: dict[str, int] = {}
    for s in stats:
        for key, value in s.to_dict().items():
            total[key] = total.get(key, 0) + value
    return FaultStats(**total)


def run_faults(
    app: str = "CG",
    plan: FaultPlan | None = None,
    intensities: tuple[float, ...] | list[float] | None = None,
    policies: list[BandwidthPolicy] | None = None,
    replications: int = 3,
    seed: int = 42,
    work_scale: float = 1.0,
    machine: MachineConfig | None = None,
    manager: ManagerConfig | None = None,
    linux: LinuxSchedConfig | None = None,
    audit: bool = True,
    jobs: int | None = 1,
    progress=None,
) -> list[FaultRow]:
    """Run the FAULT-1 sweep: fault intensity × policy.

    Each (policy, intensity) point runs ``replications`` seeds
    (``seed, seed+1, ...``); the retained-throughput denominator is the
    same policy's fault-free mean over the same seeds. The whole grid is
    dispatched through :func:`repro.parallel.run_many`, so results are
    identical for any ``jobs`` count. With ``audit`` (the default) every
    run — degraded or not — executes under the strict invariant auditor
    and a violation aborts the sweep.
    """
    if app not in PAPER_APPS:
        raise ConfigError(f"unknown application {app!r}; known: {', '.join(PAPER_APPS)}")
    if replications < 1:
        raise ConfigError("need at least one replication")
    plan = plan if plan is not None else REFERENCE_PLAN
    wanted = list(intensities if intensities is not None else DEFAULT_INTENSITIES)
    if any(i < 0 for i in wanted):
        raise ConfigError("fault intensities must be non-negative")
    machine = machine or MachineConfig()
    manager = manager or ManagerConfig()
    linux = linux or LinuxSchedConfig()
    templates = policies if policies is not None else default_policies(manager)

    # The baseline point (intensity 0) is always run; it doubles as the
    # cell for intensity 0 when the sweep requests one.
    points = ([0.0] if not any(abs(i) < 1e-12 for i in wanted) else []) + wanted
    app_spec = PAPER_APPS[app].scaled(work_scale)
    background = [bbma_spec() for _ in range(4)]

    specs: list[SimulationSpec] = []
    for template in templates:
        for intensity in points:
            scaled = plan.scaled(intensity)
            for rep in range(replications):
                specs.append(
                    SimulationSpec(
                        targets=[app_spec, app_spec],
                        background=background,
                        scheduler=_fresh_policy(template),
                        machine=machine,
                        manager=manager,
                        linux=linux,
                        seed=seed + rep,
                        audit=audit,
                        faults=scaled if scaled.enabled else None,
                    )
                )

    results = run_many(specs, jobs=jobs, progress=progress)

    rows: list[FaultRow] = []
    stride = len(points) * replications
    for row_i, template in enumerate(templates):
        chunk = results[row_i * stride : (row_i + 1) * stride]
        by_point = [
            chunk[p * replications : (p + 1) * replications]
            for p in range(len(points))
        ]
        means = [
            sum(r.mean_target_turnaround_us() for r in reps) / len(reps)
            for reps in by_point
        ]
        baseline = means[points.index(0.0)] if 0.0 in points else means[0]
        cells = []
        for intensity in wanted:
            p = points.index(intensity)
            reps = by_point[p]
            cells.append(
                FaultCell(
                    intensity=intensity,
                    turnaround_us=means[p],
                    retained_percent=100.0 * baseline / means[p] if means[p] > 0 else 0.0,
                    stats=_sum_stats(
                        [r.faults if r.faults is not None else FaultStats() for r in reps]
                    ),
                    audit_ok=all(r.audit is None or r.audit.ok for r in reps),
                )
            )
        rows.append(
            FaultRow(
                policy=template.name,
                baseline_turnaround_us=baseline,
                cells=tuple(cells),
            )
        )
    return rows


def format_faults(rows: list[FaultRow]) -> str:
    """Render the degradation curves as a table."""
    if not rows:
        raise ConfigError("no rows to format")
    table_rows = []
    for row in rows:
        for cell in row.cells:
            s = cell.stats
            table_rows.append(
                [
                    row.policy,
                    f"{cell.intensity:.2f}",
                    f"{cell.turnaround_us / 1000:.1f}",
                    f"{cell.retained_percent:.1f}%",
                    str(s.pmc_dropped + s.pmc_stale + s.pmc_wraps + s.pmc_jittered),
                    str(s.signals_dropped),
                    str(s.signal_retries),
                    str(s.stale_fallbacks),
                    str(s.headfirst_fallbacks),
                    "yes" if cell.audit_ok else "NO",
                ]
            )
    return format_table(
        [
            "policy",
            "intensity",
            "turnaround ms",
            "retained",
            "pmc faults",
            "sig drops",
            "retries",
            "stale fb",
            "headfirst fb",
            "audit",
        ],
        table_rows,
        title="FAULT-1: retained throughput vs fault intensity (2 targets + 4 BBMA)",
    )
