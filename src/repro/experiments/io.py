"""EXT-IO: I/O-intensive workloads (the paper's future-work servers).

The paper closes with "We plan to test our scheduler with I/O and
network-intensive workloads which stress the bus bandwidth, using
scientific applications, web and database servers." This experiment builds
that workload on the simulator's I/O support (threads periodically release
their CPU for a disk/network wait):

* **db** — a database-server-like application: bus-heavy phases (scans)
  with regular I/O waits;
* **web** — a web-server-like application: light bus demand, frequent
  short waits.

Two instances of the target I/O application run against the paper's mixed
microbenchmark environment (2 BBMA + 2 nBBMA) under Linux, Quanta Window
and the model-driven extension. I/O changes the game in two ways the
CPU-bound figures never see: gangs no longer use their processors
continuously (waits leave holes a kernel scheduler can fill but a strict
gang cannot), and measured bandwidth per *runtime* stays honest while
bandwidth per *wall time* drops.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import MachineConfig
from ..core.policies import QuantaWindowPolicy
from ..core.policies_model import ModelDrivenPolicy
from ..parallel import run_many
from ..workloads.base import ApplicationSpec
from ..workloads.microbench import bbma_spec, nbbma_spec
from ..workloads.patterns import PhasedPattern, JitterPattern
from .base import SimulationSpec
from .reporting import format_table

__all__ = ["IoRow", "io_app_specs", "run_io_experiment", "format_io_experiment"]


def io_app_specs(work_scale: float = 1.0) -> dict[str, ApplicationSpec]:
    """The I/O-intensive server applications."""
    return {
        "db": ApplicationSpec(
            name="db",
            n_threads=2,
            work_per_thread_us=900_000.0 * work_scale,
            pattern=PhasedPattern(((30_000.0, 10.0), (20_000.0, 2.0))),
            footprint_lines=8192.0,
            io_interval_work_us=25_000.0,   # commit/fetch every 25 ms of work
            io_duration_us=4_000.0,
        ),
        "web": ApplicationSpec(
            name="web",
            n_threads=2,
            work_per_thread_us=700_000.0 * work_scale,
            pattern=JitterPattern(1.5, jitter=0.3, chunk_work_us=10_000.0),
            footprint_lines=1536.0,
            io_interval_work_us=8_000.0,    # network wait every 8 ms of work
            io_duration_us=2_000.0,
        ),
    }


@dataclass(frozen=True)
class IoRow:
    """One I/O application's outcome across schedulers.

    Attributes
    ----------
    name:
        Application name.
    turnarounds_us:
        Scheduler label → mean target turnaround.
    io_waits:
        Total I/O sleeps performed by the target instances (identical
        across schedulers by construction; reported as a sanity anchor).
    """

    name: str
    turnarounds_us: dict[str, float]
    io_waits: int

    def improvement(self, scheduler: str) -> float:
        """Improvement % of a scheduler over the Linux baseline."""
        base = self.turnarounds_us["linux"]
        return (base - self.turnarounds_us[scheduler]) / base * 100.0


def _count_target_io(result, handle) -> int:
    """Worker-side collector: I/O sleeps performed by the target instances."""
    return sum(t.io_count for a in handle.target_apps for t in a.threads)


_SCHEDULERS = ("linux", "window", "model")


def run_io_experiment(
    work_scale: float = 1.0,
    seed: int = 42,
    machine: MachineConfig | None = None,
    jobs: int | None = 1,
) -> list[IoRow]:
    """Run the I/O server workloads under the three schedulers."""
    machine = machine or MachineConfig()
    apps = io_app_specs(work_scale)
    specs: list[SimulationSpec] = []
    for app_spec in apps.values():
        for scheduler in ("linux", QuantaWindowPolicy(), ModelDrivenPolicy()):
            specs.append(
                SimulationSpec(
                    targets=[app_spec, app_spec],
                    background=[bbma_spec(), bbma_spec(), nbbma_spec(), nbbma_spec()],
                    scheduler=scheduler,
                    machine=machine,
                    seed=seed,
                )
            )
    # The handle is not picklable, so I/O waits are counted in the worker
    # via run_many's collect hook.
    pairs = run_many(specs, jobs=jobs, collect=_count_target_io)
    rows: list[IoRow] = []
    stride = len(_SCHEDULERS)
    for row_i, name in enumerate(apps):
        chunk = pairs[row_i * stride : (row_i + 1) * stride]
        turnarounds = {
            label: result.mean_target_turnaround_us()
            for label, (result, _) in zip(_SCHEDULERS, chunk)
        }
        io_waits = chunk[0][1]  # linux run; identical across schedulers
        rows.append(IoRow(name=name, turnarounds_us=turnarounds, io_waits=io_waits))
    return rows


def format_io_experiment(rows: list[IoRow]) -> str:
    """Render EXT-IO."""
    table_rows = []
    for r in rows:
        table_rows.append(
            [
                r.name,
                r.turnarounds_us["linux"] / 1e3,
                r.turnarounds_us["window"] / 1e3,
                r.turnarounds_us["model"] / 1e3,
                f"{r.improvement('window'):+.1f}%",
                f"{r.improvement('model'):+.1f}%",
                r.io_waits,
            ]
        )
    return format_table(
        ["app", "linux (ms)", "window (ms)", "model (ms)", "window impr.", "model impr.", "io waits"],
        table_rows,
        title="EXT-IO: I/O-intensive servers in the mixed environment (set C)",
    )
