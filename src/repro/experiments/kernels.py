"""EXT-K: does the paper's result survive a newer kernel?

The paper's baseline is Linux 2.4.20's O(n) scheduler. By the time of
publication the 2.6 O(1) scheduler was replacing it. This experiment runs
the paper's set-A workloads against both kernel baselines and both
policy-on-kernel combinations:

* ``linux24`` — the paper's baseline (global runqueue, goodness/affinity);
* ``linux26`` — the O(1) model (per-CPU runqueues, active/expired arrays,
  load balancing);
* ``window@24`` / ``window@26`` — the Quanta Window CPU manager on top of
  each kernel.

Expected shape (and the measured finding): the O(1) kernel is a *stronger
baseline* on these workloads — per-CPU runqueues hold each CPU's thread
mix static, which accidentally approximates gang scheduling and avoids
2.4's churn — so the policies' improvement shrinks against it, while still
never losing. The bandwidth-awareness contribution is real but its
headline magnitude is partly a property of the 2.4 baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import MachineConfig
from ..core.policies import QuantaWindowPolicy
from ..parallel import run_many
from ..workloads.suites import PAPER_APPS
from .base import SimulationSpec
from .fig2 import _background
from .reporting import format_table

__all__ = ["KernelRow", "run_kernel_experiment", "format_kernel_experiment"]

_CONFIGS = ("linux24", "linux26", "window@24", "window@26")


@dataclass(frozen=True)
class KernelRow:
    """Turnarounds of one application across kernel/policy combinations.

    Attributes
    ----------
    name:
        Application name.
    turnarounds_us:
        Config label → mean target turnaround.
    """

    name: str
    turnarounds_us: dict[str, float]

    def improvement(self, kernel: str) -> float:
        """Quanta Window's improvement over the bare kernel baseline."""
        base = self.turnarounds_us[f"linux{kernel}"]
        policy = self.turnarounds_us[f"window@{kernel}"]
        return (base - policy) / base * 100.0


def run_kernel_experiment(
    apps: list[str] | None = None,
    set_name: str = "A",
    work_scale: float = 1.0,
    seed: int = 42,
    jobs: int | None = 1,
) -> list[KernelRow]:
    """Run the kernel × policy grid for each application."""
    names = apps if apps is not None else ["Barnes", "SP", "CG"]
    specs: list[SimulationSpec] = []
    for name in names:
        app_spec = PAPER_APPS[name].scaled(work_scale)
        for label in _CONFIGS:
            if label.startswith("linux"):
                scheduler: object = "linux" if label == "linux24" else "linux26"
                kernel = "linux"
            else:
                scheduler = QuantaWindowPolicy()
                kernel = "linux" if label.endswith("24") else "linux26"
            specs.append(
                SimulationSpec(
                    targets=[app_spec, app_spec],
                    background=_background(set_name),
                    scheduler=scheduler,
                    kernel=kernel,
                    machine=MachineConfig(),
                    seed=seed,
                )
            )
    results = run_many(specs, jobs=jobs)
    rows: list[KernelRow] = []
    stride = len(_CONFIGS)
    for row_i, name in enumerate(names):
        chunk = results[row_i * stride : (row_i + 1) * stride]
        turnarounds = {
            label: r.mean_target_turnaround_us() for label, r in zip(_CONFIGS, chunk)
        }
        rows.append(KernelRow(name=name, turnarounds_us=turnarounds))
    return rows


def format_kernel_experiment(rows: list[KernelRow]) -> str:
    """Render EXT-K."""
    table_rows = []
    for r in rows:
        table_rows.append(
            [r.name]
            + [r.turnarounds_us[c] / 1e3 for c in _CONFIGS]
            + [f"{r.improvement('24'):+.1f}%", f"{r.improvement('26'):+.1f}%"]
        )
    return format_table(
        ["app"]
        + [f"{c} (ms)" for c in _CONFIGS]
        + ["impr vs 2.4", "impr vs 2.6"],
        table_rows,
        title="EXT-K: kernel baseline comparison (set A)",
    )
