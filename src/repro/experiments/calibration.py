"""CAL-1: platform calibration measurements (Section 3 setup).

Reproduces the paper's platform characterization:

* STREAM from all processors sustains ≈29.5 bus transactions/µs
  (≈1797 MB/s at 64 bytes/transaction);
* each application's solo two-thread transaction rate spans
  0.48 … 23.31 tx/µs in Figure 1A's order;
* the BBMA microbenchmark sustains ≈23.6 tx/µs, nBBMA ≈0.0037 tx/µs.

These are the anchors every other experiment relies on: the policies use
the STREAM number as the machine's usable bandwidth, and the figure-1
configurations are expressed in terms of the solo rates.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import MachineConfig
from ..parallel import run_many
from ..units import txus_to_mbps
from ..workloads.microbench import bbma_spec, nbbma_spec
from ..workloads.stream import stream_spec
from ..workloads.suites import PAPER_APPS, PAPER_SOLO_RATES
from .base import SimulationSpec, solo_spec
from .reporting import format_table

__all__ = ["CalibrationResult", "run_calibration", "format_calibration"]


@dataclass(frozen=True)
class CalibrationResult:
    """Measured platform anchors.

    Attributes
    ----------
    stream_rate_txus / stream_bandwidth_mbps:
        Sustained 4-thread STREAM throughput.
    bbma_rate_txus / nbbma_rate_txus:
        Solo microbenchmark rates.
    solo_rates_txus:
        Measured solo cumulative rate per paper application.
    solo_turnarounds_us:
        Solo turnaround per application (the Figure 1B denominators).
    """

    stream_rate_txus: float
    stream_bandwidth_mbps: float
    bbma_rate_txus: float
    nbbma_rate_txus: float
    solo_rates_txus: dict[str, float]
    solo_turnarounds_us: dict[str, float]


def run_calibration(
    machine: MachineConfig | None = None,
    seed: int = 42,
    work_scale: float = 1.0,
    jobs: int | None = 1,
) -> CalibrationResult:
    """Measure the platform anchors on the simulated machine.

    ``work_scale`` shrinks application work for quick benchmark runs
    (rates are work-size independent; turnarounds scale linearly). All
    anchors are independent dedicated runs, dispatched together through
    :func:`repro.parallel.run_many`.
    """
    machine = machine or MachineConfig()

    def dedicated(app_spec) -> SimulationSpec:
        return SimulationSpec(
            targets=[app_spec],
            scheduler="dedicated",
            machine=machine,
            seed=seed,
            trace=False,
        )

    app_names = list(PAPER_APPS)
    specs = [
        dedicated(stream_spec(n_threads=machine.n_cpus, work_us=500_000.0 * work_scale)),
        dedicated(bbma_spec(work_us=300_000.0 * work_scale)),
        dedicated(nbbma_spec(work_us=300_000.0 * work_scale)),
    ] + [
        solo_spec(PAPER_APPS[name].scaled(work_scale), machine=machine, seed=seed)
        for name in app_names
    ]
    results = run_many(specs, jobs=jobs)
    stream, bbma, nbbma = results[0], results[1], results[2]

    solo_rates: dict[str, float] = {}
    solo_turnarounds: dict[str, float] = {}
    for name, result in zip(app_names, results[3:]):
        solo_rates[name] = result.workload_rate_txus
        solo_turnarounds[name] = result.mean_target_turnaround_us()

    # Rate measured over the steady post-warmup portion is approximated by
    # the whole-run average: warmup is ~1 ms of a 0.5 s+ run.
    return CalibrationResult(
        stream_rate_txus=stream.workload_rate_txus,
        stream_bandwidth_mbps=txus_to_mbps(stream.workload_rate_txus),
        bbma_rate_txus=bbma.workload_rate_txus,
        nbbma_rate_txus=nbbma.workload_rate_txus,
        solo_rates_txus=solo_rates,
        solo_turnarounds_us=solo_turnarounds,
    )


def format_calibration(result: CalibrationResult) -> str:
    """Render the calibration report next to the paper's numbers."""
    rows = [
        ["STREAM (4 threads)", f"{result.stream_rate_txus:.2f}", "29.50"],
        ["STREAM MB/s", f"{result.stream_bandwidth_mbps:.0f}", "1797"],
        ["BBMA", f"{result.bbma_rate_txus:.2f}", "23.60"],
        ["nBBMA", f"{result.nbbma_rate_txus:.4f}", "0.0037"],
    ]
    for name, rate in result.solo_rates_txus.items():
        rows.append([f"solo {name}", f"{rate:.2f}", f"{PAPER_SOLO_RATES[name]:.2f}"])
    return format_table(
        ["measurement", "simulated tx/us", "paper tx/us"],
        rows,
        title="CAL-1: platform calibration",
    )
