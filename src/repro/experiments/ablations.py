"""Ablation experiments for the design choices DESIGN.md calls out.

* **ABL-W** — window length: the paper picks 5 samples as the
  responsiveness/stability compromise and suggests exponentially-decayed
  weights for wider windows. Sweeps the window length and the EWMA
  extension on the bursty applications.
* **ABL-Q** — manager quantum: the paper found a 100 ms quantum causes "an
  excessive number of context switches" against the kernel's own quanta
  and settled on 200 ms. Sweeps the quantum and reports context switches
  and turnaround.
* **ABL-F** — fitness function: Equation 1 vs a linear distance, a
  lowest-bandwidth-first rule, and a constant score (= FCFS gang).
* **ABL-A** — bus arbitration model: shared-latency (default) vs max-min
  fair division, re-running the Figure 1B +BBMA column to show how much of
  the sub-saturation slowdown the arbitration term explains.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import BusConfig, MachineConfig, ManagerConfig
from ..core.fitness import FITNESS_FUNCTIONS
from ..core.policies import EwmaPolicy, LatestQuantumPolicy, QuantaWindowPolicy
from ..metrics.stats import improvement_percent
from ..workloads.suites import PAPER_APPS
from ..parallel import run_many
from .base import SimulationSpec
from .fig2 import _background, run_fig2
from .reporting import format_table

__all__ = [
    "WindowAblationRow",
    "run_window_ablation",
    "format_window_ablation",
    "QuantumAblationRow",
    "run_quantum_ablation",
    "format_quantum_ablation",
    "run_fitness_ablation",
    "format_fitness_ablation",
    "run_arbitration_ablation",
    "format_arbitration_ablation",
    "run_saturation_ablation",
    "format_saturation_ablation",
    "run_model_ablation",
    "format_model_ablation",
]

#: Bursty applications the window ablation focuses on (the paper names
#: Raytrace and LU as the irregular cases motivating the window).
_BURSTY_APPS = ["LU CB", "Raytrace"]


# --------------------------------------------------------------------- ABL-W


@dataclass(frozen=True)
class WindowAblationRow:
    """Improvement vs Linux for one estimator configuration.

    Attributes
    ----------
    estimator:
        "latest", "window-N", or "ewma-a".
    improvements:
        app name → improvement % (set B workload).
    """

    estimator: str
    improvements: dict[str, float]


def run_window_ablation(
    window_lengths: tuple[int, ...] = (1, 2, 3, 5, 8, 12),
    ewma_alphas: tuple[float, ...] = (0.333,),
    set_name: str = "B",
    work_scale: float = 1.0,
    seed: int = 42,
    apps: list[str] | None = None,
    jobs: int | None = 1,
) -> list[WindowAblationRow]:
    """Sweep estimator configurations on the bursty applications (set B)."""
    apps = apps if apps is not None else _BURSTY_APPS
    rows: list[WindowAblationRow] = []

    def one(policy_template, label: str) -> None:
        fig_rows = run_fig2(
            set_name,
            policies=[policy_template],
            work_scale=work_scale,
            seed=seed,
            apps=apps,
            jobs=jobs,
        )
        rows.append(
            WindowAblationRow(
                estimator=label,
                improvements={
                    r.name: r.cells[0].improvement_percent for r in fig_rows
                },
            )
        )

    one(LatestQuantumPolicy(), "latest")
    for w in window_lengths:
        one(QuantaWindowPolicy(window_length=w), f"window-{w}")
    for a in ewma_alphas:
        one(EwmaPolicy(alpha=a), f"ewma-{a:.2f}")
    return rows


def format_window_ablation(rows: list[WindowAblationRow]) -> str:
    """Render ABL-W."""
    apps = list(rows[0].improvements)
    table_rows = [
        [r.estimator] + [f"{r.improvements[a]:+.1f}%" for a in apps] for r in rows
    ]
    return format_table(
        ["estimator"] + apps,
        table_rows,
        title="ABL-W: estimator choice vs improvement on bursty apps (set B)",
    )


# --------------------------------------------------------------------- ABL-Q


@dataclass(frozen=True)
class QuantumAblationRow:
    """Effect of the manager quantum on one workload.

    Attributes
    ----------
    quantum_ms:
        Manager quantum in milliseconds.
    turnaround_us:
        Mean target turnaround.
    context_switches:
        Kernel-level running→running replacements during the run.
    dispatches:
        Total dispatches (proxy for scheduling churn).
    """

    quantum_ms: float
    turnaround_us: float
    context_switches: int
    dispatches: int


def run_quantum_ablation(
    quanta_ms: tuple[float, ...] = (50.0, 100.0, 200.0, 400.0),
    app_name: str = "CG",
    set_name: str = "A",
    work_scale: float = 1.0,
    seed: int = 42,
    jobs: int | None = 1,
) -> list[QuantumAblationRow]:
    """Sweep the CPU-manager quantum (paper: 100 ms thrashes, 200 ms is calm)."""
    app_spec = PAPER_APPS[app_name].scaled(work_scale)
    specs = [
        SimulationSpec(
            targets=[app_spec, app_spec],
            background=_background(set_name),
            scheduler=QuantaWindowPolicy(),
            manager=ManagerConfig(quantum_us=q_ms * 1000.0),
            seed=seed,
        )
        for q_ms in quanta_ms
    ]
    return [
        QuantumAblationRow(
            quantum_ms=q_ms,
            turnaround_us=result.mean_target_turnaround_us(),
            context_switches=result.context_switches,
            dispatches=sum(a.dispatches for a in result.apps),
        )
        for q_ms, result in zip(quanta_ms, run_many(specs, jobs=jobs))
    ]


def format_quantum_ablation(rows: list[QuantumAblationRow], app_name: str = "CG") -> str:
    """Render ABL-Q."""
    base = rows[0].turnaround_us
    table_rows = [
        [
            f"{r.quantum_ms:.0f} ms",
            r.turnaround_us / 1e3,
            r.context_switches,
            r.dispatches,
        ]
        for r in rows
    ]
    return format_table(
        ["manager quantum", "turnaround (ms)", "ctx switches", "dispatches"],
        table_rows,
        title=f"ABL-Q: manager quantum sweep ({app_name}, set A)",
    )


# --------------------------------------------------------------------- ABL-F


def run_fitness_ablation(
    app_names: tuple[str, ...] = ("Barnes", "SP", "CG"),
    set_name: str = "C",
    work_scale: float = 1.0,
    seed: int = 42,
    jobs: int | None = 1,
) -> dict[str, dict[str, float]]:
    """Sweep fitness functions; returns fitness name → app → improvement %."""
    out: dict[str, dict[str, float]] = {}
    for fname, fn in FITNESS_FUNCTIONS.items():
        rows = run_fig2(
            set_name,
            policies=[QuantaWindowPolicy(fitness_fn=fn)],
            work_scale=work_scale,
            seed=seed,
            apps=list(app_names),
            jobs=jobs,
        )
        out[fname] = {r.name: r.cells[0].improvement_percent for r in rows}
    return out


def format_fitness_ablation(results: dict[str, dict[str, float]]) -> str:
    """Render ABL-F."""
    apps = list(next(iter(results.values())))
    table_rows = [
        [fname] + [f"{vals[a]:+.1f}%" for a in apps] for fname, vals in results.items()
    ]
    return format_table(
        ["fitness"] + apps,
        table_rows,
        title="ABL-F: fitness function vs improvement (Quanta Window, set C)",
    )


# --------------------------------------------------------------------- ABL-M


def run_model_ablation(
    app_names: tuple[str, ...] = ("Barnes", "SP", "CG"),
    work_scale: float = 1.0,
    seed: int = 42,
    jobs: int | None = 1,
) -> dict[str, dict[str, dict[str, float]]]:
    """Model-driven whole-set optimization vs the paper's Eq.-1 matching.

    The paper's conclusions propose model-driven scheduling as future
    work; :class:`~repro.core.policies_model.ModelDrivenPolicy` implements
    it. Returns set → policy → app → improvement % over Linux. Expected
    shape: the optimizer wins on the saturated set (A) where contention
    prediction has signal, and loses on the benign set (B) where
    sub-sample burstiness defeats mean-rate prediction — evidence for the
    robustness of the paper's simpler heuristic.
    """
    from ..core.policies_model import ModelDrivenPolicy

    out: dict[str, dict[str, dict[str, float]]] = {}
    for set_name in ("A", "B", "C"):
        rows = run_fig2(
            set_name,
            policies=[QuantaWindowPolicy(), ModelDrivenPolicy()],
            work_scale=work_scale,
            seed=seed,
            apps=list(app_names),
            jobs=jobs,
        )
        out[set_name] = {
            policy: {r.name: r.improvement(policy) for r in rows}
            for policy in ("quanta-window", "model-driven")
        }
    return out


def format_model_ablation(results: dict[str, dict[str, dict[str, float]]]) -> str:
    """Render ABL-M."""
    apps = list(next(iter(next(iter(results.values())).values())))
    table_rows = []
    for set_name, by_policy in results.items():
        for policy, vals in by_policy.items():
            table_rows.append(
                [set_name, policy] + [f"{vals[a]:+.1f}%" for a in apps]
            )
    return format_table(
        ["set", "policy"] + apps,
        table_rows,
        title="ABL-M: model-driven whole-set optimization vs Eq.-1 matching",
    )


# --------------------------------------------------------------------- ABL-S


def run_saturation_ablation(
    app_names: tuple[str, ...] = ("Barnes", "CG"),
    set_name: str = "A",
    work_scale: float = 1.0,
    seed: int = 42,
    jobs: int | None = 1,
) -> dict[str, dict[str, float]]:
    """Saturation-aware estimation on/off (the limit-cycle demonstration).

    Without it, streaming jobs measured under saturation each report
    ≈ capacity/n, the fitness metric packs them together as a "perfect"
    match, and applications lose their fair share of quanta — visible as
    large *regressions* on long runs. Returns mode → app → improvement %
    of the Quanta Window policy over Linux.
    """
    out: dict[str, dict[str, float]] = {}
    for label, aware in (("saturation-aware", True), ("naive", False)):
        manager = ManagerConfig(saturation_aware=aware)
        rows = run_fig2(
            set_name,
            manager=manager,
            policies=[QuantaWindowPolicy()],
            work_scale=work_scale,
            seed=seed,
            apps=list(app_names),
            jobs=jobs,
        )
        out[label] = {r.name: r.cells[0].improvement_percent for r in rows}
    return out


def format_saturation_ablation(results: dict[str, dict[str, float]]) -> str:
    """Render ABL-S."""
    apps = list(next(iter(results.values())))
    table_rows = [
        [mode] + [f"{vals[a]:+.1f}%" for a in apps] for mode, vals in results.items()
    ]
    return format_table(
        ["estimation"] + apps,
        table_rows,
        title="ABL-S: saturation-aware estimation vs naive (Quanta Window, set A)",
    )


# --------------------------------------------------------------------- ABL-A


def run_arbitration_ablation(
    app_names: tuple[str, ...] = ("Barnes", "SP", "CG"),
    work_scale: float = 1.0,
    seed: int = 42,
    jobs: int | None = 1,
) -> dict[str, dict[str, float]]:
    """+BBMA slowdown under both arbitration models.

    Returns arbitration name → app → slowdown.
    """
    from .fig1 import run_fig1  # local import to avoid a cycle

    out: dict[str, dict[str, float]] = {}
    for arb in ("shared-latency", "max-min"):
        machine = MachineConfig(bus=BusConfig(arbitration=arb))
        rows = run_fig1(
            machine=machine, work_scale=work_scale, seed=seed, apps=list(app_names),
            jobs=jobs,
        )
        out[arb] = {r.name: r.slowdowns["+BBMA"] for r in rows}
    return out


def format_arbitration_ablation(results: dict[str, dict[str, float]]) -> str:
    """Render ABL-A."""
    apps = list(next(iter(results.values())))
    table_rows = [[arb] + [vals[a] for a in apps] for arb, vals in results.items()]
    return format_table(
        ["arbitration"] + apps,
        table_rows,
        title="ABL-A: +BBMA slowdown under both bus arbitration models",
    )
