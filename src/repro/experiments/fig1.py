"""FIG-1A / FIG-1B: the impact of bus bandwidth on application performance.

The four Section 3 configurations, for each of the eleven applications
(every application instance uses two threads; no processor sharing —
dedicated CPUs with the kernel's residual migration noise):

1. **solo** — the application alone (2 of 4 CPUs busy);
2. **x2** — two instances of the application (4 CPUs busy);
3. **+BBMA** — one instance plus two BBMA microbenchmarks (4 CPUs busy);
4. **+nBBMA** — one instance plus two nBBMA microbenchmarks.

Figure 1A plots the workload's cumulative bus transaction rate in each
configuration; Figure 1B the applications' slowdown relative to solo in
configurations 2–4 (for x2, the arithmetic mean of the two instances'
slowdowns — which are equal here since the mean is over identical
instances).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import MachineConfig
from ..metrics.stats import slowdown
from ..parallel import run_many
from ..workloads.microbench import bbma_spec, nbbma_spec
from ..workloads.suites import PAPER_APPS
from .base import SimulationSpec
from .reporting import format_table

__all__ = ["Fig1Row", "run_fig1", "format_fig1a", "format_fig1b", "FIG1_CONFIGS"]

#: Configuration labels in figure order.
FIG1_CONFIGS = ("solo", "x2", "+BBMA", "+nBBMA")

#: Mean interval of the kernel's residual migration noise in the Figure 1
#: multiprogrammed configurations (µs). The paper attributes LU CB's and
#: Water-nsqr's excess slowdown to thread migrations; dedicated solo runs
#: keep a long interval so the baseline is clean.
_MIGRATION_INTERVAL_US = 250_000.0


@dataclass(frozen=True)
class Fig1Row:
    """Results of all four configurations for one application.

    Attributes
    ----------
    name:
        Application name.
    rates_txus:
        Workload cumulative transaction rate per configuration.
    turnarounds_us:
        Mean target turnaround per configuration.
    slowdowns:
        Turnaround ratio vs. solo for the three multiprogrammed
        configurations ("x2", "+BBMA", "+nBBMA").
    """

    name: str
    rates_txus: dict[str, float]
    turnarounds_us: dict[str, float]
    slowdowns: dict[str, float]


def _config_spec(name: str, app_spec, machine: MachineConfig, seed: int) -> SimulationSpec:
    if name == "solo":
        return SimulationSpec(
            targets=[app_spec],
            scheduler="dedicated",
            machine=machine,
            seed=seed,
            trace=False,
        )
    if name == "x2":
        targets, background = [app_spec, app_spec], []
    elif name == "+BBMA":
        targets, background = [app_spec], [bbma_spec(), bbma_spec()]
    elif name == "+nBBMA":
        targets, background = [app_spec], [nbbma_spec(), nbbma_spec()]
    else:
        raise ValueError(f"unknown Figure 1 configuration {name!r}")
    return SimulationSpec(
        targets=targets,
        background=background,
        scheduler="dedicated",
        machine=machine,
        seed=seed,
        dedicated_migration_interval_us=_MIGRATION_INTERVAL_US,
        trace=False,
    )


def run_fig1(
    machine: MachineConfig | None = None,
    seed: int = 42,
    work_scale: float = 1.0,
    apps: list[str] | None = None,
    jobs: int | None = 1,
    progress=None,
) -> list[Fig1Row]:
    """Run the Figure 1 grid and return one row per application.

    ``work_scale`` shrinks every application's work (for fast benches);
    ``apps`` restricts to a subset of application names. The whole
    (application × configuration) grid runs through
    :func:`repro.parallel.run_many` with ``jobs`` workers.
    """
    machine = machine or MachineConfig()
    names = apps if apps is not None else list(PAPER_APPS)
    specs = [
        _config_spec(config, PAPER_APPS[name].scaled(work_scale), machine, seed)
        for name in names
        for config in FIG1_CONFIGS
    ]
    results = run_many(specs, jobs=jobs, progress=progress)

    rows: list[Fig1Row] = []
    stride = len(FIG1_CONFIGS)
    for row_i, name in enumerate(names):
        chunk = results[row_i * stride : (row_i + 1) * stride]
        rates = {c: r.workload_rate_txus for c, r in zip(FIG1_CONFIGS, chunk)}
        turnarounds = {
            c: r.mean_target_turnaround_us() for c, r in zip(FIG1_CONFIGS, chunk)
        }
        slowdowns = {
            config: slowdown(turnarounds[config], turnarounds["solo"])
            for config in FIG1_CONFIGS
            if config != "solo"
        }
        rows.append(
            Fig1Row(name=name, rates_txus=rates, turnarounds_us=turnarounds, slowdowns=slowdowns)
        )
    return rows


def format_fig1a(rows: list[Fig1Row]) -> str:
    """Figure 1A: cumulative bus transaction rates per configuration."""
    table_rows = [
        [r.name] + [r.rates_txus[c] for c in FIG1_CONFIGS] for r in rows
    ]
    return format_table(
        ["app", "solo tx/us", "x2 tx/us", "+BBMA tx/us", "+nBBMA tx/us"],
        table_rows,
        title="FIG-1A: cumulative bus transactions rate (apps sorted by solo rate)",
    )


def format_fig1b(rows: list[Fig1Row]) -> str:
    """Figure 1B: slowdowns in the three multiprogrammed configurations."""
    table_rows = [
        [r.name] + [r.slowdowns[c] for c in FIG1_CONFIGS if c != "solo"] for r in rows
    ]
    return format_table(
        ["app", "x2 slowdown", "+BBMA slowdown", "+nBBMA slowdown"],
        table_rows,
        title="FIG-1B: slowdown vs solo execution",
    )
