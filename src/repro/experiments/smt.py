"""EXT-SMT: the hyperthreading extension the paper had to leave out.

The paper's Xeons are 2-way hyperthreaded, but the perfctr driver "does
not yet support concurrent execution of two threads on a physical
processor if both threads use performance monitoring counters", so the
authors disabled HT and listed SMT as future work ("our work can also be
extended in the context of multithreading processors, where sharing
happens also at the level of internal processor resources").

The simulator has no such driver limitation: :class:`repro.config.
MachineConfig` models SMT siblings sharing a core (execution efficiency
``smt_efficiency`` when both busy) and its L2 cache. This experiment asks
the natural question: *given the same physical machine, is it better to
enable HT (8 logical CPUs — the whole multiprogrammed workload runs at
once, slowly) or to disable it and gang-schedule (the paper's setup)?*

For each application, the paper's set-A workload (2 instances + 4 BBMA)
runs on:

* ``HT-off + linux`` — the paper's baseline (4 CPUs, time sharing);
* ``HT-off + window`` — the paper's contribution;
* ``HT-on + linux`` — 8 logical CPUs, no time sharing needed;
* ``HT-on + window`` — gang policies on logical CPUs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import MachineConfig
from ..core.policies import QuantaWindowPolicy
from ..parallel import run_many
from ..workloads.suites import PAPER_APPS
from .base import SimulationSpec
from .fig2 import _background
from .reporting import format_table

__all__ = ["SmtRow", "run_smt_experiment", "format_smt_experiment"]


@dataclass(frozen=True)
class SmtRow:
    """Turnarounds of one application across the four configurations.

    Attributes
    ----------
    name:
        Application name.
    turnarounds_us:
        Config label → mean target turnaround.
    """

    name: str
    turnarounds_us: dict[str, float]

    def improvement_of_ht(self, scheduler: str) -> float:
        """Percent turnaround change from enabling HT under a scheduler."""
        off = self.turnarounds_us[f"HT-off {scheduler}"]
        on = self.turnarounds_us[f"HT-on {scheduler}"]
        return (off - on) / off * 100.0


def run_smt_experiment(
    apps: list[str] | None = None,
    set_name: str = "A",
    work_scale: float = 1.0,
    seed: int = 42,
    smt_efficiency: float = 0.62,
    jobs: int | None = 1,
) -> list[SmtRow]:
    """Run the HT-on/off × scheduler grid for each application."""
    names = apps if apps is not None else ["Barnes", "SP", "CG"]
    machines = {
        "HT-off": MachineConfig(n_cpus=4, smt_ways=1),
        "HT-on": MachineConfig(n_cpus=4, smt_ways=2, smt_efficiency=smt_efficiency),
    }
    labels = [
        f"{ht_label} {sched_label}"
        for ht_label in machines
        for sched_label in ("linux", "window")
    ]
    specs: list[SimulationSpec] = []
    for name in names:
        app_spec = PAPER_APPS[name].scaled(work_scale)
        for ht_label, machine in machines.items():
            for scheduler in ("linux", QuantaWindowPolicy()):
                specs.append(
                    SimulationSpec(
                        targets=[app_spec, app_spec],
                        background=_background(set_name),
                        scheduler=scheduler,
                        machine=machine,
                        seed=seed,
                    )
                )
    results = run_many(specs, jobs=jobs)
    rows: list[SmtRow] = []
    stride = len(labels)
    for row_i, name in enumerate(names):
        chunk = results[row_i * stride : (row_i + 1) * stride]
        turnarounds = {
            label: r.mean_target_turnaround_us() for label, r in zip(labels, chunk)
        }
        rows.append(SmtRow(name=name, turnarounds_us=turnarounds))
    return rows


def format_smt_experiment(rows: list[SmtRow]) -> str:
    """Render EXT-SMT."""
    configs = list(rows[0].turnarounds_us)
    table_rows = []
    for r in rows:
        table_rows.append(
            [r.name]
            + [r.turnarounds_us[c] / 1e3 for c in configs]
            + [f"{r.improvement_of_ht('window'):+.1f}%"]
        )
    return format_table(
        ["app"] + [f"{c} (ms)" for c in configs] + ["HT gain (window)"],
        table_rows,
        title="EXT-SMT: hyperthreading on/off x scheduler (set A turnarounds)",
    )
