"""Plain-text reporting: ASCII tables and CSV for every experiment.

The benchmark harness prints the same rows/series the paper's figures
show; these helpers keep the formatting consistent and make the output
easy to diff against EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_csv", "bar"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
    float_fmt: str = "{:.2f}",
) -> str:
    """Render an ASCII table with right-aligned numeric columns.

    >>> out = format_table(["app", "x"], [["CG", 1.5]])
    >>> out.splitlines()[-1]
    'CG  | 1.50'
    """
    rendered: list[list[str]] = []
    for row in rows:
        out = []
        for cell in row:
            if isinstance(cell, float):
                out.append(float_fmt.format(cell))
            else:
                out.append(str(cell))
        rendered.append(out)
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row, raw in zip(rendered, rendered):
        cells = []
        for i, cell in enumerate(row):
            # Numbers right-aligned, text left-aligned.
            if cell and (cell[0].isdigit() or cell[0] in "+-." or cell.endswith("%")):
                cells.append(cell.rjust(widths[i]))
            else:
                cells.append(cell.ljust(widths[i]))
        lines.append(" | ".join(cells))
    return "\n".join(lines)


def format_csv(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render rows as CSV (no quoting needed for our alphanumeric data)."""
    lines = [",".join(headers)]
    for row in rows:
        lines.append(",".join(f"{c:.4f}" if isinstance(c, float) else str(c) for c in row))
    return "\n".join(lines)


def bar(value: float, scale: float, width: int = 40, char: str = "#") -> str:
    """A crude horizontal bar for terminal 'figures'.

    >>> bar(5.0, 10.0, width=10)
    '#####     '
    """
    if scale <= 0:
        raise ValueError("bar scale must be positive")
    n = max(0, min(width, round(value / scale * width)))
    return char * n + " " * (width - n)
