"""DYN-1: open-system evaluation — arrival rate × scheduling policy.

The paper evaluates its policies on *closed* workloads: a fixed job set
runs to completion. A user-level CPU manager, though, is an online server;
this harness measures what the closed experiments cannot — steady-state
queueing behaviour when jobs arrive continuously:

* response time (arrival → completion) and bounded slowdown, with
  batch-means confidence intervals and warmup truncation;
* admission-queue length and drop accounting under bounded capacity;
* the no-starvation watchdog (the circular-list rotation guarantee) at
  every operating point;
* bandwidth-regulation quality: time-averaged bus utilisation and the
  fraction of time the bus sits above the saturation threshold.

The sweep grid is (policy × arrival rate × seed replication), flattened
through :func:`repro.parallel.run_many` like every other harness here —
results are bit-identical for any worker count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from ..config import LinuxSchedConfig, MachineConfig, ManagerConfig
from ..core.policies import LatestQuantumPolicy, QuantaWindowPolicy
from ..dynamic import (
    ArrivalProcess,
    BurstyMix,
    DiurnalShape,
    DynamicWorkload,
    FlashCrowdShape,
    HotspotMix,
    JobMix,
    MMPPBurstyArrivals,
    PoissonArrivals,
    RateShape,
    SequentialMix,
    ShapedArrivals,
    ZipfianMix,
    paper_mix,
)
from ..errors import ConfigError
from ..metrics.queueing import QueueingSummary, batch_means_ci, summarize_queueing
from ..parallel import run_many
from ..units import seconds
from .base import SimulationSpec
from .reporting import format_table

__all__ = [
    "DYNAMIC_POLICIES",
    "DynamicRow",
    "make_arrivals",
    "make_mix",
    "make_shape",
    "run_dynamic_sweep",
    "format_dynamic",
]

#: Sweepable schedulers: CLI name → human name. "linux" is the stock
#: kernel baseline; the other two run inside the CPU manager.
DYNAMIC_POLICIES: dict[str, str] = {
    "linux": "linux",
    "latest_quantum": "latest-quantum",
    "quanta_window": "quanta-window",
}


def make_arrivals(kind: str, rate_per_s: float, burstiness: float = 4.0) -> ArrivalProcess:
    """An arrival process of the requested kind at a given mean rate.

    ``"poisson"`` is memoryless at ``rate_per_s``; ``"mmpp"`` alternates
    low/high phases (``rate/burstiness`` and ``rate×burstiness`` around the
    same mean only approximately — the dwell times are chosen so the
    dwell-weighted mean equals ``rate_per_s`` exactly).
    """
    if rate_per_s <= 0:
        raise ConfigError(f"arrival rate must be positive, got {rate_per_s}")
    if kind == "poisson":
        return PoissonArrivals(rate_per_s=rate_per_s)
    if kind == "mmpp":
        if burstiness <= 1.0:
            raise ConfigError(f"mmpp burstiness must exceed 1, got {burstiness}")
        low = rate_per_s / burstiness
        high = rate_per_s * burstiness
        # Equal dwell shares give mean (low+high)/2 > rate; weight the low
        # phase so the dwell-weighted mean is exactly the requested rate:
        # w·low + (1-w)·high = rate  →  w = (high-rate)/(high-low).
        w = (high - rate_per_s) / (high - low)
        total_dwell_s = 5.0
        return MMPPBurstyArrivals(
            rate_low_per_s=low,
            rate_high_per_s=high,
            mean_low_s=total_dwell_s * w,
            mean_high_s=total_dwell_s * (1.0 - w),
        )
    raise ConfigError(f"unknown arrival kind {kind!r}; known: poisson, mmpp, trace")


def make_shape(kind: str, **params: float) -> RateShape:
    """A rate envelope by CLI name: ``diurnal`` or ``flash``.

    Parameters are the shape dataclass fields (``period_s``, ``amplitude``,
    ``phase`` / ``at_s``, ``duration_s``, ``magnitude``); unknown ones
    raise :class:`~repro.errors.ConfigError` via the dataclass validation.
    """
    factories: dict[str, type[RateShape]] = {
        "diurnal": DiurnalShape,
        "flash": FlashCrowdShape,
    }
    if kind not in factories:
        raise ConfigError(
            f"unknown shape kind {kind!r}; known: {', '.join(sorted(factories))}"
        )
    try:
        return factories[kind](**params)
    except TypeError as exc:
        raise ConfigError(f"bad {kind} shape parameters: {exc}") from None


def make_mix(
    kind: str,
    apps: list[str] | None = None,
    work_scale: float = 1.0,
    **params: float,
) -> JobMix:
    """A (possibly skewed/correlated) paper-palette job mix by CLI name.

    ``weighted`` is the plain equal-weight palette; ``zipfian``,
    ``hotspot``, ``sequential`` and ``bursty`` wrap the same palette in
    the corresponding :mod:`repro.dynamic.config` family. Integer-valued
    parameters (``hot_index``, ``run_length``) accept floats from the CLI
    parser and are coerced.
    """
    base = paper_mix(names=apps, work_scale=work_scale)
    if kind == "weighted":
        if params:
            raise ConfigError(f"weighted mix takes no parameters, got {sorted(params)}")
        return base
    factories: dict[str, tuple[type[JobMix], set[str]]] = {
        "zipfian": (ZipfianMix, {"exponent"}),
        "hotspot": (HotspotMix, {"hot_fraction", "hot_index"}),
        "sequential": (SequentialMix, {"run_length"}),
        "bursty": (BurstyMix, {"mean_run_length"}),
    }
    if kind not in factories:
        raise ConfigError(
            f"unknown mix kind {kind!r}; known: weighted, {', '.join(sorted(factories))}"
        )
    factory, allowed = factories[kind]
    unknown = set(params) - allowed
    if unknown:
        raise ConfigError(
            f"unknown {kind} mix parameters {sorted(unknown)}; known: {sorted(allowed)}"
        )
    coerced: dict[str, float | int] = {
        k: int(v) if k in ("hot_index", "run_length") else v for k, v in params.items()
    }
    return factory(entries=base.entries, **coerced)


def _scheduler_for(policy: str, manager: ManagerConfig):
    """Map a sweep policy name to a SimulationSpec scheduler."""
    if policy == "linux":
        return "linux"
    if policy == "latest_quantum":
        return LatestQuantumPolicy(fitness_scale=manager.fitness_scale)
    if policy == "quanta_window":
        return QuantaWindowPolicy(
            window_length=manager.window_length, fitness_scale=manager.fitness_scale
        )
    raise ConfigError(
        f"unknown dynamic policy {policy!r}; known: {', '.join(DYNAMIC_POLICIES)}"
    )


@dataclass(frozen=True)
class DynamicRow:
    """One (policy, arrival rate) operating point, aggregated over seeds.

    Attributes
    ----------
    policy:
        Sweep policy name (``linux`` / ``latest_quantum`` / ``quanta_window``).
    rate_per_s:
        Mean arrival rate of the operating point.
    summaries:
        The per-seed :class:`~repro.metrics.queueing.QueueingSummary` list
        (replication order = seed order).
    mean_response_us / response_ci_us:
        Mean response time across replications and its Student-t
        half-width (``None`` with a single replication — no defensible
        error bar from one sample).
    mean_slowdown / slowdown_ci:
        Bounded slowdown, likewise.
    queue_len_time_avg / throughput_jobs_per_s / drop_fraction /
    utilization_time_avg / saturated_fraction:
        Replication means of the per-run metrics.
    max_starvation_age_us / starvation_bound_us:
        Worst observed progress-age and the (largest) configured bound.
    starvation_ok:
        Whether the no-starvation guarantee held in every replication.
    response_p50_us / response_p95_us / response_p99_us:
        Replication means of the per-run response-time quantiles (exact
        with records, P² sketch estimates with ``record_jobs=False``);
        ``None`` when no replication reported them.
    """

    policy: str
    rate_per_s: float
    summaries: tuple[QueueingSummary, ...]
    mean_response_us: float
    response_ci_us: float | None
    mean_slowdown: float
    slowdown_ci: float | None
    queue_len_time_avg: float
    throughput_jobs_per_s: float
    drop_fraction: float
    utilization_time_avg: float
    saturated_fraction: float
    max_starvation_age_us: float
    starvation_bound_us: float
    starvation_ok: bool
    response_p50_us: float | None = None
    response_p95_us: float | None = None
    response_p99_us: float | None = None


def _across_seeds(values: list[float]) -> tuple[float, float | None]:
    """Mean and t-based half-width over replications (one batch per seed).

    A half-width of ``None`` means "no error bar" (zero or one finite
    replication); with no finite values at all the mean itself is NaN.
    """
    finite = [v for v in values if math.isfinite(v)]
    if not finite:
        return (math.nan, None)
    if len(finite) < 2:
        return (finite[0], None)
    return batch_means_ci(finite, n_batches=len(finite))


def _mean_or_none(values: list[float | None]) -> float | None:
    """Replication mean of an optional metric (None when never reported)."""
    present = [v for v in values if v is not None and math.isfinite(v)]
    if not present:
        return None
    return sum(present) / len(present)


def run_dynamic_sweep(
    policies: list[str] | None = None,
    rates_per_s: list[float] | None = None,
    arrival_kind: str = "poisson",
    arrivals: ArrivalProcess | None = None,
    n_jobs: int = 24,
    max_in_service: int = 4,
    queue_capacity: int | None = None,
    machine: MachineConfig | None = None,
    manager: ManagerConfig | None = None,
    linux: LinuxSchedConfig | None = None,
    seed: int = 42,
    replications: int = 3,
    work_scale: float = 1.0,
    apps: list[str] | None = None,
    jobs: int | None = 1,
    progress=None,
    shapes: list[RateShape] | None = None,
    mix: JobMix | None = None,
    record_jobs: bool = True,
) -> list[DynamicRow]:
    """Sweep arrival rate × policy, replicated across seeds.

    ``arrivals`` overrides the generated process (e.g. a
    :class:`~repro.dynamic.TraceArrivals` replay); the sweep then has a
    single rate axis entry labelled with the trace's mean rate.
    ``shapes`` wraps every arrival process in the given rate envelopes
    (innermost first); ``mix`` overrides the plain paper palette (see
    :func:`make_mix`); ``record_jobs=False`` drops the per-job record
    list so arbitrarily large ``n_jobs`` run in O(1) metric memory.
    Replication ``r`` uses root seed ``seed + r``, so every replication is
    an independent but reproducible sample. The flattened grid runs
    through :func:`repro.parallel.run_many`.
    """
    machine = machine or MachineConfig()
    manager = manager or ManagerConfig()
    linux = linux or LinuxSchedConfig()
    chosen_policies = policies if policies is not None else list(DYNAMIC_POLICIES)
    if replications < 1:
        raise ConfigError(f"need at least one replication, got {replications}")
    if mix is None:
        mix = paper_mix(names=apps, work_scale=work_scale)

    if arrivals is not None:
        rate_axis: list[tuple[float, ArrivalProcess]] = [
            (arrivals.mean_rate_per_s, arrivals)
        ]
    else:
        rates = rates_per_s if rates_per_s is not None else [0.5, 1.0, 2.0]
        rate_axis = [(r, make_arrivals(arrival_kind, r)) for r in rates]
    for shape in shapes or []:
        rate_axis = [
            (shaped.mean_rate_per_s, shaped)
            for shaped in (ShapedArrivals(base=p, shape=shape) for _, p in rate_axis)
        ]

    specs: list[SimulationSpec] = []
    points: list[tuple[str, float, DynamicWorkload]] = []
    for policy in chosen_policies:
        for rate, process in rate_axis:
            workload = DynamicWorkload(
                arrivals=process,
                mix=mix,
                n_jobs=n_jobs,
                max_in_service=max_in_service,
                queue_capacity=queue_capacity,
                record_jobs=record_jobs,
            )
            points.append((policy, rate, workload))
            base_spec = SimulationSpec(
                targets=[],
                scheduler=_scheduler_for(policy, manager),
                machine=machine,
                manager=manager,
                linux=linux,
                seed=seed,
                dynamic=workload,
                max_time_us=seconds(3600),
            )
            for r in range(replications):
                specs.append(
                    replace(
                        base_spec,
                        seed=seed + r,
                        scheduler=_scheduler_for(policy, manager),
                    )
                )

    results = run_many(specs, jobs=jobs, progress=progress)

    rows: list[DynamicRow] = []
    for i, (policy, rate, workload) in enumerate(points):
        chunk = results[i * replications : (i + 1) * replications]
        stats = [res.dynamic for res in chunk]
        summaries = [
            summarize_queueing(
                s,
                warmup_jobs=workload.warmup_jobs(),
                tau_us=workload.slowdown_tau_us,
            )
            for s in stats
        ]
        resp_mean, resp_ci = _across_seeds([s.mean_response_us for s in summaries])
        slow_mean, slow_ci = _across_seeds([s.mean_slowdown for s in summaries])
        n = len(summaries)
        rows.append(
            DynamicRow(
                policy=policy,
                rate_per_s=rate,
                summaries=tuple(summaries),
                mean_response_us=resp_mean,
                response_ci_us=resp_ci,
                mean_slowdown=slow_mean,
                slowdown_ci=slow_ci,
                queue_len_time_avg=sum(s.queue_len_time_avg for s in summaries) / n,
                throughput_jobs_per_s=sum(s.throughput_jobs_per_s for s in summaries) / n,
                drop_fraction=sum(s.drop_fraction for s in summaries) / n,
                utilization_time_avg=sum(s.utilization_time_avg for s in summaries) / n,
                saturated_fraction=sum(s.saturated_fraction for s in summaries) / n,
                max_starvation_age_us=max(s.max_starvation_age_us for s in summaries),
                starvation_bound_us=max(s.starvation_bound_us for s in summaries),
                starvation_ok=all(s.starvation_ok for s in summaries),
                response_p50_us=_mean_or_none([s.response_p50_us for s in summaries]),
                response_p95_us=_mean_or_none([s.response_p95_us for s in summaries]),
                response_p99_us=_mean_or_none([s.response_p99_us for s in summaries]),
            )
        )
    return rows


def _fmt_ci(mean: float, half: float | None, scale: float = 1.0, unit: str = "") -> str:
    if not math.isfinite(mean):
        return "n/a"
    if half is not None and math.isfinite(half):
        return f"{mean * scale:.2f}±{half * scale:.2f}{unit}"
    return f"{mean * scale:.2f}{unit}"


def _fmt_quantile(value: float | None) -> str:
    if value is None or not math.isfinite(value):
        return "n/a"
    return f"{value * 1e-6:.2f}s"


def format_dynamic(rows: list[DynamicRow], quantiles: bool = False) -> str:
    """Render the sweep as a policy × rate table.

    With ``quantiles=True`` the table adds p50/p95/p99 response-time
    columns (the ``repro dynamic --quantiles`` view).
    """
    if not rows:
        raise ConfigError("no rows to format")
    table_rows = []
    for r in rows:
        row = [
            r.policy,
            f"{r.rate_per_s:.2f}",
            _fmt_ci(r.mean_response_us, r.response_ci_us, scale=1e-6, unit="s"),
            _fmt_ci(r.mean_slowdown, r.slowdown_ci),
            f"{r.queue_len_time_avg:.2f}",
            f"{r.throughput_jobs_per_s:.2f}",
            f"{r.drop_fraction * 100:.1f}%",
            f"{r.saturated_fraction * 100:.1f}%",
            "ok" if r.starvation_ok else "VIOLATED",
        ]
        if quantiles:
            row[4:4] = [
                _fmt_quantile(r.response_p50_us),
                _fmt_quantile(r.response_p95_us),
                _fmt_quantile(r.response_p99_us),
            ]
        table_rows.append(row)
    headers = [
        "policy",
        "rate/s",
        "response",
        "slowdown",
        "avg queue",
        "thruput/s",
        "drops",
        "bus sat",
        "starvation",
    ]
    if quantiles:
        headers[4:4] = ["p50", "p95", "p99"]
    return format_table(
        headers,
        table_rows,
        title="DYN-1: open-system sweep — arrival rate × policy",
    )
