"""FIG-2A / FIG-2B / FIG-2C: policy evaluation against the Linux scheduler.

The paper's three workload sets, each at multiprogramming degree two (eight
active threads on four processors):

* **Set A** — 2 × target application (2 threads each) + 4 × BBMA: policies
  on an already-saturated bus.
* **Set B** — 2 × target + 4 × nBBMA: policies when innocuous low-bandwidth
  partners are available.
* **Set C** — 2 × target + 2 × BBMA + 2 × nBBMA: the mixed environment.

Each workload runs under the stock Linux scheduler and under each policy
(Latest Quantum, Quanta Window by default); the reported number is the
percentage improvement of the arithmetic mean of the two target instances'
turnaround times — exactly Figure 2's metric.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..config import LinuxSchedConfig, MachineConfig, ManagerConfig
from ..core.policies import BandwidthPolicy, LatestQuantumPolicy, QuantaWindowPolicy
from ..errors import ConfigError
from ..metrics.stats import improvement_percent, summarize_improvements
from ..parallel import run_many
from ..workloads.microbench import bbma_spec, nbbma_spec
from ..workloads.suites import PAPER_APPS
from .base import SimulationSpec
from .reporting import format_table

__all__ = [
    "Fig2Cell",
    "Fig2Row",
    "WORKLOAD_SETS",
    "default_policies",
    "run_fig2",
    "format_fig2",
]

#: The three workload sets: name → background microbenchmark factory list.
WORKLOAD_SETS: dict[str, tuple[str, ...]] = {
    "A": ("BBMA", "BBMA", "BBMA", "BBMA"),
    "B": ("nBBMA", "nBBMA", "nBBMA", "nBBMA"),
    "C": ("BBMA", "BBMA", "nBBMA", "nBBMA"),
}


def _background(set_name: str) -> list:
    try:
        kinds = WORKLOAD_SETS[set_name]
    except KeyError:
        raise ConfigError(
            f"unknown workload set {set_name!r}; known: {', '.join(WORKLOAD_SETS)}"
        ) from None
    return [bbma_spec() if k == "BBMA" else nbbma_spec() for k in kinds]


def default_policies(manager: ManagerConfig) -> list[BandwidthPolicy]:
    """The paper's two policies, configured from the manager settings."""
    return [
        LatestQuantumPolicy(fitness_scale=manager.fitness_scale),
        QuantaWindowPolicy(
            window_length=manager.window_length, fitness_scale=manager.fitness_scale
        ),
    ]


@dataclass(frozen=True)
class Fig2Cell:
    """One (application, policy) measurement within a workload set.

    Attributes
    ----------
    policy:
        Policy name.
    turnaround_us:
        Mean turnaround of the two target instances under the policy.
    improvement_percent:
        Improvement over the Linux baseline (Figure 2's y-axis).
    """

    policy: str
    turnaround_us: float
    improvement_percent: float


@dataclass(frozen=True)
class Fig2Row:
    """One application's results within a workload set.

    Attributes
    ----------
    name:
        Application name.
    linux_turnaround_us:
        Mean target turnaround under the stock Linux scheduler.
    cells:
        Per-policy outcomes.
    """

    name: str
    linux_turnaround_us: float
    cells: tuple[Fig2Cell, ...]

    def improvement(self, policy: str) -> float:
        """Improvement percentage of a policy by name."""
        for cell in self.cells:
            if cell.policy == policy:
                return cell.improvement_percent
        raise KeyError(policy)


def run_fig2(
    set_name: str,
    machine: MachineConfig | None = None,
    manager: ManagerConfig | None = None,
    linux: LinuxSchedConfig | None = None,
    policies: list[BandwidthPolicy] | None = None,
    seed: int = 42,
    work_scale: float = 1.0,
    apps: list[str] | None = None,
    jobs: int | None = 1,
    progress=None,
) -> list[Fig2Row]:
    """Run one workload set (A, B or C) for every application.

    Returns one row per application with the Linux baseline and each
    policy's improvement. ``policies`` instances are *templates*: a fresh
    copy (same class and parameters) is used per run so estimator state
    never leaks across workloads. The whole (application × scheduler)
    grid is dispatched through :func:`repro.parallel.run_many`; ``jobs``
    and ``progress`` are forwarded to it, and results are identical for
    any job count.
    """
    machine = machine or MachineConfig()
    manager = manager or ManagerConfig()
    linux = linux or LinuxSchedConfig()
    names = apps if apps is not None else list(PAPER_APPS)
    templates = policies if policies is not None else default_policies(manager)

    # Flatten the grid: per application, one Linux baseline plus one run
    # per policy, in a fixed order we reassemble below.
    specs: list[SimulationSpec] = []
    policy_names: list[list[str]] = []
    for name in names:
        app_spec = PAPER_APPS[name].scaled(work_scale)
        base_spec = SimulationSpec(
            targets=[app_spec, app_spec],
            background=_background(set_name),
            scheduler="linux",
            machine=machine,
            manager=manager,
            linux=linux,
            seed=seed,
        )
        specs.append(base_spec)
        per_app = []
        for policy_template in templates:
            policy = _fresh_policy(policy_template)
            specs.append(replace_scheduler(base_spec, policy))
            per_app.append(policy.name)
        policy_names.append(per_app)

    results = run_many(specs, jobs=jobs, progress=progress)

    rows: list[Fig2Row] = []
    stride = 1 + len(templates)
    for row_i, name in enumerate(names):
        chunk = results[row_i * stride : (row_i + 1) * stride]
        linux_t = chunk[0].mean_target_turnaround_us()
        cells = []
        for policy_name, result in zip(policy_names[row_i], chunk[1:]):
            t = result.mean_target_turnaround_us()
            cells.append(
                Fig2Cell(
                    policy=policy_name,
                    turnaround_us=t,
                    improvement_percent=improvement_percent(linux_t, t),
                )
            )
        rows.append(Fig2Row(name=name, linux_turnaround_us=linux_t, cells=tuple(cells)))
    return rows


def _fresh_policy(template: BandwidthPolicy) -> BandwidthPolicy:
    """Clone a policy template so estimator state never crosses runs."""
    from ..core.policies import EwmaPolicy, OraclePolicy  # avoid import cycle noise
    from ..core.policies_model import ModelDrivenPolicy

    shared = dict(
        bus_capacity_txus=template.bus_capacity_txus,
        fitness_fn=template._fitness_fn,
        fitness_scale=template._fitness_scale,
        incremental=template.incremental,
    )
    if isinstance(template, ModelDrivenPolicy):  # before its QuantaWindow base
        return ModelDrivenPolicy(
            model=template.model,
            idle_penalty=template.idle_penalty,
            fairness_weight=template.fairness_weight,
            saturation_inflation=template.saturation_inflation,
            use_peak=template.use_peak,
            window_length=template.window_length,
            **shared,
        )
    if isinstance(template, QuantaWindowPolicy):
        return QuantaWindowPolicy(window_length=template.window_length, **shared)
    if isinstance(template, EwmaPolicy):
        return EwmaPolicy(alpha=template.alpha, **shared)
    if isinstance(template, OraclePolicy):
        return OraclePolicy(true_rates=dict(template._true), **shared)
    # LatestQuantum, RandomGang, and other stateless-constructor policies.
    return type(template)(**shared)


def replace_scheduler(spec: SimulationSpec, policy: BandwidthPolicy) -> SimulationSpec:
    """Copy a simulation spec with a policy scheduler substituted."""
    return replace(spec, scheduler=policy)


def format_fig2(set_name: str, rows: list[Fig2Row]) -> str:
    """Render one workload set as Figure 2 does (improvement % per policy)."""
    if not rows:
        raise ConfigError("no rows to format")
    policy_names = [c.policy for c in rows[0].cells]
    table_rows = []
    for row in rows:
        table_rows.append(
            [row.name]
            + [f"{row.improvement(p):+.1f}%" for p in policy_names]
        )
    summaries = {
        p: summarize_improvements([r.improvement(p) for r in rows]) for p in policy_names
    }
    header = {
        "A": "2 Apps (2 threads each) + 4 BBMA",
        "B": "2 Apps (2 threads each) + 4 nBBMA",
        "C": "2 Apps (2 threads each) + 2 BBMA + 2 nBBMA",
    }.get(set_name, set_name)
    body = format_table(
        ["app"] + [f"{p} impr." for p in policy_names],
        table_rows,
        title=f"FIG-2{set_name}: {header} — avg turnaround improvement vs Linux",
    )
    tail = "\n".join(f"  {p}: {summaries[p]}" for p in policy_names)
    return body + "\n" + tail
