"""Automated paper-vs-measured validation: one command, one verdict table.

Every quantitative claim the paper makes is encoded as a
:class:`Claim` with an acceptance band; :func:`run_validation` regenerates
the relevant experiments and scores each claim PASS / SHAPE / MISS:

* **PASS** — the measured value lies inside the paper's own band (or
  within the stated tolerance of the paper's value);
* **SHAPE** — the direction/ordering reproduces but the magnitude falls
  outside the band (the documented deviations of EXPERIMENTS.md);
* **MISS** — the claim does not reproduce (a regression gate: this should
  never appear, and the corresponding pytest marks it as a failure).

This is the repository's "am I still reproducing the paper?" smoke test —
``python -m repro validate`` prints the table; the test suite asserts no
MISS at small scale.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import MachineConfig
from .calibration import run_calibration
from .fig1 import run_fig1
from .fig2 import run_fig2
from .reporting import format_table

__all__ = ["Claim", "ClaimResult", "run_validation", "format_validation"]


@dataclass(frozen=True)
class Claim:
    """One quantitative claim from the paper.

    Attributes
    ----------
    claim_id:
        Short identifier ("CAL-stream", "F1B-cg-bbma", ...).
    description:
        The claim in the paper's words (abridged).
    paper_value:
        The number the paper states (or the band midpoint).
    pass_band:
        (lo, hi) — measured values in this range PASS.
    shape_band:
        (lo, hi) — values in this wider range count as SHAPE; outside MISS.
    """

    claim_id: str
    description: str
    paper_value: float
    pass_band: tuple[float, float]
    shape_band: tuple[float, float]


@dataclass(frozen=True)
class ClaimResult:
    """A scored claim."""

    claim: Claim
    measured: float
    verdict: str  # "PASS" | "SHAPE" | "MISS"


def _score(claim: Claim, measured: float) -> ClaimResult:
    lo, hi = claim.pass_band
    slo, shi = claim.shape_band
    if lo <= measured <= hi:
        verdict = "PASS"
    elif slo <= measured <= shi:
        verdict = "SHAPE"
    else:
        verdict = "MISS"
    return ClaimResult(claim=claim, measured=measured, verdict=verdict)


def run_validation(
    work_scale: float = 0.25, seed: int = 42, jobs: int | None = 1
) -> list[ClaimResult]:
    """Regenerate the experiments and score every encoded claim."""
    machine = MachineConfig()
    cal = run_calibration(machine=machine, seed=seed, work_scale=work_scale, jobs=jobs)
    fig1 = {
        r.name: r
        for r in run_fig1(machine=machine, seed=seed, work_scale=work_scale, jobs=jobs)
    }
    fig2 = {
        s: {r.name: r for r in run_fig2(s, seed=seed, work_scale=work_scale, jobs=jobs)}
        for s in ("A", "B", "C")
    }

    def avg_improvement(set_name: str, policy: str) -> float:
        rows = fig2[set_name].values()
        return sum(r.improvement(policy) for r in rows) / len(fig2[set_name])

    moderates = ["Radiosity", "Water-nsqr", "Volrend", "Barnes", "FMM"]
    results: list[ClaimResult] = []
    checks: list[tuple[Claim, float]] = [
        (
            Claim(
                "CAL-stream",
                "STREAM sustains 29.5 tx/us from all processors",
                29.5, (28.6, 30.4), (26.0, 33.0),
            ),
            cal.stream_rate_txus,
        ),
        (
            Claim(
                "CAL-bbma",
                "BBMA performs 23.6 bus transactions/usec",
                23.6, (22.2, 25.0), (20.0, 27.0),
            ),
            cal.bbma_rate_txus,
        ),
        (
            Claim(
                "CAL-solo-low",
                "lowest solo rate 0.48 tx/us (Radiosity)",
                0.48, (0.43, 0.53), (0.3, 0.7),
            ),
            cal.solo_rates_txus["Radiosity"],
        ),
        (
            Claim(
                "CAL-solo-high",
                "highest solo rate 23.31 tx/us (CG)",
                23.31, (21.0, 24.5), (18.0, 26.0),
            ),
            cal.solo_rates_txus["CG"],
        ),
        (
            Claim(
                "F1B-x2-cg",
                "doubling high-bandwidth apps degrades 41-61% (CG)",
                1.51, (1.41, 1.61), (1.25, 1.9),
            ),
            fig1["CG"].slowdowns["x2"],
        ),
        (
            Claim(
                "F1B-bbma-cg",
                "memory-intensive apps slow 2-3x next to BBMA (CG)",
                2.5, (2.0, 3.0), (1.7, 3.5),
            ),
            fig1["CG"].slowdowns["+BBMA"],
        ),
        (
            Claim(
                "F1B-bbma-moderate",
                "moderate apps slow 2-55% next to BBMA (average 18%)",
                1.18, (1.02, 1.55), (1.0, 1.7),
            ),
            sum(fig1[m].slowdowns["+BBMA"] for m in moderates) / len(moderates),
        ),
        (
            Claim(
                "F1B-nbbma",
                "nBBMA leaves execution times almost identical (CG)",
                1.0, (0.98, 1.06), (0.95, 1.15),
            ),
            fig1["CG"].slowdowns["+nBBMA"],
        ),
        (
            Claim(
                "F2A-latest-avg",
                "set A: Latest Quantum improves 41% on average",
                41.0, (25.0, 60.0), (2.0, 70.0),
            ),
            avg_improvement("A", "latest-quantum"),
        ),
        (
            Claim(
                "F2A-window-avg",
                "set A: Quanta Window improves 31% on average",
                31.0, (20.0, 45.0), (2.0, 60.0),
            ),
            avg_improvement("A", "quanta-window"),
        ),
        (
            Claim(
                "F2B-latest-avg",
                "set B: Latest Quantum improves 13% on average",
                13.0, (5.0, 25.0), (0.0, 40.0),
            ),
            avg_improvement("B", "latest-quantum"),
        ),
        (
            Claim(
                "F2B-window-avg",
                "set B: Quanta Window improves 21% on average",
                21.0, (10.0, 32.0), (0.0, 45.0),
            ),
            avg_improvement("B", "quanta-window"),
        ),
        (
            Claim(
                "F2C-latest-avg",
                "set C: Latest Quantum improves 26% on average",
                26.0, (12.0, 40.0), (0.0, 55.0),
            ),
            avg_improvement("C", "latest-quantum"),
        ),
        (
            Claim(
                "F2C-window-avg",
                "set C: Quanta Window improves 25% on average",
                25.0, (12.0, 40.0), (0.0, 55.0),
            ),
            avg_improvement("C", "quanta-window"),
        ),
        (
            Claim(
                "F2-overall",
                "policies improve throughput by 26% in average",
                26.0, (15.0, 40.0), (5.0, 55.0),
            ),
            sum(avg_improvement(s, p) for s in ("A", "B", "C")
                for p in ("latest-quantum", "quanta-window")) / 6.0,
        ),
    ]
    for claim, measured in checks:
        results.append(_score(claim, measured))
    return results


def format_validation(results: list[ClaimResult]) -> str:
    """Render the verdict table."""
    rows = []
    for r in results:
        rows.append(
            [
                r.claim.claim_id,
                r.verdict,
                f"{r.measured:.2f}",
                f"{r.claim.paper_value:.2f}",
                r.claim.description,
            ]
        )
    n_pass = sum(1 for r in results if r.verdict == "PASS")
    n_shape = sum(1 for r in results if r.verdict == "SHAPE")
    n_miss = sum(1 for r in results if r.verdict == "MISS")
    body = format_table(
        ["claim", "verdict", "measured", "paper", "description"],
        rows,
        title="VALIDATION: paper claims vs this reproduction",
    )
    return body + f"\n{n_pass} PASS, {n_shape} SHAPE, {n_miss} MISS of {len(results)} claims"
