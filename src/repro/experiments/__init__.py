"""Experiment harness: configurations → the paper's figures and tables.

* :mod:`repro.experiments.base` — the shared runner turning a workload
  description plus a scheduler choice into a :class:`~repro.metrics.
  accounting.RunResult`.
* :mod:`repro.experiments.calibration` — CAL-1: STREAM capacity and
  per-application solo rates (the Section 3 setup measurements).
* :mod:`repro.experiments.fig1` — FIG-1A and FIG-1B.
* :mod:`repro.experiments.fig2` — FIG-2A, FIG-2B, FIG-2C.
* :mod:`repro.experiments.tables` — TAB-1: the Section 5 headline numbers.
* :mod:`repro.experiments.ablations` — ABL-W/Q/F/A sweeps.
* :mod:`repro.experiments.reporting` — ASCII tables and CSV emission.
"""

from .base import SimulationSpec, run_simulation, run_simulation_with_handle, solo_run

__all__ = [
    "SimulationSpec",
    "run_simulation",
    "run_simulation_with_handle",
    "solo_run",
]
