"""The shared simulation runner.

Everything the figure harnesses need reduces to one call:
:func:`run_simulation` builds a machine, launches target and background
applications, installs the requested scheduler stack (dedicated / Linux /
round-robin gang / a bandwidth policy on top of Linux), runs until every
*target* instance completes, and collects a
:class:`~repro.metrics.accounting.RunResult`.

Background applications (the paper's microbenchmarks) have effectively
unbounded work; the run stops on target completion, matching the paper's
measurement of application turnaround within a steadily multiprogrammed
machine.
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass, field

from .. import audit as audit_mod
from .. import profiling
from ..audit import InvariantAuditor

from ..config import LinuxSchedConfig, MachineConfig, ManagerConfig
from ..core.manager import CpuManager
from ..core.policies import BandwidthPolicy
from ..dynamic.config import DynamicWorkload
from ..dynamic.driver import OpenSystemDriver
from ..errors import ConfigError
from ..faults import FaultInjector, FaultPlan
from ..hw.machine import Machine
from ..metrics.accounting import RunResult, collect_run_result
from ..metrics.timeline import TimelineSampler
from ..rng import RngRegistry
from ..sched.base import KernelScheduler, jobs_from_apps
from ..sched.dedicated import DedicatedScheduler
from ..sched.gang import RoundRobinGangScheduler
from ..sched.linux import LinuxScheduler
from ..sched.linux_o1 import LinuxO1Scheduler
from ..sim.engine import Engine
from ..sim.trace import TraceRecorder
from ..units import seconds
from ..workloads.base import Application, ApplicationSpec

__all__ = ["SimulationSpec", "run_simulation", "solo_run", "solo_spec"]


@dataclass
class SimulationSpec:
    """Declarative description of one simulation run.

    Attributes
    ----------
    targets:
        Measured applications (each spec becomes one instance; repeat a
        spec to run two instances, as the paper's workloads do).
    background:
        Microbenchmark instances running for the whole measurement.
    scheduler:
        ``"dedicated"``, ``"linux"`` (the 2.4-like baseline), ``"linux26"``
        (the O(1) scheduler), ``"gang"``, or a
        :class:`~repro.core.policies.BandwidthPolicy` instance (which runs
        inside a CPU manager on top of a kernel scheduler — pick it with
        ``kernel``).
    kernel:
        The kernel substrate under a policy scheduler: ``"linux"`` (2.4,
        the paper's setup) or ``"linux26"``.
    machine:
        Machine configuration (defaults to the paper's 4-way Xeon).
    manager:
        CPU-manager configuration (used when ``scheduler`` is a policy).
    linux:
        Kernel scheduler configuration (used for "linux" and policies).
    seed:
        Root seed for all random streams.
    max_time_us:
        Safety limit on simulated time.
    dedicated_migration_interval_us:
        Optional seeded migration process for dedicated runs (Figure 1's
        occasional kernel rebalances).
    trace:
        Whether to record a trace (cheap; required for switch counting).
    timeline_period_us:
        Bus-utilisation sampling period, or ``None`` to disable.
    arrivals:
        Dynamically arriving jobs, as ``(time_us, spec)`` pairs — the
        open-system mode the paper's CPU manager (a server accepting
        connections at any time) supports. Arriving jobs count as targets
        (the run ends when every target, static or arrived, completes).
        Supported with the ``"linux"`` scheduler and with policies; the
        static ``"dedicated"``/``"gang"`` schedulers reject arrivals.
    profile:
        Activate wall-clock phase timers for this run and attach the
        per-phase snapshot to ``RunResult.profile`` (see
        :mod:`repro.profiling`). Profiling also engages when the
        process-global switch (CLI ``--profile``) is on. Never affects
        simulated results.
    audit:
        Run the invariant auditor alongside this simulation (see
        :mod:`repro.audit`): bus-capacity, allocation, signal-protocol,
        starvation and accounting invariants are checked at every sample
        tick and quantum boundary, and a violation raises
        :class:`~repro.errors.AuditViolation`. The
        :class:`~repro.audit.AuditReport` attaches to
        ``RunResult.audit``. Also engages when the process-global switch
        (CLI ``--audit``) is on. Like profiling, never affects simulated
        results — trajectories are bit-identical either way.
    dynamic:
        An open-system workload (:class:`repro.dynamic.DynamicWorkload`)
        driven alongside — or instead of — the static applications: jobs
        arrive from a stochastic process, queue for admission, and churn
        through the manager. The run ends when the static targets *and*
        every scheduled dynamic job are done; the resulting queueing
        observations attach to ``RunResult.dynamic``. Like ``arrivals``,
        needs a time-sharing scheduler.
    faults:
        A deterministic fault plan (:class:`repro.faults.FaultPlan`)
        injecting PMC noise, signal-delivery faults and application
        failures into the run. Requires a bandwidth-policy scheduler (the
        fault surface — arena samples, manager signals — only exists under
        a CPU manager). A plan with every rate zero is inert: no injector
        is built and the trajectory is bit-identical to ``faults=None``.
        Degradation counters attach to ``RunResult.faults``. Fault draws
        come from dedicated named RNG streams, so results remain
        deterministic per seed and process-safe through ``run_many``.
    """

    targets: list[ApplicationSpec]
    background: list[ApplicationSpec] = field(default_factory=list)
    scheduler: str | BandwidthPolicy = "linux"
    machine: MachineConfig = field(default_factory=MachineConfig)
    manager: ManagerConfig = field(default_factory=ManagerConfig)
    linux: LinuxSchedConfig = field(default_factory=LinuxSchedConfig)
    seed: int = 42
    max_time_us: float = seconds(600)
    dedicated_migration_interval_us: float | None = None
    trace: bool = True
    timeline_period_us: float | None = None
    arrivals: list[tuple[float, ApplicationSpec]] = field(default_factory=list)
    kernel: str = "linux"
    profile: bool = False
    dynamic: DynamicWorkload | None = None
    audit: bool = False
    faults: FaultPlan | None = None

    def spec_hash(self) -> str:
        """Stable content hash of everything that determines the result.

        SHA-256 over the canonical JSON form of the spec
        (:func:`repro.service.schemas.spec_to_dict` +
        :func:`repro.config.canonical_hash`): the same spec hashes
        identically in every process and interpreter run, and changing
        any result-affecting field — an application's demand pattern, a
        solver knob, the seed — produces a new hash. The service result
        cache and the exact-replay guarantees both key on it.

        The ``profile`` and ``audit`` flags are *excluded*: both are
        pure observability with a structural bit-identity guarantee
        (trajectories are identical with them on or off), so an audited
        resubmission of a completed run is still a cache hit. Every
        other field participates — including ``trace`` (switch counting
        needs it) and ``max_time_us`` (a lower limit can abort a run).

        Raises :class:`repro.errors.ConfigError` for specs without a
        wire format (a custom policy subclass or ``fitness_fn``).
        """
        from ..config import canonical_hash
        from ..service.schemas import spec_to_dict

        payload = spec_to_dict(self)
        del payload["profile"], payload["audit"]
        return canonical_hash(payload)


@dataclass
class SimulationHandle:
    """Everything assembled for one run (exposed for tests and examples)."""

    engine: Engine
    machine: Machine
    apps: list[Application]
    target_apps: list[Application]
    kernel: KernelScheduler
    manager: CpuManager | None
    timeline: TimelineSampler | None
    pending_arrivals: int = 0
    dynamic: OpenSystemDriver | None = None
    auditor: InvariantAuditor | None = None
    faults: FaultInjector | None = None


def _make_kernel(name: str, spec: "SimulationSpec") -> KernelScheduler:
    """Kernel substrate factory for policy-managed runs."""
    if name == "linux":
        return LinuxScheduler(spec.linux)
    if name == "linux26":
        return LinuxO1Scheduler()
    raise ConfigError(f"unknown kernel substrate {name!r}")


def _build(spec: SimulationSpec) -> SimulationHandle:
    if not spec.targets and not spec.arrivals and spec.dynamic is None:
        raise ConfigError("a simulation needs at least one target application")
    if (spec.arrivals or spec.dynamic is not None) and spec.scheduler in ("dedicated", "gang"):
        raise ConfigError(
            f"dynamic arrivals need a time-sharing scheduler; "
            f"{spec.scheduler!r} has a static job set"
        )
    faults_on = spec.faults is not None and spec.faults.enabled
    if faults_on and not isinstance(spec.scheduler, BandwidthPolicy):
        raise ConfigError(
            "fault injection requires a bandwidth-policy scheduler: the "
            "fault surface (arena samples, manager signals, quantum "
            "selection) only exists under a CPU manager"
        )
    engine = Engine()
    trace = TraceRecorder(enabled=spec.trace, capacity=200_000)
    machine = Machine(spec.machine, engine, trace)
    if spec.profile or profiling.enabled():
        machine.enable_profiling()
    registry = RngRegistry(spec.seed)
    # App ids are assigned per run (not from the process-global counter):
    # results must be bit-identical no matter which process — or how many
    # prior simulations that process — ran this spec.
    app_ids = itertools.count(1)

    apps: list[Application] = []
    target_apps: list[Application] = []
    for i, app_spec in enumerate(spec.targets):
        app = Application.launch(
            app_spec, machine, registry.stream(f"target{i}.{app_spec.name}"),
            app_id=next(app_ids),
        )
        apps.append(app)
        target_apps.append(app)
    for i, app_spec in enumerate(spec.background):
        apps.append(
            Application.launch(
                app_spec, machine, registry.stream(f"bg{i}.{app_spec.name}"),
                app_id=next(app_ids),
            )
        )

    auditor: InvariantAuditor | None = None
    if spec.audit or audit_mod.enabled():
        auditor = InvariantAuditor(
            machine, engine, bus_capacity_txus=spec.machine.bus.capacity_txus
        )

    # The injector is only built for plans that actually inject: a
    # zero-rate plan leaves every fault hook unarmed, which is what makes
    # the bit-identity guarantee structural rather than probabilistic.
    injector: FaultInjector | None = None
    if faults_on:
        injector = FaultInjector(spec.faults, registry)

    manager: CpuManager | None = None
    kernel: KernelScheduler
    if isinstance(spec.scheduler, BandwidthPolicy):
        kernel = _make_kernel(spec.kernel, spec)
        manager = CpuManager(
            spec.manager, spec.scheduler, kernel, auditor=auditor, faults=injector
        )
    elif spec.scheduler == "linux":
        kernel = LinuxScheduler(spec.linux)
    elif spec.scheduler == "linux26":
        kernel = LinuxO1Scheduler()
    elif spec.scheduler == "dedicated":
        kernel = DedicatedScheduler(spec.dedicated_migration_interval_us)
    elif spec.scheduler == "gang":
        kernel = RoundRobinGangScheduler(jobs_from_apps(apps), spec.manager.quantum_us)
    else:
        raise ConfigError(f"unknown scheduler {spec.scheduler!r}")

    kernel.attach(machine, engine, registry.stream("kernel"))
    if manager is not None:
        manager.attach(machine, engine, registry.stream("manager"))
        manager.register_apps(apps)

    if injector is not None:
        # Application faults cover the statically launched set (arrived /
        # dynamic jobs churn too fast for per-app failure processes to be
        # meaningful); targets are immune by default so the degradation
        # metric — target turnaround — measures scheduling quality under
        # faults, not the faults killing the measured job itself.
        immune = (
            {a.app_id for a in target_apps} if spec.faults.targets_immune else None
        )
        injector.schedule_app_faults(engine, machine, apps, immune_ids=immune)

    if auditor is not None and manager is None:
        # Kernel-only runs have no manager hooks to ride; audit the bus
        # and engine ledger on a periodic observer tick instead.
        auditor.start_periodic(spec.manager.sample_period_us)

    timeline: TimelineSampler | None = None
    if spec.timeline_period_us is not None:
        timeline = TimelineSampler(machine, engine, spec.timeline_period_us)

    handle = SimulationHandle(
        engine=engine,
        machine=machine,
        apps=apps,
        target_apps=target_apps,
        kernel=kernel,
        manager=manager,
        timeline=timeline,
        auditor=auditor,
        faults=injector,
    )

    # Dynamic arrivals: each fires an engine event that launches the
    # instance, connects it to the CPU manager (if any), and counts it as
    # a target. `pending_arrivals` keeps the stop predicate from declaring
    # victory before every job has even arrived.
    handle.pending_arrivals = len(spec.arrivals)

    def _arrive(index: int, app_spec: ApplicationSpec) -> None:
        app = Application.launch(
            app_spec, machine, registry.stream(f"arrival{index}.{app_spec.name}"),
            app_id=next(app_ids),
        )
        handle.apps.append(app)
        handle.target_apps.append(app)
        handle.pending_arrivals -= 1
        machine.trace.record(
            machine.now, "workload.arrival", app=app.name, app_id=app.app_id
        )
        if manager is not None:
            manager.register_app(app)
        kernel.on_new_threads()

    for i, (at_us, app_spec) in enumerate(spec.arrivals):
        if at_us < 0:
            raise ConfigError("arrival times must be non-negative")
        engine.schedule_at(at_us, lambda i=i, a=app_spec: _arrive(i, a))

    if spec.dynamic is not None:
        # The watchdog's no-starvation bound scales with the scheduling
        # granularity: the manager quantum when a manager runs, else the
        # kernel's nominal time slice.
        quantum_ref = (
            spec.manager.quantum_us if manager is not None else spec.linux.timeslice_us
        )
        handle.dynamic = OpenSystemDriver(
            spec.dynamic,
            machine,
            engine,
            registry,
            manager,
            kernel,
            app_ids,
            quantum_ref_us=quantum_ref,
            n_static_apps=len(apps),
        )

    return handle


def run_simulation(spec: SimulationSpec) -> RunResult:
    """Run one simulation to target completion and collect results."""
    handle = _build(spec)
    result, _ = run_simulation_with_handle(spec, handle)
    return result


def run_simulation_with_handle(
    spec: SimulationSpec, handle: SimulationHandle | None = None
) -> tuple[RunResult, SimulationHandle]:
    """As :func:`run_simulation`, but also return the live objects.

    Tests and examples use the handle to inspect traces, the arena, or the
    timeline after the run.
    """
    if handle is None:
        handle = _build(spec)
    if handle.timeline is not None:
        handle.timeline.start()
    handle.kernel.start()
    if handle.manager is not None:
        handle.manager.start()
    if handle.dynamic is not None:
        handle.dynamic.start()

    def done() -> bool:
        return (
            handle.pending_arrivals == 0
            and all(app.finished for app in handle.target_apps)
            and (handle.dynamic is None or handle.dynamic.all_done)
        )

    handle.engine.run(advancer=handle.machine, stop=done, max_time=spec.max_time_us)
    if not done():
        raise ConfigError(
            "simulation went quiescent before all targets finished "
            "(deadlock or starvation; check scheduler configuration)"
        )
    if handle.dynamic is not None:
        # Fold admitted dynamic jobs into the per-app accounting (they are
        # not targets: the static figures' turnaround metric is untouched).
        handle.apps.extend(handle.dynamic.launched_apps)
    # First-seen order (not set order, which varies with hash seeding):
    # the result must be identical across processes and interpreter runs.
    target_names = tuple(dict.fromkeys(a.name for a in handle.target_apps))
    result = collect_run_result(handle.machine, handle.apps, target_names)
    if handle.dynamic is not None:
        result = dataclasses.replace(result, dynamic=handle.dynamic.stats())
    if handle.faults is not None:
        result = dataclasses.replace(result, faults=handle.faults.stats())
    if handle.auditor is not None:
        result = dataclasses.replace(result, audit=handle.auditor.finalize())
    if spec.profile or profiling.enabled():
        snapshot = handle.machine.profile_snapshot()
        if handle.manager is not None:
            snapshot.update(handle.manager.policy.selection_profile())
        result = dataclasses.replace(result, profile=snapshot)
        profiling.record(snapshot)
    return result, handle


def solo_spec(
    app_spec: ApplicationSpec,
    machine: MachineConfig | None = None,
    seed: int = 42,
) -> SimulationSpec:
    """Spec for one application alone on dedicated CPUs (Figure 1 baseline)."""
    return SimulationSpec(
        targets=[app_spec],
        background=[],
        scheduler="dedicated",
        machine=machine or MachineConfig(),
        seed=seed,
        trace=False,
    )


def solo_run(
    app_spec: ApplicationSpec,
    machine: MachineConfig | None = None,
    seed: int = 42,
) -> RunResult:
    """Run one application alone on dedicated CPUs (the Figure 1 baseline)."""
    return run_simulation(solo_spec(app_spec, machine=machine, seed=seed))
