"""CSV export of every experiment's raw rows.

Plotting, spreadsheets and downstream analysis want machine-readable data,
not ASCII tables. :func:`export_all` regenerates the experiment suite and
writes one CSV per artefact into a directory:

* ``calibration.csv`` — measurement, simulated value, paper value
* ``fig1a.csv`` / ``fig1b.csv`` — per-application rates / slowdowns
* ``fig2a.csv`` / ``fig2b.csv`` / ``fig2c.csv`` — per-application
  turnarounds and improvements per policy
* ``table1.csv`` — the headline summary with paper reference columns
* ``dynamic.csv`` — the open-system sweep: queueing metrics per
  (policy, arrival rate) operating point
* ``faults.csv`` — the FAULT-1 degradation sweep: retained throughput
  and degradation counters per (policy, fault intensity) point

Each writer takes already-computed results, so callers who have run the
experiments themselves (e.g. at a different scale) can export without
recomputing. All functions return the written path.
"""

from __future__ import annotations

import os

from ..faults import FaultStats
from ..workloads.suites import PAPER_SOLO_RATES
from .calibration import CalibrationResult, run_calibration
from .dynamic import DynamicRow, run_dynamic_sweep
from .faults import FaultRow, run_faults
from .fig1 import FIG1_CONFIGS, Fig1Row, run_fig1
from .fig2 import Fig2Row, run_fig2
from .reporting import format_csv
from .tables import Table1Row, build_table1

__all__ = [
    "export_calibration",
    "export_fig1",
    "export_fig2",
    "export_table1",
    "export_dynamic",
    "export_faults",
    "export_all",
]


def _write(path: str, content: str) -> str:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(content + "\n")
    return path


def export_calibration(result: CalibrationResult, directory: str) -> str:
    """Write ``calibration.csv``."""
    rows = [
        ["stream_txus", result.stream_rate_txus, 29.5],
        ["bbma_txus", result.bbma_rate_txus, 23.6],
        ["nbbma_txus", result.nbbma_rate_txus, 0.0037],
    ]
    for name, rate in result.solo_rates_txus.items():
        rows.append([f"solo_{name.replace(' ', '_')}", rate, PAPER_SOLO_RATES[name]])
    return _write(
        os.path.join(directory, "calibration.csv"),
        format_csv(["measurement", "simulated", "paper"], rows),
    )


def export_fig1(rows: list[Fig1Row], directory: str) -> tuple[str, str]:
    """Write ``fig1a.csv`` and ``fig1b.csv``."""
    a_rows = [[r.name] + [r.rates_txus[c] for c in FIG1_CONFIGS] for r in rows]
    path_a = _write(
        os.path.join(directory, "fig1a.csv"),
        format_csv(["app"] + [f"rate_{c}" for c in FIG1_CONFIGS], a_rows),
    )
    b_rows = [
        [r.name] + [r.slowdowns[c] for c in FIG1_CONFIGS if c != "solo"] for r in rows
    ]
    path_b = _write(
        os.path.join(directory, "fig1b.csv"),
        format_csv(
            ["app"] + [f"slowdown_{c}" for c in FIG1_CONFIGS if c != "solo"], b_rows
        ),
    )
    return path_a, path_b


def export_fig2(set_name: str, rows: list[Fig2Row], directory: str) -> str:
    """Write ``fig2<set>.csv``."""
    policies = [c.policy for c in rows[0].cells] if rows else []
    out_rows = []
    for r in rows:
        row: list = [r.name, r.linux_turnaround_us]
        for p in policies:
            cell = next(c for c in r.cells if c.policy == p)
            row.extend([cell.turnaround_us, cell.improvement_percent])
        out_rows.append(row)
    headers = ["app", "linux_turnaround_us"]
    for p in policies:
        headers.extend([f"{p}_turnaround_us", f"{p}_improvement_pct"])
    return _write(
        os.path.join(directory, f"fig2{set_name.lower()}.csv"),
        format_csv(headers, out_rows),
    )


def export_table1(rows: list[Table1Row], directory: str) -> str:
    """Write ``table1.csv``."""
    out_rows = [
        [
            r.set_name,
            r.policy,
            r.max_percent,
            r.avg_percent,
            r.min_percent,
            r.paper_max_percent if r.paper_max_percent is not None else "",
            r.paper_avg_percent if r.paper_avg_percent is not None else "",
        ]
        for r in rows
    ]
    return _write(
        os.path.join(directory, "table1.csv"),
        format_csv(
            ["set", "policy", "max_pct", "avg_pct", "min_pct", "paper_max_pct", "paper_avg_pct"],
            out_rows,
        ),
    )


def export_dynamic(rows: list[DynamicRow], directory: str) -> str:
    """Write ``dynamic.csv`` (one row per policy × arrival-rate point).

    CI half-widths of ``None`` (too few replications for an error bar)
    export as empty cells, not the string ``"None"``.
    """
    out_rows = [
        [
            r.policy,
            r.rate_per_s,
            r.mean_response_us,
            "" if r.response_ci_us is None else r.response_ci_us,
            r.mean_slowdown,
            "" if r.slowdown_ci is None else r.slowdown_ci,
            r.queue_len_time_avg,
            r.throughput_jobs_per_s,
            r.drop_fraction,
            r.utilization_time_avg,
            r.saturated_fraction,
            r.max_starvation_age_us,
            r.starvation_bound_us,
            "" if r.response_p50_us is None else r.response_p50_us,
            "" if r.response_p95_us is None else r.response_p95_us,
            "" if r.response_p99_us is None else r.response_p99_us,
            int(r.starvation_ok),
        ]
        for r in rows
    ]
    return _write(
        os.path.join(directory, "dynamic.csv"),
        format_csv(
            [
                "policy",
                "rate_per_s",
                "mean_response_us",
                "response_ci_us",
                "mean_slowdown",
                "slowdown_ci",
                "queue_len_time_avg",
                "throughput_jobs_per_s",
                "drop_fraction",
                "utilization_time_avg",
                "saturated_fraction",
                "max_starvation_age_us",
                "starvation_bound_us",
                "response_p50_us",
                "response_p95_us",
                "response_p99_us",
                "starvation_ok",
            ],
            out_rows,
        ),
    )


def export_faults(rows: list[FaultRow], directory: str) -> str:
    """Write ``faults.csv`` (one row per policy × intensity point).

    The degradation counters are flattened alongside the retained
    throughput, so the curve and its causes plot from one file.
    """
    stat_keys = list(FaultStats().to_dict())
    out_rows = [
        [
            row.policy,
            cell.intensity,
            cell.turnaround_us,
            cell.retained_percent,
            int(cell.audit_ok),
        ]
        + [cell.stats.to_dict()[k] for k in stat_keys]
        for row in rows
        for cell in row.cells
    ]
    return _write(
        os.path.join(directory, "faults.csv"),
        format_csv(
            ["policy", "intensity", "turnaround_us", "retained_percent", "audit_ok"]
            + stat_keys,
            out_rows,
        ),
    )


def export_all(
    directory: str, work_scale: float = 1.0, seed: int = 42, jobs: int | None = 1
) -> list[str]:
    """Regenerate the full suite and write every CSV; returns the paths."""
    os.makedirs(directory, exist_ok=True)
    paths: list[str] = []
    paths.append(
        export_calibration(
            run_calibration(seed=seed, work_scale=work_scale, jobs=jobs), directory
        )
    )
    fig1_rows = run_fig1(seed=seed, work_scale=work_scale, jobs=jobs)
    paths.extend(export_fig1(fig1_rows, directory))
    fig2_results = {}
    for set_name in ("A", "B", "C"):
        rows = run_fig2(set_name, seed=seed, work_scale=work_scale, jobs=jobs)
        fig2_results[set_name] = rows
        paths.append(export_fig2(set_name, rows, directory))
    paths.append(export_table1(build_table1(fig2_results), directory))
    dynamic_rows = run_dynamic_sweep(
        rates_per_s=[1.0, 2.0],
        n_jobs=10,
        replications=1,
        seed=seed,
        work_scale=work_scale,
        jobs=jobs,
    )
    paths.append(export_dynamic(dynamic_rows, directory))
    fault_rows = run_faults(
        intensities=(0.0, 0.5, 1.0),
        replications=1,
        seed=seed,
        work_scale=work_scale,
        jobs=jobs,
    )
    paths.append(export_faults(fault_rows, directory))
    return paths
