"""Demand-rate patterns: a thread's unloaded bus-transaction rate over work.

A *pattern* is a reusable, immutable description; calling
:meth:`DemandPattern.bind` produces a per-thread *process* implementing the
:class:`repro.hw.machine.DemandProcess` protocol — ``segment(work) ->
(rate_txus, end_work)`` with piecewise-constant rates keyed by completed
work (standalone-µs). Keying by work rather than wall time makes patterns
physical: an application phase corresponds to a code section, so a slowed
thread stays in its phase proportionally longer, exactly as on real
hardware.

Stochastic patterns draw from a seeded :class:`numpy.random.Generator`
supplied at bind time and generate their segment lists lazily, so two runs
with the same seed see identical demand traces regardless of how the
simulation interleaves queries.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from ..errors import WorkloadError

__all__ = [
    "DemandPattern",
    "ConstantPattern",
    "PhasedPattern",
    "MarkovBurstPattern",
    "JitterPattern",
    "TracePattern",
]


def _eps(work: float) -> float:
    """Relative tolerance for boundary queries at a given work coordinate.

    Queries can land exactly on a segment boundary (the machine advances to
    transitions analytically); a nudge of a few ULPs ensures ``segment``
    always returns the *next* segment with ``end > work``.
    """
    return 1e-9 + 1e-12 * abs(work)


class DemandPattern(ABC):
    """Immutable description of a demand process.

    Subclasses must implement :meth:`bind`; the returned object is consumed
    by exactly one thread.
    """

    @abstractmethod
    def bind(self, rng: np.random.Generator) -> "BoundProcess":
        """Create a per-thread demand process drawing randomness from ``rng``."""

    @abstractmethod
    def mean_rate(self) -> float:
        """The long-run average rate (tx/µs), used for calibration checks."""


class BoundProcess(ABC):
    """Base class of bound per-thread processes."""

    @abstractmethod
    def segment(self, work: float) -> tuple[float, float]:
        """Rate in effect at ``work``, and the work at which it changes next."""


# --------------------------------------------------------------------------- constant


@dataclass(frozen=True)
class ConstantPattern(DemandPattern):
    """A fixed demand rate for the whole execution.

    >>> proc = ConstantPattern(3.0).bind(np.random.default_rng(0))
    >>> proc.segment(0.0)
    (3.0, inf)
    """

    rate_txus: float

    def __post_init__(self) -> None:
        if self.rate_txus < 0:
            raise WorkloadError(f"negative demand rate {self.rate_txus}")

    def bind(self, rng: np.random.Generator) -> BoundProcess:
        return _ConstantProcess(self.rate_txus)

    def mean_rate(self) -> float:
        return self.rate_txus


class _ConstantProcess(BoundProcess):
    __slots__ = ("_rate",)

    def __init__(self, rate: float) -> None:
        self._rate = rate

    def segment(self, work: float) -> tuple[float, float]:
        return (self._rate, math.inf)


# --------------------------------------------------------------------------- phased


@dataclass(frozen=True)
class PhasedPattern(DemandPattern):
    """A deterministic cycle of (work-length, rate) phases.

    Models regular compute/communicate structure (e.g. the NAS solvers:
    sweeps alternating with exchanges). The phase list repeats until the
    thread's work is exhausted.

    Parameters
    ----------
    phases:
        Tuple of ``(work_us, rate_txus)`` pairs; lengths are per cycle.

    >>> p = PhasedPattern(((100.0, 1.0), (50.0, 10.0)))
    >>> round(p.mean_rate(), 2)
    4.0
    """

    phases: tuple[tuple[float, float], ...]

    def __post_init__(self) -> None:
        if not self.phases:
            raise WorkloadError("PhasedPattern needs at least one phase")
        for length, rate in self.phases:
            if length <= 0:
                raise WorkloadError(f"phase length must be positive, got {length}")
            if rate < 0:
                raise WorkloadError(f"negative phase rate {rate}")

    def bind(self, rng: np.random.Generator) -> BoundProcess:
        return _PhasedProcess(self.phases)

    def mean_rate(self) -> float:
        total = sum(length for length, _ in self.phases)
        weighted = sum(length * rate for length, rate in self.phases)
        return weighted / total

    @property
    def cycle_work(self) -> float:
        """Work per full cycle through the phase list."""
        return sum(length for length, _ in self.phases)


class _PhasedProcess(BoundProcess):
    __slots__ = ("_phases", "_cycle", "_starts")

    def __init__(self, phases: tuple[tuple[float, float], ...]) -> None:
        self._phases = phases
        self._cycle = sum(length for length, _ in phases)
        starts = []
        acc = 0.0
        for length, _ in phases:
            starts.append(acc)
            acc += length
        self._starts = starts

    def segment(self, work: float) -> tuple[float, float]:
        if work < 0:
            raise WorkloadError(f"negative work query {work}")
        probe = work + _eps(work)  # land queries at boundaries in the next phase
        n_cycles = math.floor(probe / self._cycle)
        base = n_cycles * self._cycle
        offset = probe - base
        # Guard against float landing exactly on the cycle boundary.
        if offset >= self._cycle:
            base += self._cycle
            offset -= self._cycle
        for idx in range(len(self._phases) - 1, -1, -1):
            if offset >= self._starts[idx]:
                length, rate = self._phases[idx]
                end = base + self._starts[idx] + length
                if end <= work:  # pathological rounding: skip forward
                    return self.segment(work + 2 * _eps(work))
                return (rate, end)
        # Unreachable: offset >= 0 == starts[0].
        raise AssertionError("phase lookup failed")


# --------------------------------------------------------------------------- markov burst


@dataclass(frozen=True)
class MarkovBurstPattern(DemandPattern):
    """A two-state (low/high) demand process with exponential dwell times.

    Models irregular applications — the paper singles out Raytrace and LU
    as having "highly irregular bus transactions patterns" that destabilize
    the Latest Quantum policy. State dwell times are exponentially
    distributed in *work*, so the trace is deterministic per seed.

    Parameters
    ----------
    low_rate_txus / high_rate_txus:
        Demand in the two states.
    mean_low_work_us / mean_high_work_us:
        Mean dwell work per state.
    start_high:
        Initial state.
    """

    low_rate_txus: float
    high_rate_txus: float
    mean_low_work_us: float
    mean_high_work_us: float
    start_high: bool = False

    def __post_init__(self) -> None:
        if self.low_rate_txus < 0 or self.high_rate_txus < 0:
            raise WorkloadError("negative rate in MarkovBurstPattern")
        if self.mean_low_work_us <= 0 or self.mean_high_work_us <= 0:
            raise WorkloadError("dwell means must be positive")
        if self.high_rate_txus < self.low_rate_txus:
            raise WorkloadError("high_rate must be >= low_rate")

    def bind(self, rng: np.random.Generator) -> BoundProcess:
        return _MarkovProcess(self, rng)

    def mean_rate(self) -> float:
        total = self.mean_low_work_us + self.mean_high_work_us
        return (
            self.low_rate_txus * self.mean_low_work_us
            + self.high_rate_txus * self.mean_high_work_us
        ) / total


class _MarkovProcess(BoundProcess):
    __slots__ = ("_pat", "_rng", "_ends", "_rates", "_idx")

    def __init__(self, pattern: MarkovBurstPattern, rng: np.random.Generator) -> None:
        self._pat = pattern
        self._rng = rng
        self._ends: list[float] = []
        self._rates: list[float] = []
        self._idx = 0
        self._extend(pattern.start_high, 0.0)

    def _extend(self, high: bool, from_work: float) -> None:
        pat = self._pat
        mean = pat.mean_high_work_us if high else pat.mean_low_work_us
        dwell = float(self._rng.exponential(mean))
        dwell = max(dwell, 1e-3)  # avoid zero-length segments
        self._ends.append(from_work + dwell)
        self._rates.append(pat.high_rate_txus if high else pat.low_rate_txus)

    def segment(self, work: float) -> tuple[float, float]:
        if work < 0:
            raise WorkloadError(f"negative work query {work}")
        # Fast path: queries are (almost always) monotone.
        if self._idx > 0 and work < self._ends[self._idx - 1]:
            # Rewind for a non-monotone query (tests do this).
            self._idx = 0
        while work + _eps(work) >= self._ends[self._idx]:
            if self._idx == len(self._ends) - 1:
                last_high = self._rates[-1] == self._pat.high_rate_txus
                self._extend(not last_high, self._ends[-1])
            self._idx += 1
        return (self._rates[self._idx], self._ends[self._idx])


# --------------------------------------------------------------------------- jitter


@dataclass(frozen=True)
class JitterPattern(DemandPattern):
    """A base rate with uniform multiplicative noise per work chunk.

    Every ``chunk_work_us`` of completed work redraws the rate uniformly in
    ``[base·(1-jitter), base·(1+jitter)]``. Used to keep "constant" apps
    from being unrealistically flat (real counters never are).
    """

    base_rate_txus: float
    jitter: float = 0.1
    chunk_work_us: float = 10_000.0

    def __post_init__(self) -> None:
        if self.base_rate_txus < 0:
            raise WorkloadError("negative base rate")
        if not 0 <= self.jitter < 1:
            raise WorkloadError("jitter must be in [0, 1)")
        if self.chunk_work_us <= 0:
            raise WorkloadError("chunk work must be positive")

    def bind(self, rng: np.random.Generator) -> BoundProcess:
        return _JitterProcess(self, rng)

    def mean_rate(self) -> float:
        return self.base_rate_txus


class _JitterProcess(BoundProcess):
    __slots__ = ("_pat", "_rng", "_rates", "_chunk")

    def __init__(self, pattern: JitterPattern, rng: np.random.Generator) -> None:
        self._pat = pattern
        self._rng = rng
        self._rates: list[float] = []
        self._chunk = pattern.chunk_work_us

    def _rate_for(self, idx: int) -> float:
        while len(self._rates) <= idx:
            u = float(self._rng.uniform(-1.0, 1.0))
            self._rates.append(self._pat.base_rate_txus * (1.0 + self._pat.jitter * u))
        return self._rates[idx]

    def segment(self, work: float) -> tuple[float, float]:
        if work < 0:
            raise WorkloadError(f"negative work query {work}")
        probe = work + _eps(work)
        idx = int(probe // self._chunk)
        end = (idx + 1) * self._chunk
        if end <= work:  # pathological rounding: skip to the next chunk
            idx += 1
            end = (idx + 1) * self._chunk
        return (self._rate_for(idx), end)


# --------------------------------------------------------------------------- trace


@dataclass(frozen=True)
class TracePattern(DemandPattern):
    """Replay a recorded demand trace (bring your own measurements).

    Characterize a real application by sampling its bus-transaction
    counters (exactly what the CPU manager's arena collects), convert the
    samples into ``(work_us, rate_txus)`` segments, and the simulator will
    replay them. The trace is played once; after the last segment the rate
    holds at ``tail_rate`` (default: the last segment's rate), so traces
    shorter than the thread's work stay well-defined.

    Parameters
    ----------
    segments:
        Tuple of ``(work_us, rate_txus)``: rate over each consecutive
        work interval.
    tail_rate_txus:
        Rate after the trace is exhausted (``None`` → last segment's).

    >>> t = TracePattern(((100.0, 2.0), (50.0, 8.0)))
    >>> proc = t.bind(np.random.default_rng(0))
    >>> proc.segment(0.0)
    (2.0, 100.0)
    >>> proc.segment(120.0)
    (8.0, 150.0)
    >>> proc.segment(1000.0)[0]  # tail
    8.0
    """

    segments: tuple[tuple[float, float], ...]
    tail_rate_txus: float | None = None

    def __post_init__(self) -> None:
        if not self.segments:
            raise WorkloadError("TracePattern needs at least one segment")
        for length, rate in self.segments:
            if length <= 0:
                raise WorkloadError(f"trace segment length must be positive, got {length}")
            if rate < 0:
                raise WorkloadError(f"negative trace rate {rate}")
        if self.tail_rate_txus is not None and self.tail_rate_txus < 0:
            raise WorkloadError("negative tail rate")

    @classmethod
    def from_counter_samples(
        cls,
        samples: "list[tuple[float, float]]",
        tail_rate_txus: float | None = None,
    ) -> "TracePattern":
        """Build a trace from cumulative counter samples.

        ``samples`` are ``(runtime_us, cumulative_transactions)`` pairs as
        read from a per-thread counter (monotone in both coordinates); the
        differences become the trace segments. Work is approximated by
        runtime — exact when the recording ran unloaded, conservative
        otherwise.
        """
        if len(samples) < 2:
            raise WorkloadError("need at least two counter samples")
        segments: list[tuple[float, float]] = []
        for (t0, c0), (t1, c1) in zip(samples, samples[1:]):
            dt = t1 - t0
            dc = c1 - c0
            if dt <= 0 or dc < 0:
                raise WorkloadError("counter samples must be strictly increasing in time")
            segments.append((dt, dc / dt))
        return cls(segments=tuple(segments), tail_rate_txus=tail_rate_txus)

    def bind(self, rng: np.random.Generator) -> BoundProcess:
        return _TraceProcess(self)

    def mean_rate(self) -> float:
        total = sum(length for length, _ in self.segments)
        weighted = sum(length * rate for length, rate in self.segments)
        return weighted / total

    @property
    def trace_work_us(self) -> float:
        """Total work covered by the recorded trace."""
        return sum(length for length, _ in self.segments)


class _TraceProcess(BoundProcess):
    __slots__ = ("_pat", "_ends", "_rates", "_tail")

    def __init__(self, pattern: TracePattern) -> None:
        self._pat = pattern
        ends = []
        rates = []
        acc = 0.0
        for length, rate in pattern.segments:
            acc += length
            ends.append(acc)
            rates.append(rate)
        self._ends = ends
        self._rates = rates
        self._tail = (
            pattern.tail_rate_txus
            if pattern.tail_rate_txus is not None
            else rates[-1]
        )

    def segment(self, work: float) -> tuple[float, float]:
        if work < 0:
            raise WorkloadError(f"negative work query {work}")
        probe = work + _eps(work)
        if probe >= self._ends[-1]:
            return (self._tail, math.inf)
        # Binary search for the containing segment.
        import bisect

        idx = bisect.bisect_right(self._ends, probe)
        return (self._rates[idx], self._ends[idx])
