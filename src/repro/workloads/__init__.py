"""Workload models: applications, demand patterns, microbenchmarks.

* :mod:`repro.workloads.patterns` — demand-rate processes (constant,
  phased, Markov-burst, jittered) as piecewise-constant functions of work.
* :mod:`repro.workloads.base` — :class:`ApplicationSpec` (a reusable
  description) and :class:`Application` (a running instance whose threads
  are registered with a machine).
* :mod:`repro.workloads.suites` — the paper's eleven NAS / Splash-2
  applications, calibrated to Figure 1A's solo transaction rates.
* :mod:`repro.workloads.microbench` — the BBMA and nBBMA microbenchmarks.
* :mod:`repro.workloads.stream` — the STREAM capacity probe.
* :mod:`repro.workloads.synth` — randomized workload generation for
  property tests and ablations.
"""

from .base import Application, ApplicationSpec
from .microbench import bbma_spec, nbbma_spec
from .patterns import (
    ConstantPattern,
    DemandPattern,
    JitterPattern,
    MarkovBurstPattern,
    PhasedPattern,
    TracePattern,
)
from .stream import stream_spec
from .suites import PAPER_APPS, paper_app, paper_app_names

__all__ = [
    "Application",
    "ApplicationSpec",
    "ConstantPattern",
    "DemandPattern",
    "JitterPattern",
    "MarkovBurstPattern",
    "PhasedPattern",
    "TracePattern",
    "PAPER_APPS",
    "paper_app",
    "paper_app_names",
    "bbma_spec",
    "nbbma_spec",
    "stream_spec",
]
