"""Application specifications and running instances.

An :class:`ApplicationSpec` is a reusable, immutable description of a
(parallel) program: thread count, per-thread work, demand pattern, cache
footprint, migration sensitivity. :class:`Application` is one *instance* of
a spec whose threads have been registered with a :class:`~repro.hw.machine.
Machine`; experiment workloads are lists of instances (the paper runs two
instances of the target application side by side).

Thread-level demand: the paper reports *cumulative* rates for two-thread
runs in Figure 1A; specs store the per-thread pattern, so a spec built from
a paper figure divides the cumulative rate by the thread count (see
:mod:`repro.workloads.suites`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

import numpy as np

from ..errors import WorkloadError
from .patterns import DemandPattern

if TYPE_CHECKING:  # pragma: no cover
    from ..hw.machine import Machine, ThreadState

__all__ = ["ApplicationSpec", "Application"]

_instance_counter = itertools.count(1)


@dataclass(frozen=True)
class ApplicationSpec:
    """Reusable description of a parallel application.

    Attributes
    ----------
    name:
        Human-readable name ("CG", "Raytrace", "BBMA", ...).
    n_threads:
        Number of threads an instance spawns (paper applications: 2;
        microbenchmarks: 1).
    work_per_thread_us:
        Solo execution time of each thread on an unloaded machine, in µs
        (the unit of work).
    pattern:
        Per-thread demand pattern (unloaded tx/µs as a function of work).
    footprint_lines:
        Working-set size in cache lines. Larger than the L2 for streaming
        codes (never warm), smaller for cache-resident ones.
    migration_sensitivity:
        Extra rebuild-debt multiplier applied on cross-CPU migration;
        models codes whose performance depends on accumulated cache state
        (paper: LU CB with its 99.53 % hit ratio, Water-nsqr).
    io_interval_work_us:
        Work between I/O waits per thread, or ``None`` for CPU-bound codes
        (all of the paper's applications). Enables the paper's future-work
        "I/O and network-intensive workloads".
    io_duration_us:
        Duration of each I/O wait (the thread releases its CPU).
    """

    name: str
    n_threads: int
    work_per_thread_us: float
    pattern: DemandPattern
    footprint_lines: float = 4096.0
    migration_sensitivity: float = 0.0
    io_interval_work_us: float | None = None
    io_duration_us: float = 0.0

    def __post_init__(self) -> None:
        if self.n_threads < 1:
            raise WorkloadError(f"{self.name!r}: need at least one thread")
        if self.work_per_thread_us <= 0:
            raise WorkloadError(f"{self.name!r}: work must be positive")
        if self.footprint_lines < 0:
            raise WorkloadError(f"{self.name!r}: negative footprint")
        if self.migration_sensitivity < 0:
            raise WorkloadError(f"{self.name!r}: negative migration sensitivity")
        if self.io_interval_work_us is not None and self.io_interval_work_us <= 0:
            raise WorkloadError(f"{self.name!r}: io interval must be positive")
        if self.io_duration_us < 0:
            raise WorkloadError(f"{self.name!r}: negative io duration")

    @property
    def solo_rate_txus(self) -> float:
        """Mean unloaded tx/µs of the whole application (all threads)."""
        return self.pattern.mean_rate() * self.n_threads

    @property
    def per_thread_rate_txus(self) -> float:
        """Mean unloaded tx/µs of one thread."""
        return self.pattern.mean_rate()

    def scaled(self, work_scale: float) -> "ApplicationSpec":
        """A copy with per-thread work multiplied by ``work_scale``.

        Benchmarks use this to shrink experiments while preserving rates.
        """
        if work_scale <= 0:
            raise WorkloadError("work_scale must be positive")
        return replace(self, work_per_thread_us=self.work_per_thread_us * work_scale)


@dataclass
class Application:
    """One running instance of a spec, bound to a machine.

    Attributes
    ----------
    spec:
        The application description.
    app_id:
        Unique instance id (assigned at creation).
    threads:
        The instance's :class:`~repro.hw.machine.ThreadState` objects.
    """

    spec: ApplicationSpec
    app_id: int
    threads: list["ThreadState"] = field(default_factory=list)

    @classmethod
    def launch(
        cls,
        spec: ApplicationSpec,
        machine: "Machine",
        rng: np.random.Generator,
        instance_tag: str | None = None,
        app_id: int | None = None,
    ) -> "Application":
        """Create an instance of ``spec`` and register its threads.

        Each thread binds its own demand process (bursty patterns get
        independent but seed-deterministic traces).

        ``app_id`` defaults to a process-global counter; callers that need
        run-deterministic ids (the experiment harness, so results are
        bit-identical no matter which worker process runs the simulation)
        pass an explicit per-run id instead. Ids must be unique within a
        machine.
        """
        if app_id is None:
            app_id = next(_instance_counter)
        app = cls(spec=spec, app_id=app_id)
        tag = instance_tag or f"{spec.name}#{app_id}"
        for i in range(spec.n_threads):
            process = spec.pattern.bind(rng)
            state = machine.add_thread(
                name=f"{tag}.t{i}",
                demand=process,
                work_total=spec.work_per_thread_us,
                app_id=app_id,
                footprint_lines=spec.footprint_lines,
                migration_sensitivity=spec.migration_sensitivity,
                io_interval_work_us=spec.io_interval_work_us,
                io_duration_us=spec.io_duration_us,
            )
            app.threads.append(state)
        return app

    @property
    def name(self) -> str:
        """The spec name."""
        return self.spec.name

    @property
    def n_threads(self) -> int:
        """Thread count of the instance."""
        return self.spec.n_threads

    @property
    def tids(self) -> list[int]:
        """Thread ids of the instance."""
        return [t.tid for t in self.threads]

    @property
    def finished(self) -> bool:
        """Whether every thread has completed."""
        return all(t.finished for t in self.threads)

    @property
    def turnaround_us(self) -> float | None:
        """Completion time of the last thread, or ``None`` if unfinished.

        All threads start at t=0 in the experiments, so this equals the
        turnaround time the paper reports.
        """
        if not self.finished:
            return None
        return max(t.finished_at for t in self.threads)  # type: ignore[type-var]

    def blocked(self) -> bool:
        """Whether the instance is currently blocked (any thread blocked).

        The CPU manager blocks and unblocks whole applications; mixed
        states exist only transiently while signals are in flight.
        """
        return any(t.blocked for t in self.threads)
