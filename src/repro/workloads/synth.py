"""Randomized workload generation for property tests and ablations.

:func:`random_spec` draws a structurally valid application spec — any
pattern family, any demand level from near-silent to saturating — from a
seeded generator. Property tests use it to assert scheduler invariants
(no starvation, gang integrity, conservation) over a broad space of
workloads rather than just the paper's eleven applications.
"""

from __future__ import annotations

import numpy as np

from .base import ApplicationSpec
from .patterns import (
    ConstantPattern,
    DemandPattern,
    JitterPattern,
    MarkovBurstPattern,
    PhasedPattern,
)

__all__ = ["random_pattern", "random_spec", "random_workload"]


def random_pattern(rng: np.random.Generator, max_rate: float = 24.0) -> DemandPattern:
    """Draw a random demand pattern with mean rate in ``(0, max_rate]``."""
    kind = rng.integers(0, 4)
    mean = float(rng.uniform(0.01, max_rate))
    if kind == 0:
        return ConstantPattern(mean)
    if kind == 1:
        return JitterPattern(
            mean,
            jitter=float(rng.uniform(0.0, 0.4)),
            chunk_work_us=float(rng.uniform(1_000.0, 50_000.0)),
        )
    if kind == 2:
        swing = float(rng.uniform(1.1, 2.0))
        hi = mean * swing
        lo_work = float(rng.uniform(5_000.0, 60_000.0))
        hi_work = float(rng.uniform(5_000.0, 60_000.0))
        total = lo_work + hi_work
        lo = max(0.0, (mean * total - hi * hi_work) / lo_work)
        return PhasedPattern(((lo_work, lo), (hi_work, hi)))
    hi = float(mean * rng.uniform(1.2, 2.5))
    frac_hi = float(rng.uniform(0.1, 0.6))
    lo = max(0.0, (mean - hi * frac_hi) / (1.0 - frac_hi))
    dwell = float(rng.uniform(10_000.0, 80_000.0))
    return MarkovBurstPattern(
        low_rate_txus=lo,
        high_rate_txus=max(hi, lo),
        mean_low_work_us=dwell * (1.0 - frac_hi),
        mean_high_work_us=dwell * frac_hi,
    )


def random_spec(
    rng: np.random.Generator,
    name: str = "synthetic",
    max_threads: int = 4,
    max_rate: float = 24.0,
    work_range_us: tuple[float, float] = (50_000.0, 500_000.0),
) -> ApplicationSpec:
    """Draw a random but valid application spec."""
    return ApplicationSpec(
        name=name,
        n_threads=int(rng.integers(1, max_threads + 1)),
        work_per_thread_us=float(rng.uniform(*work_range_us)),
        pattern=random_pattern(rng, max_rate=max_rate),
        footprint_lines=float(rng.uniform(256.0, 8192.0)),
        migration_sensitivity=float(rng.uniform(0.0, 4.0)),
    )


def random_workload(
    rng: np.random.Generator,
    n_apps: int,
    n_cpus: int = 4,
    **spec_kwargs,
) -> list[ApplicationSpec]:
    """Draw ``n_apps`` random specs, each fitting within ``n_cpus`` threads.

    Gang policies refuse applications wider than the machine, so generated
    specs never exceed the CPU count.
    """
    return [
        random_spec(rng, name=f"synthetic{i}", max_threads=n_cpus, **spec_kwargs)
        for i in range(n_apps)
    ]
