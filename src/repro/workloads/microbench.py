"""The paper's two microbenchmarks: BBMA and nBBMA.

**BBMA** ("Bus Bandwidth Microbenchmark, Aggressive"): writes column-wise
through a two-dimensional array twice the size of the Xeon's L2 cache, one
element per cache line, so every access misses — ~0 % hit rate, back-to-back
memory traffic, 23.6 bus transactions/µs on the paper's platform. It is the
saturating antagonist of experiment sets A and C.

**nBBMA** ("non-Bus-Bandwidth Microbenchmark"): walks an array half the L2
size row-wise; after compulsory misses it runs entirely out of cache —
~100 % hit rate, 0.0037 transactions/µs. It is the innocuous partner of
sets B and C.

Both are single-threaded. Their work is effectively unbounded (they run for
as long as the experiment needs them); experiments stop on the *target*
applications' completion, matching the paper's measurement of application
turnaround times within a steadily multiprogrammed machine.
"""

from __future__ import annotations

from ..units import XEON_L2_LINES
from .base import ApplicationSpec
from .patterns import ConstantPattern

__all__ = ["BBMA_RATE_TXUS", "NBBMA_RATE_TXUS", "bbma_spec", "nbbma_spec"]

#: Paper-measured BBMA transaction rate (tx/µs): "In average, it performs
#: 23.6 bus transactions/usec."
BBMA_RATE_TXUS: float = 23.6

#: Paper-measured nBBMA transaction rate (tx/µs): "Its average bus
#: transaction rate is 0.0037 transactions/usec."
NBBMA_RATE_TXUS: float = 0.0037

#: Effectively-unbounded work for background microbenchmarks (µs of solo
#: execution — three orders of magnitude beyond any experiment's horizon).
_UNBOUNDED_WORK_US: float = 1e12


def bbma_spec(work_us: float = _UNBOUNDED_WORK_US) -> ApplicationSpec:
    """The streaming, bus-saturating microbenchmark.

    Its array is twice the L2 size and accessed with ~0 % hit rate, so its
    footprint exceeds the cache (never warm — and it would not matter: it
    is fully memory-bound already).
    """
    return ApplicationSpec(
        name="BBMA",
        n_threads=1,
        work_per_thread_us=work_us,
        pattern=ConstantPattern(BBMA_RATE_TXUS),
        footprint_lines=float(2 * XEON_L2_LINES),
        migration_sensitivity=0.0,
    )


def nbbma_spec(work_us: float = _UNBOUNDED_WORK_US) -> ApplicationSpec:
    """The cache-resident, bus-silent microbenchmark.

    Array half the L2 size, ~100 % hit rate: negligible bus traffic.
    """
    return ApplicationSpec(
        name="nBBMA",
        n_threads=1,
        work_per_thread_us=work_us,
        pattern=ConstantPattern(NBBMA_RATE_TXUS),
        footprint_lines=float(XEON_L2_LINES // 2),
        migration_sensitivity=0.0,
    )
