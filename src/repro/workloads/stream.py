"""The STREAM capacity probe.

The paper calibrates its platform with John McCalpin's STREAM benchmark:
"the practically sustained bandwidth ... is 1797 MB/s when requests are
issued from all processors. The highest bus transactions rate sustained by
STREAM is 29.5 transactions/usec." We model STREAM as one fully streaming
thread per processor; the calibration experiment
(:mod:`repro.experiments.calibration`) runs it and reports the measured
sustained rate, which is what every scheduler and policy in this library
treats as the machine's usable bus capacity.
"""

from __future__ import annotations

from ..units import XEON_L2_LINES
from .base import ApplicationSpec
from .patterns import ConstantPattern

__all__ = ["stream_spec", "STREAM_THREAD_RATE_TXUS"]

#: Unloaded per-thread demand of a STREAM thread (tx/µs). Any value at or
#: above ``capacity / n_cpus`` saturates the bus; the real STREAM kernel
#: streams as fast as one core can, which on the paper's Xeons is the
#: platform streaming ceiling (the same back-to-back rate BBMA reaches).
STREAM_THREAD_RATE_TXUS: float = 23.6


def stream_spec(n_threads: int = 4, work_us: float = 2_000_000.0) -> ApplicationSpec:
    """STREAM with one thread per processor (default: the paper's 4).

    Parameters
    ----------
    n_threads:
        Thread count; the calibration experiment matches it to the machine.
    work_us:
        Per-thread solo work (long enough for the measurement window).
    """
    return ApplicationSpec(
        name="STREAM",
        n_threads=n_threads,
        work_per_thread_us=work_us,
        pattern=ConstantPattern(STREAM_THREAD_RATE_TXUS),
        footprint_lines=float(2 * XEON_L2_LINES),
        migration_sensitivity=0.0,
    )
