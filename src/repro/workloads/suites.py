"""The paper's application suite: eleven NAS / Splash-2 codes.

The paper evaluates with hand-optimized OpenMP codes from the NAS (BT, SP,
MG, CG) and Splash-2 (Radiosity, Water-nsqr, Volrend, Barnes, FMM, LU CB,
Raytrace) suites, each run with two threads. Figure 1A reports their solo
*cumulative* (two-thread) bus transaction rates, ranging from 0.48 to 23.31
tx/µs in the order below. We model each application synthetically with:

* a per-thread demand pattern whose mean equals half the Figure 1A rate,
* a *shape*: constant-with-jitter for the low-demand codes, strongly phased
  for the regular solvers (SP, MG, BT, CG — sweep/exchange structure), and
  two-state Markov bursts for the codes the paper singles out as irregular
  (Raytrace, LU),
* a cache footprint (streaming codes exceed the 256 KB L2; cache-resident
  codes fit comfortably), and
* a migration sensitivity for the very-high-hit-ratio codes the paper
  identifies as migration-sensitive (LU CB at 99.53 % L2 hit rate, and
  Water-nsqr).

The numbers for SP…CG below are read off Figure 1A's bars; the text anchors
the extremes (0.48 and 23.31). Where the figure is ambiguous we keep the
*ordering* exact — every experiment sorts applications by this rate, as the
paper's figures do.
"""

from __future__ import annotations

from ..errors import WorkloadError
from .base import ApplicationSpec
from .patterns import JitterPattern, MarkovBurstPattern, PhasedPattern

__all__ = ["PAPER_APPS", "paper_app", "paper_app_names", "PAPER_SOLO_RATES"]

#: Solo cumulative (2-thread) bus transaction rates, tx/µs, in Figure 1A's
#: increasing order. Extremes are given in the text; interior values are
#: read off the figure.
PAPER_SOLO_RATES: dict[str, float] = {
    "Radiosity": 0.48,
    "Water-nsqr": 0.90,
    "Volrend": 1.80,
    "Barnes": 2.80,
    "FMM": 4.20,
    "LU CB": 5.60,
    "BT": 7.50,
    "SP": 14.00,
    "MG": 17.50,
    "Raytrace": 21.00,
    "CG": 23.31,
}


def _two_phase(mean: float, swing: float, lo_work: float, hi_work: float) -> PhasedPattern:
    """A two-phase cycle with the given mean rate and peak-to-mean swing.

    ``swing`` is the ratio peak/mean; the low phase compensates so the
    work-weighted mean equals ``mean``.
    """
    hi = mean * swing
    total = lo_work + hi_work
    lo = (mean * total - hi * hi_work) / lo_work
    if lo < 0:
        raise WorkloadError("two-phase swing infeasible (negative low rate)")
    return PhasedPattern(((lo_work, lo), (hi_work, hi)))


def _burst(mean: float, hi: float, frac_hi: float, dwell: float) -> MarkovBurstPattern:
    """A two-state burst pattern with the given mean, peak and duty cycle."""
    lo = (mean - hi * frac_hi) / (1.0 - frac_hi)
    if lo < 0:
        raise WorkloadError("burst parameters infeasible (negative low rate)")
    return MarkovBurstPattern(
        low_rate_txus=lo,
        high_rate_txus=hi,
        mean_low_work_us=dwell * (1.0 - frac_hi),
        mean_high_work_us=dwell * frac_hi,
    )


def _apps() -> dict[str, ApplicationSpec]:
    r = PAPER_SOLO_RATES  # cumulative two-thread rates
    half = {k: v / 2.0 for k, v in r.items()}
    return {
        # Low-demand Splash-2 codes: nearly flat traces, modest footprints.
        "Radiosity": ApplicationSpec(
            name="Radiosity",
            n_threads=2,
            work_per_thread_us=1_800_000.0,
            pattern=JitterPattern(half["Radiosity"], jitter=0.15, chunk_work_us=20_000.0),
            footprint_lines=2048.0,
        ),
        "Water-nsqr": ApplicationSpec(
            name="Water-nsqr",
            n_threads=2,
            work_per_thread_us=1_600_000.0,
            pattern=JitterPattern(half["Water-nsqr"], jitter=0.15, chunk_work_us=20_000.0),
            footprint_lines=1536.0,
            migration_sensitivity=3.0,  # paper: very sensitive to migrations
        ),
        "Volrend": ApplicationSpec(
            name="Volrend",
            n_threads=2,
            work_per_thread_us=1_700_000.0,
            pattern=JitterPattern(half["Volrend"], jitter=0.2, chunk_work_us=15_000.0),
            footprint_lines=2560.0,
        ),
        "Barnes": ApplicationSpec(
            name="Barnes",
            n_threads=2,
            work_per_thread_us=2_000_000.0,
            pattern=_two_phase(half["Barnes"], swing=1.8, lo_work=60_000.0, hi_work=20_000.0),
            footprint_lines=3072.0,
        ),
        "FMM": ApplicationSpec(
            name="FMM",
            n_threads=2,
            work_per_thread_us=2_100_000.0,
            pattern=_two_phase(half["FMM"], swing=1.7, lo_work=50_000.0, hi_work=25_000.0),
            footprint_lines=3072.0,
        ),
        # LU CB: low bus demand (99.53 % hit rate) but irregular and highly
        # migration-sensitive — the paper's anomaly case.
        "LU CB": ApplicationSpec(
            name="LU CB",
            n_threads=2,
            work_per_thread_us=1_900_000.0,
            pattern=_burst(half["LU CB"], hi=9.0, frac_hi=0.18, dwell=30_000.0),
            footprint_lines=4096.0,
            migration_sensitivity=4.0,
        ),
        "BT": ApplicationSpec(
            name="BT",
            n_threads=2,
            work_per_thread_us=2_200_000.0,
            pattern=_two_phase(half["BT"], swing=1.6, lo_work=40_000.0, hi_work=25_000.0),
            footprint_lines=5120.0,
        ),
        # The four high-demand codes (paper: SP, MG, Raytrace, CG push the
        # bus close to capacity when doubled). Strong phase swings model the
        # sweep/exchange structure of the NAS solvers.
        "SP": ApplicationSpec(
            name="SP",
            n_threads=2,
            work_per_thread_us=2_000_000.0,
            pattern=_two_phase(half["SP"], swing=1.75, lo_work=30_000.0, hi_work=25_000.0),
            footprint_lines=6144.0,
        ),
        "MG": ApplicationSpec(
            name="MG",
            n_threads=2,
            work_per_thread_us=1_800_000.0,
            pattern=_two_phase(half["MG"], swing=1.6, lo_work=25_000.0, hi_work=25_000.0),
            footprint_lines=8192.0,
        ),
        "Raytrace": ApplicationSpec(
            name="Raytrace",
            n_threads=2,
            work_per_thread_us=2_400_000.0,
            # Peaks stay below the two-thread saturation point (so the solo
            # run reproduces Figure 1A's 21 tx/µs) but are long and tall
            # enough to destabilize the Latest Quantum policy (Section 5).
            pattern=_burst(half["Raytrace"], hi=14.2, frac_hi=0.6, dwell=140_000.0),
            footprint_lines=8192.0,
        ),
        "CG": ApplicationSpec(
            name="CG",
            n_threads=2,
            work_per_thread_us=2_000_000.0,
            pattern=_two_phase(half["CG"], swing=1.35, lo_work=25_000.0, hi_work=30_000.0),
            footprint_lines=8192.0,
        ),
    }


#: The paper's applications, keyed by name, in Figure 1A order.
PAPER_APPS: dict[str, ApplicationSpec] = _apps()


def paper_app_names() -> list[str]:
    """Application names in Figure 1A order (increasing solo rate)."""
    return list(PAPER_APPS)


def paper_app(name: str) -> ApplicationSpec:
    """Look up one of the paper's applications by name.

    Raises
    ------
    WorkloadError
        If the name is unknown.
    """
    try:
        return PAPER_APPS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown application {name!r}; known: {', '.join(PAPER_APPS)}"
        ) from None
