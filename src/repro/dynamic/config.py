"""Configuration of the open-system dynamic workload.

Like every configuration object in :mod:`repro.config`, these are frozen
dataclasses validated eagerly in ``__post_init__`` — an invalid dynamic
workload raises :class:`repro.errors.ConfigError` before any simulation
starts, never deep inside a run. They are plain picklable data so a
:class:`~repro.experiments.base.SimulationSpec` carrying one ships to
``run_many`` worker processes unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigError
from ..workloads.base import ApplicationSpec
from .arrivals import ArrivalProcess

__all__ = [
    "JobMix",
    "ZipfianMix",
    "HotspotMix",
    "SequentialMix",
    "BurstyMix",
    "DynamicWorkload",
    "paper_mix",
]


@dataclass(frozen=True)
class JobMix:
    """A weighted palette of job templates the driver samples from.

    Subclasses skew or correlate the draws (:class:`ZipfianMix`,
    :class:`HotspotMix`, :class:`SequentialMix`, :class:`BurstyMix`) by
    overriding :meth:`_effective_entries` (static reweighting) or
    :meth:`sample_many` (sequence-level structure). The driver samples
    whole schedules through :meth:`sample_many`, so both hooks compose
    with the named-RNG-stream determinism contract.

    Attributes
    ----------
    entries:
        ``(spec, weight)`` pairs; weights are relative (they need not sum
        to one). Sampling is deterministic given the rng stream.
    """

    entries: tuple[tuple[ApplicationSpec, float], ...]

    def __post_init__(self) -> None:
        if not self.entries:
            raise ConfigError("a job mix needs at least one template")
        for spec, weight in self.entries:
            if not isinstance(spec, ApplicationSpec):
                raise ConfigError(f"job mix template must be an ApplicationSpec, got {spec!r}")
            if weight <= 0:
                raise ConfigError(f"job mix weight for {spec.name!r} must be positive, got {weight}")

    def _effective_entries(self) -> tuple[tuple[ApplicationSpec, float], ...]:
        """The ``(spec, weight)`` pairs sampling actually uses."""
        return self.entries

    @property
    def total_weight(self) -> float:
        """Sum of the (effective) relative weights."""
        return sum(w for _, w in self._effective_entries())

    def sample(self, rng: np.random.Generator) -> ApplicationSpec:
        """Draw one template, weight-proportionally."""
        entries = self._effective_entries()
        u = float(rng.random()) * self.total_weight
        acc = 0.0
        for spec, weight in entries:
            acc += weight
            if u < acc:
                return spec
        return entries[-1][0]  # floating-point edge: u == total

    def sample_many(self, rng: np.random.Generator, n: int) -> list[ApplicationSpec]:
        """Draw a whole schedule; the base mix is n independent draws."""
        return [self.sample(rng) for _ in range(n)]

    def mean_nominal_service_us(self) -> float:
        """(Effective-)weight-averaged solo execution time of the mix."""
        total = self.total_weight
        return sum(s.work_per_thread_us * w for s, w in self._effective_entries()) / total


@dataclass(frozen=True)
class ZipfianMix(JobMix):
    """Zipf-skewed draws: entry ``i`` (0-based) reweighted by ``(i+1)^-s``.

    With ``exponent=0`` this reduces to the base mix; larger exponents
    concentrate load on the head of the palette — the classic popularity
    skew of real job streams.
    """

    exponent: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.exponent < 0 or not math.isfinite(self.exponent):
            raise ConfigError(f"zipf exponent must be >= 0, got {self.exponent}")

    def _effective_entries(self) -> tuple[tuple[ApplicationSpec, float], ...]:
        return tuple(
            (spec, w * (i + 1) ** -self.exponent)
            for i, (spec, w) in enumerate(self.entries)
        )


@dataclass(frozen=True)
class HotspotMix(JobMix):
    """One template absorbs a fixed fraction of all draws.

    The entry at ``hot_index`` is drawn with probability ``hot_fraction``;
    the rest of the palette splits the remainder in proportion to its
    original weights (single-entry mixes are trivially all-hot).
    """

    hot_fraction: float = 0.8
    hot_index: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.hot_fraction < 1.0:
            raise ConfigError(
                f"hot_fraction must be in (0, 1), got {self.hot_fraction}"
            )
        if not 0 <= self.hot_index < len(self.entries):
            raise ConfigError(
                f"hot_index must be in [0, {len(self.entries)}), got {self.hot_index}"
            )

    def _effective_entries(self) -> tuple[tuple[ApplicationSpec, float], ...]:
        if len(self.entries) == 1:
            return self.entries
        cold_total = sum(w for i, (_, w) in enumerate(self.entries) if i != self.hot_index)
        scale = (1.0 - self.hot_fraction) / cold_total
        return tuple(
            (spec, self.hot_fraction if i == self.hot_index else w * scale)
            for i, (spec, w) in enumerate(self.entries)
        )


@dataclass(frozen=True)
class SequentialMix(JobMix):
    """Deterministic phases: each template runs ``run_length`` jobs in turn.

    ``sample_many`` cycles the palette in order (consuming no RNG draws);
    a single :meth:`~JobMix.sample` still draws weight-proportionally, so
    the sequential structure only manifests at the schedule level — which
    is how the driver consumes mixes.
    """

    run_length: int = 4

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.run_length < 1:
            raise ConfigError(f"run_length must be >= 1, got {self.run_length}")

    def sample_many(self, rng: np.random.Generator, n: int) -> list[ApplicationSpec]:
        return [
            self.entries[(i // self.run_length) % len(self.entries)][0]
            for i in range(n)
        ]


@dataclass(frozen=True)
class BurstyMix(JobMix):
    """Correlated phases: each weighted draw persists for a geometric run.

    A template is drawn weight-proportionally, then repeated for a
    geometric number of consecutive jobs with mean ``mean_run_length`` —
    back-to-back submissions of the same code, the temporal-locality
    pattern sequential independent draws cannot produce.
    """

    mean_run_length: float = 4.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.mean_run_length < 1.0:
            raise ConfigError(
                f"mean_run_length must be >= 1, got {self.mean_run_length}"
            )

    def sample_many(self, rng: np.random.Generator, n: int) -> list[ApplicationSpec]:
        out: list[ApplicationSpec] = []
        p = 1.0 / self.mean_run_length
        while len(out) < n:
            spec = self.sample(rng)
            run = int(rng.geometric(p))
            out.extend([spec] * min(run, n - len(out)))
        return out


def paper_mix(
    names: list[str] | None = None, work_scale: float = 1.0
) -> JobMix:
    """An equal-weight mix over (a subset of) the paper's applications.

    The default palette spans the demand range — a low-, a mid- and two
    high-bandwidth codes — so arrival streams exercise both the benign
    and the saturated co-scheduling regimes.
    """
    from ..workloads.suites import paper_app

    chosen = names if names is not None else ["Water-nsqr", "LU CB", "SP", "CG"]
    if not chosen:
        raise ConfigError("paper_mix needs at least one application name")
    return JobMix(
        entries=tuple((paper_app(n).scaled(work_scale), 1.0) for n in chosen)
    )


@dataclass(frozen=True)
class DynamicWorkload:
    """Everything the open-system driver needs, in one validated object.

    Attributes
    ----------
    arrivals:
        The arrival process (Poisson / MMPP / trace replay).
    mix:
        Job-template palette sampled per arrival.
    n_jobs:
        Jobs in the schedule (a trace shorter than this bounds it). The
        run ends when every admitted job has completed and the queue is
        empty — a finite schedule keeps open-system runs bounded.
    max_in_service:
        Admission cap: at most this many dynamic jobs are connected at
        once (the multiprogramming-degree analogue). Arrivals beyond it
        wait in the admission queue.
    queue_capacity:
        Admission queue slots, or ``None`` for an unbounded queue. With a
        bounded queue, arrivals finding it full are *dropped* and counted
        (drop-tail backpressure accounting).
    poll_period_us:
        Cadence of the driver's watchdog/utilisation sampling events.
    watchdog_factor:
        The no-starvation bound: an admitted job must make CPU progress at
        least every ``factor × quantum × co_resident_jobs`` microseconds.
        The paper's head-first circular-list rotation guarantees service
        within one full rotation; the factor is the slack for signal
        latency and partial-width packing.
    watchdog_strict:
        Raise :class:`repro.errors.SchedulingError` on a watchdog
        violation instead of only counting it.
    warmup_frac:
        Fraction of completions truncated as warmup when summarizing.
    slowdown_tau_us:
        Bounded-slowdown threshold (see
        :func:`repro.metrics.queueing.bounded_slowdown`).
    saturation_threshold:
        Bus-utilisation level above which a poll sample counts as
        saturated (the regulation-quality metric).
    record_jobs:
        Keep the per-job :class:`~repro.metrics.queueing.JobRecord` list
        (default). Disable for large-n sweeps: the driver then reports
        only the O(1)-memory streamed summary
        (:class:`repro.metrics.streaming.StreamingSummary`), so metric
        memory stays flat no matter how many jobs the schedule holds.
    """

    arrivals: ArrivalProcess
    mix: JobMix
    n_jobs: int = 30
    max_in_service: int = 4
    queue_capacity: int | None = None
    poll_period_us: float = 50_000.0
    watchdog_factor: float = 4.0
    watchdog_strict: bool = False
    warmup_frac: float = 0.1
    slowdown_tau_us: float = 10_000.0
    saturation_threshold: float = 0.9
    record_jobs: bool = True

    def __post_init__(self) -> None:
        if not isinstance(self.arrivals, ArrivalProcess):
            raise ConfigError(f"arrivals must be an ArrivalProcess, got {self.arrivals!r}")
        if not isinstance(self.mix, JobMix):
            raise ConfigError(f"mix must be a JobMix, got {self.mix!r}")
        if self.n_jobs < 1:
            raise ConfigError(f"n_jobs must be >= 1, got {self.n_jobs}")
        if self.max_in_service < 1:
            raise ConfigError(f"max_in_service must be >= 1, got {self.max_in_service}")
        if self.queue_capacity is not None and self.queue_capacity < 0:
            raise ConfigError(f"queue_capacity must be >= 0, got {self.queue_capacity}")
        if self.poll_period_us <= 0:
            raise ConfigError(f"poll_period_us must be positive, got {self.poll_period_us}")
        if self.watchdog_factor <= 0:
            raise ConfigError(f"watchdog_factor must be positive, got {self.watchdog_factor}")
        if not 0.0 <= self.warmup_frac < 1.0:
            raise ConfigError(f"warmup_frac must be in [0, 1), got {self.warmup_frac}")
        if self.slowdown_tau_us < 0:
            raise ConfigError(f"slowdown_tau_us must be >= 0, got {self.slowdown_tau_us}")
        if not 0.0 < self.saturation_threshold <= 1.0:
            raise ConfigError(
                f"saturation_threshold must be in (0, 1], got {self.saturation_threshold}"
            )

    def warmup_jobs(self) -> int:
        """Completions to truncate before steady-state averaging."""
        return int(self.n_jobs * self.warmup_frac)

    def starvation_bound_us(self, quantum_us: float, co_resident: int) -> float:
        """The watchdog bound for ``co_resident`` simultaneously-live jobs."""
        return self.watchdog_factor * quantum_us * max(1, co_resident)
