"""Arrival processes: when jobs show up at the CPU manager's door.

The paper's CPU manager is an online server — applications connect over a
socket at any time — but every experiment in the paper (and in the closed
harnesses of this repo) fixes the multiprogramming degree up front. The
processes here generate *arrival schedules* for the open-system driver
(:mod:`repro.dynamic.driver`):

* :class:`PoissonArrivals` — memoryless arrivals at a constant rate, the
  canonical open-system workload.
* :class:`MMPPBurstyArrivals` — a two-state Markov-modulated Poisson
  process: exponentially-dwelling low/high-rate phases, modelling the
  bursty submission patterns real schedulers face.
* :class:`TraceArrivals` — replay of an explicit schedule, round-trippable
  through JSON and CSV files so measured traces can be fed in.
* :class:`ShapedArrivals` — any base process warped by a :class:`RateShape`
  envelope (:class:`DiurnalShape` sinusoidal day/night cycles,
  :class:`FlashCrowdShape` step surges). Shapes compose by nesting
  wrappers: a diurnal cycle with a flash crowd on top is
  ``ShapedArrivals(ShapedArrivals(base, diurnal), flash)``.

Determinism: ``sample_times`` draws only from the generator it is handed
(a named :mod:`repro.rng` stream), so a fixed seed yields a bit-identical
schedule no matter which process — serial or a ``run_many`` worker —
produces it. The property tests assert exactly this.
"""

from __future__ import annotations

import csv
import json
import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "MMPPBurstyArrivals",
    "TraceArrivals",
    "RateShape",
    "DiurnalShape",
    "FlashCrowdShape",
    "ShapedArrivals",
]


class ArrivalProcess(ABC):
    """Generates strictly increasing arrival times (µs) for a job stream."""

    @abstractmethod
    def sample_times(self, rng: np.random.Generator, n_jobs: int) -> list[float]:
        """The first ``n_jobs`` arrival times in microseconds, increasing."""

    @property
    @abstractmethod
    def mean_rate_per_s(self) -> float:
        """Long-run mean arrival rate in jobs per (simulated) second."""

    @staticmethod
    def _check_n(n_jobs: int) -> None:
        if n_jobs < 1:
            raise ConfigError(f"need at least one job, got {n_jobs}")


@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Homogeneous Poisson arrivals.

    Attributes
    ----------
    rate_per_s:
        Mean arrival rate, jobs per simulated second.
    """

    rate_per_s: float

    def __post_init__(self) -> None:
        if self.rate_per_s <= 0:
            raise ConfigError(f"arrival rate must be positive, got {self.rate_per_s}")

    @property
    def mean_rate_per_s(self) -> float:
        return self.rate_per_s

    def sample_times(self, rng: np.random.Generator, n_jobs: int) -> list[float]:
        self._check_n(n_jobs)
        mean_gap_us = 1e6 / self.rate_per_s
        gaps = rng.exponential(mean_gap_us, size=n_jobs)
        return [float(t) for t in np.cumsum(gaps)]


@dataclass(frozen=True)
class MMPPBurstyArrivals(ArrivalProcess):
    """Two-state Markov-modulated Poisson process.

    The process alternates between a low-rate and a high-rate phase with
    exponentially distributed dwell times; within a phase, arrivals are
    Poisson at the phase rate. This is the standard minimal model of
    bursty submission streams.

    Attributes
    ----------
    rate_low_per_s / rate_high_per_s:
        Arrival rates of the two phases (jobs per second).
    mean_low_s / mean_high_s:
        Mean dwell time in each phase, seconds.
    """

    rate_low_per_s: float
    rate_high_per_s: float
    mean_low_s: float = 4.0
    mean_high_s: float = 1.0

    def __post_init__(self) -> None:
        if self.rate_low_per_s <= 0 or self.rate_high_per_s <= 0:
            raise ConfigError("phase arrival rates must be positive")
        if self.rate_high_per_s < self.rate_low_per_s:
            raise ConfigError("high-phase rate must be >= low-phase rate")
        if self.mean_low_s <= 0 or self.mean_high_s <= 0:
            raise ConfigError("phase dwell times must be positive")

    @property
    def mean_rate_per_s(self) -> float:
        """Dwell-weighted mean rate across the two phases."""
        total = self.mean_low_s + self.mean_high_s
        return (
            self.rate_low_per_s * self.mean_low_s
            + self.rate_high_per_s * self.mean_high_s
        ) / total

    def sample_times(self, rng: np.random.Generator, n_jobs: int) -> list[float]:
        self._check_n(n_jobs)
        times: list[float] = []
        now = 0.0
        high = False  # start in the low phase
        while len(times) < n_jobs:
            dwell_s = self.mean_high_s if high else self.mean_low_s
            rate = self.rate_high_per_s if high else self.rate_low_per_s
            phase_end = now + float(rng.exponential(dwell_s)) * 1e6
            mean_gap_us = 1e6 / rate
            t = now
            while len(times) < n_jobs:
                t += float(rng.exponential(mean_gap_us))
                if t > phase_end:
                    break
                times.append(t)
            now = phase_end
            high = not high
        return times


@dataclass(frozen=True)
class TraceArrivals(ArrivalProcess):
    """Replay of an explicit arrival schedule.

    Attributes
    ----------
    times_us:
        Arrival timestamps in microseconds, strictly increasing.
    """

    times_us: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.times_us:
            raise ConfigError("an arrival trace needs at least one time")
        prev = -1.0
        for i, t in enumerate(self.times_us):
            # NaN compares false against everything, so it would sail past
            # both ordering checks below and poison the engine's event
            # clock; inf would pass them legitimately. Reject both by index.
            if not math.isfinite(t):
                raise ConfigError(f"arrival times must be finite, got {t} at index {i}")
            if t < 0:
                raise ConfigError(f"arrival times must be non-negative, got {t}")
            if t <= prev:
                raise ConfigError("arrival trace times must be strictly increasing")
            prev = t

    @property
    def mean_rate_per_s(self) -> float:
        """Jobs per second over the trace span (single-job traces: over [0, t])."""
        span_us = self.times_us[-1] - (self.times_us[0] if len(self.times_us) > 1 else 0.0)
        if span_us <= 0:
            return 0.0
        n_gaps = len(self.times_us) - 1 if len(self.times_us) > 1 else 1
        return n_gaps / span_us * 1e6

    def sample_times(self, rng: np.random.Generator, n_jobs: int) -> list[float]:
        """The first ``n_jobs`` trace entries (the trace bounds the stream).

        A trace shorter than ``n_jobs`` yields only its own entries — the
        driver sizes the schedule to ``min(n_jobs, len(trace))``.
        """
        self._check_n(n_jobs)
        return [float(t) for t in self.times_us[:n_jobs]]

    # -- file round-trip ------------------------------------------------------

    def to_json(self, path: str) -> str:
        """Write the schedule as ``{"times_us": [...]}``; returns ``path``."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump({"times_us": list(self.times_us)}, fh)
        return path

    @classmethod
    def from_json(cls, path: str) -> "TraceArrivals":
        """Load a schedule written by :meth:`to_json`."""
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        try:
            times = payload["times_us"]
        except (TypeError, KeyError):
            raise ConfigError(f"{path}: not an arrival trace (missing 'times_us')") from None
        return cls(times_us=tuple(float(t) for t in times))

    def to_csv(self, path: str) -> str:
        """Write one ``arrival_us`` column; returns ``path``.

        Timestamps are serialized with ``repr`` so the round-trip is exact
        (``repr``/``float`` is lossless for binary64).
        """
        with open(path, "w", encoding="utf-8", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(["arrival_us"])
            for t in self.times_us:
                writer.writerow([repr(t)])
        return path

    @classmethod
    def from_csv(cls, path: str) -> "TraceArrivals":
        """Load a schedule written by :meth:`to_csv`."""
        with open(path, "r", encoding="utf-8", newline="") as fh:
            reader = csv.reader(fh)
            header = next(reader, None)
            if header is None or header[:1] != ["arrival_us"]:
                raise ConfigError(f"{path}: not an arrival trace (missing 'arrival_us' header)")
            times = []
            for row in reader:
                if not row:
                    continue
                try:
                    times.append(float(row[0]))
                except ValueError:
                    raise ConfigError(f"{path}: bad arrival time {row[0]!r}") from None
        return cls(times_us=tuple(times))


# -- rate envelopes -----------------------------------------------------------


class RateShape(ABC):
    """A time-varying multiplicative envelope over an arrival rate.

    A shape is a positive factor ``f(t)`` applied to the base process's
    instantaneous rate. :class:`ShapedArrivals` realizes it by inhomogeneous
    time-warping: base arrival times are interpreted as *operational* time
    and mapped back through the inverse of the cumulative rate integral
    ``Λ(t) = ∫₀ᵗ f(u) du``, so arrivals bunch where the factor is high and
    thin out where it is low, while the base process's distributional
    character (and its RNG draws) are preserved exactly.
    """

    @abstractmethod
    def factor(self, t_us: float) -> float:
        """Instantaneous rate multiplier at wall time ``t_us``."""

    @abstractmethod
    def integral_us(self, t_us: float) -> float:
        """Exact cumulative integral ``∫₀ᵗ factor`` (µs of operational time)."""

    @property
    @abstractmethod
    def mean_factor(self) -> float:
        """Long-run average of the factor (scales the mean arrival rate)."""

    @property
    @abstractmethod
    def min_factor(self) -> float:
        """Infimum of the factor over time (must be > 0)."""

    @property
    @abstractmethod
    def max_factor(self) -> float:
        """Supremum of the factor over time."""


@dataclass(frozen=True)
class DiurnalShape(RateShape):
    """Sinusoidal day/night load cycle.

    ``factor(t) = 1 + amplitude * sin(2π (t / period + phase))`` — the
    classic diurnal envelope. ``amplitude`` must stay below 1 so the rate
    never reaches zero (a zero-rate interval would make the time warp
    non-invertible).

    Attributes
    ----------
    period_s:
        Cycle length in simulated seconds.
    amplitude:
        Peak-to-mean swing, in ``[0, 1)``.
    phase:
        Fraction of a cycle to shift the peak by (0 starts at the mean,
        rising).
    """

    period_s: float = 60.0
    amplitude: float = 0.5
    phase: float = 0.0

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise ConfigError(f"diurnal period must be positive, got {self.period_s}")
        if not 0.0 <= self.amplitude < 1.0:
            raise ConfigError(
                f"diurnal amplitude must be in [0, 1), got {self.amplitude}"
            )
        if not math.isfinite(self.phase):
            raise ConfigError(f"diurnal phase must be finite, got {self.phase}")

    @property
    def _period_us(self) -> float:
        return self.period_s * 1e6

    def factor(self, t_us: float) -> float:
        return 1.0 + self.amplitude * math.sin(
            2.0 * math.pi * (t_us / self._period_us + self.phase)
        )

    def integral_us(self, t_us: float) -> float:
        two_pi = 2.0 * math.pi
        scale = self.amplitude * self._period_us / two_pi
        return t_us + scale * (
            math.cos(two_pi * self.phase)
            - math.cos(two_pi * (t_us / self._period_us + self.phase))
        )

    @property
    def mean_factor(self) -> float:
        return 1.0

    @property
    def min_factor(self) -> float:
        return 1.0 - self.amplitude

    @property
    def max_factor(self) -> float:
        return 1.0 + self.amplitude


@dataclass(frozen=True)
class FlashCrowdShape(RateShape):
    """A step surge: rate multiplied by ``1 + magnitude`` during a window.

    >>> shape = FlashCrowdShape(at_s=1.0, duration_s=1.0, magnitude=3.0)
    >>> shape.factor(0.5e6), shape.factor(1.5e6), shape.factor(2.5e6)
    (1.0, 4.0, 1.0)

    Attributes
    ----------
    at_s:
        Surge onset, simulated seconds.
    duration_s:
        Surge length, seconds.
    magnitude:
        Extra load during the surge (3.0 = 4x the base rate), > 0.
    """

    at_s: float
    duration_s: float
    magnitude: float

    def __post_init__(self) -> None:
        if self.at_s < 0 or not math.isfinite(self.at_s):
            raise ConfigError(f"flash-crowd onset must be >= 0, got {self.at_s}")
        if self.duration_s <= 0 or not math.isfinite(self.duration_s):
            raise ConfigError(
                f"flash-crowd duration must be positive, got {self.duration_s}"
            )
        if self.magnitude <= 0 or not math.isfinite(self.magnitude):
            raise ConfigError(
                f"flash-crowd magnitude must be positive, got {self.magnitude}"
            )

    def factor(self, t_us: float) -> float:
        start = self.at_s * 1e6
        if start <= t_us < start + self.duration_s * 1e6:
            return 1.0 + self.magnitude
        return 1.0

    def integral_us(self, t_us: float) -> float:
        start = self.at_s * 1e6
        in_surge = min(max(t_us - start, 0.0), self.duration_s * 1e6)
        return t_us + self.magnitude * in_surge

    @property
    def mean_factor(self) -> float:
        # A finite bump vanishes in the long-run average.
        return 1.0

    @property
    def min_factor(self) -> float:
        return 1.0

    @property
    def max_factor(self) -> float:
        return 1.0 + self.magnitude


@dataclass(frozen=True)
class ShapedArrivals(ArrivalProcess):
    """A base arrival process warped by a :class:`RateShape` envelope.

    Arrival ``i`` lands at the wall time ``t_i`` solving
    ``Λ(t_i) = s_i`` where ``s_i`` is the base process's i-th arrival and
    ``Λ`` the shape's cumulative rate integral; ``Λ`` is strictly
    increasing (shapes guarantee ``min_factor > 0``) so ``t_i`` is unique
    and the warped schedule stays strictly ordered. The RNG is consumed
    only by the base process, so a shaped schedule is a deterministic
    function of the base schedule.
    """

    base: ArrivalProcess
    shape: RateShape

    @property
    def mean_rate_per_s(self) -> float:
        return self.base.mean_rate_per_s * self.shape.mean_factor

    def _invert(self, s_us: float) -> float:
        """Solve ``integral_us(t) == s_us`` for ``t`` by bisection."""
        lo = s_us / self.shape.max_factor
        hi = s_us / self.shape.min_factor
        if lo > hi:  # pragma: no cover - factors are validated positive
            lo, hi = hi, lo
        for _ in range(200):
            if hi - lo <= 1e-9 * max(1.0, hi):
                break
            mid = 0.5 * (lo + hi)
            if self.shape.integral_us(mid) < s_us:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)

    def sample_times(self, rng: np.random.Generator, n_jobs: int) -> list[float]:
        self._check_n(n_jobs)
        warped: list[float] = []
        prev = 0.0
        for s in self.base.sample_times(rng, n_jobs):
            t = self._invert(s)
            # Bisection resolves to ~1e-9 relative; keep strict ordering
            # even if two warped times round to the same float.
            if warped and t <= prev:
                t = math.nextafter(prev, math.inf)
            warped.append(t)
            prev = t
        return warped
