"""Arrival processes: when jobs show up at the CPU manager's door.

The paper's CPU manager is an online server — applications connect over a
socket at any time — but every experiment in the paper (and in the closed
harnesses of this repo) fixes the multiprogramming degree up front. The
processes here generate *arrival schedules* for the open-system driver
(:mod:`repro.dynamic.driver`):

* :class:`PoissonArrivals` — memoryless arrivals at a constant rate, the
  canonical open-system workload.
* :class:`MMPPBurstyArrivals` — a two-state Markov-modulated Poisson
  process: exponentially-dwelling low/high-rate phases, modelling the
  bursty submission patterns real schedulers face.
* :class:`TraceArrivals` — replay of an explicit schedule, round-trippable
  through JSON and CSV files so measured traces can be fed in.

Determinism: ``sample_times`` draws only from the generator it is handed
(a named :mod:`repro.rng` stream), so a fixed seed yields a bit-identical
schedule no matter which process — serial or a ``run_many`` worker —
produces it. The property tests assert exactly this.
"""

from __future__ import annotations

import csv
import json
from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "MMPPBurstyArrivals",
    "TraceArrivals",
]


class ArrivalProcess(ABC):
    """Generates strictly increasing arrival times (µs) for a job stream."""

    @abstractmethod
    def sample_times(self, rng: np.random.Generator, n_jobs: int) -> list[float]:
        """The first ``n_jobs`` arrival times in microseconds, increasing."""

    @property
    @abstractmethod
    def mean_rate_per_s(self) -> float:
        """Long-run mean arrival rate in jobs per (simulated) second."""

    @staticmethod
    def _check_n(n_jobs: int) -> None:
        if n_jobs < 1:
            raise ConfigError(f"need at least one job, got {n_jobs}")


@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Homogeneous Poisson arrivals.

    Attributes
    ----------
    rate_per_s:
        Mean arrival rate, jobs per simulated second.
    """

    rate_per_s: float

    def __post_init__(self) -> None:
        if self.rate_per_s <= 0:
            raise ConfigError(f"arrival rate must be positive, got {self.rate_per_s}")

    @property
    def mean_rate_per_s(self) -> float:
        return self.rate_per_s

    def sample_times(self, rng: np.random.Generator, n_jobs: int) -> list[float]:
        self._check_n(n_jobs)
        mean_gap_us = 1e6 / self.rate_per_s
        gaps = rng.exponential(mean_gap_us, size=n_jobs)
        return [float(t) for t in np.cumsum(gaps)]


@dataclass(frozen=True)
class MMPPBurstyArrivals(ArrivalProcess):
    """Two-state Markov-modulated Poisson process.

    The process alternates between a low-rate and a high-rate phase with
    exponentially distributed dwell times; within a phase, arrivals are
    Poisson at the phase rate. This is the standard minimal model of
    bursty submission streams.

    Attributes
    ----------
    rate_low_per_s / rate_high_per_s:
        Arrival rates of the two phases (jobs per second).
    mean_low_s / mean_high_s:
        Mean dwell time in each phase, seconds.
    """

    rate_low_per_s: float
    rate_high_per_s: float
    mean_low_s: float = 4.0
    mean_high_s: float = 1.0

    def __post_init__(self) -> None:
        if self.rate_low_per_s <= 0 or self.rate_high_per_s <= 0:
            raise ConfigError("phase arrival rates must be positive")
        if self.rate_high_per_s < self.rate_low_per_s:
            raise ConfigError("high-phase rate must be >= low-phase rate")
        if self.mean_low_s <= 0 or self.mean_high_s <= 0:
            raise ConfigError("phase dwell times must be positive")

    @property
    def mean_rate_per_s(self) -> float:
        """Dwell-weighted mean rate across the two phases."""
        total = self.mean_low_s + self.mean_high_s
        return (
            self.rate_low_per_s * self.mean_low_s
            + self.rate_high_per_s * self.mean_high_s
        ) / total

    def sample_times(self, rng: np.random.Generator, n_jobs: int) -> list[float]:
        self._check_n(n_jobs)
        times: list[float] = []
        now = 0.0
        high = False  # start in the low phase
        while len(times) < n_jobs:
            dwell_s = self.mean_high_s if high else self.mean_low_s
            rate = self.rate_high_per_s if high else self.rate_low_per_s
            phase_end = now + float(rng.exponential(dwell_s)) * 1e6
            mean_gap_us = 1e6 / rate
            t = now
            while len(times) < n_jobs:
                t += float(rng.exponential(mean_gap_us))
                if t > phase_end:
                    break
                times.append(t)
            now = phase_end
            high = not high
        return times


@dataclass(frozen=True)
class TraceArrivals(ArrivalProcess):
    """Replay of an explicit arrival schedule.

    Attributes
    ----------
    times_us:
        Arrival timestamps in microseconds, strictly increasing.
    """

    times_us: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.times_us:
            raise ConfigError("an arrival trace needs at least one time")
        prev = -1.0
        for t in self.times_us:
            if t < 0:
                raise ConfigError(f"arrival times must be non-negative, got {t}")
            if t <= prev:
                raise ConfigError("arrival trace times must be strictly increasing")
            prev = t

    @property
    def mean_rate_per_s(self) -> float:
        """Jobs per second over the trace span (single-job traces: over [0, t])."""
        span_us = self.times_us[-1] - (self.times_us[0] if len(self.times_us) > 1 else 0.0)
        if span_us <= 0:
            return 0.0
        n_gaps = len(self.times_us) - 1 if len(self.times_us) > 1 else 1
        return n_gaps / span_us * 1e6

    def sample_times(self, rng: np.random.Generator, n_jobs: int) -> list[float]:
        """The first ``n_jobs`` trace entries (the trace bounds the stream).

        A trace shorter than ``n_jobs`` yields only its own entries — the
        driver sizes the schedule to ``min(n_jobs, len(trace))``.
        """
        self._check_n(n_jobs)
        return [float(t) for t in self.times_us[:n_jobs]]

    # -- file round-trip ------------------------------------------------------

    def to_json(self, path: str) -> str:
        """Write the schedule as ``{"times_us": [...]}``; returns ``path``."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump({"times_us": list(self.times_us)}, fh)
        return path

    @classmethod
    def from_json(cls, path: str) -> "TraceArrivals":
        """Load a schedule written by :meth:`to_json`."""
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        try:
            times = payload["times_us"]
        except (TypeError, KeyError):
            raise ConfigError(f"{path}: not an arrival trace (missing 'times_us')") from None
        return cls(times_us=tuple(float(t) for t in times))

    def to_csv(self, path: str) -> str:
        """Write one ``arrival_us`` column; returns ``path``.

        Timestamps are serialized with ``repr`` so the round-trip is exact
        (``repr``/``float`` is lossless for binary64).
        """
        with open(path, "w", encoding="utf-8", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(["arrival_us"])
            for t in self.times_us:
                writer.writerow([repr(t)])
        return path

    @classmethod
    def from_csv(cls, path: str) -> "TraceArrivals":
        """Load a schedule written by :meth:`to_csv`."""
        with open(path, "r", encoding="utf-8", newline="") as fh:
            reader = csv.reader(fh)
            header = next(reader, None)
            if header is None or header[:1] != ["arrival_us"]:
                raise ConfigError(f"{path}: not an arrival trace (missing 'arrival_us' header)")
            times = []
            for row in reader:
                if not row:
                    continue
                try:
                    times.append(float(row[0]))
                except ValueError:
                    raise ConfigError(f"{path}: bad arrival time {row[0]!r}") from None
        return cls(times_us=tuple(times))
