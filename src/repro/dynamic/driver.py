"""The open-system workload driver: arrivals, admission, lifecycle, watchdog.

This is the load-generation layer the paper's online CPU manager implies
but its experiments never exercise: jobs *arrive* over time, queue for
admission, connect to the manager mid-simulation, run to completion and
disconnect — churning the circular list and the signal protocol exactly
the way a long-lived server would see.

The driver is an event-driven component layered on the existing engine:

* **Arrivals** — the schedule (times × job templates) is sampled once, at
  build time, from named :mod:`repro.rng` streams, so it is bit-identical
  between serial and ``run_many`` execution.
* **Admission** — at most ``max_in_service`` dynamic jobs are connected at
  once; excess arrivals wait in a FIFO queue (optionally bounded, with
  drop-tail accounting). Completions admit the head of the queue — the
  open-system analogue of the paper's fixed multiprogramming degree.
* **Lifecycle** — admitted jobs are launched, registered with the CPU
  manager (when one runs) and handed to the kernel; thread-exit listeners
  detect completion with exact timestamps and trigger disconnection and
  queue drain.
* **Watchdog** — a starvation-age monitor asserting the paper's
  no-starvation guarantee: every admitted, unfinished job must make CPU
  progress at least once per ``watchdog_factor × quantum × co-resident
  jobs`` microseconds (the head-first circular-list rotation bounds the
  wait by one full rotation).
* **Measurement** — queue-length time-average, bus-utilisation samples and
  the per-job lifecycle records that :mod:`repro.metrics.queueing` reduces
  to response times and bounded slowdowns.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Iterator

from ..errors import ConfigError, SchedulingError
from ..metrics.queueing import DynamicStats, JobRecord
from ..metrics.streaming import StreamingQueueingStats
from ..sim.events import EventPriority
from ..workloads.base import Application
from .config import DynamicWorkload

if TYPE_CHECKING:  # pragma: no cover
    from ..core.manager import CpuManager
    from ..hw.machine import Machine
    from ..rng import RngRegistry
    from ..sched.base import KernelScheduler
    from ..sim.engine import Engine

__all__ = ["OpenSystemDriver"]


class _LiveJob:
    """Mutable lifecycle state of one scheduled arrival (driver-internal)."""

    __slots__ = (
        "index",
        "spec",
        "arrival_us",
        "admit_us",
        "completion_us",
        "app_id",
        "dropped",
        "tids",
        "last_progress_us",
        "last_runtime_us",
    )

    def __init__(self, index: int, spec, arrival_us: float) -> None:
        self.index = index
        self.spec = spec
        self.arrival_us = arrival_us
        self.admit_us: float | None = None
        self.completion_us: float | None = None
        self.app_id: int | None = None
        self.dropped = False
        self.tids: list[int] = []
        self.last_progress_us = 0.0
        self.last_runtime_us = 0.0

    def record(self) -> JobRecord:
        return JobRecord(
            index=self.index,
            name=self.spec.name,
            arrival_us=self.arrival_us,
            admit_us=self.admit_us,
            completion_us=self.completion_us,
            nominal_service_us=self.spec.work_per_thread_us,
            app_id=self.app_id,
        )


class OpenSystemDriver:
    """Drives a :class:`~repro.dynamic.config.DynamicWorkload` through a run.

    Parameters
    ----------
    workload:
        The validated dynamic-workload description.
    machine / engine / registry:
        The simulation fabric (the driver adds exit listeners and events).
    manager:
        The CPU manager, or ``None`` for kernel-only (e.g. plain Linux)
        runs — admitted jobs then simply join the kernel's runqueues.
    kernel:
        The kernel scheduler (receives ``on_new_threads`` at admission).
    app_ids:
        The run-local application-id counter shared with the static
        workload builder, keeping ids deterministic and collision-free.
    quantum_ref_us:
        The scheduling granularity the watchdog bound scales with (the
        manager quantum, or the kernel time slice for manager-less runs).
    n_static_apps:
        Statically-launched applications co-resident with dynamic jobs
        (they occupy rotation slots, so they widen the starvation bound).
    """

    def __init__(
        self,
        workload: DynamicWorkload,
        machine: "Machine",
        engine: "Engine",
        registry: "RngRegistry",
        manager: "CpuManager | None",
        kernel: "KernelScheduler",
        app_ids: Iterator[int],
        quantum_ref_us: float,
        n_static_apps: int = 0,
    ) -> None:
        if quantum_ref_us <= 0:
            raise ConfigError(f"quantum_ref_us must be positive, got {quantum_ref_us}")
        for spec, _ in workload.mix.entries:
            if spec.n_threads > machine.n_cpus:
                raise ConfigError(
                    f"job template {spec.name!r} is wider ({spec.n_threads}) than "
                    f"the machine ({machine.n_cpus} CPUs)"
                )
        self.workload = workload
        self._machine = machine
        self._engine = engine
        self._registry = registry
        self._manager = manager
        self._kernel = kernel
        self._app_ids = app_ids
        self._quantum_ref_us = quantum_ref_us
        self._n_static_apps = n_static_apps

        # The whole schedule is fixed up front from named rng streams:
        # bit-identical no matter which process replays it.
        arr_rng = registry.stream("dynamic.arrivals")
        times = workload.arrivals.sample_times(arr_rng, workload.n_jobs)
        mix_rng = registry.stream("dynamic.mix")
        specs = workload.mix.sample_many(mix_rng, len(times))
        self._jobs = [
            _LiveJob(i, spec, t) for i, (spec, t) in enumerate(zip(specs, times))
        ]
        # Streamed metrics are always accumulated (they consume no RNG and
        # cost O(1) memory); with record_jobs=False they are the only
        # measurement that survives into DynamicStats.
        self._stream = StreamingQueueingStats(
            warmup_jobs=workload.warmup_jobs(),
            tau_us=workload.slowdown_tau_us,
        )
        self._arrived = 0
        self._queue: deque[int] = deque()  # job indices, FIFO
        self._in_service: dict[int, _LiveJob] = {}  # app_id → job
        self._tid_to_job: dict[int, _LiveJob] = {}
        self._dropped = 0
        #: Every Application instance admitted so far, in admission order
        #: (the harness folds these into the run's accounting).
        self.launched_apps: list[Application] = []

        # Queue-length integral (piecewise constant between transitions).
        self._queue_integral = 0.0
        self._queue_last_t = 0.0
        self._max_queue_len = 0

        # Watchdog / utilisation accumulators.
        self._max_age_us = 0.0
        self._max_bound_us = 0.0
        self._violations = 0
        self._util_sum = 0.0
        self._util_samples = 0
        self._saturated_samples = 0

        machine.add_exit_listener(self._handle_exit)

    # ------------------------------------------------------------------ wiring

    def start(self) -> None:
        """Schedule every arrival and the first watchdog poll."""
        for job in self._jobs:
            self._engine.schedule_at(
                job.arrival_us,
                lambda j=job: self._arrive(j),
                priority=EventPriority.DEFAULT,
            )
        self._engine.schedule_after(
            self.workload.poll_period_us, self._poll, priority=EventPriority.OBSERVER
        )

    @property
    def all_done(self) -> bool:
        """Every scheduled job arrived and either completed or was dropped."""
        return (
            self._arrived == len(self._jobs)
            and not self._queue
            and not self._in_service
        )

    @property
    def n_scheduled(self) -> int:
        """Jobs in the (possibly trace-bounded) arrival schedule."""
        return len(self._jobs)

    # ------------------------------------------------------------------ arrivals

    def _arrive(self, job: _LiveJob) -> None:
        self._arrived += 1
        now = self._machine.now
        self._machine.trace.record(now, "dynamic.arrive", index=job.index, app=job.spec.name)
        if len(self._in_service) < self.workload.max_in_service:
            self._admit(job)
            return
        cap = self.workload.queue_capacity
        if cap is not None and len(self._queue) >= cap:
            job.dropped = True
            self._dropped += 1
            self._machine.trace.record(now, "dynamic.drop", index=job.index, app=job.spec.name)
            return
        self._touch_queue(now)
        self._queue.append(job.index)
        self._max_queue_len = max(self._max_queue_len, len(self._queue))

    def _admit(self, job: _LiveJob) -> None:
        now = self._machine.now
        app = Application.launch(
            job.spec,
            self._machine,
            self._registry.stream(f"dynamic.job{job.index}.{job.spec.name}"),
            app_id=next(self._app_ids),
        )
        job.admit_us = now
        job.app_id = app.app_id
        job.tids = list(app.tids)
        job.last_progress_us = now
        job.last_runtime_us = 0.0
        self._in_service[app.app_id] = job
        self.launched_apps.append(app)
        for tid in job.tids:
            self._tid_to_job[tid] = job
        self._machine.trace.record(
            now, "dynamic.admit", index=job.index, app=job.spec.name, app_id=app.app_id
        )
        if self._manager is not None:
            self._manager.register_app(app)
        self._kernel.on_new_threads()

    def _drain_queue(self) -> None:
        while self._queue and len(self._in_service) < self.workload.max_in_service:
            now = self._machine.now
            self._touch_queue(now)
            index = self._queue.popleft()
            self._admit(self._jobs[index])

    # ------------------------------------------------------------------ lifecycle

    def _handle_exit(self, thread) -> None:
        job = self._tid_to_job.get(thread.tid)
        if job is None or job.completion_us is not None:
            return
        if not all(self._machine.thread(t).finished for t in job.tids):
            return
        # Exit listeners fire while the machine may be ahead of the engine
        # clock; record the exact completion time now, defer the admission
        # side effects to a same-instant engine event (the scheduler-base
        # deferral idiom).
        job.completion_us = max(self._machine.thread(t).finished_at for t in job.tids)
        self._stream.observe(
            arrival_us=job.arrival_us,
            admit_us=job.admit_us,
            completion_us=job.completion_us,
            nominal_service_us=job.spec.work_per_thread_us,
        )
        self._engine.schedule_at(
            self._machine.now, lambda: self._reap(job), priority=EventPriority.DEFAULT
        )

    def _reap(self, job: _LiveJob) -> None:
        if job.app_id in self._in_service:
            del self._in_service[job.app_id]
        for tid in job.tids:
            self._tid_to_job.pop(tid, None)
        self._machine.trace.record(
            self._machine.now, "dynamic.complete", index=job.index, app=job.spec.name
        )
        if self._manager is not None:
            # The manager may already have reaped it at a quantum boundary;
            # disconnect_app is a no-op for disconnected applications.
            self._manager.disconnect_app(job.app_id)
        self._drain_queue()

    # ------------------------------------------------------------------ sampling

    def _touch_queue(self, now: float) -> None:
        if now > self._queue_last_t:
            self._queue_integral += len(self._queue) * (now - self._queue_last_t)
            self._queue_last_t = now

    def _poll(self) -> None:
        now = self._machine.now
        self._touch_queue(now)
        # Bandwidth-regulation quality: time-sampled bus utilisation.
        util = self._machine.bus_utilisation
        self._util_sum += util
        self._util_samples += 1
        if util >= self.workload.saturation_threshold:
            self._saturated_samples += 1
        # Starvation watchdog over the admitted, unfinished jobs.
        co_resident = self._n_static_apps + len(self._in_service)
        bound = self.workload.starvation_bound_us(self._quantum_ref_us, co_resident)
        self._max_bound_us = max(self._max_bound_us, bound)
        for job in self._in_service.values():
            runtime = sum(self._machine.thread(t).run_time_us for t in job.tids)
            if runtime > job.last_runtime_us + 1e-9:
                job.last_runtime_us = runtime
                job.last_progress_us = now
            age = now - job.last_progress_us
            self._max_age_us = max(self._max_age_us, age)
            if age > bound:
                self._violations += 1
                self._machine.trace.record(
                    now, "dynamic.starvation", index=job.index, age_us=age, bound_us=bound
                )
                if self.workload.watchdog_strict:
                    raise SchedulingError(
                        f"starvation watchdog: job {job.index} ({job.spec.name}) "
                        f"made no progress for {age:.0f}µs (bound {bound:.0f}µs)"
                    )
        if not self.all_done:
            self._engine.schedule_after(
                self.workload.poll_period_us, self._poll, priority=EventPriority.OBSERVER
            )

    # ------------------------------------------------------------------ results

    def stats(self) -> DynamicStats:
        """Freeze the run's observations into a picklable value object."""
        now = self._machine.now
        self._touch_queue(now)
        horizon = max(now, 1e-12)
        record_jobs = self.workload.record_jobs
        return DynamicStats(
            jobs=tuple(job.record() for job in self._jobs) if record_jobs else (),
            queue_len_time_avg=self._queue_integral / horizon,
            max_queue_len=self._max_queue_len,
            dropped=self._dropped,
            max_starvation_age_us=self._max_age_us,
            starvation_bound_us=self._max_bound_us,
            starvation_violations=self._violations,
            utilization_time_avg=(
                self._util_sum / self._util_samples if self._util_samples else 0.0
            ),
            saturated_fraction=(
                self._saturated_samples / self._util_samples if self._util_samples else 0.0
            ),
            horizon_us=now,
            streaming=self._stream.snapshot(
                n_scheduled=len(self._jobs), n_dropped=self._dropped
            ),
        )
