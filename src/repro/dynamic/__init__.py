"""Open-system dynamic workloads: arrivals, admission, lifecycle, metrics.

The paper evaluates its schedulers on closed workloads — a fixed set of
co-scheduled applications run to completion. This package adds the open
system: jobs arrive over time (:mod:`~repro.dynamic.arrivals`), queue for
admission and churn through the CPU manager mid-simulation
(:mod:`~repro.dynamic.driver`), and are summarized with steady-state
queueing metrics (:mod:`repro.metrics.queueing`). Attach a
:class:`DynamicWorkload` to a :class:`~repro.experiments.base.SimulationSpec`
to drive one through the standard harness.
"""

from .arrivals import (
    ArrivalProcess,
    DiurnalShape,
    FlashCrowdShape,
    MMPPBurstyArrivals,
    PoissonArrivals,
    RateShape,
    ShapedArrivals,
    TraceArrivals,
)
from .config import (
    BurstyMix,
    DynamicWorkload,
    HotspotMix,
    JobMix,
    SequentialMix,
    ZipfianMix,
    paper_mix,
)
from .driver import OpenSystemDriver

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "MMPPBurstyArrivals",
    "TraceArrivals",
    "RateShape",
    "DiurnalShape",
    "FlashCrowdShape",
    "ShapedArrivals",
    "JobMix",
    "ZipfianMix",
    "HotspotMix",
    "SequentialMix",
    "BurstyMix",
    "paper_mix",
    "DynamicWorkload",
    "OpenSystemDriver",
]
