"""Structured simulation tracing.

A :class:`TraceRecorder` collects timestamped, categorized records — dispatch
decisions, migrations, signal deliveries, quantum boundaries — into a bounded
ring buffer. Tracing is how the experiment harness counts context switches
and migrations (the ABL-Q ablation) and how tests assert scheduler behaviour
("thread X never ran while blocked") without coupling to internals.

Recording is cheap when disabled (one predicate call) and bounded when
enabled, so traces can stay on for long experiment sweeps.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator

__all__ = ["TraceRecord", "TraceRecorder"]


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry.

    Attributes
    ----------
    time:
        Simulated time (µs) the record was emitted.
    category:
        Dot-separated category, e.g. ``"sched.dispatch"``,
        ``"manager.quantum"``, ``"signal.deliver"``.
    data:
        Arbitrary payload (kept small: ids and numbers, not objects).
    """

    time: float
    category: str
    data: dict[str, Any]


class TraceRecorder:
    """Bounded, filterable trace sink.

    Parameters
    ----------
    capacity:
        Maximum records retained (oldest evicted first).
    enabled:
        Master switch; when ``False`` :meth:`record` is a no-op.
    categories:
        Optional allow-list of category prefixes. ``None`` records all.

    Examples
    --------
    >>> tr = TraceRecorder(capacity=10)
    >>> tr.record(1.0, "sched.dispatch", cpu=0, tid=3)
    >>> [r.category for r in tr]
    ['sched.dispatch']
    >>> tr.count("sched.")
    1
    """

    def __init__(
        self,
        capacity: int = 100_000,
        enabled: bool = True,
        categories: Iterable[str] | None = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("trace capacity must be positive")
        self._buf: deque[TraceRecord] = deque(maxlen=capacity)
        self.enabled = enabled
        self._prefixes: tuple[str, ...] | None = (
            tuple(categories) if categories is not None else None
        )
        self._counters: dict[str, int] = {}

    def _accepts(self, category: str) -> bool:
        if self._prefixes is None:
            return True
        return any(category.startswith(p) for p in self._prefixes)

    def record(self, time: float, category: str, **data: Any) -> None:
        """Record one entry (no-op when disabled or filtered out).

        Category *counts* are always maintained, even for records filtered
        out of the ring buffer, so cheap aggregate statistics (number of
        context switches) survive buffer eviction.
        """
        if not self.enabled:
            return
        self._counters[category] = self._counters.get(category, 0) + 1
        if self._accepts(category):
            self._buf.append(TraceRecord(time=time, category=category, data=dict(data)))

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._buf)

    def __len__(self) -> int:
        return len(self._buf)

    def records(
        self,
        prefix: str = "",
        predicate: Callable[[TraceRecord], bool] | None = None,
    ) -> list[TraceRecord]:
        """Return retained records matching a category prefix and predicate."""
        out = [r for r in self._buf if r.category.startswith(prefix)]
        if predicate is not None:
            out = [r for r in out if predicate(r)]
        return out

    def count(self, prefix: str = "") -> int:
        """Total records *ever* emitted whose category starts with ``prefix``.

        Counts are exact even when the ring buffer has evicted the records.
        """
        return sum(n for cat, n in self._counters.items() if cat.startswith(prefix))

    def clear(self) -> None:
        """Drop all retained records and counters."""
        self._buf.clear()
        self._counters.clear()
