"""Event types and deterministic ordering for the simulation engine.

Events firing at the same instant are ordered by ``(priority, sequence)``.
Priorities encode the causal conventions of the simulator: counter samples
are published before the CPU manager makes a quantum decision that reads
them; kernel scheduler ticks run after manager decisions so the kernel
dispatches the freshly unblocked threads within the same instant.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["EventPriority", "TimerEvent"]


class EventPriority(enum.IntEnum):
    """Relative ordering of events that fire at the same simulated instant.

    Lower values fire first.
    """

    #: Counter sampling / arena publication — must precede decisions.
    SAMPLE = 10

    #: CPU-manager quantum boundary decisions.
    MANAGER = 20

    #: Signal deliveries (block/unblock reaching application threads).
    SIGNAL = 30

    #: Kernel scheduler ticks and dispatch.
    KERNEL = 40

    #: Measurement/bookkeeping callbacks that should observe a settled state.
    OBSERVER = 80

    #: Default for uncategorized callbacks.
    DEFAULT = 50


@dataclass(order=True)
class TimerEvent:
    """A scheduled callback. Ordering key: ``(time, priority, seq)``.

    Attributes
    ----------
    time:
        Absolute simulated time (µs) at which the event fires.
    priority:
        Tie-break for simultaneous events (see :class:`EventPriority`).
    seq:
        Monotone sequence number; makes ordering total and FIFO among
        events with equal time and priority.
    callback:
        Zero-argument callable invoked when the event fires.
    cancelled:
        Lazily-cancelled events stay in the heap but are skipped.
    """

    time: float
    priority: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
