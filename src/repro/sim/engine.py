"""The discrete-event engine: simulated clock plus a timer-event heap.

The engine is deliberately small. It knows nothing about buses, caches or
schedulers; it provides exactly three facilities:

1. a monotone simulated clock (:attr:`Engine.now`, microseconds),
2. timer events — ``schedule_at`` / ``schedule_after`` return an
   :class:`EventHandle` that supports O(1) lazy cancellation,
3. the :meth:`Engine.run` loop, which interleaves timer events with
   *settling* of a continuous component (anything implementing the
   :class:`Advancer` protocol).

Determinism: given the same sequence of ``schedule_*`` calls, events fire in
an identical order (ties broken by priority then insertion sequence).
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, Protocol

from ..errors import SimulationError
from .events import EventPriority, TimerEvent

__all__ = ["Advancer", "Engine", "EventHandle"]


class Advancer(Protocol):
    """A continuous component the engine settles between timer events.

    The contract: ``horizon()`` returns the earliest *absolute* time at
    which the component's internal state changes qualitatively on its own
    (``math.inf`` if never); ``advance_to(t)`` integrates the component's
    state forward to ``t``, where ``t`` never exceeds the last reported
    horizon, and processes any internal transition landing exactly on ``t``.
    """

    def horizon(self) -> float:
        """Earliest absolute time of the next internal transition."""
        ...

    def advance_to(self, t: float) -> None:
        """Integrate state forward to absolute time ``t``."""
        ...


class EventHandle:
    """Handle to a scheduled timer event; supports cancellation."""

    __slots__ = ("_event", "_engine")

    def __init__(self, event: TimerEvent, engine: "Engine") -> None:
        self._event = event
        self._engine = engine

    @property
    def time(self) -> float:
        """Absolute firing time of the event (µs)."""
        return self._event.time

    @property
    def active(self) -> bool:
        """Whether the event is still pending (not cancelled, not fired)."""
        return not self._event.cancelled

    def cancel(self) -> None:
        """Cancel the event. Cancelling twice (or after firing) is a no-op.

        Cancellation is lazy (O(1)): the event stays in the heap, marked
        dead, and is discarded when it surfaces. The live-event count is
        adjusted here so ``Engine.pending_events`` stays exact.
        """
        if not self._event.cancelled:
            self._event.cancelled = True
            self._engine._pending -= 1
            self._engine._events_cancelled += 1


class Engine:
    """Simulated clock and timer-event heap.

    Examples
    --------
    >>> eng = Engine()
    >>> fired = []
    >>> _ = eng.schedule_after(5.0, lambda: fired.append(eng.now))
    >>> eng.run_until(10.0)
    >>> fired
    [5.0]
    >>> eng.now
    10.0
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: list[TimerEvent] = []
        self._seq = 0
        self._pending = 0  # live (non-cancelled) events
        self._events_fired = 0
        self._events_cancelled = 0

    # -- clock ---------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in microseconds."""
        return self._now

    # -- scheduling ------------------------------------------------------------

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        priority: int = EventPriority.DEFAULT,
    ) -> EventHandle:
        """Schedule ``callback`` at absolute time ``time``.

        Raises
        ------
        SimulationError
            If ``time`` precedes the current clock.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time} before current time {self._now}"
            )
        if not math.isfinite(time):
            raise SimulationError("cannot schedule an event at infinite time")
        ev = TimerEvent(time=float(time), priority=int(priority), seq=self._seq, callback=callback)
        self._seq += 1
        heapq.heappush(self._heap, ev)
        self._pending += 1
        return EventHandle(ev, self)

    def schedule_after(
        self,
        delay: float,
        callback: Callable[[], None],
        priority: int = EventPriority.DEFAULT,
    ) -> EventHandle:
        """Schedule ``callback`` after a relative ``delay`` (µs)."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule_at(self._now + delay, callback, priority)

    # -- introspection -----------------------------------------------------------

    @property
    def pending_events(self) -> int:
        """Number of scheduled, not-yet-fired, not-cancelled events."""
        return self._pending

    @property
    def events_fired(self) -> int:
        """Total timer callbacks dispatched over the engine's lifetime."""
        return self._events_fired

    @property
    def events_scheduled(self) -> int:
        """Total events ever scheduled over the engine's lifetime."""
        return self._seq

    @property
    def events_cancelled(self) -> int:
        """Events cancelled via their handle before firing.

        Together with the other counters this supports the exact ledger
        ``pending_events == events_scheduled − events_fired −
        events_cancelled`` that the audit layer asserts at every hook.
        """
        return self._events_cancelled

    def next_event_time(self) -> float:
        """Absolute time of the earliest pending event, or ``inf``."""
        self._drop_cancelled()
        return self._heap[0].time if self._heap else math.inf

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)

    # -- execution ---------------------------------------------------------------

    def _fire_due(self) -> int:
        """Fire every pending event whose time equals the current clock.

        Events scheduled *during* dispatch for the same instant also fire,
        in priority/sequence order. Returns the number fired.

        This is the batch-fire half of the settle fast path: the run loops
        settle the advancer *once* up to a timestamp and then drain every
        event due at that instant, rather than interleaving one settle per
        event. Callbacks that reconfigure the machine only mark it dirty;
        the (expensive) re-solve happens lazily at the next horizon query,
        so N same-timestamp preemptions cost one bus solve, not N.
        """
        fired = 0
        while True:
            self._drop_cancelled()
            if not self._heap or self._heap[0].time > self._now:
                return fired
            ev = heapq.heappop(self._heap)
            self._pending -= 1
            # Count the dispatch *before* the callback so the ledger
            # ``pending == scheduled − fired − cancelled`` holds exactly at
            # every point a callback can observe it (the audit layer does).
            self._events_fired += 1
            ev.cancelled = True  # mark as consumed so handles report inactive
            ev.callback()
            fired += 1

    def run_until(self, end_time: float, advancer: Advancer | None = None) -> None:
        """Advance simulated time to ``end_time``, firing events on the way.

        If an ``advancer`` is supplied, the engine settles it across every
        inter-event interval, honouring its horizons.
        """
        if end_time < self._now:
            raise SimulationError(f"run_until({end_time}) is in the past (now={self._now})")
        while True:
            t_event = self.next_event_time()
            t_horizon = advancer.horizon() if advancer is not None else math.inf
            t_next = min(t_event, t_horizon, end_time)
            if t_next > self._now:
                if advancer is not None:
                    advancer.advance_to(t_next)
                self._now = t_next
            elif advancer is not None and t_horizon <= self._now:
                # A horizon landing exactly on the current instant: give the
                # advancer the chance to process the transition.
                advancer.advance_to(self._now)
            self._fire_due()
            if self._now >= end_time:
                return

    def run(
        self,
        advancer: Advancer | None = None,
        stop: Callable[[], bool] | None = None,
        max_time: float = math.inf,
    ) -> None:
        """Run until ``stop()`` is true, no work remains, or ``max_time``.

        "No work remains" means there are no pending events *and* the
        advancer (if any) reports an infinite horizon.

        Raises
        ------
        SimulationError
            If ``max_time`` is exceeded (guards against runaway workloads).
        """
        stalled = 0
        while True:
            if stop is not None and stop():
                return
            t_event = self.next_event_time()
            t_horizon = advancer.horizon() if advancer is not None else math.inf
            t_next = min(t_event, t_horizon)
            if math.isinf(t_next):
                return  # quiescent: nothing will ever happen again
            if t_next > max_time:
                raise SimulationError(
                    f"simulation exceeded max_time={max_time} (next activity at {t_next})"
                )
            if t_next > self._now:
                if advancer is not None:
                    advancer.advance_to(t_next)
                self._now = t_next
                stalled = 0
            elif advancer is not None and t_horizon <= self._now:
                advancer.advance_to(self._now)
            fired = self._fire_due()
            if t_next <= self._now and fired == 0:
                # The advancer claims a transition at `now` but time is not
                # moving and no events fired: detect livelock instead of
                # spinning forever.
                stalled += 1
                if stalled > 10_000:
                    raise SimulationError(
                        f"livelock at t={self._now}: horizon pinned at the current "
                        "instant with no events firing"
                    )
            else:
                stalled = 0
