"""Discrete-event simulation core.

The engine (:mod:`repro.sim.engine`) owns simulated time and a heap of timer
events. Continuous progress (thread execution, bus transfers) happens in
*settling intervals* between events: the machine model reports the earliest
time at which its internal state changes qualitatively (a thread completes,
a demand phase ends, a cache rebuild drains), the engine advances exactly to
the minimum of that horizon and the next timer event, and the machine
integrates progress analytically over the interval — rates are piecewise
constant by construction, so no numerical integration error accumulates.
"""

from .engine import Engine, EventHandle
from .events import EventPriority
from .trace import TraceRecorder, TraceRecord

__all__ = [
    "Engine",
    "EventHandle",
    "EventPriority",
    "TraceRecorder",
    "TraceRecord",
]
