"""repro — bus-bandwidth-aware gang scheduling for SMPs, reproduced.

A faithful, fully-simulated reproduction of *Antonopoulos, Nikolopoulos &
Papatheodorou, "Scheduling Algorithms with Bus Bandwidth Considerations for
SMPs", ICPP 2003*: the Latest Quantum and Quanta Window policies, the
user-level CPU manager (shared arena, signal protocol, circular job list),
a Linux 2.4-like baseline scheduler, and the 4-way Xeon SMP substrate they
ran on — bus contention model, per-CPU caches, performance counters — plus
the full experiment harness regenerating every figure and table.

Quick start
-----------
>>> from repro import SimulationSpec, run_simulation
>>> from repro.workloads import paper_app, bbma_spec
>>> from repro.core import QuantaWindowPolicy
>>> cg = paper_app("CG").scaled(0.1)
>>> spec = SimulationSpec(targets=[cg, cg], background=[bbma_spec()] * 4,
...                       scheduler=QuantaWindowPolicy(), seed=7)
>>> result = run_simulation(spec)
>>> result.mean_target_turnaround_us() > 0
True

See ``examples/`` for complete scenarios and ``python -m repro all`` to
regenerate the paper's evaluation.
"""

_NUMPY_MIN = (1, 24)

try:
    import numpy as _np
except ImportError as _exc:  # pragma: no cover - environment dependent
    raise ImportError(
        "repro requires numpy >= {}.{} for the vectorized bus solver and "
        "settle path (see DESIGN.md, 'Hot path'); install it with "
        "'pip install numpy'".format(*_NUMPY_MIN)
    ) from _exc

_np_version = tuple(int(p) for p in _np.__version__.split(".")[:2])
if _np_version < _NUMPY_MIN:  # pragma: no cover - environment dependent
    raise ImportError(
        "repro requires numpy >= {}.{}, found {} — older releases predate "
        "the strict left-to-right cumsum semantics the bit-identity gates "
        "rely on".format(*_NUMPY_MIN, _np.__version__)
    )
del _np, _np_version

from .config import (
    BusConfig,
    CacheConfig,
    LinuxSchedConfig,
    MachineConfig,
    ManagerConfig,
)
from .core.fitness import paper_fitness
from .core.manager import CpuManager
from .core.model import ContentionModel
from .core.policies import (
    BandwidthPolicy,
    EwmaPolicy,
    LatestQuantumPolicy,
    OraclePolicy,
    QuantaWindowPolicy,
    RandomGangPolicy,
)
from .core.policies_model import ModelDrivenPolicy
from .errors import (
    ArenaError,
    ConfigError,
    CounterError,
    ReproError,
    SchedulingError,
    SimulationError,
    WorkloadError,
)
from .experiments.base import SimulationSpec, run_simulation, solo_run
from .hw.machine import Machine
from .metrics.accounting import AppResult, RunResult
from .metrics.stats import improvement_percent, slowdown
from .sim.engine import Engine
from .workloads.base import Application, ApplicationSpec

__version__ = "1.0.0"

__all__ = [
    # configuration
    "BusConfig",
    "CacheConfig",
    "MachineConfig",
    "LinuxSchedConfig",
    "ManagerConfig",
    # policies & manager
    "BandwidthPolicy",
    "LatestQuantumPolicy",
    "QuantaWindowPolicy",
    "EwmaPolicy",
    "OraclePolicy",
    "RandomGangPolicy",
    "ModelDrivenPolicy",
    "ContentionModel",
    "CpuManager",
    "paper_fitness",
    # simulation
    "Engine",
    "Machine",
    "SimulationSpec",
    "run_simulation",
    "solo_run",
    # workloads
    "Application",
    "ApplicationSpec",
    # results
    "AppResult",
    "RunResult",
    "slowdown",
    "improvement_percent",
    # errors
    "ReproError",
    "ConfigError",
    "SimulationError",
    "SchedulingError",
    "ArenaError",
    "CounterError",
    "WorkloadError",
    "__version__",
]
