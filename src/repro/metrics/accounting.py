"""Per-run accounting: extracting results from a finished simulation.

The collectors here read only public machine/application state, so they can
run on any simulation regardless of scheduler. All derived statistics
(slowdowns, improvements) live in :mod:`repro.metrics.stats`; this module
records raw facts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..audit import AuditReport
    from ..faults import FaultStats
    from ..hw.machine import Machine
    from ..workloads.base import Application
    from .queueing import DynamicStats

__all__ = ["AppResult", "RunResult", "collect_run_result"]


@dataclass(frozen=True)
class AppResult:
    """Raw outcome of one application instance.

    Attributes
    ----------
    name:
        Spec name ("CG", "BBMA", ...).
    app_id:
        Instance id.
    turnaround_us:
        Time from simulation start to the last thread's completion;
        ``None`` for background jobs still running at harness stop.
    transactions:
        Total bus transactions issued by the instance (up to harness stop).
    run_time_us:
        Total on-CPU time across the instance's threads.
    work_done_us:
        Total work completed across threads (standalone-µs).
    migrations:
        Cross-CPU migrations suffered by the instance's threads.
    dispatches:
        Total dispatches of the instance's threads.
    """

    name: str
    app_id: int
    turnaround_us: float | None
    transactions: float
    run_time_us: float
    work_done_us: float
    migrations: int
    dispatches: int

    @property
    def mean_rate_txus(self) -> float:
        """Average transaction rate while on CPU (tx/µs)."""
        if self.run_time_us <= 0:
            return 0.0
        return self.transactions / self.run_time_us


@dataclass(frozen=True)
class RunResult:
    """Raw outcome of one simulation run.

    Attributes
    ----------
    makespan_us:
        Simulated time at harness stop (last *target* completion).
    apps:
        Per-instance results, targets first, in launch order.
    target_names:
        Names of the measured (non-background) instances.
    total_transactions:
        Bus transactions issued by the whole workload during the run.
    context_switches:
        Running→running replacements across all CPUs.
    migrations:
        Cross-CPU thread migrations across all threads.
    cpu_idle_us:
        Summed idle time across CPUs.
    bus_solve_calls / bus_cache_hits / bus_bisection_steps:
        Bus contention-solver work during the run (see
        :class:`repro.hw.bus.BusModel`): total ``solve`` invocations, how
        many were answered from the memo cache, and aggregate root-finder
        throughput evaluations (bisection or guarded Newton, depending on
        ``BusConfig.solver_mode``). The performance harness
        (``benchmarks/bench_perf.py``) sums these across a whole
        experiment grid.
    bus_shared_hits / bus_warm_starts:
        Hits served from the process-shared solve cache (chunked parallel
        dispatch) and Newton searches seeded from the previous equilibrium.
    solve_skips / lane_rebuilds:
        This run's settle-loop fast-path counters (see
        :attr:`repro.hw.machine.Machine.solve_skips`). Strictly *per run*:
        each simulation builds a fresh machine, so a chunked ``run_many``
        worker running several specs back-to-back reports each run's own
        counts, never the chunk's running total (the two-runs-one-worker
        regression test pins this down).
    audit:
        The invariant auditor's :class:`repro.audit.AuditReport` when the
        run was audited (``SimulationSpec.audit`` or the process-global
        ``--audit`` switch), else ``None``.
    profile:
        Per-phase wall-clock profile (``Machine.profile_snapshot``) when
        the run was profiled, else ``None``.
    dynamic:
        Open-system observations (:class:`repro.metrics.queueing.
        DynamicStats`) when the run had a dynamic workload attached
        (``SimulationSpec.dynamic``), else ``None``. Unlike the solver
        counters, these are *results* — deterministic functions of the
        spec and seed — so they participate in equality.
    faults:
        Degradation counters (:class:`repro.faults.FaultStats`) when the
        run had a fault plan attached (``SimulationSpec.faults``), else
        ``None``. Deterministic functions of the spec and seed — injection
        draws come from dedicated named RNG streams — so, like
        ``dynamic``, they participate in equality.

    All solver counters and the profile are *observability*, not physics:
    they vary with cache warmth and solver mode while the simulated
    trajectory stays bit-identical, so they are excluded from equality
    comparisons (``compare=False``).
    """

    makespan_us: float
    apps: tuple[AppResult, ...]
    target_names: tuple[str, ...]
    total_transactions: float
    context_switches: int
    migrations: int
    cpu_idle_us: float
    bus_solve_calls: int = field(default=0, compare=False)
    bus_cache_hits: int = field(default=0, compare=False)
    bus_bisection_steps: int = field(default=0, compare=False)
    bus_shared_hits: int = field(default=0, compare=False)
    bus_warm_starts: int = field(default=0, compare=False)
    solve_skips: int = field(default=0, compare=False)
    lane_rebuilds: int = field(default=0, compare=False)
    audit: "AuditReport | None" = field(default=None, compare=False)
    profile: dict[str, float] | None = field(default=None, compare=False)
    dynamic: "DynamicStats | None" = None
    faults: "FaultStats | None" = None

    @property
    def workload_rate_txus(self) -> float:
        """Cumulative workload transaction rate over the run (tx/µs).

        This is the quantity Figure 1A plots: total bus transactions of the
        whole workload divided by wall time.
        """
        if self.makespan_us <= 0:
            return 0.0
        return self.total_transactions / self.makespan_us

    def targets(self) -> list[AppResult]:
        """Results of the measured instances only."""
        return [a for a in self.apps if a.name in self.target_names]

    def mean_target_turnaround_us(self) -> float:
        """Arithmetic mean turnaround of the measured instances.

        This is the paper's reported metric ("the improvement in the
        arithmetic mean of the execution times of both application
        instances").
        """
        ts = [a.turnaround_us for a in self.targets()]
        if not ts or any(t is None for t in ts):
            raise ValueError("not all target instances finished")
        return sum(ts) / len(ts)  # type: ignore[arg-type]


def collect_run_result(
    machine: "Machine",
    apps: list["Application"],
    target_names: tuple[str, ...],
) -> RunResult:
    """Assemble a :class:`RunResult` from a finished simulation."""
    results = []
    total_tx = 0.0
    total_migrations = 0
    for app in apps:
        tx = rt = wd = 0.0
        migr = disp = 0
        for t in app.threads:
            snap = machine.counters.read(t.tid)
            tx += snap.bus_transactions
            rt += snap.cycles_us
            wd += snap.work_us
            migr += t.migration_count
            disp += t.dispatch_count
        total_tx += tx
        total_migrations += migr
        results.append(
            AppResult(
                name=app.name,
                app_id=app.app_id,
                turnaround_us=app.turnaround_us,
                transactions=tx,
                run_time_us=rt,
                work_done_us=wd,
                migrations=migr,
                dispatches=disp,
            )
        )
    switches = sum(c.context_switches for c in machine.cpus)
    idle = sum(c.idle_time(machine.now) for c in machine.cpus)
    return RunResult(
        makespan_us=machine.now,
        apps=tuple(results),
        target_names=tuple(target_names),
        total_transactions=total_tx,
        context_switches=switches,
        migrations=total_migrations,
        cpu_idle_us=idle,
        bus_solve_calls=machine.bus.solve_calls,
        bus_cache_hits=machine.bus.cache_hits,
        bus_bisection_steps=machine.bus.bisection_steps,
        bus_shared_hits=machine.bus.shared_hits,
        bus_warm_starts=machine.bus.warm_starts,
        solve_skips=machine.solve_skips,
        lane_rebuilds=machine.lane_rebuilds,
    )
