"""Derived statistics: the numbers the paper's figures actually plot.

* :func:`slowdown` — Figure 1B's metric: multiprogrammed turnaround over
  solo turnaround.
* :func:`improvement_percent` — Figure 2's metric: percentage improvement
  of a policy's mean target turnaround over the Linux baseline's.
* :func:`summarize_improvements` — the Section 5 text statistics
  (max / min / average improvement per experiment set).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

__all__ = [
    "slowdown",
    "improvement_percent",
    "geometric_mean",
    "ImprovementSummary",
    "summarize_improvements",
]


def slowdown(multiprogrammed_us: float, solo_us: float) -> float:
    """Turnaround ratio vs. the solo run (1.0 = no slowdown).

    >>> slowdown(300.0, 100.0)
    3.0
    """
    if solo_us <= 0:
        raise ValueError(f"solo turnaround must be positive, got {solo_us}")
    if multiprogrammed_us < 0:
        raise ValueError("negative turnaround")
    return multiprogrammed_us / solo_us


def improvement_percent(baseline_us: float, policy_us: float) -> float:
    """Percentage improvement of ``policy`` over ``baseline`` turnaround.

    Positive = the policy is faster. This is the paper's Figure 2 metric:
    "the improvement in the arithmetic mean of the execution times".

    >>> improvement_percent(200.0, 100.0)
    50.0
    >>> improvement_percent(100.0, 120.0)
    -20.0
    """
    if baseline_us <= 0:
        raise ValueError(f"baseline turnaround must be positive, got {baseline_us}")
    return (baseline_us - policy_us) / baseline_us * 100.0


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (used for slowdown aggregation).

    >>> geometric_mean([1.0, 4.0])
    2.0
    """
    vals = list(values)
    if not vals:
        raise ValueError("geometric mean of no values")
    if any(v <= 0 for v in vals):
        raise ValueError("geometric mean needs positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


@dataclass(frozen=True)
class ImprovementSummary:
    """Aggregate of one policy's improvements across applications.

    Attributes
    ----------
    mean_percent / max_percent / min_percent:
        Arithmetic mean and extremes of the per-application improvements.
    n_improved / n_regressed:
        How many applications sped up / slowed down under the policy.
    """

    mean_percent: float
    max_percent: float
    min_percent: float
    n_improved: int
    n_regressed: int

    def __str__(self) -> str:
        return (
            f"avg {self.mean_percent:+.1f}%  max {self.max_percent:+.1f}%  "
            f"min {self.min_percent:+.1f}%  ({self.n_improved} up, "
            f"{self.n_regressed} down)"
        )


def summarize_improvements(improvements: Iterable[float]) -> ImprovementSummary:
    """Summarize per-application improvement percentages (Section 5 text).

    >>> s = summarize_improvements([10.0, 50.0, -5.0])
    >>> round(s.mean_percent, 1), s.n_regressed
    (18.3, 1)
    """
    vals = list(improvements)
    if not vals:
        raise ValueError("no improvements to summarize")
    return ImprovementSummary(
        mean_percent=sum(vals) / len(vals),
        max_percent=max(vals),
        min_percent=min(vals),
        n_improved=sum(1 for v in vals if v > 0),
        n_regressed=sum(1 for v in vals if v < 0),
    )
