"""Periodic timeline sampling of machine state.

A :class:`TimelineSampler` registers a recurring observer event with the
engine and records, at each point, the bus utilisation, the aggregate
actual transaction rate implied by the current configuration, and the set
of running thread ids. Experiments use it to report time-resolved bus
behaviour (e.g. the saturation plateau under BBMA workloads) and tests use
it to assert that policies actually keep the bus busier without
overcommitting it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..sim.events import EventPriority

if TYPE_CHECKING:  # pragma: no cover
    from ..hw.machine import Machine
    from ..sim.engine import Engine

__all__ = ["TimelinePoint", "TimelineSampler"]


@dataclass(frozen=True)
class TimelinePoint:
    """One timeline observation.

    Attributes
    ----------
    time_us:
        Simulated time of the observation.
    utilisation:
        Bus utilisation in [0, 1].
    total_transactions:
        Cumulative transactions across all threads so far.
    running_tids:
        Threads on CPUs at the instant of observation.
    """

    time_us: float
    utilisation: float
    total_transactions: float
    running_tids: tuple[int, ...]


class TimelineSampler:
    """Record machine state every ``period_us`` of simulated time.

    Parameters
    ----------
    machine / engine:
        The simulation to observe.
    period_us:
        Sampling period (default 10 ms).
    """

    def __init__(self, machine: "Machine", engine: "Engine", period_us: float = 10_000.0) -> None:
        if period_us <= 0:
            raise ValueError("sampling period must be positive")
        self._machine = machine
        self._engine = engine
        self._period = period_us
        self.points: list[TimelinePoint] = []
        self._started = False

    def start(self) -> None:
        """Begin sampling (records a point at the current instant too)."""
        if self._started:
            return
        self._started = True
        self._sample()

    def _total_tx(self) -> float:
        bank = self._machine.counters
        return sum(bank.read(t).bus_transactions for t in bank.threads())

    def _sample(self) -> None:
        m = self._machine
        self.points.append(
            TimelinePoint(
                time_us=m.now,
                utilisation=m.bus_utilisation,
                total_transactions=self._total_tx(),
                running_tids=tuple(m.running_tids()),
            )
        )
        self._engine.schedule_after(self._period, self._sample, priority=EventPriority.OBSERVER)

    # -- aggregates --------------------------------------------------------------

    def mean_utilisation(self) -> float:
        """Unweighted mean of sampled utilisations (samples are periodic)."""
        if not self.points:
            raise ValueError("no timeline points recorded")
        return sum(p.utilisation for p in self.points) / len(self.points)

    def rate_between(self, t0_us: float, t1_us: float) -> float:
        """Average workload transaction rate over a time window (tx/µs)."""
        if t1_us <= t0_us:
            raise ValueError("empty window")
        pts = [p for p in self.points if t0_us <= p.time_us <= t1_us]
        if len(pts) < 2:
            raise ValueError("window too narrow for the sampling period")
        return (pts[-1].total_transactions - pts[0].total_transactions) / (
            pts[-1].time_us - pts[0].time_us
        )
