"""Streaming (O(1)-memory) accumulators for open-system queueing metrics.

At millions of jobs the per-job :class:`~repro.metrics.queueing.JobRecord`
list and the list-based batch-means CI cannot fit in memory.  This module
provides the constant-memory building blocks:

- :class:`P2Quantile` — the P² online quantile sketch of Jain & Chlamtac
  (CACM 1985): five markers tracked with parabolic interpolation.  Exact
  for the first five observations; afterwards the estimate for quantile
  ``q`` is documented to stay within the **rank envelope** ``q ± 0.1`` of
  the exact empirical distribution (i.e. the reported value lies between
  the exact ``q - 0.1`` and ``q + 0.1`` empirical quantiles) for the
  well-behaved distributions these sweeps produce.  Tests enforce that
  envelope.
- :class:`Welford` — running mean / variance (numerically stable).
- :class:`StreamingBatchMeans` — batch-means confidence intervals without
  retaining the sample.  Below a small buffer threshold it delegates to
  the exact list-based :func:`~repro.metrics.queueing.batch_means_ci`
  (bit-identical for every small run in the repo); past the threshold it
  switches to collapsing batches whose size doubles as data accumulate.
- :class:`StreamingQueueingStats` — the per-completion sink fed by
  ``OpenSystemDriver``; snapshots into a :class:`StreamingSummary` that
  `summarize_queueing` can consume when no job records were retained.

Also home to the scipy-less Student-t critical value fallback
(:func:`_t_fallback`), shared with ``repro.metrics.queueing``: a
Cornish–Fisher expansion in ``1/df`` (exact closed forms at df ∈ {1, 2}),
within 1% of scipy's ``t.ppf`` for df ≥ 3 at the usual confidences.

>>> sketch = P2Quantile(0.5)
>>> for x in [5.0, 1.0, 3.0, 2.0, 4.0]:
...     sketch.add(x)
>>> sketch.value()
3.0
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "P2Quantile",
    "Welford",
    "StreamingBatchMeans",
    "StreamingQueueingStats",
    "StreamingSummary",
]

# Quantiles reported by the dynamic sweeps: median plus the two tail
# points the open-system scheduling literature cares about.
REPORTED_QUANTILES: tuple[float, ...] = (0.5, 0.95, 0.99)

# Documented P² accuracy bound, in rank (quantile) units: the sketch's
# estimate for quantile q must lie between the exact empirical quantiles
# at q - P2_RANK_TOLERANCE and q + P2_RANK_TOLERANCE.
P2_RANK_TOLERANCE = 0.1


def _t_fallback(df: int, confidence: float) -> float:
    """Two-sided Student-t critical value without scipy.

    Exact for df 1 (Cauchy) and df 2 (closed form); for df >= 3 a
    Cornish-Fisher expansion of the t quantile around the normal quantile
    in powers of 1/df (Abramowitz & Stegun 26.7.5), accurate to <1% of
    scipy's ``t.ppf`` at the confidences used here.
    """
    if df < 1:
        raise ValueError(f"df must be >= 1, got {df}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    p = 0.5 + confidence / 2.0
    if df == 1:
        return math.tan(math.pi * (p - 0.5))
    if df == 2:
        u = 2.0 * p - 1.0
        return u * math.sqrt(2.0 / (4.0 * p * (1.0 - p)))
    from statistics import NormalDist

    z = NormalDist().inv_cdf(p)
    z2 = z * z
    g1 = (z2 + 1.0) * z / 4.0
    g2 = ((5.0 * z2 + 16.0) * z2 + 3.0) * z / 96.0
    g3 = (((3.0 * z2 + 19.0) * z2 + 17.0) * z2 - 15.0) * z / 384.0
    g4 = (
        ((((79.0 * z2 + 776.0) * z2 + 1482.0) * z2 - 1920.0) * z2 - 945.0)
        * z
        / 92160.0
    )
    d = float(df)
    return z + g1 / d + g2 / d**2 + g3 / d**3 + g4 / d**4


def _t_critical(df: int, confidence: float) -> float:
    """Two-sided Student-t critical value; scipy when present."""
    try:
        from scipy import stats as _scipy_stats  # type: ignore[import-untyped]

        return float(_scipy_stats.t.ppf(0.5 + confidence / 2.0, df))
    except ImportError:
        return _t_fallback(df, confidence)


def exact_quantile(sorted_values: list[float], q: float) -> float:
    """Linearly interpolated empirical quantile of a pre-sorted sample.

    Matches numpy's default ("linear") quantile method.

    >>> exact_quantile([1.0, 2.0, 3.0, 4.0], 0.5)
    2.5
    """
    if not sorted_values:
        raise ValueError("cannot take a quantile of an empty sample")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    n = len(sorted_values)
    if n == 1:
        return sorted_values[0]
    h = (n - 1) * q
    lo = int(math.floor(h))
    if lo >= n - 1:
        return sorted_values[-1]
    frac = h - lo
    return sorted_values[lo] + frac * (sorted_values[lo + 1] - sorted_values[lo])


class Welford:
    """Running mean and variance (Welford's online algorithm)."""

    __slots__ = ("n", "mean", "_m2")

    def __init__(self) -> None:
        self.n = 0
        self.mean = 0.0
        self._m2 = 0.0

    def add(self, x: float) -> None:
        self.n += 1
        delta = x - self.mean
        self.mean += delta / self.n
        self._m2 += delta * (x - self.mean)

    def variance(self) -> float | None:
        """Sample (n-1) variance; None until two observations exist."""
        if self.n < 2:
            return None
        return self._m2 / (self.n - 1)

    def std(self) -> float | None:
        var = self.variance()
        return None if var is None else math.sqrt(var)


class P2Quantile:
    """P² online estimator for a single quantile (Jain & Chlamtac 1985).

    Five markers track the min, the target quantile, the two mid
    quantiles and the max; marker heights are adjusted with a piecewise
    parabolic (fallback linear) fit as observations stream in.  Exact
    while n <= 5.  Accuracy bound: see ``P2_RANK_TOLERANCE``.
    """

    __slots__ = ("q", "_n", "_initial", "_heights", "_pos", "_desired", "_inc")

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {q}")
        self.q = q
        self._n = 0
        self._initial: list[float] = []
        self._heights: list[float] | None = None
        self._pos: list[float] = []
        self._desired: list[float] = []
        self._inc: tuple[float, ...] = ()

    @property
    def n(self) -> int:
        return self._n

    def add(self, x: float) -> None:
        if not math.isfinite(x):
            raise ValueError(f"P2Quantile requires finite observations, got {x!r}")
        self._n += 1
        if self._heights is None:
            self._initial.append(x)
            if len(self._initial) == 5:
                self._initial.sort()
                q = self.q
                self._heights = list(self._initial)
                self._pos = [1.0, 2.0, 3.0, 4.0, 5.0]
                self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
                self._inc = (0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0)
            return
        h = self._heights
        pos = self._pos
        if x < h[0]:
            h[0] = x
            cell = 0
        elif x >= h[4]:
            h[4] = x
            cell = 3
        else:
            cell = 0
            for i in range(1, 4):
                if x >= h[i]:
                    cell = i
        for i in range(cell + 1, 5):
            pos[i] += 1.0
        for i in range(5):
            self._desired[i] += self._inc[i]
        for i in range(1, 4):
            d = self._desired[i] - pos[i]
            if (d >= 1.0 and pos[i + 1] - pos[i] > 1.0) or (
                d <= -1.0 and pos[i - 1] - pos[i] < -1.0
            ):
                step = 1.0 if d >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:
                    h[i] = self._linear(i, step)
                pos[i] += step

    def _parabolic(self, i: int, d: float) -> float:
        h, pos = self._heights, self._pos
        assert h is not None
        return h[i] + d / (pos[i + 1] - pos[i - 1]) * (
            (pos[i] - pos[i - 1] + d) * (h[i + 1] - h[i]) / (pos[i + 1] - pos[i])
            + (pos[i + 1] - pos[i] - d) * (h[i] - h[i - 1]) / (pos[i] - pos[i - 1])
        )

    def _linear(self, i: int, d: float) -> float:
        h, pos = self._heights, self._pos
        assert h is not None
        j = i + int(d)
        return h[i] + d * (h[j] - h[i]) / (pos[j] - pos[i])

    def value(self) -> float | None:
        """Current quantile estimate; None before any observation."""
        if self._n == 0:
            return None
        if self._heights is None:
            return exact_quantile(sorted(self._initial), self.q)
        return self._heights[2]


class StreamingBatchMeans:
    """Batch-means mean/CI accumulator with bounded memory.

    While at most ``4 * n_batches`` observations have arrived, the raw
    sample is buffered and the result delegates to the exact list-based
    :func:`repro.metrics.queueing.batch_means_ci` — bit-identical to the
    pre-streaming implementation for every small sweep in the repo.
    Past the threshold the buffer is folded into ``n_batches`` batches
    and subsequent observations extend a collapsing scheme: whenever
    ``2 * n_batches`` complete batches accumulate, adjacent pairs merge
    and the batch size doubles, so memory stays O(n_batches) while the
    CI remains a valid batch-means interval (df = #batches - 1).

    The point mean is a plain running sum in arrival order, bit-identical
    to ``sum(values) / len(values)``.
    """

    __slots__ = (
        "n_batches",
        "confidence",
        "_buffer",
        "_sum",
        "_n",
        "_welford",
        "_batch_sums",
        "_batch_size",
        "_partial_sum",
        "_partial_n",
    )

    def __init__(self, n_batches: int = 10, confidence: float = 0.95) -> None:
        if n_batches < 2:
            raise ValueError(f"n_batches must be >= 2, got {n_batches}")
        if not 0.0 < confidence < 1.0:
            raise ValueError(f"confidence must be in (0, 1), got {confidence}")
        self.n_batches = n_batches
        self.confidence = confidence
        self._buffer: list[float] | None = []
        self._sum = 0.0
        self._n = 0
        self._welford = Welford()
        self._batch_sums: list[float] = []
        self._batch_size = 0
        self._partial_sum = 0.0
        self._partial_n = 0

    @property
    def n(self) -> int:
        return self._n

    def add(self, x: float) -> None:
        if not math.isfinite(x):
            raise ValueError(f"batch means require finite values, got {x!r}")
        self._n += 1
        self._sum += x
        self._welford.add(x)
        if self._buffer is not None:
            self._buffer.append(x)
            if len(self._buffer) > 4 * self.n_batches:
                self._spill()
            return
        self._partial_sum += x
        self._partial_n += 1
        if self._partial_n == self._batch_size:
            self._push_batch(self._partial_sum / self._partial_n)
            self._partial_sum = 0.0
            self._partial_n = 0

    def _spill(self) -> None:
        """Fold the exact buffer into fixed-size batches and go streaming."""
        buf = self._buffer
        assert buf is not None
        self._buffer = None
        self._batch_size = 4
        for start in range(0, len(buf) - len(buf) % self._batch_size, self._batch_size):
            chunk = buf[start : start + self._batch_size]
            self._push_batch(sum(chunk) / len(chunk))
        tail = buf[len(buf) - len(buf) % self._batch_size :]
        self._partial_sum = sum(tail)
        self._partial_n = len(tail)

    def _push_batch(self, batch_mean: float) -> None:
        self._batch_sums.append(batch_mean)
        if len(self._batch_sums) >= 2 * self.n_batches:
            self._batch_sums = [
                (self._batch_sums[i] + self._batch_sums[i + 1]) / 2.0
                for i in range(0, len(self._batch_sums) - 1, 2)
            ]
            self._batch_size *= 2

    def mean(self) -> float | None:
        if self._n == 0:
            return None
        return self._sum / self._n

    def std(self) -> float | None:
        """Sample standard deviation of the raw observations."""
        return self._welford.std()

    def result(self) -> tuple[float, float | None] | None:
        """``(mean, ci_half_width)`` or None when no data has arrived.

        The half-width is None while the sample is too small for a
        meaningful interval (mirrors ``batch_means_ci``).
        """
        if self._n == 0:
            return None
        if self._buffer is not None:
            from .queueing import batch_means_ci

            return batch_means_ci(
                self._buffer, n_batches=self.n_batches, confidence=self.confidence
            )
        mean = self._sum / self._n
        means = list(self._batch_sums)
        if self._partial_n:
            means.append(self._partial_sum / self._partial_n)
        k = len(means)
        if k < 2:
            return mean, None
        grand = sum(means) / k
        var = sum((m - grand) ** 2 for m in means) / (k - 1)
        half = _t_critical(k - 1, self.confidence) * math.sqrt(var / k)
        return mean, half


@dataclass(frozen=True)
class StreamingSummary:
    """Constant-size snapshot of a :class:`StreamingQueueingStats`.

    Quantile fields are ``((q, estimate), ...)`` pairs so the set of
    tracked quantiles serializes with the data.  All fields are plain
    scalars/tuples: the summary participates in dataclass equality and
    round-trips through the service JSON layer.
    """

    warmup_jobs: int
    n_batches: int
    confidence: float
    tau_us: float
    n_scheduled: int
    n_dropped: int
    n_observed: int
    n_kept: int
    mean_response_us: float | None
    response_ci_us: float | None
    response_std_us: float | None
    mean_slowdown: float | None
    slowdown_ci: float | None
    mean_wait_us: float | None
    response_quantiles_us: tuple[tuple[float, float], ...]
    slowdown_quantiles: tuple[tuple[float, float], ...]
    first_kept_completion_us: float | None
    last_kept_completion_us: float | None
    warmup_anchor_us: float | None

    def quantile(self, q: float, *, slowdown: bool = False) -> float | None:
        """Look up a tracked quantile estimate (None if not tracked)."""
        pairs = self.slowdown_quantiles if slowdown else self.response_quantiles_us
        for key, value in pairs:
            if key == q:
                return value
        return None


class StreamingQueueingStats:
    """Per-completion queueing-metric sink with O(1) memory.

    ``OpenSystemDriver`` calls :meth:`observe` once per completed job in
    completion order.  The first ``warmup_jobs`` completions are
    discarded (their last completion time is kept as the measurement
    window anchor); the rest feed batch-means accumulators for response
    time and bounded slowdown, P² sketches for the quantiles in
    ``REPORTED_QUANTILES``, and a running mean of admission wait.
    """

    __slots__ = (
        "warmup_jobs",
        "n_batches",
        "confidence",
        "tau_us",
        "_n_observed",
        "_response",
        "_slowdown",
        "_wait_sum",
        "_response_sketches",
        "_slowdown_sketches",
        "_first_kept_us",
        "_last_kept_us",
        "_warmup_anchor_us",
    )

    def __init__(
        self,
        warmup_jobs: int = 0,
        n_batches: int = 10,
        confidence: float = 0.95,
        tau_us: float = 0.0,
    ) -> None:
        if warmup_jobs < 0:
            raise ValueError(f"warmup_jobs must be >= 0, got {warmup_jobs}")
        if tau_us < 0.0:
            raise ValueError(f"tau_us must be >= 0, got {tau_us}")
        self.warmup_jobs = warmup_jobs
        self.n_batches = n_batches
        self.confidence = confidence
        self.tau_us = tau_us
        self._n_observed = 0
        self._response = StreamingBatchMeans(n_batches, confidence)
        self._slowdown = StreamingBatchMeans(n_batches, confidence)
        self._wait_sum = 0.0
        self._response_sketches = tuple(P2Quantile(q) for q in REPORTED_QUANTILES)
        self._slowdown_sketches = tuple(P2Quantile(q) for q in REPORTED_QUANTILES)
        self._first_kept_us: float | None = None
        self._last_kept_us: float | None = None
        self._warmup_anchor_us: float | None = None

    @property
    def n_observed(self) -> int:
        return self._n_observed

    @property
    def n_kept(self) -> int:
        return self._response.n

    def observe(
        self,
        arrival_us: float,
        admit_us: float,
        completion_us: float,
        nominal_service_us: float,
    ) -> None:
        from .queueing import bounded_slowdown

        self._n_observed += 1
        if self._n_observed <= self.warmup_jobs:
            self._warmup_anchor_us = completion_us
            return
        response = completion_us - arrival_us
        wait = admit_us - arrival_us
        slow = bounded_slowdown(response, nominal_service_us, tau_us=self.tau_us)
        if self._first_kept_us is None:
            self._first_kept_us = completion_us
        self._last_kept_us = completion_us
        self._response.add(response)
        self._slowdown.add(slow)
        self._wait_sum += wait
        for sketch in self._response_sketches:
            sketch.add(response)
        for sketch in self._slowdown_sketches:
            sketch.add(slow)

    def snapshot(self, n_scheduled: int, n_dropped: int) -> StreamingSummary:
        kept = self._response.n
        resp = self._response.result()
        slow = self._slowdown.result()
        return StreamingSummary(
            warmup_jobs=self.warmup_jobs,
            n_batches=self.n_batches,
            confidence=self.confidence,
            tau_us=self.tau_us,
            n_scheduled=n_scheduled,
            n_dropped=n_dropped,
            n_observed=self._n_observed,
            n_kept=kept,
            mean_response_us=resp[0] if resp else None,
            response_ci_us=resp[1] if resp else None,
            response_std_us=self._response.std(),
            mean_slowdown=slow[0] if slow else None,
            slowdown_ci=slow[1] if slow else None,
            mean_wait_us=self._wait_sum / kept if kept else None,
            response_quantiles_us=tuple(
                (s.q, v)
                for s in self._response_sketches
                if (v := s.value()) is not None
            ),
            slowdown_quantiles=tuple(
                (s.q, v)
                for s in self._slowdown_sketches
                if (v := s.value()) is not None
            ),
            first_kept_completion_us=self._first_kept_us,
            last_kept_completion_us=self._last_kept_us,
            warmup_anchor_us=self._warmup_anchor_us,
        )
