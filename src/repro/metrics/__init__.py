"""Measurement: per-run accounting, derived statistics, timelines.

* :mod:`repro.metrics.accounting` — per-application and per-run result
  records extracted from a finished simulation.
* :mod:`repro.metrics.stats` — derived quantities: slowdowns, turnaround
  improvements, workload summaries (the numbers the paper's figures plot).
* :mod:`repro.metrics.timeline` — periodic sampling of bus utilisation and
  running sets over simulated time.
* :mod:`repro.metrics.queueing` — steady-state open-system metrics
  (response time, bounded slowdown, batch-means confidence intervals) for
  dynamic-arrival runs driven by :mod:`repro.dynamic`.
* :mod:`repro.metrics.streaming` — O(1)-memory accumulators (P² quantile
  sketch, Welford, collapsing batch means) behind ``record_jobs=False``.
"""

from .accounting import AppResult, RunResult, collect_run_result
from .gantt import GanttChart, render_gantt
from .queueing import (
    DynamicStats,
    JobRecord,
    QueueingSummary,
    batch_means_ci,
    bounded_slowdown,
    summarize_queueing,
)
from .streaming import (
    P2Quantile,
    StreamingBatchMeans,
    StreamingQueueingStats,
    StreamingSummary,
    Welford,
)
from .stats import (
    geometric_mean,
    improvement_percent,
    slowdown,
    summarize_improvements,
)
from .timeline import TimelineSampler, TimelinePoint

__all__ = [
    "AppResult",
    "RunResult",
    "collect_run_result",
    "slowdown",
    "improvement_percent",
    "geometric_mean",
    "summarize_improvements",
    "TimelineSampler",
    "TimelinePoint",
    "GanttChart",
    "render_gantt",
    "DynamicStats",
    "JobRecord",
    "QueueingSummary",
    "batch_means_ci",
    "bounded_slowdown",
    "summarize_queueing",
    "P2Quantile",
    "StreamingBatchMeans",
    "StreamingQueueingStats",
    "StreamingSummary",
    "Welford",
]
