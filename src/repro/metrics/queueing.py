"""Steady-state queueing metrics for open-system (dynamic-arrival) runs.

The paper evaluates its CPU manager as a *closed* batch: a fixed
multiprogramming degree, turnaround measured per workload. Scheduler
evaluations beyond the paper judge policies under sustained job streams
with response-time and slowdown metrics (Sliwko, arXiv:2511.01860;
Feitelson's bounded slowdown). This module holds the *measurement* side of
that open-system capability; the load-generation side lives in
:mod:`repro.dynamic`.

Contents:

* :class:`JobRecord` — one job's lifecycle timestamps (arrival, admission,
  completion) plus its nominal solo service time.
* :class:`DynamicStats` — everything the open-system driver observed in a
  run: job records, queue-length time-average, admission drops, starvation
  watchdog extrema, bus-utilisation time-average. It is a frozen,
  picklable value object that participates in equality — two runs of the
  same seed must produce *identical* stats, which the determinism property
  tests assert.
* :func:`batch_means_ci` — confidence intervals via the method of batch
  means (the standard steady-state output-analysis technique: consecutive
  observations are grouped into batches whose means are approximately
  independent).
* :func:`summarize_queueing` — warmup truncation + derived metrics
  (response time, bounded slowdown, throughput, drop fraction) with CIs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

__all__ = [
    "JobRecord",
    "DynamicStats",
    "QueueingSummary",
    "batch_means_ci",
    "bounded_slowdown",
    "summarize_queueing",
]


@dataclass(frozen=True)
class JobRecord:
    """Lifecycle of one dynamically-arrived job.

    Attributes
    ----------
    index:
        Position in the arrival schedule (0-based).
    name:
        Application spec name the job instantiated.
    arrival_us:
        When the job arrived at the admission queue.
    admit_us:
        When it was admitted (launched and connected), or ``None`` if it
        was dropped by admission control.
    completion_us:
        When its last thread finished, or ``None`` (dropped, or still in
        service at harness stop — which the driver treats as an error for
        finite schedules).
    nominal_service_us:
        The job's solo execution time on an unloaded machine (its spec's
        per-thread work; threads run in parallel when dedicated), the
        denominator of the slowdown metric.
    app_id:
        Instance id assigned at admission (``None`` for dropped jobs).
    """

    index: int
    name: str
    arrival_us: float
    admit_us: float | None
    completion_us: float | None
    nominal_service_us: float
    app_id: int | None

    @property
    def dropped(self) -> bool:
        """Whether admission control rejected the job."""
        return self.admit_us is None

    @property
    def response_us(self) -> float | None:
        """Arrival → completion (queue wait + service), or ``None``."""
        if self.completion_us is None:
            return None
        return self.completion_us - self.arrival_us

    @property
    def wait_us(self) -> float | None:
        """Arrival → admission queueing delay, or ``None`` if dropped."""
        if self.admit_us is None:
            return None
        return self.admit_us - self.arrival_us


@dataclass(frozen=True)
class DynamicStats:
    """Raw open-system observations of one run (see the module docstring).

    All fields are deterministic functions of the spec + seed, so the
    dataclass participates in equality: the serial-vs-parallel property
    tests compare these bit-for-bit.

    Attributes
    ----------
    jobs:
        One record per scheduled arrival, in arrival order.
    queue_len_time_avg:
        Time-average of the admission queue length over the run.
    max_queue_len:
        Peak admission queue length.
    dropped:
        Jobs rejected because the queue was at capacity.
    max_starvation_age_us:
        Largest observed time any admitted, unfinished job went without
        making CPU progress (the no-starvation watchdog's measurement).
    starvation_bound_us:
        The largest bound the watchdog applied during the run (it scales
        with the number of co-resident jobs).
    starvation_violations:
        Polls at which some job's age exceeded the bound. The paper's
        head-first circular-list rotation guarantees this stays zero.
    utilization_time_avg:
        Mean bus utilisation sampled at the driver's poll cadence.
    saturated_fraction:
        Fraction of poll samples with bus utilisation at or above the
        saturation threshold — the bandwidth-regulation quality signal
        (lower is better at equal throughput).
    horizon_us:
        Simulated time when the stats were collected (run end).
    """

    jobs: tuple[JobRecord, ...]
    queue_len_time_avg: float
    max_queue_len: int
    dropped: int
    max_starvation_age_us: float
    starvation_bound_us: float
    starvation_violations: int
    utilization_time_avg: float
    saturated_fraction: float
    horizon_us: float

    @property
    def completed(self) -> list[JobRecord]:
        """Completed jobs in completion order."""
        done = [j for j in self.jobs if j.completion_us is not None]
        return sorted(done, key=lambda j: (j.completion_us, j.index))

    @property
    def n_completed(self) -> int:
        """Number of jobs that ran to completion."""
        return sum(1 for j in self.jobs if j.completion_us is not None)


def _t_critical(df: int, confidence: float) -> float:
    """Two-sided Student-t critical value (scipy when present, else normal).

    The container bakes scipy in; the normal fallback keeps the module
    importable without it (slightly narrow CIs at tiny batch counts).
    """
    try:
        from scipy import stats  # type: ignore

        return float(stats.t.ppf(0.5 + confidence / 2.0, df))
    except Exception:  # pragma: no cover - scipy is normally available
        from statistics import NormalDist

        return float(NormalDist().inv_cdf(0.5 + confidence / 2.0))


def batch_means_ci(
    values: Sequence[float],
    n_batches: int = 10,
    confidence: float = 0.95,
) -> tuple[float, float | None]:
    """Mean and CI half-width of ``values`` by the method of batch means.

    Consecutive observations are grouped into ``n_batches`` equal batches
    (order matters: batching whitens the autocorrelation of steady-state
    output series); the CI is a Student-t interval over the batch means.
    With fewer than four observations (or fewer than two batches) the
    half-width is ``None`` — a mean of so few correlated samples has no
    defensible error bar, and ``None`` (unlike the NaN this used to
    return) cannot silently propagate through downstream arithmetic or
    serialise as the string ``"nan"`` in CSV exports. Identical batch
    means legitimately yield a zero-width interval (0.0, not ``None``).

    >>> mean, hw = batch_means_ci([1.0, 2.0, 1.0, 2.0, 1.0, 2.0, 1.0, 2.0], n_batches=4)
    >>> round(mean, 3)
    1.5
    >>> batch_means_ci([1.0, 2.0])
    (1.5, None)
    >>> batch_means_ci([3.0] * 8, n_batches=4)
    (3.0, 0.0)
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if n_batches < 2:
        raise ValueError(f"need at least 2 batches, got {n_batches}")
    vals = [float(v) for v in values]
    if not vals:
        raise ValueError("no observations")
    if any(not math.isfinite(v) for v in vals):
        raise ValueError("observations must be finite")
    mean = sum(vals) / len(vals)
    k = min(n_batches, len(vals) // 2)
    if len(vals) < 4 or k < 2:
        return (mean, None)
    base, extra = divmod(len(vals), k)
    means = []
    start = 0
    for b in range(k):
        size = base + (1 if b < extra else 0)
        batch = vals[start : start + size]
        start += size
        means.append(sum(batch) / len(batch))
    grand = sum(means) / k
    var = sum((m - grand) ** 2 for m in means) / (k - 1)
    half = _t_critical(k - 1, confidence) * math.sqrt(var / k)
    return (mean, half)


def bounded_slowdown(response_us: float, service_us: float, tau_us: float = 0.0) -> float:
    """Bounded slowdown: ``response / max(service, tau)``, floored at 1.

    ``tau`` keeps very short jobs from dominating the average (a 1 ms job
    delayed by one quantum would otherwise report a slowdown of hundreds);
    ``tau = 0`` reduces to the plain slowdown ratio.

    A zero service time (a degenerate no-work job) is well-defined rather
    than an error: with ``tau > 0`` the bound takes over as usual; with
    ``tau = 0`` the slowdown is 1.0 for an instant response and ``inf``
    otherwise (the mathematical limit), never a ZeroDivisionError or NaN.
    Only *negative* service is rejected.

    >>> bounded_slowdown(300.0, 100.0)
    3.0
    >>> bounded_slowdown(300.0, 10.0, tau_us=100.0)
    3.0
    >>> bounded_slowdown(300.0, 0.0, tau_us=100.0)
    3.0
    >>> bounded_slowdown(0.0, 0.0)
    1.0
    """
    if service_us < 0:
        raise ValueError(f"service time must be non-negative, got {service_us}")
    if response_us < 0:
        raise ValueError("negative response time")
    denom = max(service_us, tau_us)
    if denom <= 0:
        return math.inf if response_us > 0 else 1.0
    return max(1.0, response_us / denom)


@dataclass(frozen=True)
class QueueingSummary:
    """Derived steady-state metrics of one open-system run.

    Attributes
    ----------
    n_jobs / n_completed / n_dropped:
        Schedule size, completions, admission drops.
    drop_fraction:
        ``n_dropped / n_jobs``.
    mean_response_us / response_ci_us:
        Mean response time (arrival → completion) over the post-warmup
        completions, with its batch-means CI half-width (``None`` when
        too few observations for a defensible error bar).
    mean_slowdown / slowdown_ci:
        Mean bounded slowdown and its CI half-width (``None`` likewise).
    mean_wait_us:
        Mean admission-queue delay of post-warmup completions.
    throughput_jobs_per_s:
        Post-warmup completions per simulated second.
    queue_len_time_avg / utilization_time_avg / saturated_fraction:
        Copied from :class:`DynamicStats` (whole-run time averages).
    max_starvation_age_us / starvation_bound_us / starvation_ok:
        Watchdog extrema; ``starvation_ok`` is the no-starvation verdict.
    """

    n_jobs: int
    n_completed: int
    n_dropped: int
    drop_fraction: float
    mean_response_us: float
    response_ci_us: float | None
    mean_slowdown: float
    slowdown_ci: float | None
    mean_wait_us: float
    throughput_jobs_per_s: float
    queue_len_time_avg: float
    utilization_time_avg: float
    saturated_fraction: float
    max_starvation_age_us: float
    starvation_bound_us: float
    starvation_ok: bool


def summarize_queueing(
    stats: DynamicStats,
    warmup_jobs: int = 0,
    n_batches: int = 10,
    confidence: float = 0.95,
    tau_us: float = 0.0,
) -> QueueingSummary:
    """Reduce raw open-system observations to steady-state metrics.

    ``warmup_jobs`` completions are discarded (in completion order) before
    averaging — the standard truncation that removes the empty-system
    transient. Queue-length and utilisation averages are whole-run (they
    are already time averages and converge regardless).

    Raises
    ------
    ValueError
        If no job completed after warmup (nothing to summarize).
    """
    if warmup_jobs < 0:
        raise ValueError(f"warmup_jobs must be >= 0, got {warmup_jobs}")
    done = stats.completed
    kept = done[warmup_jobs:]
    if not kept:
        raise ValueError(
            f"no completions left after warmup ({len(done)} completed, "
            f"warmup_jobs={warmup_jobs})"
        )
    responses = [j.response_us for j in kept]
    slowdowns = [
        bounded_slowdown(j.response_us, j.nominal_service_us, tau_us) for j in kept
    ]
    waits = [j.wait_us for j in kept]
    mean_resp, resp_ci = batch_means_ci(responses, n_batches, confidence)
    mean_slow, slow_ci = batch_means_ci(slowdowns, n_batches, confidence)
    first = kept[0].completion_us
    last = kept[-1].completion_us
    span_us = last - first
    # Rate over the post-warmup completion window; a single completion has
    # no window, fall back to the whole horizon.
    if span_us > 0 and len(kept) > 1:
        throughput = (len(kept) - 1) / span_us * 1e6
    else:
        throughput = len(kept) / stats.horizon_us * 1e6 if stats.horizon_us > 0 else 0.0
    return QueueingSummary(
        n_jobs=len(stats.jobs),
        n_completed=stats.n_completed,
        n_dropped=stats.dropped,
        drop_fraction=stats.dropped / len(stats.jobs) if stats.jobs else 0.0,
        mean_response_us=mean_resp,
        response_ci_us=resp_ci,
        mean_slowdown=mean_slow,
        slowdown_ci=slow_ci,
        mean_wait_us=sum(waits) / len(waits),
        throughput_jobs_per_s=throughput,
        queue_len_time_avg=stats.queue_len_time_avg,
        utilization_time_avg=stats.utilization_time_avg,
        saturated_fraction=stats.saturated_fraction,
        max_starvation_age_us=stats.max_starvation_age_us,
        starvation_bound_us=stats.starvation_bound_us,
        starvation_ok=stats.starvation_violations == 0,
    )
