"""Steady-state queueing metrics for open-system (dynamic-arrival) runs.

The paper evaluates its CPU manager as a *closed* batch: a fixed
multiprogramming degree, turnaround measured per workload. Scheduler
evaluations beyond the paper judge policies under sustained job streams
with response-time and slowdown metrics (Sliwko, arXiv:2511.01860;
Feitelson's bounded slowdown). This module holds the *measurement* side of
that open-system capability; the load-generation side lives in
:mod:`repro.dynamic`.

Contents:

* :class:`JobRecord` — one job's lifecycle timestamps (arrival, admission,
  completion) plus its nominal solo service time.
* :class:`DynamicStats` — everything the open-system driver observed in a
  run: job records, queue-length time-average, admission drops, starvation
  watchdog extrema, bus-utilisation time-average. It is a frozen,
  picklable value object that participates in equality — two runs of the
  same seed must produce *identical* stats, which the determinism property
  tests assert.
* :func:`batch_means_ci` — confidence intervals via the method of batch
  means (the standard steady-state output-analysis technique: consecutive
  observations are grouped into batches whose means are approximately
  independent).
* :func:`summarize_queueing` — warmup truncation + derived metrics
  (response time, bounded slowdown, throughput, drop fraction) with CIs
  and p50/p95/p99 quantiles. Works from the full record list when present,
  or from the driver's O(1)-memory :class:`~repro.metrics.streaming.
  StreamingSummary` when records were disabled (``record_jobs=False``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from .streaming import StreamingSummary, _t_fallback, exact_quantile

__all__ = [
    "JobRecord",
    "DynamicStats",
    "QueueingSummary",
    "batch_means_ci",
    "bounded_slowdown",
    "summarize_queueing",
]


@dataclass(frozen=True)
class JobRecord:
    """Lifecycle of one dynamically-arrived job.

    Attributes
    ----------
    index:
        Position in the arrival schedule (0-based).
    name:
        Application spec name the job instantiated.
    arrival_us:
        When the job arrived at the admission queue.
    admit_us:
        When it was admitted (launched and connected), or ``None`` if it
        was dropped by admission control.
    completion_us:
        When its last thread finished, or ``None`` (dropped, or still in
        service at harness stop — which the driver treats as an error for
        finite schedules).
    nominal_service_us:
        The job's solo execution time on an unloaded machine (its spec's
        per-thread work; threads run in parallel when dedicated), the
        denominator of the slowdown metric.
    app_id:
        Instance id assigned at admission (``None`` for dropped jobs).
    """

    index: int
    name: str
    arrival_us: float
    admit_us: float | None
    completion_us: float | None
    nominal_service_us: float
    app_id: int | None

    @property
    def dropped(self) -> bool:
        """Whether admission control rejected the job."""
        return self.admit_us is None

    @property
    def response_us(self) -> float | None:
        """Arrival → completion (queue wait + service), or ``None``."""
        if self.completion_us is None:
            return None
        return self.completion_us - self.arrival_us

    @property
    def wait_us(self) -> float | None:
        """Arrival → admission queueing delay, or ``None`` if dropped."""
        if self.admit_us is None:
            return None
        return self.admit_us - self.arrival_us


@dataclass(frozen=True)
class DynamicStats:
    """Raw open-system observations of one run (see the module docstring).

    All fields are deterministic functions of the spec + seed, so the
    dataclass participates in equality: the serial-vs-parallel property
    tests compare these bit-for-bit.

    Attributes
    ----------
    jobs:
        One record per scheduled arrival, in arrival order.
    queue_len_time_avg:
        Time-average of the admission queue length over the run.
    max_queue_len:
        Peak admission queue length.
    dropped:
        Jobs rejected because the queue was at capacity.
    max_starvation_age_us:
        Largest observed time any admitted, unfinished job went without
        making CPU progress (the no-starvation watchdog's measurement).
    starvation_bound_us:
        The largest bound the watchdog applied during the run (it scales
        with the number of co-resident jobs).
    starvation_violations:
        Polls at which some job's age exceeded the bound. The paper's
        head-first circular-list rotation guarantees this stays zero.
    utilization_time_avg:
        Mean bus utilisation sampled at the driver's poll cadence.
    saturated_fraction:
        Fraction of poll samples with bus utilisation at or above the
        saturation threshold — the bandwidth-regulation quality signal
        (lower is better at equal throughput).
    horizon_us:
        Simulated time when the stats were collected (run end).
    streaming:
        Constant-size streamed summary fed per-completion by the driver
        (always populated by new runs). When ``record_jobs=False`` demoted
        ``jobs`` to an empty tuple, this is the only measurement left and
        :func:`summarize_queueing` reads from it.
    """

    jobs: tuple[JobRecord, ...]
    queue_len_time_avg: float
    max_queue_len: int
    dropped: int
    max_starvation_age_us: float
    starvation_bound_us: float
    starvation_violations: int
    utilization_time_avg: float
    saturated_fraction: float
    horizon_us: float
    streaming: StreamingSummary | None = None

    @property
    def completed(self) -> list[JobRecord]:
        """Completed jobs in completion order."""
        done = [j for j in self.jobs if j.completion_us is not None]
        return sorted(done, key=lambda j: (j.completion_us, j.index))

    @property
    def n_completed(self) -> int:
        """Number of jobs that ran to completion."""
        return sum(1 for j in self.jobs if j.completion_us is not None)


def _t_critical(df: int, confidence: float) -> float:
    """Two-sided Student-t critical value (scipy when present).

    The container bakes scipy in; without it the df-aware
    :func:`repro.metrics.streaming._t_fallback` expansion takes over
    (<1% of scipy for df >= 3 — the old normal-quantile fallback ignored
    ``df`` entirely and was anti-conservative at small batch counts).
    """
    try:
        from scipy import stats  # type: ignore

        return float(stats.t.ppf(0.5 + confidence / 2.0, df))
    except Exception:  # pragma: no cover - scipy is normally available
        return _t_fallback(df, confidence)


def batch_means_ci(
    values: Sequence[float],
    n_batches: int = 10,
    confidence: float = 0.95,
) -> tuple[float, float | None]:
    """Mean and CI half-width of ``values`` by the method of batch means.

    Consecutive observations are grouped into ``n_batches`` equal batches
    (order matters: batching whitens the autocorrelation of steady-state
    output series); the CI is a Student-t interval over the batch means.
    With fewer than four observations (or fewer than two batches) the
    half-width is ``None`` — a mean of so few correlated samples has no
    defensible error bar, and ``None`` (unlike the NaN this used to
    return) cannot silently propagate through downstream arithmetic or
    serialise as the string ``"nan"`` in CSV exports. Identical batch
    means legitimately yield a zero-width interval (0.0, not ``None``).

    >>> mean, hw = batch_means_ci([1.0, 2.0, 1.0, 2.0, 1.0, 2.0, 1.0, 2.0], n_batches=4)
    >>> round(mean, 3)
    1.5
    >>> batch_means_ci([1.0, 2.0])
    (1.5, None)
    >>> batch_means_ci([3.0] * 8, n_batches=4)
    (3.0, 0.0)
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if n_batches < 2:
        raise ValueError(f"need at least 2 batches, got {n_batches}")
    vals = [float(v) for v in values]
    if not vals:
        raise ValueError("no observations")
    if any(not math.isfinite(v) for v in vals):
        raise ValueError("observations must be finite")
    mean = sum(vals) / len(vals)
    k = min(n_batches, len(vals) // 2)
    if len(vals) < 4 or k < 2:
        return (mean, None)
    base, extra = divmod(len(vals), k)
    means = []
    start = 0
    for b in range(k):
        size = base + (1 if b < extra else 0)
        batch = vals[start : start + size]
        start += size
        means.append(sum(batch) / len(batch))
    grand = sum(means) / k
    var = sum((m - grand) ** 2 for m in means) / (k - 1)
    half = _t_critical(k - 1, confidence) * math.sqrt(var / k)
    return (mean, half)


def bounded_slowdown(response_us: float, service_us: float, tau_us: float = 0.0) -> float:
    """Bounded slowdown: ``response / max(service, tau)``, floored at 1.

    ``tau`` keeps very short jobs from dominating the average (a 1 ms job
    delayed by one quantum would otherwise report a slowdown of hundreds);
    ``tau = 0`` reduces to the plain slowdown ratio.

    A zero service time (a degenerate no-work job) is well-defined rather
    than an error: with ``tau > 0`` the bound takes over as usual; with
    ``tau = 0`` the slowdown is 1.0 for an instant response and ``inf``
    otherwise (the mathematical limit), never a ZeroDivisionError or NaN.
    Only *negative* service is rejected.

    >>> bounded_slowdown(300.0, 100.0)
    3.0
    >>> bounded_slowdown(300.0, 10.0, tau_us=100.0)
    3.0
    >>> bounded_slowdown(300.0, 0.0, tau_us=100.0)
    3.0
    >>> bounded_slowdown(0.0, 0.0)
    1.0
    """
    if service_us < 0:
        raise ValueError(f"service time must be non-negative, got {service_us}")
    if response_us < 0:
        raise ValueError("negative response time")
    denom = max(service_us, tau_us)
    if denom <= 0:
        return math.inf if response_us > 0 else 1.0
    return max(1.0, response_us / denom)


@dataclass(frozen=True)
class QueueingSummary:
    """Derived steady-state metrics of one open-system run.

    Attributes
    ----------
    n_jobs / n_completed / n_dropped:
        Schedule size, completions, admission drops.
    drop_fraction:
        ``n_dropped / n_jobs``.
    mean_response_us / response_ci_us:
        Mean response time (arrival → completion) over the post-warmup
        completions, with its batch-means CI half-width (``None`` when
        too few observations for a defensible error bar).
    mean_slowdown / slowdown_ci:
        Mean bounded slowdown and its CI half-width (``None`` likewise).
    mean_wait_us:
        Mean admission-queue delay of post-warmup completions.
    throughput_jobs_per_s:
        Post-warmup completions per simulated second.
    queue_len_time_avg / utilization_time_avg / saturated_fraction:
        Copied from :class:`DynamicStats` (whole-run time averages).
    max_starvation_age_us / starvation_bound_us / starvation_ok:
        Watchdog extrema; ``starvation_ok`` is the no-starvation verdict.
    response_p50_us / response_p95_us / response_p99_us:
        Response-time quantiles over post-warmup completions — exact
        (linear interpolation) when job records are available, P² sketch
        estimates when summarizing a records-off streamed run.
    slowdown_p50 / slowdown_p95 / slowdown_p99:
        Same for bounded slowdown.
    """

    n_jobs: int
    n_completed: int
    n_dropped: int
    drop_fraction: float
    mean_response_us: float
    response_ci_us: float | None
    mean_slowdown: float
    slowdown_ci: float | None
    mean_wait_us: float
    throughput_jobs_per_s: float
    queue_len_time_avg: float
    utilization_time_avg: float
    saturated_fraction: float
    max_starvation_age_us: float
    starvation_bound_us: float
    starvation_ok: bool
    response_p50_us: float | None = None
    response_p95_us: float | None = None
    response_p99_us: float | None = None
    slowdown_p50: float | None = None
    slowdown_p95: float | None = None
    slowdown_p99: float | None = None


def _window_throughput(
    n_kept: int,
    first_us: float,
    last_us: float,
    anchor_us: float | None,
    horizon_us: float,
) -> float:
    """Completions per simulated second over the post-warmup window.

    The primary estimator is the inter-completion rate over the kept
    completions' own span. When every kept completion shares a timestamp
    (span 0) the window has not vanished — the measurement window starts
    at the last warmup completion (``anchor_us``), or at time 0 without
    warmup — so the rate is taken over that window instead of silently
    falling back to the whole-horizon rate (which understated throughput
    exactly when completions were densest). The horizon fallback remains
    only for the genuinely windowless cases (a single kept completion
    with no warmup anchor, or everything at t=0).
    """
    span_us = last_us - first_us
    if n_kept > 1 and span_us > 0:
        return (n_kept - 1) / span_us * 1e6
    if anchor_us is not None and last_us > anchor_us:
        return n_kept / (last_us - anchor_us) * 1e6
    if n_kept > 1 and last_us > 0:
        return n_kept / last_us * 1e6
    return n_kept / horizon_us * 1e6 if horizon_us > 0 else 0.0


def _summarize_streamed(
    stats: DynamicStats,
    warmup_jobs: int,
    n_batches: int,
    confidence: float,
    tau_us: float,
) -> QueueingSummary:
    """Build the summary from the driver's streamed accumulators."""
    s = stats.streaming
    assert s is not None
    requested = (warmup_jobs, n_batches, confidence, tau_us)
    streamed = (s.warmup_jobs, s.n_batches, s.confidence, s.tau_us)
    if requested != streamed:
        raise ValueError(
            "records were disabled for this run; the streamed summary was "
            f"accumulated with (warmup_jobs, n_batches, confidence, tau_us)="
            f"{streamed} and cannot be re-summarized with {requested}"
        )
    if s.n_kept == 0 or s.mean_response_us is None:
        raise ValueError(
            f"no completions left after warmup ({s.n_observed} completed, "
            f"warmup_jobs={warmup_jobs})"
        )
    throughput = _window_throughput(
        s.n_kept,
        s.first_kept_completion_us if s.first_kept_completion_us is not None else 0.0,
        s.last_kept_completion_us if s.last_kept_completion_us is not None else 0.0,
        s.warmup_anchor_us,
        stats.horizon_us,
    )
    return QueueingSummary(
        n_jobs=s.n_scheduled,
        n_completed=s.n_observed,
        n_dropped=stats.dropped,
        drop_fraction=stats.dropped / s.n_scheduled if s.n_scheduled else 0.0,
        mean_response_us=s.mean_response_us,
        response_ci_us=s.response_ci_us,
        mean_slowdown=s.mean_slowdown,
        slowdown_ci=s.slowdown_ci,
        mean_wait_us=s.mean_wait_us,
        throughput_jobs_per_s=throughput,
        queue_len_time_avg=stats.queue_len_time_avg,
        utilization_time_avg=stats.utilization_time_avg,
        saturated_fraction=stats.saturated_fraction,
        max_starvation_age_us=stats.max_starvation_age_us,
        starvation_bound_us=stats.starvation_bound_us,
        starvation_ok=stats.starvation_violations == 0,
        response_p50_us=s.quantile(0.5),
        response_p95_us=s.quantile(0.95),
        response_p99_us=s.quantile(0.99),
        slowdown_p50=s.quantile(0.5, slowdown=True),
        slowdown_p95=s.quantile(0.95, slowdown=True),
        slowdown_p99=s.quantile(0.99, slowdown=True),
    )


def summarize_queueing(
    stats: DynamicStats,
    warmup_jobs: int = 0,
    n_batches: int = 10,
    confidence: float = 0.95,
    tau_us: float = 0.0,
) -> QueueingSummary:
    """Reduce raw open-system observations to steady-state metrics.

    ``warmup_jobs`` completions are discarded (in completion order) before
    averaging — the standard truncation that removes the empty-system
    transient. Queue-length and utilisation averages are whole-run (they
    are already time averages and converge regardless).

    When the run kept no job records (``record_jobs=False``) but carries a
    streamed summary, the metrics come from that instead; the summarize
    parameters must then match the ones the stream was accumulated with
    (the driver wires them from the same ``DynamicWorkload`` fields), and
    the quantiles are P² sketch estimates rather than exact.

    Raises
    ------
    ValueError
        If no job completed after warmup (nothing to summarize), or if a
        records-off run is re-summarized with different parameters.
    """
    if warmup_jobs < 0:
        raise ValueError(f"warmup_jobs must be >= 0, got {warmup_jobs}")
    if not stats.jobs and stats.streaming is not None:
        return _summarize_streamed(stats, warmup_jobs, n_batches, confidence, tau_us)
    done = stats.completed
    kept = done[warmup_jobs:]
    if not kept:
        raise ValueError(
            f"no completions left after warmup ({len(done)} completed, "
            f"warmup_jobs={warmup_jobs})"
        )
    responses = [j.response_us for j in kept]
    slowdowns = [
        bounded_slowdown(j.response_us, j.nominal_service_us, tau_us) for j in kept
    ]
    waits = [j.wait_us for j in kept]
    mean_resp, resp_ci = batch_means_ci(responses, n_batches, confidence)
    mean_slow, slow_ci = batch_means_ci(slowdowns, n_batches, confidence)
    resp_sorted = sorted(responses)
    slow_sorted = sorted(slowdowns)
    anchor = done[warmup_jobs - 1].completion_us if warmup_jobs > 0 else None
    throughput = _window_throughput(
        len(kept),
        kept[0].completion_us,
        kept[-1].completion_us,
        anchor,
        stats.horizon_us,
    )
    return QueueingSummary(
        n_jobs=len(stats.jobs),
        n_completed=stats.n_completed,
        n_dropped=stats.dropped,
        drop_fraction=stats.dropped / len(stats.jobs) if stats.jobs else 0.0,
        mean_response_us=mean_resp,
        response_ci_us=resp_ci,
        mean_slowdown=mean_slow,
        slowdown_ci=slow_ci,
        mean_wait_us=sum(waits) / len(waits),
        throughput_jobs_per_s=throughput,
        queue_len_time_avg=stats.queue_len_time_avg,
        utilization_time_avg=stats.utilization_time_avg,
        saturated_fraction=stats.saturated_fraction,
        max_starvation_age_us=stats.max_starvation_age_us,
        starvation_bound_us=stats.starvation_bound_us,
        starvation_ok=stats.starvation_violations == 0,
        response_p50_us=exact_quantile(resp_sorted, 0.5),
        response_p95_us=exact_quantile(resp_sorted, 0.95),
        response_p99_us=exact_quantile(resp_sorted, 0.99),
        slowdown_p50=exact_quantile(slow_sorted, 0.5),
        slowdown_p95=exact_quantile(slow_sorted, 0.95),
        slowdown_p99=exact_quantile(slow_sorted, 0.99),
    )
