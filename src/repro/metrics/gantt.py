"""ASCII Gantt charts of CPU occupancy from simulation traces.

Renders who ran where over time — the fastest way to *see* a scheduling
policy's behaviour (gang blocks under the CPU manager, the thread soup
under Linux, idle holes left by I/O waits). Works from the machine's
dispatch trace, so any traced simulation can be rendered after the fact.

Example output::

    cpu0 |AAAAAAAA....BBBBBBBB....AAAAAAAA|
    cpu1 |AAAAAAAA....BBBBBBBB....AAAAAAAA|
    cpu2 |bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb|
    cpu3 |nnnnnnnnnnnnnnnnnnnnnnnnnnnnnnnn|
          0 ms                        800 ms
    A=CG#1  B=CG#2  b=BBMA#3  n=nBBMA#4
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..hw.machine import Machine
    from ..sim.trace import TraceRecorder

__all__ = ["GanttChart", "render_gantt"]

#: Symbols assigned to applications, in first-seen order. Upper-case for
#: multi-threaded applications, lower-case pool for the rest.
_SYMBOLS = "ABCDEFGHJKLMNPQRSTUVWXYZabcdefghjklmnpqrstuvwxyz0123456789"

#: Idle cell.
_IDLE = "."


@dataclass(frozen=True)
class GanttChart:
    """A rendered occupancy chart.

    Attributes
    ----------
    rows:
        One string of cells per CPU.
    legend:
        Symbol → application label.
    t0_us / t1_us:
        Time window covered.
    """

    rows: tuple[str, ...]
    legend: dict[str, str]
    t0_us: float
    t1_us: float

    def __str__(self) -> str:
        lines = [
            f"cpu{i} |{row}|" for i, row in enumerate(self.rows)
        ]
        span = f"      {self.t0_us / 1e3:.0f} ms" + " " * max(
            1, len(self.rows[0]) - 12
        ) + f"{self.t1_us / 1e3:.0f} ms"
        lines.append(span)
        lines.append(
            "  ".join(f"{sym}={label}" for sym, label in self.legend.items())
        )
        return "\n".join(lines)


def _occupancy_segments(machine: "Machine", trace: "TraceRecorder"):
    """Reconstruct per-CPU (start, end, tid) segments from dispatch records.

    The trace records every placement; a CPU's occupant holds from its
    dispatch record until the next record that changes that CPU (or the
    occupant's exit/block/io event removes it — those show up as the next
    dispatch or as nothing, in which case the segment is closed at `now`
    only if the thread still runs there).
    """
    n = machine.n_cpus
    current: list[int | None] = [None] * n
    started: list[float] = [0.0] * n
    segments: list[list[tuple[float, float, int]]] = [[] for _ in range(n)]

    def close(cpu: int, t: float) -> None:
        tid = current[cpu]
        if tid is not None and t > started[cpu]:
            segments[cpu].append((started[cpu], t, tid))

    for rec in trace.records("sched."):
        if rec.category not in ("sched.dispatch", "sched.migrate"):
            continue
        cpu = rec.data["cpu"]
        tid = rec.data["tid"]
        # the thread may have been running elsewhere: close that segment
        for other in range(n):
            if current[other] == tid and other != cpu:
                close(other, rec.time)
                current[other] = None
        close(cpu, rec.time)
        current[cpu] = tid
        started[cpu] = rec.time
    # close open segments at the machine's current occupancy
    for cpu in range(n):
        if current[cpu] is not None:
            occupant = machine.cpus[cpu].tid
            end = machine.now
            if occupant != current[cpu]:
                # the thread left (exit/block/io) without a replacement
                # dispatch; approximate the departure with the machine's
                # last settled time (we lack the exact instant).
                end = machine.now
            close(cpu, end)
    return segments


def render_gantt(
    machine: "Machine",
    trace: "TraceRecorder | None" = None,
    width: int = 72,
    t0_us: float | None = None,
    t1_us: float | None = None,
) -> GanttChart:
    """Render CPU occupancy as an ASCII Gantt chart.

    Parameters
    ----------
    machine:
        The simulated machine (after or during a run).
    trace:
        Trace to read dispatch records from (default: the machine's own).
    width:
        Chart width in cells; each cell shows the majority occupant of its
        time slice.
    t0_us / t1_us:
        Window to render (defaults: 0 → machine.now).

    Raises
    ------
    ValueError
        If the machine has no trace records or the window is empty.
    """
    trace = trace if trace is not None else machine.trace
    t0 = 0.0 if t0_us is None else float(t0_us)
    t1 = machine.now if t1_us is None else float(t1_us)
    if t1 <= t0:
        raise ValueError("empty Gantt window")
    if width < 8:
        raise ValueError("width must be at least 8 cells")
    segments = _occupancy_segments(machine, trace)
    if not any(segments):
        raise ValueError(
            "no dispatch records in the trace (was the simulation traced?)"
        )

    # symbol assignment by application, first-seen order
    tid_to_app: dict[int, tuple[int, str]] = {}
    for t in machine.threads():
        tid_to_app[t.tid] = (t.app_id, t.name.rsplit(".", 1)[0])
    app_symbol: dict[int, str] = {}
    legend: dict[str, str] = {}

    def symbol_for(tid: int) -> str:
        app_id, label = tid_to_app[tid]
        if app_id not in app_symbol:
            sym = _SYMBOLS[len(app_symbol) % len(_SYMBOLS)]
            app_symbol[app_id] = sym
            legend[sym] = label
        return app_symbol[app_id]

    cell_us = (t1 - t0) / width
    rows: list[str] = []
    for cpu_segments in segments:
        cells = []
        for i in range(width):
            lo = t0 + i * cell_us
            hi = lo + cell_us
            # majority occupant of [lo, hi)
            best_tid, best_overlap = None, 0.0
            for s, e, tid in cpu_segments:
                overlap = min(e, hi) - max(s, lo)
                if overlap > best_overlap:
                    best_overlap = overlap
                    best_tid = tid
            cells.append(symbol_for(best_tid) if best_tid is not None else _IDLE)
        rows.append("".join(cells))
    return GanttChart(rows=tuple(rows), legend=legend, t0_us=t0, t1_us=t1)
