"""Configuration dataclasses for machines, schedulers and experiments.

All configuration objects are frozen dataclasses validated eagerly in
``__post_init__`` — an invalid configuration raises
:class:`repro.errors.ConfigError` before any simulation starts. Objects are
plain data: they can be compared, hashed, copied with
:func:`dataclasses.replace` and serialized with :meth:`to_dict`.

The default values model the paper's experimental platform: a dedicated
4-processor SMP of 1.4 GHz Intel Xeon processors with 256 KB L2 caches and a
400 MHz front-side bus whose sustained capacity — measured with STREAM — is
29.5 bus transactions per microsecond (≈1797 MB/s at 64 B/transaction).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any

from .errors import ConfigError
from .units import STREAM_CAPACITY_TXUS, XEON_L2_BYTES, ms

__all__ = [
    "BusConfig",
    "CacheConfig",
    "MachineConfig",
    "LinuxSchedConfig",
    "ManagerConfig",
    "canonical_json",
    "canonical_hash",
]


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise ConfigError(message)


def canonical_json(payload: Any) -> str:
    """Serialize a JSON-able payload to its canonical text form.

    Canonical means: keys sorted, no whitespace, ``repr``-exact floats
    (Python's ``json`` emits the shortest round-tripping decimal for a
    binary64), and non-finite floats rejected. Two payloads produce the
    same canonical text iff they are the same JSON value, so the text is
    a stable hashing substrate across processes and interpreter runs —
    unlike ``pickle`` (protocol-dependent) or ``hash()`` (salted).

    Integers and floats canonicalize distinctly (``1`` vs ``1.0``): a
    config field changing numeric *type* is a different configuration.
    """
    try:
        return json.dumps(
            payload, sort_keys=True, separators=(",", ":"), allow_nan=False
        )
    except (TypeError, ValueError) as exc:
        raise ConfigError(f"payload is not canonically serializable: {exc}") from exc


def canonical_hash(payload: Any) -> str:
    """SHA-256 hex digest of :func:`canonical_json` of ``payload``.

    This is the stable identity used by :meth:`repro.experiments.base.
    SimulationSpec.spec_hash` and the service result cache: equal
    payloads hash equal in every process; any field change produces a
    new digest.
    """
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class BusConfig:
    """Parameters of the shared front-side bus contention model.

    The model (see :mod:`repro.hw.bus`) treats the bus as a shared server
    whose per-transaction stall latency is ``lam0`` when unloaded. Below
    saturation, arbitration inflates it mildly with offered load; when the
    offered demand exceeds the sustained capacity, the latency rises to
    exactly the value at which aggregate actual throughput equals capacity
    (the bus always delivers its full sustained bandwidth under saturation,
    as STREAM demonstrates on the real platform). ``lam0`` is calibrated so
    that a pure streaming thread (the BBMA microbenchmark, ~0% cache hit
    rate) issues the paper's 23.6 transactions/µs: ``lam0 = 1 / 23.6``.

    Attributes
    ----------
    capacity_txus:
        Sustained bus capacity in transactions per microsecond. The paper
        measures 29.5 with STREAM.
    lam0_us:
        Unloaded per-transaction stall latency in µs.
    contention_coeff:
        Sub-saturation arbitration term: ``lam = lam0·(1 + c·rho²)`` where
        ``rho`` is offered demand over capacity. Dimensionless, small.
    mem_exponent:
        Exponent of the demand→stall-fraction map,
        ``m = min(1, (r·lam0)^mem_exponent)``. Values below 1 make
        moderate-rate codes more latency-sensitive than a linear stall
        budget would suggest (pointer-chasing misses don't overlap), which
        is what Figure 1B shows.
    unfairness:
        Arbitration unfairness ``beta``: a thread with stall fraction ``m``
        observes effective latency ``lam·(1 + beta·(1 - m))``. Back-to-back
        streaming requesters (m → 1) hold the bus and pay the base
        latency; sparse requesters re-arbitrate per transaction and pay
        more. Zero restores perfectly fair shared latency.
    arbitration:
        ``"shared-latency"`` — every thread sees the same per-transaction
        latency (saturated bandwidth shares end up roughly proportional to
        demand), or ``"max-min"`` — saturated bandwidth is divided max-min
        fairly (ablation ABL-A).
    fixed_point_tol:
        Convergence tolerance of the latency equilibrium search.
    solver_mode:
        Root-finding strategy of the saturation equilibrium search.
        ``"bisect"`` (default) — pure interval bisection from the cold
        ``[lam_c, 2^k·lam_c]`` bracket, the reference implementation.
        ``"newton"`` — guarded Newton iteration with an analytic
        derivative, warm-started from the model's previous saturated
        equilibrium (the running set drifts little between adjacent
        quanta, so the previous root is an excellent seed); any step
        leaving the known bracket falls back to bisection. Both modes
        converge to the same root within ``fixed_point_tol``
        (``tests/hw/test_bus_newton.py`` proves the equivalence on
        randomized workloads); newton typically needs ~5× fewer
        throughput evaluations.
        ``"vector"`` — the same guarded-Newton iteration with every
        per-lane evaluation batched into numpy array operations (one
        elementwise kernel per iteration instead of a Python loop over
        lanes). The array kernels evaluate the identical IEEE-754
        expressions with sequential (``cumsum``) reductions, so vector
        mode is *bitwise identical* to newton mode
        (``tests/hw/test_bus_vector.py``) — it is the fast path, newton
        the scalar A/B reference. Selecting vector mode also arms the
        vectorized settle loop and dirty-mask entry reuse in
        :class:`repro.hw.machine.Machine`.
    solve_cache_size:
        Capacity (entries) of the LRU memo cache inside
        :meth:`repro.hw.bus.BusModel.solve`, keyed on the canonicalized
        multiset of quantized requests. Running-thread sets recur every
        scheduling cycle, so a small cache removes most bisection work.
        ``0`` disables memoization (every solve recomputes).
    """

    capacity_txus: float = STREAM_CAPACITY_TXUS
    lam0_us: float = 1.0 / 23.6
    contention_coeff: float = 0.05
    mem_exponent: float = 0.65
    unfairness: float = 1.1
    arbitration: str = "shared-latency"
    fixed_point_tol: float = 1e-10
    solver_mode: str = "bisect"
    solve_cache_size: int = 1024

    def __post_init__(self) -> None:
        _require(self.capacity_txus > 0, "bus capacity must be positive")
        _require(self.lam0_us > 0, "lam0 must be positive")
        _require(self.contention_coeff >= 0, "contention_coeff must be >= 0")
        _require(0 < self.mem_exponent <= 1.0, "mem_exponent must be in (0, 1]")
        _require(self.unfairness >= 0, "unfairness must be >= 0")
        _require(
            self.arbitration in ("shared-latency", "max-min"),
            f"unknown arbitration model {self.arbitration!r}",
        )
        _require(0 < self.fixed_point_tol < 1e-2, "fixed_point_tol out of range")
        _require(
            self.solver_mode in ("bisect", "newton", "vector"),
            f"unknown solver mode {self.solver_mode!r}",
        )
        _require(self.solve_cache_size >= 0, "solve_cache_size must be >= 0")

    def to_dict(self) -> dict[str, Any]:
        """Serialize to a plain dictionary."""
        return dataclasses.asdict(self)


@dataclass(frozen=True)
class CacheConfig:
    """Parameters of the per-CPU L2 cache warmth model.

    The simulator does not model individual cache lines; it tracks, per CPU,
    how much of each thread's working set is resident ("warmth"). A thread
    dispatched with cold cache owes a *rebuild debt* of compulsory refill
    transactions, during which its bus demand is elevated and its progress
    reduced. This reproduces (a) the benefit of cache-affinity scheduling,
    (b) the migration sensitivity of high-hit-ratio codes (LU CB,
    Water-nsqr) and (c) the demand bursts that destabilize the Latest
    Quantum policy.

    Attributes
    ----------
    size_bytes:
        L2 capacity per processor (the paper's Xeons: 256 KB).
    line_bytes:
        Cache line (= bus transaction) size.
    rebuild_fill_rate_txus:
        Peak rate at which a thread refills its working set, tx/µs, before
        bus contention is applied.
    rebuild_progress_factor:
        Multiplier (< 1) applied to a thread's progress while it is
        rebuilding cache state; cold threads mostly stall.
    """

    size_bytes: int = XEON_L2_BYTES
    line_bytes: int = 64
    rebuild_fill_rate_txus: float = 20.0
    rebuild_progress_factor: float = 0.35

    def __post_init__(self) -> None:
        _require(self.size_bytes > 0, "cache size must be positive")
        _require(self.line_bytes > 0, "line size must be positive")
        _require(self.size_bytes % self.line_bytes == 0, "cache size must be a multiple of line size")
        _require(self.rebuild_fill_rate_txus > 0, "rebuild fill rate must be positive")
        _require(
            0 < self.rebuild_progress_factor <= 1.0,
            "rebuild_progress_factor must be in (0, 1]",
        )

    @property
    def total_lines(self) -> int:
        """Number of cache lines in the L2."""
        return self.size_bytes // self.line_bytes

    def to_dict(self) -> dict[str, Any]:
        """Serialize to a plain dictionary."""
        return dataclasses.asdict(self)


@dataclass(frozen=True)
class MachineConfig:
    """A complete SMP machine description.

    Attributes
    ----------
    n_cpus:
        Number of physical processors/cores (paper: 4).
    smt_ways:
        Logical CPUs per physical core. The paper's Xeons are 2-way
        hyperthreaded but the authors had to *disable* HT (the perfctr
        driver could not virtualize counters for sibling threads) and name
        SMT as future work; the default of 1 reproduces their setup, 2
        enables the extension. Logical siblings share their core's
        execution resources and its L2 cache.
    smt_efficiency:
        Per-thread execution efficiency when both siblings of a core are
        busy (early Xeon HT: two threads each ran at ~0.6–0.65 of solo
        core speed). Has no effect with ``smt_ways == 1``.
    bus:
        Front-side bus model parameters.
    cache:
        Per-core L2 cache model parameters (shared by SMT siblings).
    """

    n_cpus: int = 4
    smt_ways: int = 1
    smt_efficiency: float = 0.62
    bus: BusConfig = field(default_factory=BusConfig)
    cache: CacheConfig = field(default_factory=CacheConfig)

    def __post_init__(self) -> None:
        _require(self.n_cpus >= 1, "a machine needs at least one CPU")
        _require(self.smt_ways >= 1, "smt_ways must be >= 1")
        _require(0 < self.smt_efficiency <= 1.0, "smt_efficiency must be in (0, 1]")
        _require(isinstance(self.bus, BusConfig), "bus must be a BusConfig")
        _require(isinstance(self.cache, CacheConfig), "cache must be a CacheConfig")

    @property
    def n_logical_cpus(self) -> int:
        """Logical CPUs visible to schedulers (cores × SMT ways)."""
        return self.n_cpus * self.smt_ways

    def core_of(self, logical_cpu: int) -> int:
        """The physical core a logical CPU belongs to."""
        if not 0 <= logical_cpu < self.n_logical_cpus:
            raise ConfigError(f"no such logical cpu {logical_cpu}")
        return logical_cpu // self.smt_ways

    def to_dict(self) -> dict[str, Any]:
        """Serialize to a plain (nested) dictionary."""
        return {
            "n_cpus": self.n_cpus,
            "smt_ways": self.smt_ways,
            "smt_efficiency": self.smt_efficiency,
            "bus": self.bus.to_dict(),
            "cache": self.cache.to_dict(),
        }


@dataclass(frozen=True)
class LinuxSchedConfig:
    """Parameters of the Linux 2.4-like O(n) epoch scheduler baseline.

    Modeled after the 2.4.20 kernel the paper uses: each runnable thread
    holds a ``counter`` of remaining ticks this epoch; when every runnable
    thread's counter is exhausted a new epoch recharges them; CPUs pick the
    runnable thread with the highest ``goodness`` (counter plus a
    cache-affinity bonus for the CPU the thread last ran on).

    Attributes
    ----------
    tick_us:
        Scheduler tick period (Linux 2.4 on x86: 10 ms).
    default_ticks:
        Time-slice ticks granted per epoch at default priority
        (2.4's ~60 ms slice at nice 0 ≈ 6 ticks).
    affinity_bonus:
        Goodness bonus for staying on the last CPU (PROC_CHANGE_PENALTY).
    rebalance_prob:
        Per-tick probability of a random pairwise swap of running threads,
        modelling the residual migration noise of a real 2.4 kernel
        (wakeups, interrupts). Zero disables.
    """

    tick_us: float = ms(10)
    default_ticks: int = 6
    affinity_bonus: int = 15
    rebalance_prob: float = 0.004

    def __post_init__(self) -> None:
        _require(self.tick_us > 0, "tick must be positive")
        _require(self.default_ticks >= 1, "default_ticks must be >= 1")
        _require(self.affinity_bonus >= 0, "affinity_bonus must be >= 0")
        _require(0 <= self.rebalance_prob <= 1, "rebalance_prob must be a probability")

    @property
    def timeslice_us(self) -> float:
        """Nominal time slice per epoch, in µs."""
        return self.tick_us * self.default_ticks

    def to_dict(self) -> dict[str, Any]:
        """Serialize to a plain dictionary."""
        return dataclasses.asdict(self)


@dataclass(frozen=True)
class ManagerConfig:
    """Parameters of the user-level CPU manager (Section 4 of the paper).

    Attributes
    ----------
    quantum_us:
        CPU-manager scheduling quantum. The paper uses 200 ms — twice the
        Linux quantum — after finding that 100 ms causes an excessive number
        of context switches due to conflicting user/kernel-level decisions.
    samples_per_quantum:
        How many times per quantum each application publishes its
        accumulated bus-transaction counts to the shared arena ("the bus
        transaction rate is updated twice per scheduling quantum").
    window_length:
        Number of samples in the Quanta Window moving average (paper: 5).
    fitness_scale:
        Numerator of the fitness metric (Equation 1: 1000).
    signal_first_hop_us:
        Latency of a manager → application signal (first thread).
    signal_forward_us:
        Per-thread latency of the in-application signal forwarding chain.
    signal_cost_lines:
        Cache disturbance (lines of rebuild debt) charged to a thread for
        handling a delivered signal — the mechanism behind the manager's
        measured overhead (paper: at most 4.5 % in the worst case).
    saturation_aware:
        Enable saturation-aware estimation: a bandwidth measurement taken
        while the whole workload consumed ≥ ``saturation_threshold`` of
        the bus capacity is only a *lower bound* on the job's demand, so
        it never lowers the job's estimate. Without this, four streaming
        jobs measured under saturation each report ≈ capacity/4 and the
        fitness metric packs them together as a "perfect" match — a
        self-reinforcing limit cycle that starves the applications (see
        DESIGN.md §6 and the ABL-S ablation). The paper notes its
        scheduler was "tuned for robustness" without detailing how; this
        is our tuning.
    saturation_threshold:
        Fraction of the believed bus capacity above which a measurement
        interval counts as saturated.
    signal_protocol:
        ``"counter"`` — the paper's inversion-protection counting, or
        ``"sequence"`` — last-writer-wins sequence numbers (loss-tolerant
        when combined with ``resend_intent``).
    resend_intent:
        Re-send every application's current block/unblock intent at each
        quantum boundary instead of only on transitions. Recovers from
        lost signals; requires the ``"sequence"`` protocol (asymmetric
        resends poison the counter protocol's counts).
    hardening:
        Enable the graceful-degradation machinery when (and only when) a
        fault plan is active on the run: signal acknowledgement deadline
        with targeted retry, sample-staleness fallback and the hung-app
        watchdog. The knobs below are inert in fault-free runs — the
        manager schedules no extra events, so fault-free trajectories are
        bit-identical with hardening on or off.
    signal_ack_deadline_us:
        How long after a quantum boundary's signals the manager waits
        before verifying that every thread's realised blocked state
        matches its intent. ``None`` derives a deadline from the signal
        settle time (first hop + per-thread forwarding) plus the fault
        plan's injected delay bound.
    signal_max_retries:
        Verification rounds per quantum boundary. Each round re-sends
        only the mismatched threads' intents and doubles the wait
        (exponential backoff); after the last round the manager gives up
        until the next boundary restates intent afresh.
    staleness_quanta:
        Number of consecutive quanta an application may run without a
        fresh counter sample before its estimate is considered stale and
        the policy falls back to the last trusted average. When *every*
        connected application is stale the manager abandons fitness
        packing entirely for bandwidth-agnostic head-first selection.
    watchdog_quanta:
        Number of consecutive quanta a selected, unblocked application
        may make zero progress before the watchdog declares it hung and
        quarantines it (releases its arena slot and stops scheduling it)
        rather than letting it pin processors.
    """

    quantum_us: float = ms(200)
    samples_per_quantum: int = 2
    window_length: int = 5
    fitness_scale: float = 1000.0
    signal_first_hop_us: float = 30.0
    signal_forward_us: float = 15.0
    signal_cost_lines: float = 64.0
    saturation_aware: bool = True
    saturation_threshold: float = 0.9
    signal_protocol: str = "counter"
    resend_intent: bool = False
    hardening: bool = True
    signal_ack_deadline_us: float | None = None
    signal_max_retries: int = 6
    staleness_quanta: int = 2
    watchdog_quanta: int = 3

    def __post_init__(self) -> None:
        _require(self.quantum_us > 0, "quantum must be positive")
        _require(self.samples_per_quantum >= 1, "need at least one sample per quantum")
        _require(self.window_length >= 1, "window_length must be >= 1")
        _require(self.fitness_scale > 0, "fitness_scale must be positive")
        _require(self.signal_first_hop_us >= 0, "signal latency must be >= 0")
        _require(self.signal_forward_us >= 0, "signal latency must be >= 0")
        _require(self.signal_cost_lines >= 0, "signal cost must be >= 0")
        _require(0 < self.saturation_threshold <= 1.0, "saturation_threshold must be in (0, 1]")
        _require(
            self.signal_protocol in ("counter", "sequence"),
            f"unknown signal protocol {self.signal_protocol!r}",
        )
        _require(
            not self.resend_intent or self.signal_protocol == "sequence",
            "resend_intent requires the sequence signal protocol "
            "(asymmetric resends poison the counter protocol)",
        )
        _require(
            self.signal_ack_deadline_us is None or self.signal_ack_deadline_us > 0,
            "signal_ack_deadline_us must be positive (or None to derive)",
        )
        _require(self.signal_max_retries >= 0, "signal_max_retries must be >= 0")
        _require(self.staleness_quanta >= 1, "staleness_quanta must be >= 1")
        _require(self.watchdog_quanta >= 1, "watchdog_quanta must be >= 1")

    @property
    def sample_period_us(self) -> float:
        """Interval between consecutive counter samples, in µs."""
        return self.quantum_us / self.samples_per_quantum

    def to_dict(self) -> dict[str, Any]:
        """Serialize to a plain dictionary."""
        return dataclasses.asdict(self)
