"""Deterministic, named random-number streams.

Reproducibility is a hard requirement: the same experiment configuration and
seed must produce bit-identical results so that paper figures can be
regenerated and property tests can shrink failures. All stochastic behaviour
in the simulator (bursty demand patterns, synthetic workload generation,
tie-breaking) draws from a :class:`RngRegistry`, which derives one
independent :class:`numpy.random.Generator` per *named* stream from a single
root seed.

Deriving streams by name (rather than by creation order) means adding a new
consumer of randomness does not perturb existing streams — experiments stay
comparable across library versions.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RngRegistry", "derive_seed"]


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and a stream ``name``.

    The derivation is a SHA-256 of the root seed and the name, so it is
    stable across Python versions and platforms (unlike ``hash()``).

    >>> derive_seed(42, "bus") == derive_seed(42, "bus")
    True
    >>> derive_seed(42, "bus") != derive_seed(42, "cache")
    True
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class RngRegistry:
    """A factory of independent named random streams under one root seed.

    Parameters
    ----------
    seed:
        Root seed. Two registries with the same seed produce identical
        streams for identical names.

    Examples
    --------
    >>> reg = RngRegistry(seed=7)
    >>> a = reg.stream("workload.raytrace")
    >>> b = RngRegistry(seed=7).stream("workload.raytrace")
    >>> float(a.random()) == float(b.random())
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed this registry was created with."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        Repeated calls with the same name return the *same* generator
        object, so a consumer that draws repeatedly advances its own stream
        without affecting any other.
        """
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.default_rng(derive_seed(self._seed, name))
            self._streams[name] = gen
        return gen

    def fork(self, name: str) -> "RngRegistry":
        """Create a child registry whose root seed is derived from ``name``.

        Useful when an experiment spawns repetitions: each repetition gets
        its own registry (``reg.fork(f"rep{i}")``) and therefore fully
        independent streams.
        """
        return RngRegistry(derive_seed(self._seed, f"fork:{name}"))

    def spawn_seed(self, name: str) -> int:
        """Return a derived integer seed without creating a stream."""
        return derive_seed(self._seed, name)
