"""Kernel-level schedulers.

* :mod:`repro.sched.base` — the scheduler interface and shared plumbing.
* :mod:`repro.sched.dedicated` — static pinning, no time sharing (the
  Section 3 / Figure 1 configurations).
* :mod:`repro.sched.linux` — a Linux 2.4-like O(n) epoch scheduler with
  dynamic priorities and cache-affinity goodness bonus: the paper's
  baseline, and the substrate the user-level CPU manager runs on top of.
* :mod:`repro.sched.gang` — a plain round-robin gang scheduler (extra
  baseline: gang structure without bandwidth awareness).
"""

from .base import Job, KernelScheduler, jobs_from_apps
from .dedicated import DedicatedScheduler
from .gang import RoundRobinGangScheduler
from .linux import LinuxScheduler
from .linux_o1 import LinuxO1Scheduler, O1SchedConfig

__all__ = [
    "Job",
    "KernelScheduler",
    "jobs_from_apps",
    "DedicatedScheduler",
    "LinuxScheduler",
    "LinuxO1Scheduler",
    "O1SchedConfig",
    "RoundRobinGangScheduler",
]
