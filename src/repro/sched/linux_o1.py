"""A Linux 2.6-style O(1) scheduler: a newer-kernel baseline.

The paper's baseline is the 2.4 O(n) scheduler. By 2003 the O(1)
scheduler (Ingo Molnar, merged in 2.5) was replacing it, with a very
different structure whose relevant mechanics this model reproduces:

* **per-CPU runqueues** — each CPU schedules from its own queue; threads
  stay where they are unless the balancer moves them (much stronger
  affinity than 2.4's global queue);
* **active/expired arrays** — a thread exhausting its timeslice (100 ms at
  nice 0) moves to the *expired* array with a fresh slice; when the active
  array empties, the arrays swap — strict epoch fairness within a CPU;
* **load balancing** — a periodic balancer moves threads from the busiest
  runqueue to underloaded ones when the imbalance exceeds a threshold
  (and immediately when a CPU goes idle — "idle balancing").

Like 2.4 — and this is the point of including it — the O(1) scheduler
knows *nothing about bus bandwidth*: it will happily co-schedule four
streaming threads from four different runqueues. Running the paper's
workloads against it (EXT-K) answers whether the paper's contribution is
an artifact of the old kernel or survives the newer design: per-CPU
queues reduce migrations (helping cache-sensitive codes) but make the
co-schedule *mix* even more static, so bandwidth mismatches persist
longer.

Interactivity heuristics (sleep-based bonuses) are omitted: the paper's
workloads are CPU-bound, and our I/O threads sleep on a scale where the
bonus would not change decisions.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..errors import ConfigError
from ..sim.events import EventPriority
from ..units import ms
from .base import KernelScheduler

if TYPE_CHECKING:  # pragma: no cover
    from ..hw.machine import ThreadState

__all__ = ["O1SchedConfig", "LinuxO1Scheduler"]


@dataclass(frozen=True)
class O1SchedConfig:
    """Parameters of the O(1) scheduler model.

    Attributes
    ----------
    tick_us:
        Scheduler tick (2.6 on x86: 1 ms; 10 ms keeps simulation cost
        comparable to the 2.4 model without changing behaviour at our
        timeslice granularity).
    timeslice_us:
        Slice granted per epoch (2.6 nice-0 default: 100 ms).
    balance_interval_us:
        Period of the active load balancer.
    imbalance_threshold:
        Minimum queue-length difference that triggers a migration.
    """

    tick_us: float = ms(10)
    timeslice_us: float = ms(100)
    balance_interval_us: float = ms(200)
    imbalance_threshold: int = 2

    def __post_init__(self) -> None:
        if self.tick_us <= 0 or self.timeslice_us <= 0 or self.balance_interval_us <= 0:
            raise ConfigError("O(1) scheduler periods must be positive")
        if self.timeslice_us < self.tick_us:
            raise ConfigError("timeslice must be at least one tick")
        if self.imbalance_threshold < 1:
            raise ConfigError("imbalance_threshold must be >= 1")


class _RunQueue:
    """One CPU's active/expired arrays (waiting threads only)."""

    __slots__ = ("active", "expired")

    def __init__(self) -> None:
        self.active: deque[int] = deque()
        self.expired: deque[int] = deque()

    def __len__(self) -> int:
        return len(self.active) + len(self.expired)

    def pop_next(self) -> int | None:
        """Next thread to run; swaps arrays when active drains."""
        if not self.active and self.expired:
            self.active, self.expired = self.expired, self.active
        return self.active.popleft() if self.active else None

    def remove(self, tid: int) -> bool:
        """Remove a thread from either array (False if absent)."""
        for arr in (self.active, self.expired):
            try:
                arr.remove(tid)
                return True
            except ValueError:
                continue
        return False

    def steal_tail(self) -> int | None:
        """Take a migration victim (expired first — coldest cache)."""
        if self.expired:
            return self.expired.pop()
        if self.active:
            return self.active.pop()
        return None


class LinuxO1Scheduler(KernelScheduler):
    """Per-CPU runqueues with active/expired arrays and load balancing."""

    def __init__(self, config: O1SchedConfig | None = None) -> None:
        super().__init__()
        self.config = config or O1SchedConfig()
        self._queues: list[_RunQueue] = []
        self._slice_left: dict[int, float] = {}
        self._home: dict[int, int] = {}  # tid -> runqueue cpu
        self._migrations_balanced = 0

    # ------------------------------------------------------------------ start

    def start(self) -> None:
        """Distribute threads round-robin, dispatch, start tick + balancer."""
        machine = self.machine
        self._queues = [_RunQueue() for _ in machine.cpus]
        for i, t in enumerate(machine.runnable_threads()):
            cpu = i % machine.n_cpus
            self._enqueue(t.tid, cpu)
        for cpu in machine.cpus:
            self._schedule_next(cpu.cpu_id)
        self.engine.schedule_after(self.config.tick_us, self._tick, priority=EventPriority.KERNEL)
        self.engine.schedule_after(
            self.config.balance_interval_us, self._balance, priority=EventPriority.KERNEL
        )

    # -------------------------------------------------------------- inspection

    @property
    def balanced_migrations(self) -> int:
        """Threads moved between runqueues by the balancer."""
        return self._migrations_balanced

    def queue_length(self, cpu_id: int) -> int:
        """Waiting threads on one runqueue (excludes the running thread)."""
        return len(self._queues[cpu_id])

    # ------------------------------------------------------------------ queues

    def _enqueue(self, tid: int, cpu: int, expired: bool = False) -> None:
        # Guard against double-enqueue (wake racing a queued entry).
        for q in self._queues:
            if tid in q.active or tid in q.expired:
                return
        self._home[tid] = cpu
        if tid not in self._slice_left:
            self._slice_left[tid] = self.config.timeslice_us
        if expired:
            self._queues[cpu].expired.append(tid)
        else:
            self._queues[cpu].active.append(tid)

    def _schedule_next(self, cpu_id: int) -> None:
        """Dispatch the runqueue's next runnable thread, or idle."""
        machine = self.machine
        queue = self._queues[cpu_id]
        while True:
            tid = queue.pop_next()
            if tid is None:
                # idle balancing: steal from the busiest queue
                victim = self._steal_for(cpu_id)
                if victim is None:
                    return
                tid = victim
            thread = machine.thread(tid)
            if not thread.runnable:
                continue  # stale entry (finished/blocked while queued)
            machine.dispatch(cpu_id, tid)
            self._home[tid] = cpu_id
            return

    def _steal_for(self, cpu_id: int) -> int | None:
        lengths = [(len(q), i) for i, q in enumerate(self._queues) if i != cpu_id]
        if not lengths:
            return None
        busiest_len, busiest = max(lengths)
        if busiest_len == 0:
            return None
        tid = self._queues[busiest].steal_tail()
        if tid is not None:
            self._migrations_balanced += 1
        return tid

    # -------------------------------------------------------------------- tick

    def _tick(self) -> None:
        machine = self.machine
        if machine.all_finished():
            return
        cfg = self.config
        for cpu in machine.cpus:
            tid = cpu.tid
            if tid is None:
                self._schedule_next(cpu.cpu_id)
                continue
            left = self._slice_left.get(tid, cfg.timeslice_us) - cfg.tick_us
            self._slice_left[tid] = left
            if left <= 0:
                # slice exhausted: fresh slice, to the expired array
                self._slice_left[tid] = cfg.timeslice_us
                machine.dispatch(cpu.cpu_id, None)
                self._enqueue(tid, cpu.cpu_id, expired=True)
                self._schedule_next(cpu.cpu_id)
        self.engine.schedule_after(cfg.tick_us, self._tick, priority=EventPriority.KERNEL)

    # ----------------------------------------------------------------- balance

    def _balance(self) -> None:
        machine = self.machine
        if machine.all_finished():
            return
        # total load per cpu = queue length + (1 if running)
        loads = [
            len(self._queues[c.cpu_id]) + (0 if c.tid is None else 1)
            for c in machine.cpus
        ]
        busiest = max(range(len(loads)), key=lambda i: loads[i])
        idlest = min(range(len(loads)), key=lambda i: loads[i])
        if loads[busiest] - loads[idlest] >= self.config.imbalance_threshold:
            tid = self._queues[busiest].steal_tail()
            if tid is not None:
                self._migrations_balanced += 1
                self._enqueue(tid, idlest)
                if machine.cpus[idlest].tid is None:
                    self._schedule_next(idlest)
        self.engine.schedule_after(
            self.config.balance_interval_us, self._balance, priority=EventPriority.KERNEL
        )

    # -------------------------------------------------------------- callbacks

    def on_thread_exit(self, thread: "ThreadState") -> None:
        """Drop bookkeeping; refill the freed CPU from its runqueue."""
        tid = thread.tid
        self._slice_left.pop(tid, None)
        home = self._home.pop(tid, None)
        if home is not None:
            self._queues[home].remove(tid)
        for cpu in self.machine.cpus:
            if cpu.idle:
                self._schedule_next(cpu.cpu_id)

    def on_block_change(self, tid: int, blocked: bool) -> None:
        """CPU-manager signals: dequeue on block, re-enqueue on unblock."""
        if blocked:
            home = self._home.get(tid)
            if home is not None:
                self._queues[home].remove(tid)
            for cpu in self.machine.cpus:
                if cpu.idle:
                    self._schedule_next(cpu.cpu_id)
        else:
            self._wake(tid)

    def on_io_change(self, thread: "ThreadState", asleep: bool) -> None:
        """I/O: the sleeping thread leaves its queue; wake re-enters it."""
        if asleep:
            home = self._home.get(thread.tid)
            if home is not None:
                self._queues[home].remove(thread.tid)
            for cpu in self.machine.cpus:
                if cpu.idle:
                    self._schedule_next(cpu.cpu_id)
        elif not thread.finished:
            self._wake(thread.tid)

    def on_new_threads(self) -> None:
        """Dynamic arrivals: enqueue on the idlest runqueue."""
        machine = self.machine
        known = set(self._home) | {c.tid for c in machine.cpus if c.tid is not None}
        for t in machine.runnable_threads():
            if t.tid not in known and t.cpu is None:
                idlest = min(
                    range(machine.n_cpus), key=lambda i: len(self._queues[i])
                )
                self._enqueue(t.tid, idlest)
        for cpu in machine.cpus:
            if cpu.idle:
                self._schedule_next(cpu.cpu_id)

    def _wake(self, tid: int) -> None:
        machine = self.machine
        thread = machine.thread(tid)
        if not thread.runnable or thread.cpu is not None:
            return
        home = thread.last_cpu if thread.last_cpu is not None else 0
        if machine.cpus[home].idle:
            machine.dispatch(home, tid)
            self._home[tid] = home
            return
        idle = self.idle_cpus()
        if idle:
            machine.dispatch(idle[0], tid)
            self._home[tid] = idle[0]
            return
        self._enqueue(tid, home)
