"""Static pinned scheduling: every thread gets its own processor, forever.

This is the configuration of the paper's Section 3 experiments (Figure 1):
"there is no processor sharing" — one application with two threads runs on
two dedicated CPUs, optionally next to microbenchmark instances pinned to
the remaining CPUs. All slowdown observed under this scheduler is therefore
attributable to the shared bus (plus initial cold-cache effects), which is
exactly the paper's point.

An optional seeded migration process models the occasional rebalancing a
real 2.4 kernel performs even for perfectly-balanced runnable sets (IRQ
imbalance, wakeups): with a configurable mean interval, two randomly chosen
busy CPUs swap their threads. The paper attributes LU CB's and Water-nsqr's
larger-than-expected slowdowns to precisely such migrations; setting
``migration_interval_us`` to ``None`` (default) disables the process for
clean bus-only measurements.
"""

from __future__ import annotations

from ..errors import SchedulingError
from ..sim.events import EventPriority
from .base import KernelScheduler

__all__ = ["DedicatedScheduler"]


class DedicatedScheduler(KernelScheduler):
    """Pin thread *i* to CPU *i*; optionally inject seeded migrations.

    Parameters
    ----------
    migration_interval_us:
        Mean interval between random pairwise swaps of running threads
        (exponentially distributed), or ``None`` for no migrations.
    """

    def __init__(self, migration_interval_us: float | None = None) -> None:
        super().__init__()
        if migration_interval_us is not None and migration_interval_us <= 0:
            raise SchedulingError("migration interval must be positive")
        self._migration_interval = migration_interval_us

    def start(self) -> None:
        """Pin every thread; error if there are more threads than CPUs."""
        threads = self.machine.runnable_threads()
        if len(threads) > self.machine.n_cpus:
            raise SchedulingError(
                f"dedicated scheduling needs one CPU per thread "
                f"({len(threads)} threads > {self.machine.n_cpus} CPUs)"
            )
        for cpu_id, thread in enumerate(threads):
            self.machine.dispatch(cpu_id, thread.tid)
        if self._migration_interval is not None:
            self._schedule_migration()

    def on_io_change(self, thread, asleep: bool) -> None:
        """Re-pin a woken thread (its CPU stays reserved while it sleeps)."""
        if not asleep and thread.runnable and thread.cpu is None:
            preferred = thread.last_cpu
            if preferred is not None and self.machine.cpus[preferred].idle:
                self.machine.dispatch(preferred, thread.tid)
            else:
                idle = self.idle_cpus()
                if idle:
                    self.machine.dispatch(idle[0], thread.tid)

    def _schedule_migration(self) -> None:
        delay = float(self.rng.exponential(self._migration_interval))
        self.engine.schedule_after(max(delay, 1.0), self._migrate, priority=EventPriority.KERNEL)

    def _migrate(self) -> None:
        busy = [c.cpu_id for c in self.machine.cpus if c.tid is not None]
        if len(busy) >= 2:
            i, j = self.rng.choice(len(busy), size=2, replace=False)
            cpu_a, cpu_b = busy[int(i)], busy[int(j)]
            tid_a = self.machine.cpus[cpu_a].tid
            tid_b = self.machine.cpus[cpu_b].tid
            assert tid_a is not None and tid_b is not None
            # Swap: vacate one CPU first so dispatch never doubles up.
            self.machine.dispatch(cpu_a, None)
            self.machine.dispatch(cpu_a, tid_b)
            self.machine.dispatch(cpu_b, tid_a)
        if not self.machine.all_finished():
            self._schedule_migration()
