"""A plain round-robin gang scheduler (bandwidth-oblivious baseline).

The paper's policies are "gang-like": an application gets processors only
if *all* its threads fit, and whole applications rotate through quanta.
This scheduler isolates the gang structure from the bandwidth awareness: it
rotates the job list FCFS every quantum, packing jobs first-fit until the
CPUs are full, with no knowledge of bus demand. Comparing it against the
Latest Quantum / Quanta Window policies separates "gang scheduling helps"
from "bandwidth awareness helps" — an ablation the paper discusses
qualitatively (gang-ness guarantees at least two low-bandwidth threads run
together) but does not isolate.
"""

from __future__ import annotations

from collections import deque

from ..errors import SchedulingError
from ..sim.events import EventPriority
from ..units import ms
from .base import Job, KernelScheduler

__all__ = ["RoundRobinGangScheduler"]


class RoundRobinGangScheduler(KernelScheduler):
    """Rotate gang jobs FCFS through fixed quanta, first-fit packing.

    Parameters
    ----------
    jobs:
        Gang job list (see :func:`repro.sched.base.jobs_from_apps`).
    quantum_us:
        Gang quantum length (defaults to the paper's manager quantum).
    """

    def __init__(self, jobs: list[Job], quantum_us: float = ms(200)) -> None:
        super().__init__()
        if quantum_us <= 0:
            raise SchedulingError("quantum must be positive")
        self._jobs = deque(jobs)
        self._quantum = quantum_us

    def start(self) -> None:
        """Validate widths, run the first quantum, start the timer."""
        n = self.machine.n_cpus
        for job in self._jobs:
            if job.width > n:
                raise SchedulingError(
                    f"job {job.name} needs {job.width} CPUs but the machine has {n}"
                )
        self._quantum_boundary()

    def _live_jobs(self) -> list[Job]:
        machine = self.machine
        return [
            j for j in self._jobs if any(not machine.thread(t).finished for t in j.tids)
        ]

    def _quantum_boundary(self) -> None:
        machine = self.machine
        if machine.all_finished():
            return
        # Rotate: jobs that just ran go to the back (paper list semantics).
        running_apps = {
            machine.thread(tid).app_id for tid in machine.running_tids()
        }
        rotated = deque()
        moved_back = []
        for job in self._jobs:
            if job.app_id in running_apps:
                moved_back.append(job)
            else:
                rotated.append(job)
        rotated.extend(moved_back)
        self._jobs = rotated

        # First-fit packing over the rotated list.
        selected: list[Job] = []
        free = machine.n_cpus
        for job in self._jobs:
            if any(machine.thread(t).finished for t in job.tids):
                live = [t for t in job.tids if not machine.thread(t).finished]
                if not live:
                    continue
                job = Job(job.app_id, job.name, live)
            if job.width <= free:
                selected.append(job)
                free -= job.width
            if free == 0:
                break
        self._dispatch_selection(selected)
        machine.trace.record(
            machine.now, "gang.quantum", jobs=[j.name for j in selected]
        )
        self.engine.schedule_after(
            self._quantum, self._quantum_boundary, priority=EventPriority.KERNEL
        )

    def _dispatch_selection(self, selected: list[Job]) -> None:
        machine = self.machine
        wanted: list[int] = [tid for job in selected for tid in job.tids]
        wanted_set = set(wanted)
        # Preempt everything not selected.
        for cpu in machine.cpus:
            if cpu.tid is not None and cpu.tid not in wanted_set:
                machine.dispatch(cpu.cpu_id, None)
        # Place newcomers, preferring each thread's previous CPU.
        placed = {cpu.tid for cpu in machine.cpus if cpu.tid is not None}
        free_cpus = deque(c.cpu_id for c in machine.cpus if c.idle)
        pending = [tid for tid in wanted if tid not in placed]
        # Affinity pass.
        remaining = []
        for tid in pending:
            last = machine.thread(tid).last_cpu
            if last is not None and last in free_cpus:
                free_cpus.remove(last)
                machine.dispatch(last, tid)
            else:
                remaining.append(tid)
        for tid in remaining:
            if not free_cpus:
                raise SchedulingError("gang packing overflow (internal bug)")
            machine.dispatch(free_cpus.popleft(), tid)

    def on_io_change(self, thread, asleep: bool) -> None:
        """A woken thread of a currently-running gang takes an idle CPU."""
        if asleep or not thread.runnable or thread.cpu is not None:
            return
        machine = self.machine
        running_apps = {machine.thread(t).app_id for t in machine.running_tids()}
        idle = self.idle_cpus()
        if idle and thread.app_id in running_apps:
            machine.dispatch(idle[0], thread.tid)

    def on_thread_exit(self, thread) -> None:
        """Backfill freed CPUs mid-quantum with the next fitting job."""
        machine = self.machine
        if machine.all_finished():
            return
        free = len(self.idle_cpus())
        if free == 0:
            return
        running_apps = {machine.thread(tid).app_id for tid in machine.running_tids()}
        extra: list[Job] = []
        for job in self._jobs:
            if job.app_id in running_apps:
                continue
            live = [t for t in job.tids if machine.thread(t).runnable and machine.thread(t).cpu is None]
            if live and len(live) == sum(1 for t in job.tids if not machine.thread(t).finished) and len(live) <= free:
                extra.append(Job(job.app_id, job.name, live))
                free -= len(live)
                running_apps.add(job.app_id)
            if free == 0:
                break
        if extra:
            free_cpus = deque(self.idle_cpus())
            for job in extra:
                for tid in job.tids:
                    machine.dispatch(free_cpus.popleft(), tid)
