"""A Linux 2.4-like O(n) epoch scheduler: the paper's baseline.

The paper evaluates against the stock scheduler of Linux 2.4.20. Its
relevant mechanics, reproduced here:

* **Time slices** — every thread holds a ``counter`` of remaining scheduler
  ticks (10 ms each; ~60 ms per slice at default priority).
* **Epochs** — when every *runnable* thread has exhausted its counter, a
  new epoch begins and all counters are recharged with
  ``counter = counter // 2 + default_ticks`` (sleepers carry over half).
* **Goodness** — a CPU picking its next thread scans the whole runqueue
  (O(n)) and takes the highest ``goodness``: zero for exhausted counters,
  else ``counter`` plus a large affinity bonus (``PROC_CHANGE_PENALTY``)
  if the thread last ran on this CPU — the cache-affinity heuristic the
  paper describes ("All SMP schedulers use cache affinity links").
* **Wakeup preemption** — an unblocked thread takes an idle CPU if any
  (preferring the one it last ran on), otherwise it preempts the running
  thread with the lowest goodness, if its own is higher
  (``reschedule_idle`` semantics).

What the baseline does *not* do — and the paper's whole point — is look at
bus bandwidth: under multiprogramming it happily co-schedules four
streaming threads, starving everyone. It is also gang-oblivious: threads of
a parallel application are scheduled independently.

A small seeded per-tick rebalancing probability models the residual
migration noise of the real kernel; it gives cache-sensitive applications
(LU CB, Water-nsqr) their paper-observed vulnerability even in
otherwise-balanced runs.
"""

from __future__ import annotations

import bisect
from typing import TYPE_CHECKING

from ..config import LinuxSchedConfig
from ..sim.events import EventPriority
from .base import KernelScheduler

if TYPE_CHECKING:  # pragma: no cover
    from ..hw.machine import ThreadState

__all__ = ["LinuxScheduler"]


class LinuxScheduler(KernelScheduler):
    """O(n) epoch scheduler with counters, goodness and affinity.

    Parameters
    ----------
    config:
        Tick period, slice length, affinity bonus, rebalance noise.
    """

    def __init__(self, config: LinuxSchedConfig | None = None) -> None:
        super().__init__()
        self.config = config or LinuxSchedConfig()
        self._counters: dict[int, int] = {}
        self._epochs = 0
        self._ticking = False

    # ------------------------------------------------------------------ start

    def start(self) -> None:
        """Grant initial slices, dispatch the best candidates, start ticking.

        Initial counters are randomized in ``[1, default_ticks]``: on a real
        system threads never start their slices in lockstep (interrupts,
        wakeups and prior history desynchronize per-CPU switching). Without
        this, identical slice lengths make all CPUs switch simultaneously
        and the baseline accidentally gang-schedules thread cohorts —
        masking exactly the mixed co-schedules the paper's policies fix.
        """
        for t in self.machine.threads():
            self._counters[t.tid] = int(self.rng.integers(1, self.config.default_ticks + 1))
        self._fill_idle_cpus()
        self._ticking = True
        self.engine.schedule_after(
            self.config.tick_us, self._tick, priority=EventPriority.KERNEL
        )

    # ------------------------------------------------------------------ state

    @property
    def epochs(self) -> int:
        """Number of epoch recharges performed."""
        return self._epochs

    def counter(self, tid: int) -> int:
        """Remaining slice ticks of a thread."""
        return self._counters.get(tid, 0)

    def _counter_of(self, tid: int) -> int:
        """Counter with lazy initialization for late-arriving threads.

        A thread forked after :meth:`start` (dynamic job arrival) gets a
        fresh default slice the first time the scheduler considers it —
        2.4 forks split the parent's slice; a fresh slice is the closest
        sensible analog for an independently arriving job.
        """
        if tid not in self._counters:
            self._counters[tid] = self.config.default_ticks
        return self._counters[tid]

    def goodness(self, thread: "ThreadState", cpu_id: int) -> float:
        """2.4-style goodness of ``thread`` for ``cpu_id``.

        Zero when the slice is exhausted; otherwise the remaining counter
        plus the affinity bonus when the thread last ran on this CPU.
        """
        counter = self._counter_of(thread.tid)
        if counter <= 0:
            return 0.0
        bonus = self.config.affinity_bonus if thread.last_cpu == cpu_id else 0
        return float(counter + bonus)

    # ------------------------------------------------------------------- tick

    def _tick(self) -> None:
        machine = self.machine
        if machine.all_finished():
            # Stop ticking; on_new_threads() restarts the loop if jobs
            # arrive later (open-system mode).
            self._ticking = False
            return
        cfg = self.config
        # 1. charge the running threads for the elapsed tick
        expired: set[int] = set()
        for cpu in machine.cpus:
            if cpu.tid is None:
                continue
            c = self._counters.get(cpu.tid, 0)
            c = max(0, c - 1)
            self._counters[cpu.tid] = c
            if c == 0:
                expired.add(cpu.tid)
        # 2. epoch: if every runnable thread has an exhausted counter,
        #    recharge everyone (sleepers keep half — 2.4 semantics)
        runnable = machine.runnable_threads()
        if runnable and all(self._counters.get(t.tid, 0) == 0 for t in runnable):
            self._epochs += 1
            for t in machine.threads():
                if not t.finished:
                    # counter//2 carry-over (2.4 sleeper bonus) plus one
                    # tick of jitter so slices do not re-synchronize into
                    # lockstep cohorts after every epoch.
                    jitter = int(self.rng.integers(0, 2))
                    self._counters[t.tid] = (
                        self._counters.get(t.tid, 0) // 2 + cfg.default_ticks + jitter
                    )
            machine.trace.record(machine.now, "sched.epoch", number=self._epochs)
        # 3. CPUs whose thread expired (or that are idle) pick again
        for cpu in machine.cpus:
            needs = cpu.tid is None or cpu.tid in expired
            if needs:
                self._pick_for_cpu(cpu.cpu_id)
        # 4. residual migration noise of the real kernel
        if cfg.rebalance_prob > 0.0 and float(self.rng.random()) < cfg.rebalance_prob:
            self._random_rebalance()
        self.engine.schedule_after(cfg.tick_us, self._tick, priority=EventPriority.KERNEL)

    def _pick_for_cpu(self, cpu_id: int) -> None:
        """O(n) scan: dispatch the highest-goodness candidate.

        2.4 semantics: if the scan finds only zero-goodness candidates
        (exhausted slices) while waiters exist, ``schedule()`` recharges
        every process's counter and rescans — otherwise a CPU could sit
        idle next to a runnable thread whose slice just ran out.

        The candidate set of the O(n) runqueue scan is exactly the
        off-CPU runnable threads plus this CPU's incumbent — every other
        runnable thread is running elsewhere and gets skipped. The
        machine maintains that set incrementally (``ready_tids``), so the
        scan iterates it directly (same threads, same tid order, same
        goodness calls and lazy counter initializations as the full
        scan) instead of touching all n threads per pick.
        """
        machine = self.machine
        current = machine.cpus[cpu_id].tid
        thread = machine.thread
        for attempt in range(2):
            best_tid: int | None = None
            best_g = 0.0
            ready = machine.ready_tids()
            waiters = bool(ready)
            if current is not None:
                candidates = list(ready)
                bisect.insort(candidates, current)
            else:
                candidates = ready
            for tid in candidates:
                g = self.goodness(thread(tid), cpu_id)
                if g > best_g:
                    best_g = g
                    best_tid = tid
            if best_tid is not None:
                if best_tid != current:
                    machine.dispatch(cpu_id, best_tid)
                return
            if not waiters and current is not None:
                return  # keep the incumbent; nobody else to run
            if attempt == 0 and waiters:
                # recalculate_counters: all candidates exhausted
                cfg = self.config
                for t in machine.threads():
                    if not t.finished:
                        jitter = int(self.rng.integers(0, 2))
                        self._counters[t.tid] = (
                            self._counters.get(t.tid, 0) // 2 + cfg.default_ticks + jitter
                        )
                self._epochs += 1
                machine.trace.record(machine.now, "sched.epoch", number=self._epochs)
                continue
            return

    def _random_rebalance(self) -> None:
        busy = [c.cpu_id for c in self.machine.cpus if c.tid is not None]
        if len(busy) < 2:
            return
        i, j = self.rng.choice(len(busy), size=2, replace=False)
        cpu_a, cpu_b = busy[int(i)], busy[int(j)]
        tid_a = self.machine.cpus[cpu_a].tid
        tid_b = self.machine.cpus[cpu_b].tid
        assert tid_a is not None and tid_b is not None
        self.machine.dispatch(cpu_a, None)
        self.machine.dispatch(cpu_a, tid_b)
        self.machine.dispatch(cpu_b, tid_a)
        self.machine.trace.record(self.machine.now, "sched.rebalance", cpus=(cpu_a, cpu_b))

    # -------------------------------------------------------------- callbacks

    def on_thread_exit(self, thread: "ThreadState") -> None:
        """Fill the freed CPU immediately."""
        self._counters.pop(thread.tid, None)
        self._fill_idle_cpus()

    def on_block_change(self, tid: int, blocked: bool) -> None:
        """React to CPU-manager signals: fill freed CPUs / place wakeups."""
        if blocked:
            self._fill_idle_cpus()
        else:
            self._wake_thread(tid)

    def on_io_change(self, thread, asleep: bool) -> None:
        """I/O sleep frees a CPU; wakeup re-enters via 2.4 wake semantics."""
        if asleep:
            self._fill_idle_cpus()
        elif not thread.finished:
            self._wake_thread(thread.tid)

    def on_new_threads(self) -> None:
        """Dynamic arrival: place the newcomers and restart the tick loop."""
        self._fill_idle_cpus()
        if not self._ticking:
            self._ticking = True
            self.engine.schedule_after(
                self.config.tick_us, self._tick, priority=EventPriority.KERNEL
            )

    # ---------------------------------------------------------------- helpers

    def _fill_idle_cpus(self) -> None:
        for cpu in self.machine.cpus:
            if cpu.tid is None:
                self._pick_for_cpu(cpu.cpu_id)

    def _wake_thread(self, tid: int) -> None:
        """2.4 ``reschedule_idle``: idle CPU first (prefer affinity), else
        preempt the lowest-goodness running thread if we beat it."""
        machine = self.machine
        thread = machine.thread(tid)
        if not thread.runnable or thread.cpu is not None:
            return
        if self._counters.get(tid, 0) <= 0:
            # Woken with an exhausted slice: give it a fresh one (a real
            # 2.4 sleeper would have accumulated counter while asleep).
            self._counters[tid] = self.config.default_ticks
        idle = self.idle_cpus()
        if idle:
            preferred = thread.last_cpu if thread.last_cpu in idle else idle[0]
            machine.dispatch(preferred, tid)
            return
        # No idle CPU: consider preemption.
        victim_cpu = None
        victim_g = float("inf")
        for cpu in machine.cpus:
            assert cpu.tid is not None
            g = self.goodness(machine.thread(cpu.tid), cpu.cpu_id)
            if g < victim_g:
                victim_g = g
                victim_cpu = cpu.cpu_id
        my_g = self.goodness(thread, victim_cpu if victim_cpu is not None else 0)
        if victim_cpu is not None and my_g > victim_g:
            machine.dispatch(victim_cpu, tid)
