"""Scheduler interface and shared plumbing.

A :class:`KernelScheduler` owns CPU dispatch decisions for one machine. Its
life cycle:

1. construct with its configuration,
2. :meth:`attach` to a machine/engine (wires exit and block listeners),
3. :meth:`start` — perform the initial dispatch and schedule periodic
   events,
4. react to callbacks until the simulation ends.

Schedulers never manipulate CPUs directly; all placement goes through
:meth:`repro.hw.machine.Machine.dispatch`, which enforces placement
invariants (no blocked/finished threads, one CPU per thread).

The :class:`Job` record groups an application instance's threads for
gang-aware schedulers; :func:`jobs_from_apps` builds the list the paper's
CPU manager keeps ("a descriptor for each new application ... to a doubly
linked circular list").
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

import numpy as np

from ..errors import SchedulingError
from ..sim.engine import Engine

if TYPE_CHECKING:  # pragma: no cover
    from ..hw.machine import Machine, ThreadState
    from ..workloads.base import Application

__all__ = ["Job", "KernelScheduler", "jobs_from_apps"]


@dataclass
class Job:
    """A gang-schedulable unit: all threads of one application instance.

    Attributes
    ----------
    app_id:
        The application instance id.
    name:
        Human-readable instance name.
    tids:
        Thread ids belonging to the instance.
    """

    app_id: int
    name: str
    tids: list[int]

    @property
    def width(self) -> int:
        """Processors the job needs (gang policies allocate all or none)."""
        return len(self.tids)


def jobs_from_apps(apps: Iterable["Application"]) -> list[Job]:
    """Build gang job records from application instances."""
    return [Job(app_id=a.app_id, name=f"{a.name}#{a.app_id}", tids=list(a.tids)) for a in apps]


class KernelScheduler(ABC):
    """Base class for kernel-level schedulers.

    Subclasses implement :meth:`start` and the reaction callbacks; the base
    class provides attachment plumbing and common helpers.
    """

    def __init__(self) -> None:
        self._machine: "Machine | None" = None
        self._engine: Engine | None = None
        self._rng: np.random.Generator | None = None

    # -- wiring ---------------------------------------------------------------

    def attach(self, machine: "Machine", engine: Engine, rng: np.random.Generator) -> None:
        """Bind the scheduler to a machine and engine.

        Wires the machine's exit listener to :meth:`on_thread_exit`. May be
        called exactly once.
        """
        if self._machine is not None:
            raise SchedulingError("scheduler already attached")
        self._machine = machine
        self._engine = engine
        self._rng = rng
        machine.add_exit_listener(self._handle_exit)
        machine.add_io_listener(self._handle_io)

    @property
    def machine(self) -> "Machine":
        """The attached machine (raises if unattached)."""
        if self._machine is None:
            raise SchedulingError("scheduler not attached to a machine")
        return self._machine

    @property
    def engine(self) -> Engine:
        """The attached engine (raises if unattached)."""
        if self._engine is None:
            raise SchedulingError("scheduler not attached to an engine")
        return self._engine

    @property
    def rng(self) -> np.random.Generator:
        """The scheduler's random stream (raises if unattached)."""
        if self._rng is None:
            raise SchedulingError("scheduler not attached")
        return self._rng

    def _handle_exit(self, thread: "ThreadState") -> None:
        # Exit listeners fire while the machine is mid-settle; defer the
        # actual rescheduling to a same-instant engine event so the
        # machine/engine clocks are consistent when we dispatch.
        self.engine.schedule_at(
            self.machine.now, lambda: self.on_thread_exit(thread), priority=45
        )

    def _handle_io(self, thread: "ThreadState", asleep: bool) -> None:
        # Same deferral as exits: I/O sleep events fire mid-settle.
        self.engine.schedule_at(
            self.machine.now, lambda: self.on_io_change(thread, asleep), priority=45
        )

    # -- subclass API ---------------------------------------------------------

    @abstractmethod
    def start(self) -> None:
        """Perform the initial dispatch and schedule periodic events."""

    def on_thread_exit(self, thread: "ThreadState") -> None:
        """A thread completed; its CPU is already free. Default: no-op."""

    def on_block_change(self, tid: int, blocked: bool) -> None:
        """A thread's blocked flag changed (CPU-manager signals). Default: no-op."""

    def on_io_change(self, thread: "ThreadState", asleep: bool) -> None:
        """A thread started or finished an I/O sleep. Default: no-op."""

    def on_new_threads(self) -> None:
        """New threads were registered after start (dynamic arrivals).

        Default: no-op. Time-sharing schedulers restart their tick loop
        and fill idle CPUs.
        """

    # -- helpers ---------------------------------------------------------------

    def idle_cpus(self) -> list[int]:
        """Ids of currently idle CPUs, ascending."""
        return [c.cpu_id for c in self.machine.cpus if c.idle]

    def running_map(self) -> dict[int, int]:
        """Mapping cpu_id → tid for busy CPUs."""
        return {c.cpu_id: c.tid for c in self.machine.cpus if c.tid is not None}
