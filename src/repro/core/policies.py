"""The scheduling policies: Latest Quantum, Quanta Window, and extensions.

Both paper policies share one selection algorithm (Section 4) and differ
only in how they estimate each application's per-thread bus bandwidth
(BBW/thread):

* **Latest Quantum** — the rate measured over the most recent quantum the
  application actually ran.
* **Quanta Window** — the average of the last *W* published samples
  (paper: W = 5, two samples per quantum), trading responsiveness for
  robustness to bursts.

The selection algorithm, per quantum:

1. The application at the **head of the circular list** is allocated
   unconditionally — every job eventually reaches the head, so no job
   starves regardless of its bandwidth profile.
2. While unallocated processors remain, compute the available bus
   bandwidth per unallocated processor::

       ABBW/proc = (bus_capacity − Σ allocated BBW) / unallocated_cpus

   traverse the list, score every job that fits with
   ``fitness = 1000 / (1 + |ABBW/proc − BBW/thread|)`` (Equation 1), and
   allocate the fittest; repeat.

Under saturation ABBW/proc goes negative and the lowest-BBW job becomes the
fittest — the graceful degradation the paper highlights.

Extensions provided for ablations and the paper's future-work directions:

* :class:`EwmaPolicy` — exponentially-weighted estimate (the paper's
  suggested technique for wider windows).
* :class:`OraclePolicy` — uses the workload's true mean rates; upper bound
  on what better estimation could buy.
* :class:`RandomGangPolicy` — keeps the gang structure and the
  no-starvation head rule but picks the rest uniformly at random;
  isolates the value of bandwidth-aware selection from gang-ness.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from ..errors import SchedulingError
from .fitness import FitnessFn, paper_fitness
from .window import EwmaEstimator, MovingWindow

__all__ = [
    "JobView",
    "Selection",
    "BandwidthPolicy",
    "LatestQuantumPolicy",
    "QuantaWindowPolicy",
    "EwmaPolicy",
    "OraclePolicy",
    "RandomGangPolicy",
    "head_first_selection",
]


@dataclass(frozen=True)
class JobView:
    """What the policy sees of one schedulable application.

    Attributes
    ----------
    app_id:
        Application instance id.
    width:
        Processors needed (list of live threads; gang all-or-nothing).
    name:
        Base application name (instance tag stripped); lets oracle-style
        policies look up per-application ground truth.
    """

    app_id: int
    width: int
    name: str = ""


@dataclass(frozen=True)
class Selection:
    """Outcome of one quantum's selection.

    Attributes
    ----------
    app_ids:
        Selected applications, in allocation order (head first).
    abbw_trace:
        The ABBW/proc value observed before each post-head allocation —
        exposed for tests and the reporting harness.
    """

    app_ids: tuple[int, ...]
    abbw_trace: tuple[float, ...]


def head_first_selection(jobs: list[JobView], n_cpus: int) -> Selection:
    """Bandwidth-agnostic first-fit selection in circular-list order.

    Keeps the structural guarantees of the paper's algorithm — the head
    of the list runs whenever it fits, no application is selected twice,
    the gang widths fit in ``n_cpus`` — but ignores bandwidth estimates
    entirely. This is the hardened manager's last-resort degradation mode
    when *every* application's estimate is stale: rotation alone still
    guarantees freedom from starvation (Section 4's circular-list
    argument needs no bandwidth information).
    """
    if n_cpus < 1:
        raise SchedulingError("need at least one CPU")
    chosen: list[int] = []
    free = n_cpus
    for job in jobs:
        if job.width > n_cpus:
            raise SchedulingError(
                f"application {job.app_id} needs {job.width} CPUs on an "
                f"{n_cpus}-CPU machine; gang policies cannot ever run it"
            )
        if job.width <= free:
            chosen.append(job.app_id)
            free -= job.width
    return Selection(app_ids=tuple(chosen), abbw_trace=())


class BandwidthPolicy(ABC):
    """Shared selection machinery; subclasses define the estimator.

    Parameters
    ----------
    bus_capacity_txus:
        The manager's belief of total usable bus bandwidth (the STREAM
        measurement on the paper's platform).
    fitness_fn:
        Scoring function (Equation 1 by default; see ABL-F).
    fitness_scale:
        Numerator of Equation 1.
    incremental:
        Use the incremental selection pass (default): per-application
        estimates are computed once per quantum and cached until the
        estimator absorbs new data (``on_sample``/``on_quantum``/
        ``forget`` invalidate), the allocated-BBW sum is maintained as a
        running accumulator, and — for the stock Equation 1 fitness —
        each traversal scores all candidates in one numpy pass.
        Selections are *identical* to the reference full-re-rank loop
        (``incremental=False``): cached estimates equal fresh ones by the
        invalidation contract, the running sum reproduces the reference's
        left-to-right partial sums bitwise, and ``np.argmax`` implements
        the same first-strict-maximum tie-break as the reference scan
        (the audit differential oracle and
        ``tests/core/test_policies_incremental.py`` both pin this down).
        Subclasses that mutate estimator state outside the three hooks
        must call :meth:`_invalidate_estimate` themselves.
    """

    #: Short name used in reports.
    name: str = "abstract"

    #: Whether the audit oracle can replay this policy's selection from
    #: (jobs, estimates, fitness) alone. Subclasses whose ``select`` is
    #: stateful or randomised must set this False.
    oracle_replayable: bool = True

    def __init__(
        self,
        bus_capacity_txus: float = 29.5,
        fitness_fn: FitnessFn | None = None,
        fitness_scale: float = 1000.0,
        incremental: bool = True,
    ) -> None:
        if bus_capacity_txus <= 0:
            raise SchedulingError("bus capacity must be positive")
        self.bus_capacity_txus = bus_capacity_txus
        self._fitness_fn = fitness_fn
        self._fitness_scale = fitness_scale
        self._rng: np.random.Generator | None = None
        self.incremental = incremental
        # app_id -> cached effective_estimate(), dropped on invalidation.
        self._est_cache: dict[int, float] = {}
        self._selection_calls = 0
        self._est_rescored = 0
        self._est_reused = 0

    def bind_rng(self, rng: np.random.Generator) -> None:
        """Provide the policy's random stream (used by randomized variants)."""
        self._rng = rng

    def fitness(self, abbw_per_proc: float, bbw_per_thread: float) -> float:
        """Score a candidate (Equation 1 unless overridden)."""
        if self._fitness_fn is not None:
            return self._fitness_fn(abbw_per_proc, bbw_per_thread)
        return paper_fitness(abbw_per_proc, bbw_per_thread, self._fitness_scale)

    # -- estimation interface (subclass responsibility) ------------------------

    @abstractmethod
    def estimate(self, app_id: int) -> float | None:
        """Current BBW/thread estimate for an application (None = unknown)."""

    def on_sample(
        self,
        app_id: int,
        rate_per_thread: float,
        saturated: bool = False,
        time_us: float | None = None,
    ) -> None:
        """A new per-sample rate was published to the arena. Default: ignore.

        ``saturated`` marks measurements taken while the whole workload
        consumed (nearly) the full bus capacity: such a rate is only a
        *lower bound* on the job's demand, and estimators must not let it
        lower their estimate (see :class:`repro.config.ManagerConfig`).
        ``time_us``, when given, is the simulated time of the measurement
        and feeds :meth:`last_update_time` for staleness tracking.
        """

    def on_quantum(
        self,
        app_id: int,
        rate_per_thread: float,
        saturated: bool = False,
        time_us: float | None = None,
    ) -> None:
        """A full-quantum rate was computed at a boundary. Default: ignore."""

    def last_update_time(self, app_id: int) -> float | None:
        """When the application's estimate last absorbed a fresh sample.

        ``None`` means never (or the policy keeps no estimator state —
        the default). Only timestamped updates (``time_us`` passed to
        ``on_sample`` / ``on_quantum``) count; the hardened manager uses
        this to decide when an estimate has gone stale without reaching
        into policy internals.
        """
        return None

    def forget(self, app_id: int) -> None:
        """An application disconnected; drop its state. Default: no-op."""

    # -- selection ---------------------------------------------------------------

    def effective_estimate(self, app_id: int) -> float:
        """Estimate with the unknown-app default (0: never measured)."""
        est = self.estimate(app_id)
        return 0.0 if est is None else est

    def _invalidate_estimate(self, app_id: int) -> None:
        """Drop the cached effective estimate (estimator state changed)."""
        self._est_cache.pop(app_id, None)

    def _cached_estimate(self, app_id: int) -> float:
        """``effective_estimate`` through the invalidation-tracked cache."""
        cached = self._est_cache.get(app_id)
        if cached is None:
            cached = self.effective_estimate(app_id)
            self._est_cache[app_id] = cached
            self._est_rescored += 1
        else:
            self._est_reused += 1
        return cached

    def selection_profile(self) -> dict[str, float]:
        """Selection-pass counters (merged into ``RunResult.profile``).

        ``sel_est_rescored`` counts estimator evaluations the cache could
        not serve; ``sel_est_reused`` counts cache hits — their ratio is
        the re-rank fraction the CLI's ``--profile`` report derives.
        """
        return {
            "selection_calls": float(self._selection_calls),
            "sel_est_rescored": float(self._est_rescored),
            "sel_est_reused": float(self._est_reused),
        }

    def select(self, jobs: list[JobView], n_cpus: int) -> Selection:
        """Run the paper's selection algorithm over ``jobs`` in list order.

        ``jobs`` must be in circular-list order (head first). Returns the
        selected applications; the caller turns this into signals.
        """
        if n_cpus < 1:
            raise SchedulingError("need at least one CPU")
        for job in jobs:
            if job.width > n_cpus:
                raise SchedulingError(
                    f"application {job.app_id} needs {job.width} CPUs on an "
                    f"{n_cpus}-CPU machine; gang policies cannot ever run it"
                )
        self._selection_calls += 1
        if self.incremental:
            return self._select_incremental(jobs, n_cpus)
        chosen: list[JobView] = []
        chosen_ids: set[int] = set()
        abbw_trace: list[float] = []
        free = n_cpus
        # Step 1: head of the list runs by default (no starvation).
        for job in jobs:
            if job.width <= free:
                chosen.append(job)
                chosen_ids.add(job.app_id)
                free -= job.width
                break
        # Step 2: fitness-driven traversals.
        while free > 0:
            allocated_bbw = sum(
                self.effective_estimate(j.app_id) * j.width for j in chosen
            )
            abbw_per_proc = (self.bus_capacity_txus - allocated_bbw) / free
            best: JobView | None = None
            best_score = -float("inf")
            for job in jobs:
                if job.app_id in chosen_ids or job.width > free:
                    continue
                score = self._candidate_score(job, abbw_per_proc)
                if score > best_score:
                    best_score = score
                    best = job
            if best is None:
                break
            abbw_trace.append(abbw_per_proc)
            chosen.append(best)
            chosen_ids.add(best.app_id)
            free -= best.width
        return Selection(
            app_ids=tuple(j.app_id for j in chosen), abbw_trace=tuple(abbw_trace)
        )

    def _candidate_score(self, job: JobView, abbw_per_proc: float) -> float:
        return self.fitness(abbw_per_proc, self.effective_estimate(job.app_id))

    def _select_incremental(self, jobs: list[JobView], n_cpus: int) -> Selection:
        """Incremental/vectorized selection — same result as the reference.

        Three changes, each selection-identical (see class docstring):
        estimates come from the invalidation-tracked cache and are looked
        up once per job per quantum, ``allocated_bbw`` is a running sum
        (the reference's per-round recomputation yields the same
        left-to-right partial sums), and with the stock Equation 1 the
        per-round candidate scan is one elementwise numpy pass whose
        ``argmax`` matches the reference's first-strict-maximum scan.
        """
        chosen_ids: list[int] = []
        abbw_trace: list[float] = []
        free = n_cpus
        ests = [self._cached_estimate(job.app_id) for job in jobs]
        allocated_bbw = 0.0
        # Step 1: head of the list runs by default (no starvation).
        head_idx: int | None = None
        for i, job in enumerate(jobs):
            if job.width <= free:
                head_idx = i
                chosen_ids.append(job.app_id)
                free -= job.width
                allocated_bbw += ests[i] * job.width
                break
        # The numpy scan implements Equation 1 only; a custom fitness_fn
        # or an overridden _candidate_score (RandomGangPolicy consumes the
        # rng stream per candidate) falls back to the scalar scan.
        vector_scan = (
            self._fitness_fn is None
            and type(self)._candidate_score is BandwidthPolicy._candidate_score
        )
        if vector_scan:
            est_arr = np.array(ests)
            width_arr = np.array([job.width for job in jobs])
            id_arr = np.array([job.app_id for job in jobs])
            avail = np.ones(len(jobs), dtype=bool)
            if head_idx is not None:
                # Mask by app_id, like the reference's chosen-id set (a
                # duplicated id excludes every entry carrying it).
                avail[id_arr == jobs[head_idx].app_id] = False
            scale = self._fitness_scale
            # Scratch reused across traversal rounds: the Equation-1 score
            # is computed in place (same elementwise expressions, same
            # bits) instead of allocating four temporaries per round.
            scores = np.empty(len(jobs))
            tmp = np.empty(len(jobs))
        else:
            taken = set(chosen_ids)
        # Step 2: fitness-driven traversals.
        while free > 0:
            abbw_per_proc = (self.bus_capacity_txus - allocated_bbw) / free
            best_idx: int | None = None
            if vector_scan:
                mask = avail & (width_arr <= free)
                if mask.any():
                    np.subtract(abbw_per_proc, est_arr, out=tmp)
                    np.abs(tmp, out=tmp)
                    tmp += 1.0
                    np.divide(scale, tmp, out=tmp)
                    scores.fill(-np.inf)
                    np.copyto(scores, tmp, where=mask)
                    best_idx = int(np.argmax(scores))
            else:
                best_score = -float("inf")
                for i, job in enumerate(jobs):
                    if job.app_id in taken or job.width > free:
                        continue
                    score = self._candidate_score(job, abbw_per_proc)
                    if score > best_score:
                        best_score = score
                        best_idx = i
            if best_idx is None:
                break
            best = jobs[best_idx]
            abbw_trace.append(abbw_per_proc)
            chosen_ids.append(best.app_id)
            free -= best.width
            allocated_bbw += ests[best_idx] * best.width
            if vector_scan:
                avail[id_arr == best.app_id] = False
            else:
                taken.add(best.app_id)
        return Selection(app_ids=tuple(chosen_ids), abbw_trace=tuple(abbw_trace))


class LatestQuantumPolicy(BandwidthPolicy):
    """BBW/thread = the rate over the latest quantum the job ran (Eq. 1)."""

    name = "latest-quantum"

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self._last: dict[int, float] = {}
        self._updated: dict[int, float] = {}

    def on_quantum(
        self,
        app_id: int,
        rate_per_thread: float,
        saturated: bool = False,
        time_us: float | None = None,
    ) -> None:
        if time_us is not None:
            self._updated[app_id] = time_us
        current = self._last.get(app_id)
        if saturated and current is not None and rate_per_thread < current:
            return  # lower bound only: keep the higher previous estimate
        self._last[app_id] = rate_per_thread
        self._invalidate_estimate(app_id)

    def estimate(self, app_id: int) -> float | None:
        return self._last.get(app_id)

    def last_update_time(self, app_id: int) -> float | None:
        return self._updated.get(app_id)

    def forget(self, app_id: int) -> None:
        self._last.pop(app_id, None)
        self._updated.pop(app_id, None)
        self._invalidate_estimate(app_id)


class QuantaWindowPolicy(BandwidthPolicy):
    """BBW/thread = moving average over the last W samples (Eq. 2).

    Parameters
    ----------
    window_length:
        Number of samples averaged (paper: 5; two samples per quantum).
    """

    name = "quanta-window"

    def __init__(self, window_length: int = 5, **kwargs) -> None:
        super().__init__(**kwargs)
        if window_length < 1:
            raise SchedulingError("window length must be >= 1")
        self.window_length = window_length
        self._windows: dict[int, MovingWindow] = {}

    def on_sample(
        self,
        app_id: int,
        rate_per_thread: float,
        saturated: bool = False,
        time_us: float | None = None,
    ) -> None:
        window = self._windows.setdefault(app_id, MovingWindow(self.window_length))
        self._invalidate_estimate(app_id)
        current = window.average()
        if saturated and current is not None and rate_per_thread < current:
            # Lower bound only: re-push the current average so the window
            # keeps sliding without dragging the estimate down.
            window.push(current, time_us=time_us)
            return
        window.push(rate_per_thread, time_us=time_us)

    def estimate(self, app_id: int) -> float | None:
        w = self._windows.get(app_id)
        return None if w is None else w.average()

    def last_update_time(self, app_id: int) -> float | None:
        w = self._windows.get(app_id)
        return None if w is None else w.last_update_time

    def peak_estimate(self, app_id: int) -> float | None:
        """Largest sample in the window (conservative demand bound)."""
        w = self._windows.get(app_id)
        return None if w is None else w.maximum()

    def forget(self, app_id: int) -> None:
        self._windows.pop(app_id, None)
        self._invalidate_estimate(app_id)


class EwmaPolicy(BandwidthPolicy):
    """BBW/thread = exponentially-weighted sample average (paper extension).

    Parameters
    ----------
    alpha:
        Newest-sample weight in (0, 1]. ``alpha = 2/(W+1)`` roughly
        corresponds to a W-sample window.
    """

    name = "ewma"

    def __init__(self, alpha: float = 1.0 / 3.0, **kwargs) -> None:
        super().__init__(**kwargs)
        self.alpha = alpha
        self._estimates: dict[int, EwmaEstimator] = {}

    def on_sample(
        self,
        app_id: int,
        rate_per_thread: float,
        saturated: bool = False,
        time_us: float | None = None,
    ) -> None:
        est = self._estimates.setdefault(app_id, EwmaEstimator(self.alpha))
        self._invalidate_estimate(app_id)
        current = est.average()
        if saturated and current is not None and rate_per_thread < current:
            if time_us is not None and current is not None:
                est.push(current, time_us=time_us)  # refresh timestamp only
            return  # lower bound only
        est.push(rate_per_thread, time_us=time_us)

    def estimate(self, app_id: int) -> float | None:
        e = self._estimates.get(app_id)
        return None if e is None else e.average()

    def last_update_time(self, app_id: int) -> float | None:
        e = self._estimates.get(app_id)
        return None if e is None else e.last_update_time

    def forget(self, app_id: int) -> None:
        self._estimates.pop(app_id, None)
        self._invalidate_estimate(app_id)


class OraclePolicy(BandwidthPolicy):
    """Uses the workload's *true* mean per-thread rates (ablation upper bound).

    Parameters
    ----------
    true_rates:
        Mapping application *name* → true mean per-thread tx/µs.
    """

    name = "oracle"

    def __init__(self, true_rates: dict[str, float], **kwargs) -> None:
        super().__init__(**kwargs)
        self._true = dict(true_rates)
        self._names: dict[int, str] = {}

    def estimate(self, app_id: int) -> float | None:
        name = self._names.get(app_id)
        return self._true.get(name) if name is not None else None

    def select(self, jobs, n_cpus):
        for job in jobs:
            if self._names.get(job.app_id) != job.name:
                self._names[job.app_id] = job.name
                self._invalidate_estimate(job.app_id)
        return super().select(jobs, n_cpus)


class RandomGangPolicy(BandwidthPolicy):
    """Gang structure + head rule, but random fills (ablation baseline)."""

    name = "random-gang"

    #: Scores consume the rng stream — replaying them would perturb it.
    oracle_replayable = False

    def estimate(self, app_id: int) -> float | None:
        return None

    def _candidate_score(self, job: JobView, abbw_per_proc: float) -> float:
        if self._rng is None:
            raise SchedulingError("RandomGangPolicy needs bind_rng() before selection")
        return float(self._rng.random())
