"""The model-driven policy: the paper's proposed next step, implemented.

Instead of scoring candidates one at a time with Equation 1, the
model-driven policy enumerates every feasible *gang set* (subsets of the
job list whose widths fit the machine, always containing the head job so
the paper's no-starvation guarantee is preserved) and picks the set whose
**predicted aggregate progress** — from the analytic contention model of
:mod:`repro.core.model` — is highest. Ties break toward sets appearing
earlier in the circular list (aging).

The objective is **deficit-weighted progress**: each job's predicted
per-thread speed counts proportionally to how long the job has waited
since it last ran. Pure progress maximization would permanently prefer
the cheapest (lowest-contention) threads and starve everything else —
fairness has to be part of the optimization, not a side constraint. With
the weight ``1 + fairness_weight · quanta_since_last_run`` every job's
priority grows linearly while it waits, so service is regular and the
optimizer spends its freedom on *which* combinations run together, which
is exactly the bus-matching decision.

Enumeration is exact and cheap at SMP scale: with ``J`` jobs and 4
processors the number of feasible sets is tiny (≤ 2^J but pruned by
width; the paper's workloads have J = 6 → at most ~40 candidates). For
larger machines a beam search bound is provided.

This policy shares the estimator machinery of Quanta Window (windowed,
saturation-aware samples) — it changes only the *selection* step, so
comparing it against :class:`~repro.core.policies.QuantaWindowPolicy`
isolates the value of whole-set optimization over greedy matching (the
MODEL ablation).
"""

from __future__ import annotations

from itertools import combinations

from ..errors import SchedulingError
from .model import ContentionModel
from .policies import JobView, QuantaWindowPolicy, Selection

__all__ = ["ModelDrivenPolicy"]

#: Safety bound on exact enumeration; above this, beam search kicks in.
_EXACT_JOB_LIMIT = 14


class ModelDrivenPolicy(QuantaWindowPolicy):
    """Whole-set optimization over the analytic contention model.

    Parameters
    ----------
    model:
        The contention model (defaults to the paper-platform calibration;
        a deployment would use :meth:`ContentionModel.fit`).
    window_length:
        Estimator window (inherited Quanta Window machinery).
    idle_penalty:
        Progress charged per idle processor. Zero makes the optimizer
        indifferent to leaving CPUs idle when adding any job would slow
        the incumbents more than the newcomer progresses; a small positive
        value (default 0.05) expresses a mild preference for using the
        hardware.
    fairness_weight:
        Growth rate of a job's priority per quantum waited (see module
        docstring). Zero degenerates to pure instantaneous-progress
        maximization, which starves expensive jobs.
    use_peak:
        Plan against the window's *peak* sample instead of its mean
        (conservative for bursty demand; see :meth:`model_rate`).
    saturation_inflation:
        Demand multiplier applied to jobs whose every measurement so far
        was taken under bus saturation. A saturated measurement reports
        *consumed* bandwidth — ``demand × speed`` with speed well below
        one — so feeding it to the model as if it were demand makes
        saturating combinations look safe (e.g. two CG instances measured
        at 7.4 tx/µs each predict an unsaturated pairing when their true
        demand is 11.7). The inflation approximates ``demand ≈ consumed /
        typical_saturated_speed``; once a job is observed unsaturated its
        estimate is trusted as-is.
    """

    name = "model-driven"

    #: Whole-set optimizer with deficit state mutated inside ``select`` —
    #: intentionally diverges from the greedy fitness rule the oracle replays.
    oracle_replayable = False

    def __init__(
        self,
        model: ContentionModel | None = None,
        idle_penalty: float = 0.05,
        fairness_weight: float = 0.5,
        saturation_inflation: float = 1.5,
        use_peak: bool = True,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        self.model = model or ContentionModel(capacity_txus=self.bus_capacity_txus)
        if idle_penalty < 0:
            raise SchedulingError("idle_penalty must be >= 0")
        if fairness_weight < 0:
            raise SchedulingError("fairness_weight must be >= 0")
        if saturation_inflation < 1.0:
            raise SchedulingError("saturation_inflation must be >= 1")
        self.idle_penalty = idle_penalty
        self.fairness_weight = fairness_weight
        self.saturation_inflation = saturation_inflation
        self.use_peak = use_peak
        self._decision = 0
        self._last_ran: dict[int, int] = {}
        self._seen_unsaturated: set[int] = set()

    # ------------------------------------------------------------------

    def on_sample(
        self,
        app_id: int,
        rate_per_thread: float,
        saturated: bool = False,
        time_us: float | None = None,
    ) -> None:
        """Track whether the job was ever measured off a saturated bus."""
        super().on_sample(app_id, rate_per_thread, saturated=saturated, time_us=time_us)
        if not saturated:
            self._seen_unsaturated.add(app_id)

    def model_rate(self, app_id: int) -> float:
        """The demand rate fed to the contention model (see class docs).

        Uses the *peak* of the sample window when ``use_peak`` is set:
        planning against the highest recently observed demand is the
        conservative choice for bursty jobs (their mean understates what
        a co-schedule will face during a burst).
        """
        if self.use_peak:
            rate = self.peak_estimate(app_id)
            rate = 0.0 if rate is None else rate
        else:
            rate = self.effective_estimate(app_id)
        if app_id not in self._seen_unsaturated:
            rate = min(rate * self.saturation_inflation, self.model.streaming_rate_txus)
        return rate

    def _deficit(self, app_id: int) -> int:
        """Quanta since the job last ran (0 if it ran last quantum)."""
        return self._decision - self._last_ran.get(app_id, self._decision)

    def _weight(self, app_id: int) -> float:
        return 1.0 + self.fairness_weight * self._deficit(app_id)

    def _set_objective(self, jobs: list[JobView], n_cpus: int) -> float:
        """Deficit-weighted predicted progress of co-scheduling ``jobs``."""
        rates: list[float] = []
        weights: list[float] = []
        width = 0
        for job in jobs:
            per_thread = self.model_rate(job.app_id)
            w = self._weight(job.app_id)
            rates.extend([per_thread] * job.width)
            weights.extend([w] * job.width)
            width += job.width
        prediction = self.model.predict(rates)
        weighted = sum(w * s for w, s in zip(weights, prediction.speeds))
        return weighted - self.idle_penalty * (n_cpus - width)

    def select(self, jobs: list[JobView], n_cpus: int) -> Selection:
        """Pick the feasible gang set with the best predicted progress."""
        if n_cpus < 1:
            raise SchedulingError("need at least one CPU")
        for job in jobs:
            if job.width > n_cpus:
                raise SchedulingError(
                    f"application {job.app_id} needs {job.width} CPUs on an "
                    f"{n_cpus}-CPU machine; gang policies cannot ever run it"
                )
        if not jobs:
            return Selection(app_ids=(), abbw_trace=())
        # First sighting counts as "ran now" so deficits start at zero and
        # grow from here; without this a never-selected job would never age.
        for job in jobs:
            self._last_ran.setdefault(job.app_id, self._decision)
        # The head job that fits is mandatory (no starvation).
        head_idx = next((i for i, j in enumerate(jobs) if j.width <= n_cpus), None)
        if head_idx is None:
            return Selection(app_ids=(), abbw_trace=())
        head = jobs[head_idx]
        others = [j for i, j in enumerate(jobs) if i != head_idx]
        if len(others) > _EXACT_JOB_LIMIT:
            chosen = self._beam_search(head, others, n_cpus)
        else:
            chosen = self._exhaustive(head, others, n_cpus)
        # Deficit bookkeeping: selected jobs reset; everyone else ages.
        self._decision += 1
        for job in chosen:
            self._last_ran[job.app_id] = self._decision
        return Selection(app_ids=tuple(j.app_id for j in chosen), abbw_trace=())

    def forget(self, app_id: int) -> None:
        """Drop estimator, deficit and saturation state for a disconnected job."""
        super().forget(app_id)
        self._last_ran.pop(app_id, None)
        self._seen_unsaturated.discard(app_id)

    def _exhaustive(
        self, head: JobView, others: list[JobView], n_cpus: int
    ) -> list[JobView]:
        free = n_cpus - head.width
        best_set = [head]
        best_obj = self._set_objective(best_set, n_cpus)
        # Enumerate subsets of the remaining jobs by size; earlier list
        # positions are generated first, so ties keep the aged jobs.
        for size in range(1, len(others) + 1):
            for combo in combinations(others, size):
                if sum(j.width for j in combo) > free:
                    continue
                candidate = [head, *combo]
                obj = self._set_objective(candidate, n_cpus)
                if obj > best_obj + 1e-12:
                    best_obj = obj
                    best_set = candidate
        return best_set

    def _beam_search(
        self, head: JobView, others: list[JobView], n_cpus: int, beam: int = 8
    ) -> list[JobView]:
        """Greedy beam over additions for large job counts."""
        frontier: list[tuple[float, list[JobView]]] = [
            (self._set_objective([head], n_cpus), [head])
        ]
        best_obj, best_set = frontier[0]
        while frontier:
            nxt: list[tuple[float, list[JobView]]] = []
            for obj, chosen in frontier:
                used = sum(j.width for j in chosen)
                ids = {j.app_id for j in chosen}
                for job in others:
                    if job.app_id in ids or used + job.width > n_cpus:
                        continue
                    cand = chosen + [job]
                    cobj = self._set_objective(cand, n_cpus)
                    nxt.append((cobj, cand))
                    if cobj > best_obj + 1e-12:
                        best_obj, best_set = cobj, cand
            nxt.sort(key=lambda t: -t[0])
            frontier = nxt[:beam]
        return best_set
