"""The user-level CPU manager: the server process of Section 4.

The manager runs *on top of* a kernel scheduler (the paper uses the stock
Linux scheduler underneath). Its event loop, exactly as described:

* Applications **connect**; the manager creates their shared-arena pages,
  tells them the sampling period, and appends descriptors to the circular
  list.
* **Twice per quantum**, each running application publishes its
  accumulated bus-transaction counters to its arena page (the runtime
  library polls all thread counters and accumulates — simulated here by
  the sampling event reading the machine's counter bank for running apps).
* At each **quantum boundary** (200 ms by default; the paper found 100 ms
  causes excessive context switches against the kernel's own quanta):

  1. update bandwidth statistics for all jobs that ran, feeding the
     policy's estimator (per-quantum rate and the per-sample rates);
  2. move previously-running jobs to the end of the circular list;
  3. run the policy's selection (head first, then fitness traversals);
  4. **block** deselected applications and **unblock** selected ones via
     the signal protocol (with its inversion-protection counters).

The kernel scheduler underneath sees only the unblocked threads and places
them on CPUs with its usual affinity heuristics — the same division of
labour as the paper's user-level implementation.

Graceful degradation under faults
---------------------------------
When a run carries an enabled :class:`repro.faults.FaultPlan`, the manager
is constructed with the run's :class:`repro.faults.FaultInjector` and
(with ``ManagerConfig.hardening``) arms three defences:

* **Signal verification** — after each boundary's block/unblock signals
  the manager re-checks, at an acknowledgement deadline, that every
  thread's realised blocked state matches its intent, and re-sends the
  intent *per mismatched thread* with exponential backoff (group-wide
  resends would poison the counter protocol's inversion-protection
  counts; targeted resends converge because the verifier re-examines the
  realised state each round).
* **Staleness fallback** — applications that were scheduled yet published
  no fresh counter sample for ``staleness_quanta`` consecutive quanta are
  marked stale; their estimator simply retains the last trusted average.
  When *every* runnable application is stale the manager abandons fitness
  packing for bandwidth-agnostic head-first selection (rotation alone
  still prevents starvation).
* **Hung-app watchdog** — a selected application whose threads make zero
  progress for ``watchdog_quanta`` consecutive quanta is quarantined:
  its threads are force-blocked (freeing the processors they pinned) and
  the application is disconnected from the circular list.

All of this is *event-free in fault-free runs*: without an injector the
manager schedules exactly the events it always did, so fault-free
trajectories are bit-identical to a build without this machinery.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

import numpy as np

from ..config import ManagerConfig
from ..errors import ArenaError, SchedulingError
from ..sim.engine import Engine
from ..sim.events import EventPriority
from .arena import ArenaSample, SharedArena
from .policies import BandwidthPolicy, JobView, head_first_selection
from .signals import SignalDispatcher

if TYPE_CHECKING:  # pragma: no cover
    from ..audit.checks import InvariantAuditor
    from ..faults.injector import FaultInjector
    from ..hw.machine import Machine, ThreadState
    from ..sched.base import KernelScheduler
    from ..workloads.base import Application

__all__ = ["CpuManager"]


def _clean_rate(rate: float) -> float | None:
    """Sanitise a measured tx rate before it reaches an estimator.

    Saturated or raced intervals can yield tiny negative deltas (the arena
    tolerates a −1e-9 counter regression) and a pathological sampler could
    produce NaN/inf; estimators must never see either. Non-finite rates
    are dropped, negative ones clamped to zero.
    """
    if not math.isfinite(rate):
        return None
    return rate if rate > 0.0 else 0.0


class CpuManager:
    """The user-level CPU manager server.

    Parameters
    ----------
    config:
        Quantum, sampling rate, window defaults, signal costs.
    policy:
        The bandwidth-aware policy making selection decisions.
    kernel:
        The kernel scheduler running underneath (receives block-change
        notifications so freed CPUs refill immediately).
    auditor:
        Optional invariant auditor riding the manager's hooks.
    faults:
        The run's fault injector, or ``None`` for a fault-free run. Its
        presence switches on signal-fault wiring, PMC perturbation, the
        immediate crash-reap path and (with ``config.hardening``) the
        degradation defences.
    """

    def __init__(
        self,
        config: ManagerConfig,
        policy: BandwidthPolicy,
        kernel: "KernelScheduler",
        auditor: "InvariantAuditor | None" = None,
        faults: "FaultInjector | None" = None,
    ) -> None:
        self.config = config
        self.policy = policy
        self.kernel = kernel
        self._auditor = auditor
        self._faults = faults
        self._machine: "Machine | None" = None
        self._engine: Engine | None = None
        self.arena = SharedArena(sample_period_us=config.sample_period_us)
        self._signals: SignalDispatcher | None = None
        self._selected: set[int] = set()          # current *intent*
        # Per-application row caches: app_id -> (thread-store rows,
        # counter-bank rows) for the descriptor's tids. A descriptor's tid
        # list is fixed for its connected life, so the manager's per-tick
        # scans (running check, counter accumulation, finished masks) index
        # the arrays directly instead of walking tids through dicts.
        # Released with the rest of the per-app state in _release, so a
        # reconnecting app id rebuilds from its new descriptor.
        self._rows_cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self._boundary_samples: dict[int, ArenaSample] = {}
        self._last_sample_seen: dict[int, ArenaSample] = {}
        self._quanta = 0
        self._started = False
        # Whether a quantum-boundary event is in flight. The boundary chain
        # dies when the arena empties; a later connection must revive it.
        self._boundary_scheduled = False
        # Workload-wide transaction accounting for saturation detection:
        # (time, cumulative transactions over all managed threads).
        self._global_sample: tuple[float, float] = (0.0, 0.0)
        self._global_boundary: tuple[float, float] = (0.0, 0.0)
        # Hardening state (all inert in fault-free runs).
        self._prev_boundary_time = 0.0
        self._verify_epoch = 0
        self._stale_count: dict[int, int] = {}
        self._watchdog_work: dict[int, float] = {}
        self._watchdog_count: dict[int, int] = {}

    # ---------------------------------------------------------------- fault mode

    @property
    def faults_active(self) -> bool:
        """Whether this run injects faults (an injector is attached)."""
        return self._faults is not None

    @property
    def hardening_active(self) -> bool:
        """Whether the degradation defences are armed for this run."""
        return self._faults is not None and self.config.hardening

    @property
    def signal_checks_relaxed(self) -> bool:
        """Whether the audit layer should skip the intent/counter checks.

        With signal faults injected *and* hardening armed, transient
        intent/realised-state mismatches are expected between a boundary
        and the verifier's convergence — the audit would report false
        positives. With hardening off the checks stay strict so injection
        self-tests can observe the violations.
        """
        return self.hardening_active and self._faults.plan.any_signal_faults

    # ------------------------------------------------------------------ wiring

    def attach(self, machine: "Machine", engine: Engine, rng: np.random.Generator) -> None:
        """Bind to the machine/engine and wire the signal path to the kernel."""
        if self._machine is not None:
            raise SchedulingError("CPU manager already attached")
        self._machine = machine
        self._engine = engine
        self.policy.bind_rng(rng)
        fault_kwargs = {}
        if self._faults is not None and self._faults.plan.any_signal_faults:
            fault_kwargs = self._faults.signal_params()
        self._signals = SignalDispatcher(
            machine,
            engine,
            first_hop_latency_us=self.config.signal_first_hop_us,
            forward_latency_us=self.config.signal_forward_us,
            on_block_change=self.kernel.on_block_change,
            handling_cost_lines=self.config.signal_cost_lines,
            protocol=self.config.signal_protocol,
            **fault_kwargs,
        )
        if self._faults is not None:
            self._faults.bind_dispatcher(self._signals)
            # Crash injection kills threads mid-quantum; reap the arena
            # slot immediately instead of waiting for the next boundary.
            # Registered only in fault runs: the disconnect's saturation
            # checkpoint repair is exact in real arithmetic but not bit-
            # exact in floats, and fault-free trajectories must not move.
            machine.add_exit_listener(self._on_thread_exit)
        if self._auditor is not None:
            self._auditor.install_manager(self)
            auditor = self._auditor
            self._signals.set_audit_hook(lambda tid: auditor.on_deliver(self, tid))

    @property
    def machine(self) -> "Machine":
        """The attached machine (raises if unattached)."""
        if self._machine is None:
            raise SchedulingError("CPU manager not attached")
        return self._machine

    @property
    def engine(self) -> Engine:
        """The attached engine (raises if unattached)."""
        if self._engine is None:
            raise SchedulingError("CPU manager not attached")
        return self._engine

    @property
    def signals(self) -> SignalDispatcher:
        """The signal dispatcher (raises if unattached)."""
        if self._signals is None:
            raise SchedulingError("CPU manager not attached")
        return self._signals

    @property
    def quanta(self) -> int:
        """Number of quantum boundaries processed."""
        return self._quanta

    @property
    def selected(self) -> frozenset[int]:
        """The current selection *intent* (selected plus mid-quantum connects)."""
        return frozenset(self._selected)

    def register_app(self, app: "Application") -> None:
        """Handle an application's connection message."""
        if app.n_threads > self.machine.n_cpus:
            raise SchedulingError(
                f"application {app.name} is wider ({app.n_threads}) than the "
                f"machine ({self.machine.n_cpus} CPUs); a gang policy can never run it"
            )
        desc = self.arena.connect(app.app_id, f"{app.name}#{app.app_id}", app.tids)
        # Initial publication of the *current* counter snapshot: the runtime
        # library starts accumulating at connect time, so quantum-rate
        # deltas are measured from here. Fresh threads have zero counters,
        # but an application id reconnecting after a disconnect must not
        # fold its previous life's transactions into its first rate — that
        # stale baseline would poison the estimator with a lifetime average.
        snap = self.machine.counters.read_many(app.tids)
        first = ArenaSample(
            time_us=self.machine.now,
            cum_transactions=snap.bus_transactions,
            cum_runtime_us=snap.cycles_us,
        )
        desc.publish(first)
        self._boundary_samples[app.app_id] = first
        self._last_sample_seen[app.app_id] = first
        # A freshly connected application is unblocked (it has received no
        # signals), so the manager's intent set must include it: the first
        # boundary then sends *blocks* to the losers and no redundant
        # unblocks to the winners. A redundant unblock would poison the
        # inversion-protection counters with a permanent unblock credit.
        self._selected.add(app.app_id)
        # Revive the quantum chain if it died when the arena last emptied:
        # an open system connects applications long after start(), and a
        # manager with no boundary event would never manage them.
        if self._started and not self._boundary_scheduled:
            self._boundary_scheduled = True
            self.engine.schedule_after(
                0.0, self._quantum_boundary, priority=EventPriority.MANAGER
            )

    def disconnect_app(self, app_id: int) -> None:
        """Handle an application's disconnection, at any point in its life.

        Idempotent: safe to call after the quantum boundary already reaped
        the application. Beyond dropping the descriptor from the circular
        list, this releases every per-application resource the manager
        holds — the estimator state, the boundary/sample checkpoints and
        the per-thread signal counters — so a long-lived manager does not
        leak under churn. A *blocked* application disconnecting is
        unblocked first: once unmanaged it must not stay frozen by a block
        signal nobody will ever revoke.
        """
        self._release(app_id, unblock=True)

    def _release(self, app_id: int, unblock: bool) -> None:
        """Disconnect + release one application's manager-side resources.

        ``unblock=False`` is the quarantine path: the watchdog *wants* the
        hung application's threads to stay blocked off the processors.
        """
        try:
            desc = self.arena.descriptor(app_id)
        except ArenaError:
            return  # never connected here; nothing to release
        machine = self.machine
        if desc.connected:
            if self._faults is not None:
                # Saturation-checkpoint repair: the interval rate in
                # _interval_saturated sums cumulative counters over
                # *connected* descriptors, so this app's lifetime count
                # vanishing from the total would read as a large negative
                # interval rate. Subtracting its final count from the
                # open checkpoints keeps the interval delta equal to the
                # live apps' contribution plus what this app issued since
                # the checkpoint — exact, and only applied in fault runs
                # (floating-point association differs from the fault-free
                # expression).
                final = machine.counters.read_many(desc.tids).bus_transactions
                t_s, tot_s = self._global_sample
                self._global_sample = (t_s, tot_s - final)
                t_b, tot_b = self._global_boundary
                self._global_boundary = (t_b, tot_b - final)
            self.arena.disconnect(app_id)
            if unblock:
                for tid in desc.tids:
                    thread = machine.thread(tid)
                    if not thread.finished and thread.blocked:
                        machine.set_blocked(tid, False)
                        self.kernel.on_block_change(tid, False)
        self.policy.forget(app_id)
        self._selected.discard(app_id)
        self._rows_cache.pop(app_id, None)
        self._boundary_samples.pop(app_id, None)
        self._last_sample_seen.pop(app_id, None)
        self._stale_count.pop(app_id, None)
        self._watchdog_work.pop(app_id, None)
        self._watchdog_count.pop(app_id, None)
        if self._signals is not None:
            for tid in desc.tids:
                self.signals.forget_thread(tid)

    def _on_thread_exit(self, state: "ThreadState") -> None:
        """Immediate reap for fault runs: a dead app frees its slot now.

        Fires from the machine's exit listeners (possibly mid-settle,
        while the machine is momentarily ahead of the engine clock); the
        whole-app disconnect below touches only manager bookkeeping — no
        threads are live, so no ``set_blocked`` reconfiguration happens.
        """
        try:
            desc = self.arena.descriptor(state.app_id)
        except ArenaError:
            return
        if not desc.connected:
            return
        machine = self.machine
        if machine.store.finished[self._app_rows(desc)[0]].all():
            self.disconnect_app(state.app_id)

    def register_apps(self, apps: list["Application"]) -> None:
        """Connect several applications in order."""
        for app in apps:
            self.register_app(app)

    # ------------------------------------------------------------------- start

    def start(self) -> None:
        """Make the first selection and start the sampling/quantum events.

        The first boundary also schedules the first quantum's samples, so
        nothing else is needed here.
        """
        self._started = True
        self._quantum_boundary()

    def _schedule_samples(self) -> None:
        period = self.config.sample_period_us
        for k in range(1, self.config.samples_per_quantum + 1):
            self.engine.schedule_after(
                k * period, self._sample_tick, priority=EventPriority.SAMPLE
            )

    # ----------------------------------------------------------------- sampling

    def _app_rows(self, desc) -> tuple[np.ndarray, np.ndarray]:
        """(store rows, counter rows) for a descriptor's threads, cached."""
        rows = self._rows_cache.get(desc.app_id)
        if rows is None:
            tids = desc.tids
            store_rows = np.fromiter(
                (t - 1 for t in tids), dtype=np.int64, count=len(tids)
            )
            rows = (store_rows, self.machine.counters.rows_of(tids))
            self._rows_cache[desc.app_id] = rows
        return rows

    def _total_transactions(self) -> float:
        """Cumulative bus transactions of every managed thread."""
        counters = self.machine.counters
        total = 0.0
        for desc in self.arena.connected():
            total += counters.read_rows(self._app_rows(desc)[1]).bus_transactions
        return total

    def _interval_saturated(self, prev: tuple[float, float]) -> tuple[bool, tuple[float, float]]:
        """Whether the workload consumed ~full capacity since ``prev``.

        Returns the verdict and the new (time, total) checkpoint. A
        saturated interval marks every per-job rate measured over it as a
        lower bound (the job may have demanded more than it was granted).
        """
        now = self.machine.now
        total = self._total_transactions()
        prev_t, prev_total = prev
        if not self.config.saturation_aware or now <= prev_t:
            return (False, (now, total))
        rate = (total - prev_total) / (now - prev_t)
        threshold = self.config.saturation_threshold * self.policy.bus_capacity_txus
        return (rate >= threshold, (now, total))

    def _sample_tick(self) -> None:
        """One arena publication round (the runtime library's timer)."""
        machine = self.machine
        faults = self._faults
        perturb = faults is not None and faults.plan.any_pmc_faults
        saturated, self._global_sample = self._interval_saturated(self._global_sample)
        store_cpu = machine.store.cpu
        for desc in self.arena.connected():
            # Only running applications update their pages: a blocked
            # process cannot execute its sampling code.
            srows, crows = self._app_rows(desc)
            if not (store_cpu[srows] >= 0).any():
                continue
            snap = machine.counters.read_rows(crows)
            sample = ArenaSample(
                time_us=machine.now,
                cum_transactions=snap.bus_transactions,
                cum_runtime_us=snap.cycles_us,
            )
            if perturb:
                sample = faults.perturb_sample(desc.app_id, sample, desc.latest)
                if sample is None:
                    continue  # dropped read: nothing published this period
                latest = desc.latest
                if latest is not None and (
                    sample.cum_transactions < latest.cum_transactions - 1e-9
                    or sample.cum_runtime_us < latest.cum_runtime_us - 1e-9
                ):
                    # Monotonicity guard: cumulative counters never run
                    # backwards, so a regressing read is a wrap/reset.
                    # Discard it; the next clean read spans two periods
                    # and the cumulative estimate stays unbiased.
                    faults.pmc_wrap_rejects += 1
                    continue
            desc.publish(sample)
            prev = self._last_sample_seen.get(desc.app_id)
            if prev is not None:
                rate = desc.rate_between(prev, sample)
                if rate is not None:
                    rate = _clean_rate(rate)
                if rate is not None:
                    self.policy.on_sample(
                        desc.app_id, rate, saturated=saturated, time_us=machine.now
                    )
            self._last_sample_seen[desc.app_id] = sample
        if self._auditor is not None:
            self._auditor.on_sample(self)

    # ------------------------------------------------------------------ quantum

    def _quantum_boundary(self) -> None:
        """The end-of-quantum bookkeeping + selection + signalling."""
        machine = self.machine
        self._quanta += 1
        self._boundary_scheduled = False

        # 0. Disconnect finished applications (releases their estimator,
        #    checkpoint and signal-counter state too).
        finished_col = machine.store.finished
        for desc in list(self.arena.connected()):
            if finished_col[self._app_rows(desc)[0]].all():
                self.disconnect_app(desc.app_id)

        # 0b. Hung-app watchdog (hardened fault runs only): quarantine
        #     applications that were scheduled yet made zero progress for
        #     watchdog_quanta consecutive quanta.
        if self.hardening_active and self._faults.plan.any_app_faults:
            self._watchdog_scan()

        descs = self.arena.connected()
        if not descs:
            # Nothing left to manage: let the chain die. register_app
            # revives it when the next application connects.
            return

        # 1. Update bandwidth statistics of jobs that ran last quantum.
        saturated, self._global_boundary = self._interval_saturated(self._global_boundary)
        for desc in descs:
            start = self._boundary_samples.get(desc.app_id)
            latest = desc.latest
            if latest is None:
                continue
            if start is not None:
                rate = desc.rate_between(start, latest)
                if rate is not None:
                    rate = _clean_rate(rate)
                if rate is not None:
                    self.policy.on_quantum(
                        desc.app_id, rate, saturated=saturated, time_us=machine.now
                    )
            self._boundary_samples[desc.app_id] = latest

        # 2. Rotate: previously running jobs to the back of the list.
        ran = [d.app_id for d in descs if d.app_id in self._selected]
        if ran:
            self.arena.move_to_back(ran)

        # 3. Elect the next quantum's applications. A job's width is its
        #    *live* (unfinished) thread count — one mask popcount per app.
        finished_col = machine.store.finished
        jobs = [
            JobView(
                app_id=d.app_id,
                width=int(np.count_nonzero(~finished_col[self._app_rows(d)[0]])),
                name=d.name.rsplit("#", 1)[0],
            )
            for d in self.arena.connected()
        ]
        jobs = [j for j in jobs if j.width > 0]
        fallback = False
        if self.hardening_active:
            fallback = self._track_staleness(set(ran), jobs)
        if fallback:
            selection = head_first_selection(jobs, machine.n_cpus)
        else:
            selection = self.policy.select(jobs, machine.n_cpus)
        new_selected = set(selection.app_ids)

        # 4. Signal the deltas (block losers first so their CPUs free up
        #    by the time the winners' unblocks land).
        for desc in self.arena.connected():
            fin = finished_col[self._app_rows(desc)[0]].tolist()
            live = [t for t, f in zip(desc.tids, fin) if not f]
            if not live:
                continue
            if self.config.resend_intent:
                # Loss-tolerant mode: restate the absolute intent for every
                # job each quantum (safe only with sequence numbering).
                if desc.app_id in new_selected:
                    self.signals.send_unblock(live)
                else:
                    self.signals.send_block(live)
            elif desc.app_id in self._selected and desc.app_id not in new_selected:
                self.signals.send_block(live)
            elif desc.app_id not in self._selected and desc.app_id in new_selected:
                self.signals.send_unblock(live)

        self._selected = new_selected
        # Record the *live* widths the selection packed with (a job's
        # width shrinks as its threads finish; invariant checks must see
        # what the packer saw, not the static thread counts).
        width_of = {j.app_id: j.width for j in jobs}
        sel_sorted = sorted(new_selected)
        machine.trace.record(
            machine.now,
            "manager.quantum",
            number=self._quanta,
            selected=sel_sorted,
            widths=[width_of[a] for a in sel_sorted],
            order=self.arena.list_order(),
        )
        if self._auditor is not None:
            self._auditor.on_quantum(self, jobs, selection, fallback=fallback)

        # 4b. Arm the signal verifier (hardened signal-fault runs only):
        #     after the acknowledgement deadline, re-check realised blocked
        #     states against the intent and re-send per mismatched thread.
        if self.signal_checks_relaxed and self.config.signal_max_retries > 0:
            self._verify_epoch += 1
            self.engine.schedule_after(
                self._ack_deadline_us(),
                lambda epoch=self._verify_epoch: self._verify_signals(1, epoch),
                priority=EventPriority.MANAGER,
            )

        self._prev_boundary_time = machine.now

        # 5. Next quantum.
        self._boundary_scheduled = True
        self.engine.schedule_after(
            self.config.quantum_us, self._quantum_boundary, priority=EventPriority.MANAGER
        )
        self._schedule_samples()

    # ------------------------------------------------------------- hardening

    def _watchdog_scan(self) -> None:
        """Quarantine applications that pinned CPUs without progressing.

        Progress is measured with the work counter (the
        instructions-retired analogue): an application that was *selected*
        — so its threads were unblocked and schedulable — yet retired zero
        work over ``watchdog_quanta`` consecutive quanta is hung, not
        slow. Deselected applications are skipped without resetting their
        count (they legitimately cannot progress while blocked).
        """
        machine = self.machine
        finished_col = machine.store.finished
        for desc in list(self.arena.connected()):
            srows, crows = self._app_rows(desc)
            if finished_col[srows].all():
                continue
            work = machine.counters.read_rows(crows).work_us
            prev = self._watchdog_work.get(desc.app_id)
            self._watchdog_work[desc.app_id] = work
            if prev is None or desc.app_id not in self._selected:
                continue
            if work - prev > 1e-9:
                self._watchdog_count[desc.app_id] = 0
                continue
            count = self._watchdog_count.get(desc.app_id, 0) + 1
            self._watchdog_count[desc.app_id] = count
            if count >= self.config.watchdog_quanta:
                self._quarantine(desc)

    def _quarantine(self, desc) -> None:
        """Force a hung application off its processors and out of the list.

        The manager bypasses the cooperative signal protocol — a hung
        process would never run its handler anyway — and blocks the
        threads directly (modelling SIGSTOP from the server), then
        disconnects the application *without* the usual exit-unblock:
        quarantined threads must stay off the CPUs they were pinning.
        """
        machine = self.machine
        for tid in desc.tids:
            thread = machine.thread(tid)
            if not thread.finished and not thread.blocked:
                machine.set_blocked(tid, True)
                self.kernel.on_block_change(tid, True)
        machine.trace.record(
            machine.now, "manager.quarantine", app_id=desc.app_id, name=desc.name
        )
        if self._faults is not None:
            self._faults.apps_quarantined += 1
        self._release(desc.app_id, unblock=False)

    def _track_staleness(self, ran: set[int], jobs: list[JobView]) -> bool:
        """Update per-app staleness; return True for head-first fallback.

        An application that was selected for the whole previous quantum
        yet pushed nothing fresh into its estimator (its
        ``last_update_time`` predates the previous boundary) accrues one
        stale quantum; a fresh update resets the count. Stale estimates
        simply *hold* — the estimator retains the last trusted average —
        which is counted as a fallback. Only when every runnable
        application is stale does selection abandon fitness packing.
        """
        threshold = self.config.staleness_quanta
        for app_id in ran:
            last = self.policy.last_update_time(app_id)
            if last is None or last <= self._prev_boundary_time + 1e-9:
                self._stale_count[app_id] = self._stale_count.get(app_id, 0) + 1
            else:
                self._stale_count[app_id] = 0
        if not jobs:
            return False
        stale = [j for j in jobs if self._stale_count.get(j.app_id, 0) >= threshold]
        if stale and self._faults is not None:
            self._faults.stale_fallbacks += 1
        if len(stale) == len(jobs):
            if self._faults is not None:
                self._faults.headfirst_fallbacks += 1
            return True
        return False

    def _ack_deadline_us(self) -> float:
        """Acknowledgement deadline for the first verification round."""
        if self.config.signal_ack_deadline_us is not None:
            return self.config.signal_ack_deadline_us
        max_width = max(
            (len(d.tids) for d in self.arena.connected()), default=1
        )
        settle = (
            self.config.signal_first_hop_us
            + self.config.signal_forward_us * max_width
        )
        delay = self._faults.plan.signal_delay_us if self._faults is not None else 0.0
        return 2.0 * settle + delay

    def _verify_signals(self, round_: int, epoch: int) -> None:
        """One acknowledgement-deadline verification round.

        Compares every managed live thread's realised blocked state with
        the current intent and re-sends the intent *per mismatched
        thread*. Per-thread targeting is what makes retries safe under
        the counter protocol: a group-wide resend adds surplus signals to
        already-correct threads and wedges their inversion-protection
        counts, while a targeted resend either lands the missing signal
        or (if the original was merely delayed) creates a surplus this
        same verifier observes and cancels in the next round. The chain
        backs off exponentially and gives up after ``signal_max_retries``
        rounds — the next boundary restates intent and starts a fresh
        chain (``epoch`` retires any round still pending from the old
        one, so two chains never interleave their resends).
        """
        if self._faults is None or epoch != self._verify_epoch:
            return
        machine = self.machine
        mismatched: list[tuple[int, bool]] = []
        for desc in self.arena.connected():
            want_blocked = desc.app_id not in self._selected
            for tid in desc.tids:
                thread = machine.thread(tid)
                if thread.finished:
                    continue
                if thread.blocked != want_blocked:
                    mismatched.append((tid, want_blocked))
        if not mismatched:
            return
        if round_ > self.config.signal_max_retries:
            self._faults.signal_giveups += 1
            return
        for tid, want_blocked in mismatched:
            self._faults.signal_retries += 1
            if want_blocked:
                self.signals.send_block([tid])
            else:
                self.signals.send_unblock([tid])
        self.engine.schedule_after(
            self._ack_deadline_us() * (2.0 ** round_),
            lambda: self._verify_signals(round_ + 1, epoch),
            priority=EventPriority.MANAGER,
        )
